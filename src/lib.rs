//! Umbrella crate for the NIC-based barrier reproduction.
//!
//! Re-exports the workspace crates under short names so that the runnable
//! examples in `examples/` and the integration tests in `tests/` can reach
//! the whole stack through a single dependency.

pub use gmsim_des as des;
pub use gmsim_gm as gm;
pub use gmsim_lanai as lanai;
pub use gmsim_mpi as mpi;
pub use gmsim_myrinet as myrinet;
pub use gmsim_testbed as testbed;
pub use nic_barrier as barrier;
