//! Merge laws for the parallel-sweep accumulators: chopping a sample
//! stream into arbitrary consecutive chunks, summarizing each chunk, and
//! merging the partials must agree with summarizing the stream directly —
//! no matter how the chunks are grouped. This is what lets the sweep
//! engine combine per-worker partials in any order.

use gmsim_des::check::{forall, Gen};
use gmsim_des::{Histogram, Summary};

/// Split `samples` into consecutive chunks at random boundaries (empty
/// chunks allowed, to exercise the identity-element paths).
fn random_chunks<'a>(g: &mut Gen, samples: &'a [f64]) -> Vec<&'a [f64]> {
    let cuts = g.usize_in(0, 6);
    let mut bounds: Vec<usize> = (0..cuts).map(|_| g.usize_in(0, samples.len())).collect();
    bounds.push(0);
    bounds.push(samples.len());
    bounds.sort_unstable();
    bounds.windows(2).map(|w| &samples[w[0]..w[1]]).collect()
}

fn summarize(chunk: &[f64]) -> Summary {
    let mut s = Summary::new();
    for &x in chunk {
        s.record(x);
    }
    s
}

#[test]
fn summary_merge_agrees_with_direct_recording_under_arbitrary_splits() {
    forall(400, 0xace_0001, |g| {
        let samples = g.vec_of(0, 80, |g| g.f64_in(-10.0, 500.0));
        let direct = summarize(&samples);

        // Left-fold over one random split, and a nested two-level merge
        // over another: both must agree with the direct pass.
        for _ in 0..2 {
            let chunks = random_chunks(g, &samples);
            let mut folded = Summary::new();
            for c in &chunks {
                folded.merge(&summarize(c));
            }
            assert_eq!(folded.count(), direct.count());
            if direct.count() == 0 {
                continue;
            }
            // min/max take no rounding, so they must match exactly.
            assert_eq!(folded.min().to_bits(), direct.min().to_bits());
            assert_eq!(folded.max().to_bits(), direct.max().to_bits());
            // mean/stddev reassociate floating-point sums; agreement is up
            // to rounding, not bit-exact.
            assert!((folded.mean() - direct.mean()).abs() <= 1e-9 * direct.mean().abs().max(1.0));
            assert!((folded.stddev() - direct.stddev()).abs() <= 1e-7);
        }
    });
}

#[test]
fn summary_merge_grouping_does_not_change_the_result() {
    forall(400, 0xace_0002, |g| {
        let samples = g.vec_of(0, 60, |g| g.f64_in(0.0, 100.0));
        let chunks = random_chunks(g, &samples);
        let partials: Vec<Summary> = chunks.iter().map(|c| summarize(c)).collect();

        // (a ⊕ b) ⊕ c ⊕ ... vs a ⊕ (b ⊕ (c ⊕ ...)).
        let mut left = Summary::new();
        for p in &partials {
            left.merge(p);
        }
        let mut right = Summary::new();
        for p in partials.iter().rev() {
            let mut acc = p.clone();
            acc.merge(&right);
            right = acc;
        }
        assert_eq!(left.count(), right.count());
        if left.count() > 0 {
            assert_eq!(left.min().to_bits(), right.min().to_bits());
            assert_eq!(left.max().to_bits(), right.max().to_bits());
            assert!((left.mean() - right.mean()).abs() <= 1e-9 * left.mean().abs().max(1.0));
            assert!((left.stddev() - right.stddev()).abs() <= 1e-7);
        }
    });
}

#[test]
fn histogram_merge_is_exactly_associative_under_arbitrary_splits() {
    forall(400, 0xace_0003, |g| {
        let bin_width = g.f64_in(0.5, 4.0);
        let bins = g.usize_in(1, 32);
        // Range chosen to populate underflow, the bins, and overflow.
        let span = bin_width * bins as f64;
        let samples = g.vec_of(0, 120, |g| g.f64_in(-span, 2.0 * span));

        let record_all = |chunk: &[f64]| {
            let mut h = Histogram::new(bin_width, bins);
            for &x in chunk {
                h.record(x);
            }
            h
        };
        let direct = record_all(&samples);

        for _ in 0..2 {
            let chunks = random_chunks(g, &samples);
            let mut merged = Histogram::new(bin_width, bins);
            for c in &chunks {
                merged.merge(&record_all(c));
            }
            // Histogram state is integer counts, so every observable must
            // match exactly, not approximately.
            assert_eq!(merged.total(), direct.total());
            assert_eq!(merged.underflow(), direct.underflow());
            assert_eq!(merged.overflow(), direct.overflow());
            for i in 0..bins {
                assert_eq!(merged.bucket(i), direct.bucket(i), "bucket {i}");
            }
            match (merged.mean(), direct.mean()) {
                (Some(a), Some(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (a, b) => assert_eq!(a, b),
            }
            for q in [0.0, 0.5, 0.95, 1.0] {
                match (merged.quantile(q), direct.quantile(q)) {
                    (Some(a), Some(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                    (a, b) => assert_eq!(a, b),
                }
            }
        }
    });
}
