//! Randomized property tests for the DES engine: event ordering, statistics
//! merging, and RNG determinism.

use gmsim_des::check::forall;
use gmsim_des::{Scheduler, SimRng, SimTime, Simulation, Summary};

/// Events fire in nondecreasing time order, with FIFO order at equal
/// timestamps, for arbitrary schedules.
#[test]
fn fire_order_is_total() {
    forall(128, 0xDE5_0001, |g| {
        let times = g.vec_of(1, 200, |g| g.u64_in(0, 999));
        let mut sim = Simulation::new(Vec::<(u64, usize)>::new());
        for (i, &t) in times.iter().enumerate() {
            sim.scheduler_mut()
                .schedule_fn(SimTime::from_ns(t), move |w: &mut Vec<(u64, usize)>, _| {
                    w.push((t, i))
                });
        }
        sim.run();
        let fired = sim.world();
        assert_eq!(fired.len(), times.len());
        for w in fired.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    });
}

/// Nested scheduling preserves ordering too: every event schedules a
/// follow-up; the clock never runs backwards.
#[test]
fn nested_scheduling_never_goes_backwards() {
    forall(128, 0xDE5_0002, |g| {
        let seeds = g.vec_of(1, 50, |g| (g.u64_in(0, 499), g.u64_in(1, 99)));
        let mut sim = Simulation::new(Vec::<u64>::new());
        for &(start, delay) in &seeds {
            sim.scheduler_mut()
                .schedule_fn(SimTime::from_ns(start), move |_: &mut Vec<u64>, s| {
                    let now = s.now();
                    s.schedule_in(SimTime::from_ns(delay), move |w: &mut Vec<u64>, s2| {
                        assert!(s2.now() >= now);
                        w.push(s2.now().as_ns());
                    });
                });
        }
        sim.run();
        let fired = sim.world();
        assert_eq!(fired.len(), seeds.len());
        for w in fired.windows(2) {
            assert!(w[0] <= w[1]);
        }
    });
}

/// `Summary::merge` is equivalent to a single-stream accumulation for
/// any split point, and merging is associative enough for sweeps.
#[test]
fn summary_merge_any_split() {
    forall(128, 0xDE5_0003, |g| {
        let data = g.vec_of(2, 300, |g| g.f64_in(-1e6, 1e6));
        let split = g.usize_in(0, 299) % data.len();
        let mut whole = Summary::new();
        data.iter().for_each(|&x| whole.record(x));
        let mut a = Summary::new();
        let mut b = Summary::new();
        data[..split].iter().for_each(|&x| a.record(x));
        data[split..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
        assert!((a.stddev() - whole.stddev()).abs() <= 1e-6 * whole.stddev().abs().max(1.0));
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    });
}

/// Split RNG streams are stable: splitting with the same label always
/// yields the same stream, and distinct labels diverge.
#[test]
fn rng_split_determinism() {
    forall(256, 0xDE5_0004, |g| {
        let seed = g.any_u64();
        let l1 = g.any_u64();
        let l2 = g.any_u64();
        let parent = SimRng::new(seed);
        let mut a1 = parent.split(l1);
        let mut a2 = parent.split(l1);
        for _ in 0..8 {
            assert_eq!(a1.next(), a2.next());
        }
        if l1 != l2 {
            let mut b = parent.split(l2);
            let mut a = parent.split(l1);
            let agree = (0..8).filter(|_| a.next() == b.next()).count();
            assert!(agree < 8, "distinct labels produced identical streams");
        }
    });
}

/// run_until never advances the clock past the horizon, and running the
/// remainder afterwards fires everything exactly once.
#[test]
fn horizon_is_respected() {
    forall(128, 0xDE5_0005, |g| {
        let times = g.vec_of(1, 100, |g| g.u64_in(0, 999));
        let horizon = g.u64_in(0, 999);
        let mut sim = Simulation::new(0usize);
        for &t in &times {
            sim.scheduler_mut()
                .schedule_fn(SimTime::from_ns(t), |w: &mut usize, _| *w += 1);
        }
        sim.run_until(SimTime::from_ns(horizon));
        let before = times.iter().filter(|&&t| t <= horizon).count();
        assert_eq!(*sim.world(), before);
        assert!(sim.now() <= SimTime::from_ns(horizon));
        sim.run();
        assert_eq!(*sim.world(), times.len());
    });
}

/// Deterministic replay: two identical simulations produce identical event
/// counts and final clocks even under a complex random workload.
#[test]
fn replay_is_bit_identical() {
    fn run(seed: u64) -> (u64, SimTime, u64) {
        let mut sim = Simulation::new(SimRng::new(seed));
        fn step(w: &mut SimRng, s: &mut Scheduler<SimRng>) {
            let jump = w.ns_between(1, 10_000);
            if w.chance(0.9) {
                s.schedule_in(SimTime::from_ns(jump), step);
            }
            if w.chance(0.3) {
                s.schedule_in(SimTime::from_ns(jump * 2), |_, _| {});
            }
        }
        for _ in 0..10 {
            sim.scheduler_mut().schedule_fn(SimTime::ZERO, step);
        }
        sim.run();
        let events = sim.events_fired();
        let now = sim.now();
        let mut world = sim.into_world();
        (events, now, world.next())
    }
    assert_eq!(run(1234), run(1234));
    assert_ne!(run(1234), run(4321));
}
