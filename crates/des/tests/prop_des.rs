//! Randomized property tests for the DES engine: event ordering, statistics
//! merging, RNG determinism, and typed-slab/boxed-closure equivalence.

use gmsim_des::check::forall;
use gmsim_des::{BoxedFn, Event, Scheduler, SimRng, SimTime, Simulation, Summary};

/// Events fire in nondecreasing time order, with FIFO order at equal
/// timestamps, for arbitrary schedules.
#[test]
fn fire_order_is_total() {
    forall(128, 0xDE5_0001, |g| {
        let times = g.vec_of(1, 200, |g| g.u64_in(0, 999));
        let mut sim: Simulation<Vec<(u64, usize)>> = Simulation::new(Vec::new());
        for (i, &t) in times.iter().enumerate() {
            sim.scheduler_mut()
                .schedule_fn(SimTime::from_ns(t), move |w: &mut Vec<(u64, usize)>, _| {
                    w.push((t, i))
                });
        }
        sim.run();
        let fired = sim.world();
        assert_eq!(fired.len(), times.len());
        for w in fired.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    });
}

/// Nested scheduling preserves ordering too: every event schedules a
/// follow-up; the clock never runs backwards.
#[test]
fn nested_scheduling_never_goes_backwards() {
    forall(128, 0xDE5_0002, |g| {
        let seeds = g.vec_of(1, 50, |g| (g.u64_in(0, 499), g.u64_in(1, 99)));
        let mut sim: Simulation<Vec<u64>> = Simulation::new(Vec::new());
        for &(start, delay) in &seeds {
            sim.scheduler_mut()
                .schedule_fn(SimTime::from_ns(start), move |_: &mut Vec<u64>, s| {
                    let now = s.now();
                    s.schedule_in(SimTime::from_ns(delay), move |w: &mut Vec<u64>, s2| {
                        assert!(s2.now() >= now);
                        w.push(s2.now().as_ns());
                    });
                });
        }
        sim.run();
        let fired = sim.world();
        assert_eq!(fired.len(), seeds.len());
        for w in fired.windows(2) {
            assert!(w[0] <= w[1]);
        }
    });
}

/// `Summary::merge` is equivalent to a single-stream accumulation for
/// any split point, and merging is associative enough for sweeps.
#[test]
fn summary_merge_any_split() {
    forall(128, 0xDE5_0003, |g| {
        let data = g.vec_of(2, 300, |g| g.f64_in(-1e6, 1e6));
        let split = g.usize_in(0, 299) % data.len();
        let mut whole = Summary::new();
        data.iter().for_each(|&x| whole.record(x));
        let mut a = Summary::new();
        let mut b = Summary::new();
        data[..split].iter().for_each(|&x| a.record(x));
        data[split..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
        assert!((a.stddev() - whole.stddev()).abs() <= 1e-6 * whole.stddev().abs().max(1.0));
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    });
}

/// Split RNG streams are stable: splitting with the same label always
/// yields the same stream, and distinct labels diverge.
#[test]
fn rng_split_determinism() {
    forall(256, 0xDE5_0004, |g| {
        let seed = g.any_u64();
        let l1 = g.any_u64();
        let l2 = g.any_u64();
        let parent = SimRng::new(seed);
        let mut a1 = parent.split(l1);
        let mut a2 = parent.split(l1);
        for _ in 0..8 {
            assert_eq!(a1.next(), a2.next());
        }
        if l1 != l2 {
            let mut b = parent.split(l2);
            let mut a = parent.split(l1);
            let agree = (0..8).filter(|_| a.next() == b.next()).count();
            assert!(agree < 8, "distinct labels produced identical streams");
        }
    });
}

/// run_until never advances the clock past the horizon, and running the
/// remainder afterwards fires everything exactly once.
#[test]
fn horizon_is_respected() {
    forall(128, 0xDE5_0005, |g| {
        let times = g.vec_of(1, 100, |g| g.u64_in(0, 999));
        let horizon = g.u64_in(0, 999);
        let mut sim: Simulation<usize> = Simulation::new(0);
        for &t in &times {
            sim.scheduler_mut()
                .schedule_fn(SimTime::from_ns(t), |w: &mut usize, _| *w += 1);
        }
        sim.run_until(SimTime::from_ns(horizon));
        let before = times.iter().filter(|&&t| t <= horizon).count();
        assert_eq!(*sim.world(), before);
        assert!(sim.now() <= SimTime::from_ns(horizon));
        sim.run();
        assert_eq!(*sim.world(), times.len());
    });
}

/// Deterministic replay: two identical simulations produce identical event
/// counts and final clocks even under a complex random workload.
#[test]
fn replay_is_bit_identical() {
    fn run(seed: u64) -> (u64, SimTime, u64) {
        let mut sim = Simulation::new(SimRng::new(seed));
        fn step(w: &mut SimRng, s: &mut Scheduler<SimRng>) {
            let jump = w.ns_between(1, 10_000);
            if w.chance(0.9) {
                s.schedule_in(SimTime::from_ns(jump), step);
            }
            if w.chance(0.3) {
                s.schedule_in(SimTime::from_ns(jump * 2), |_, _| {});
            }
        }
        for _ in 0..10 {
            sim.scheduler_mut().schedule_fn(SimTime::ZERO, step);
        }
        sim.run();
        let events = sim.events_fired();
        let now = sim.now();
        let mut world = sim.into_world();
        (events, now, world.next())
    }
    assert_eq!(run(1234), run(1234));
    assert_ne!(run(1234), run(4321));
}

/// Trace of fired events: `(fire time in ns, item index)`.
type Trace = Vec<(u64, usize)>;

/// A typed event mirroring the boxed-closure workload below: note the fire,
/// optionally chain a follow-up. The `Call` variant absorbs closures so the
/// typed scheduler still supports `schedule_fn` (mirroring `ClusterEvent`).
enum TypedEv {
    Note { idx: usize, followup: Option<u64> },
    Call(BoxedFn<Trace, TypedEv>),
}

impl Event<Trace> for TypedEv {
    fn fire(self, world: &mut Trace, sched: &mut Scheduler<Trace, TypedEv>) {
        match self {
            TypedEv::Note { idx, followup } => {
                world.push((sched.now().as_ns(), idx));
                if let Some(delay) = followup {
                    sched.schedule_after(
                        SimTime::from_ns(delay),
                        TypedEv::Note {
                            idx: idx + 1_000_000,
                            followup: None,
                        },
                    );
                }
            }
            TypedEv::Call(f) => f(world, sched),
        }
    }
    fn from_boxed(f: BoxedFn<Trace, TypedEv>) -> Self {
        TypedEv::Call(f)
    }
}

/// The typed slab path and the boxed-closure path produce bit-identical
/// traces for arbitrary workloads with chained follow-ups, including when
/// typed and closure events are mixed in one queue. This is the property the
/// `ClusterEvent` port of the GM stack relies on: retiming nothing, only
/// changing event representation.
#[test]
fn typed_path_matches_boxed_path() {
    forall(128, 0xDE5_0006, |g| {
        // Workload: (start time, follow-up delay or 0, schedule via closure?)
        let items: Vec<(u64, u64, bool)> = g.vec_of(1, 120, |g| {
            (g.u64_in(0, 99), g.u64_in(0, 19), g.u64_in(0, 3) == 0)
        });

        // Boxed run: everything through schedule_fn.
        let mut boxed: Simulation<Trace> = Simulation::new(Vec::new());
        for (i, &(t, d, _)) in items.iter().enumerate() {
            boxed
                .scheduler_mut()
                .schedule_fn(SimTime::from_ns(t), move |w: &mut Trace, s| {
                    w.push((s.now().as_ns(), i));
                    if d > 0 {
                        s.schedule_in(SimTime::from_ns(d), move |w: &mut Trace, s2| {
                            w.push((s2.now().as_ns(), i + 1_000_000));
                        });
                    }
                });
        }
        boxed.run();

        // Typed run: the same workload as slab events, except items flagged
        // `via_closure`, which go through the Call/from_boxed seam.
        let mut typed: Simulation<Trace, TypedEv> = Simulation::new(Vec::new());
        for (i, &(t, d, via_closure)) in items.iter().enumerate() {
            let followup = (d > 0).then_some(d);
            if via_closure {
                typed
                    .scheduler_mut()
                    .schedule_fn(SimTime::from_ns(t), move |w: &mut Trace, s| {
                        TypedEv::Note { idx: i, followup }.fire(w, s)
                    });
            } else {
                typed
                    .scheduler_mut()
                    .schedule(SimTime::from_ns(t), TypedEv::Note { idx: i, followup });
            }
        }
        typed.run();

        assert_eq!(typed.events_fired(), boxed.events_fired());
        assert_eq!(typed.now(), boxed.now());
        assert_eq!(typed.world(), boxed.world(), "fire traces diverged");
    });
}

/// FIFO tie-break at equal timestamps survives slab slot reuse: events
/// scheduled after earlier events have fired (and freed slots back onto the
/// freelist) still fire strictly after same-time events scheduled earlier.
#[test]
fn typed_fifo_ties_survive_slot_reuse() {
    forall(128, 0xDE5_0007, |g| {
        let wave1: Vec<u64> = g.vec_of(1, 60, |g| g.u64_in(0, 9));
        let wave2: Vec<u64> = g.vec_of(1, 60, |g| g.u64_in(5, 14));
        let steps = g.usize_in(1, wave1.len());

        let mut sim: Simulation<Trace, TypedEv> = Simulation::new(Vec::new());
        for (i, &t) in wave1.iter().enumerate() {
            sim.scheduler_mut().schedule(
                SimTime::from_ns(t),
                TypedEv::Note {
                    idx: i,
                    followup: None,
                },
            );
        }
        // Fire part of wave 1 so its slots return to the freelist, then
        // schedule wave 2 into the recycled slots (indices continue upward,
        // matching the global seq order).
        for _ in 0..steps {
            assert!(sim.step());
        }
        let now = sim.now().as_ns();
        for (j, &t) in wave2.iter().enumerate() {
            let at = now.max(t); // never schedule into the past
            sim.scheduler_mut().schedule(
                SimTime::from_ns(at),
                TypedEv::Note {
                    idx: wave1.len() + j,
                    followup: None,
                },
            );
        }
        sim.run();

        let fired = sim.world();
        assert_eq!(fired.len(), wave1.len() + wave2.len());
        for w in fired.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                assert!(
                    w[0].1 < w[1].1,
                    "FIFO tie-break violated across slab reuse: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
        // Reuse actually happened: capacity never exceeds the high-water
        // mark of simultaneously pending events.
        assert!(sim.scheduler_mut().slab_capacity() <= wave1.len() + wave2.len());
    });
}
