//! Steady-state allocation gate for the typed slab scheduler.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up phase grows the slab and heap to their high-water mark, firing and
//! rescheduling typed events must perform **zero** heap allocations. This is
//! the property the whole hot-path refactor exists to provide, so it is
//! pinned exactly, not approximately.
//!
//! This file deliberately contains a single check and runs with
//! `harness = false`: global allocator counts are process-wide, and any
//! concurrent allocation — a sibling test, or the libtest harness's own
//! bookkeeping threads — would make the exact-zero assertion flaky.

use gmsim_des::{BoxedFn, Event, Scheduler, SimTime, Simulation};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates every operation to `System`; only adds a relaxed counter.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

/// A self-rescheduling tick: the same shape as the benchmark's hot loop and
/// the GM stack's steady-state event churn.
enum Tick {
    Fire { lane: u64 },
}

impl Event<u64> for Tick {
    fn fire(self, world: &mut u64, sched: &mut Scheduler<u64, Tick>) {
        let Tick::Fire { lane } = self;
        *world += 1;
        if *world < TOTAL {
            sched.schedule_after(SimTime::from_ns(10 + lane), Tick::Fire { lane });
        }
    }
    fn from_boxed(_: BoxedFn<u64, Tick>) -> Self {
        unreachable!("zero-alloc test never schedules closures")
    }
}

const LANES: u64 = 64;
const TOTAL: u64 = 200_000;

fn main() {
    steady_state_typed_scheduling_allocates_nothing();
    println!("zero_alloc: ok");
}

fn steady_state_typed_scheduling_allocates_nothing() {
    let mut sim: Simulation<u64, Tick> = Simulation::new(0);
    for lane in 0..LANES {
        sim.scheduler_mut()
            .schedule(SimTime::from_ns(lane), Tick::Fire { lane });
    }
    // Warm-up: let the slab and binary heap reach their high-water mark.
    for _ in 0..10_000 {
        assert!(sim.step());
    }
    let slab_before = sim.scheduler_mut().slab_capacity();

    let before = ALLOCS.load(Ordering::Relaxed);
    while sim.step() {}
    let after = ALLOCS.load(Ordering::Relaxed);

    // Every lane still in flight when the counter hits TOTAL drains without
    // rescheduling, so the queue fires LANES - 1 extra events.
    assert_eq!(sim.events_fired(), TOTAL + LANES - 1);
    assert_eq!(
        after - before,
        0,
        "typed hot path allocated {} times after warm-up",
        after - before
    );
    assert_eq!(
        sim.scheduler_mut().slab_capacity(),
        slab_before,
        "slab grew past its warm-up high-water mark"
    );
}
