//! A minimal randomized-property harness over [`SimRng`].
//!
//! The repository's property tests used to lean on an external framework;
//! the build must resolve with no network access, so this module provides
//! the small slice actually needed: run a closure over many deterministic
//! random cases, and on failure report the case index and derived seed so
//! the exact case can be replayed in isolation. There is no shrinking —
//! cases are generated from documented, bounded distributions, so failures
//! are already small and always reproducible from the printed seed.

use crate::rng::SimRng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Per-case random input source handed to the property closure.
pub struct Gen {
    rng: SimRng,
}

impl Gen {
    /// A generator for one case (exposed so a failing case can be replayed
    /// by seed: `Gen::from_seed(printed_seed)`).
    pub fn from_seed(seed: u64) -> Gen {
        Gen {
            rng: SimRng::new(seed),
        }
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive, matching range-style
    /// strategy bounds used throughout the tests).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi);
        lo + self.rng.below((hi - lo + 1) as u64) as usize
    }

    /// Uniform `u64` in `[lo, hi]` inclusive.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        if lo == 0 && hi == u64::MAX {
            return self.rng.next();
        }
        lo + self.rng.below(hi - lo + 1)
    }

    /// Uniform `u32` in `[lo, hi]` inclusive.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_in(lo as u64, hi as u64) as u32
    }

    /// Uniform `u8` in `[lo, hi]` inclusive.
    pub fn u8_in(&mut self, lo: u8, hi: u8) -> u8 {
        self.u64_in(lo as u64, hi as u64) as u8
    }

    /// Full-entropy `u64`.
    pub fn any_u64(&mut self) -> u64 {
        self.rng.next()
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.unit() * (hi - lo)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }

    /// A vector of `len ∈ [len_lo, len_hi]` elements drawn by `f`.
    pub fn vec_of<T>(
        &mut self,
        len_lo: usize,
        len_hi: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(len_lo, len_hi);
        (0..len).map(|_| f(self)).collect()
    }
}

/// Run `prop` over `cases` deterministic random cases derived from `seed`.
/// A panic inside `prop` is re-raised after printing the case index and the
/// per-case seed for replay via [`Gen::from_seed`].
pub fn forall(cases: u32, seed: u64, mut prop: impl FnMut(&mut Gen)) {
    let root = SimRng::new(seed);
    for case in 0..cases {
        let case_seed = root.split(case as u64).seed();
        let mut g = Gen::from_seed(case_seed);
        let run = catch_unwind(AssertUnwindSafe(|| prop(&mut g)));
        if let Err(payload) = run {
            eprintln!("property failed at case {case}/{cases} (replay seed: {case_seed:#x})");
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forall_runs_every_case() {
        use std::cell::Cell;
        let n = Cell::new(0u32);
        forall(17, 1, |_| n.set(n.get() + 1));
        assert_eq!(n.get(), 17);
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        forall(5, 9, |g| a.push(g.any_u64()));
        forall(5, 9, |g| b.push(g.any_u64()));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        forall(3, 2, |g| {
            if g.usize_in(0, 10) <= 10 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn bounds_are_inclusive() {
        let mut lo_seen = false;
        let mut hi_seen = false;
        forall(200, 3, |g| {
            let v = g.usize_in(2, 4);
            assert!((2..=4).contains(&v));
            lo_seen |= v == 2;
            hi_seen |= v == 4;
        });
        assert!(lo_seen && hi_seen);
    }
}
