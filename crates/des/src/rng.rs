//! Deterministic, splittable random number generation.
//!
//! Experiments need randomness (barrier start skew, drop injection, workload
//! shapes) but must stay reproducible: a single experiment seed determines
//! everything. [`SimRng`] is a self-contained xoshiro256++ generator seeded
//! through SplitMix64, with *splitting* — deriving an independent child
//! stream from a label — so that per-node or per-component streams do not
//! interleave nondeterministically when the code that consumes them is
//! reordered. No external crates are involved, so the streams are stable
//! across toolchains and dependency upgrades.

/// SplitMix64: the recommended seeder for xoshiro, and our label mixer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded RNG with labelled splitting (xoshiro256++ core).
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { seed, state }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child stream. The child depends only on the
    /// parent's seed and the label — not on how much the parent has been
    /// used — so components can be split off in any order.
    pub fn split(&self, label: u64) -> SimRng {
        // SplitMix64-style mix of (seed, label); cheap and well distributed.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(label.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::new(z)
    }

    /// Uniform `u64` in `[0, bound)` (Lemire's multiply-shift with a
    /// rejection pass, so the distribution is exactly uniform).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        loop {
            let x = self.next();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits → the standard [0,1) double construction.
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.unit() < p
    }

    /// Uniform duration in `[lo, hi)` nanoseconds, returned as nanoseconds.
    pub fn ns_between(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A fresh full-entropy `u64` (xoshiro256++ step).
    #[allow(clippy::should_implement_trait)] // not an iterator; name is apt
    pub fn next(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next() == b.next()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_is_independent_of_parent_usage() {
        let parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        let _ = parent2.next(); // consume some parent entropy
        let mut c1 = parent1.split(3);
        let mut c2 = parent2.split(3);
        for _ in 0..32 {
            assert_eq!(c1.next(), c2.next());
        }
    }

    #[test]
    fn split_labels_give_distinct_streams() {
        let parent = SimRng::new(7);
        let mut c1 = parent.split(1);
        let mut c2 = parent.split(2);
        assert_ne!(c1.next(), c2.next());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(9);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut r = SimRng::new(10);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(9);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::new(13);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
