//! Deterministic, splittable random number generation.
//!
//! Experiments need randomness (barrier start skew, drop injection, workload
//! shapes) but must stay reproducible: a single experiment seed determines
//! everything. [`SimRng`] wraps a seeded [`rand::rngs::StdRng`] and adds
//! *splitting* — deriving an independent child stream from a label — so that
//! per-node or per-component streams do not interleave nondeterministically
//! when the code that consumes them is reordered.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded RNG with labelled splitting.
pub struct SimRng {
    seed: u64,
    inner: StdRng,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child stream. The child depends only on the
    /// parent's seed and the label — not on how much the parent has been
    /// used — so components can be split off in any order.
    pub fn split(&self, label: u64) -> SimRng {
        // SplitMix64-style mix of (seed, label); cheap and well distributed.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(label.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::new(z)
    }

    /// Uniform `u64` in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.inner.gen_range(0..bound)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.inner.gen::<f64>() < p
    }

    /// Uniform duration in `[lo, hi)` nanoseconds, returned as nanoseconds.
    pub fn ns_between(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        self.inner.gen_range(lo..hi)
    }

    /// A fresh full-entropy `u64`.
    #[allow(clippy::should_implement_trait)] // not an iterator; name is apt
    pub fn next(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next() == b.next()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_is_independent_of_parent_usage() {
        let parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        let _ = parent2.next(); // consume some parent entropy
        let mut c1 = parent1.split(3);
        let mut c2 = parent2.split(3);
        for _ in 0..32 {
            assert_eq!(c1.next(), c2.next());
        }
    }

    #[test]
    fn split_labels_give_distinct_streams() {
        let parent = SimRng::new(7);
        let mut c1 = parent.split(1);
        let mut c2 = parent.split(2);
        assert_ne!(c1.next(), c2.next());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(9);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(9);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::new(13);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
