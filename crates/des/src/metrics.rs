//! Counter registry for experiment metrics.
//!
//! A [`MetricSet`] is a fixed array of `u64` counters indexed by the
//! [`Counter`] enum — `Copy`, comparable, and mergeable, so a parallel sweep
//! can aggregate per-node hardware/firmware statistics into one value without
//! any string keys or hashing. Counters are populated *after* a run by
//! draining the per-component statistics the simulator already keeps
//! (firmware stats, fabric stats, DMA engines), so the registry adds zero
//! cost to the event hot path.

use std::fmt;

/// Identifies one counter in a [`MetricSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Counter {
    /// Packets handed to the fabric (data, acks, nacks, collective ext).
    PacketsSent,
    /// Packets the fabric dropped (fault injection).
    PacketsDropped,
    /// Packets the fabric corrupted in flight (fault injection).
    PacketsCorrupted,
    /// Reliable packets retransmitted (nack- or timeout-driven).
    PacketsRetransmitted,
    /// Acks transmitted by receive firmware.
    AcksSent,
    /// Nacks transmitted by receive firmware.
    NacksSent,
    /// Packets discarded for CRC failure.
    CrcDrops,
    /// Duplicate reliable packets discarded.
    DupDrops,
    /// Total LANai processor cycles executed across all NICs.
    FirmwareCycles,
    /// Host→NIC DMA bytes moved.
    SdmaBytes,
    /// NIC→host DMA bytes moved.
    RdmaBytes,
    /// Completion events DMA'd up to hosts.
    CompletionDmas,
    /// Send tokens posted by host programs.
    HostSends,
    /// Completion events consumed by host programs.
    HostEvents,
    /// Barrier messages delivered as same-NIC local flags (no wire traffic).
    LocalFlags,
    /// Barrier completions delivered by NIC firmware.
    BarrierCompletions,
    /// §3.2 reject messages sent for early-arriving barrier packets.
    RejectsSent,
    /// Barrier messages resent after a reject.
    BarrierResends,
    /// Genuine RTO expiries (each bumps a connection's backoff level).
    RtoBackoffs,
    /// RTO timer expiries cancelled for free (acked or deadline moved).
    TimerCancels,
    /// Connections that exhausted their retransmit budget and gave up.
    GaveUp,
    /// Worms the fabric delivered twice (fault injection).
    DupRx,
    /// Worms the fabric delayed past later traffic (fault injection).
    ReorderRx,
    /// Distinct teams (communicators) that posted collectives this run.
    TeamsCreated,
    /// High-water mark of collectives concurrently in flight on one NIC
    /// (max across nodes, recorded once per run — not summed per node).
    ConcurrentPeak,
    /// Cross-team pokes refused by the per-team NIC state machines:
    /// packets whose team had no active run on an open port while other
    /// teams' collectives were in flight there.
    CrossTeamRejects,
}

impl Counter {
    /// Every counter, in index order.
    pub const ALL: [Counter; 26] = [
        Counter::PacketsSent,
        Counter::PacketsDropped,
        Counter::PacketsCorrupted,
        Counter::PacketsRetransmitted,
        Counter::AcksSent,
        Counter::NacksSent,
        Counter::CrcDrops,
        Counter::DupDrops,
        Counter::FirmwareCycles,
        Counter::SdmaBytes,
        Counter::RdmaBytes,
        Counter::CompletionDmas,
        Counter::HostSends,
        Counter::HostEvents,
        Counter::LocalFlags,
        Counter::BarrierCompletions,
        Counter::RejectsSent,
        Counter::BarrierResends,
        Counter::RtoBackoffs,
        Counter::TimerCancels,
        Counter::GaveUp,
        Counter::DupRx,
        Counter::ReorderRx,
        Counter::TeamsCreated,
        Counter::ConcurrentPeak,
        Counter::CrossTeamRejects,
    ];

    /// Number of counters (array size of a [`MetricSet`]).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name, used by exporters and tables.
    pub fn name(self) -> &'static str {
        match self {
            Counter::PacketsSent => "packets_sent",
            Counter::PacketsDropped => "packets_dropped",
            Counter::PacketsCorrupted => "packets_corrupted",
            Counter::PacketsRetransmitted => "packets_retransmitted",
            Counter::AcksSent => "acks_sent",
            Counter::NacksSent => "nacks_sent",
            Counter::CrcDrops => "crc_drops",
            Counter::DupDrops => "dup_drops",
            Counter::FirmwareCycles => "firmware_cycles",
            Counter::SdmaBytes => "sdma_bytes",
            Counter::RdmaBytes => "rdma_bytes",
            Counter::CompletionDmas => "completion_dmas",
            Counter::HostSends => "host_sends",
            Counter::HostEvents => "host_events",
            Counter::LocalFlags => "local_flags",
            Counter::BarrierCompletions => "barrier_completions",
            Counter::RejectsSent => "rejects_sent",
            Counter::BarrierResends => "barrier_resends",
            Counter::RtoBackoffs => "rto_backoffs",
            Counter::TimerCancels => "timer_cancels",
            Counter::GaveUp => "gave_up",
            Counter::DupRx => "dup_rx",
            Counter::ReorderRx => "reorder_rx",
            Counter::TeamsCreated => "teams_created",
            Counter::ConcurrentPeak => "concurrent_peak",
            Counter::CrossTeamRejects => "cross_team_rejects",
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fixed-size set of named counters. See the module docs.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricSet {
    counts: [u64; Counter::COUNT],
}

impl MetricSet {
    /// All counters zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `v` to counter `c`.
    pub fn add(&mut self, c: Counter, v: u64) {
        self.counts[c as usize] += v;
    }

    /// Current value of counter `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.counts[c as usize]
    }

    /// Add every counter of `other` into this set.
    pub fn merge(&mut self, other: &MetricSet) {
        for (into, from) in self.counts.iter_mut().zip(other.counts.iter()) {
            *into += from;
        }
    }

    /// Iterate `(counter, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL.iter().map(move |&c| (c, self.get(c)))
    }
}

impl fmt::Debug for MetricSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut m = f.debug_map();
        for (c, v) in self.iter() {
            if v != 0 {
                m.entry(&c.name(), &v);
            }
        }
        m.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_roundtrip() {
        let mut m = MetricSet::new();
        m.add(Counter::PacketsSent, 3);
        m.add(Counter::PacketsSent, 2);
        m.add(Counter::FirmwareCycles, 1000);
        assert_eq!(m.get(Counter::PacketsSent), 5);
        assert_eq!(m.get(Counter::FirmwareCycles), 1000);
        assert_eq!(m.get(Counter::CrcDrops), 0);
    }

    #[test]
    fn merge_sums_pointwise() {
        let mut a = MetricSet::new();
        let mut b = MetricSet::new();
        a.add(Counter::AcksSent, 1);
        b.add(Counter::AcksSent, 2);
        b.add(Counter::DupDrops, 7);
        a.merge(&b);
        assert_eq!(a.get(Counter::AcksSent), 3);
        assert_eq!(a.get(Counter::DupDrops), 7);
    }

    #[test]
    fn names_are_unique_and_match_index_order() {
        let names: std::collections::HashSet<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), Counter::COUNT);
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
    }

    #[test]
    fn debug_lists_only_nonzero() {
        let mut m = MetricSet::new();
        m.add(Counter::RdmaBytes, 64);
        let s = format!("{m:?}");
        assert!(s.contains("rdma_bytes") && !s.contains("crc_drops"), "{s}");
    }
}
