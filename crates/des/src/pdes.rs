//! Conservative parallel DES primitives.
//!
//! The serial [`Scheduler`](crate::scheduler::Scheduler) orders events by
//! `(time, seq)`, where `seq` is the global schedule-call counter. A parallel
//! run partitions the world into logical processes (LPs) that execute
//! windows of width Δ — the minimum cross-partition delivery latency — in
//! lockstep: within a window no LP can influence another (every cross-LP
//! effect is deferred to the window barrier and lands at least Δ later), so
//! LPs are data-parallel between barriers.
//!
//! Bit-identity with the serial run hinges on reproducing the serial
//! `(time, seq)` order without a global counter. The observation that makes
//! this possible: for events scheduled *during* the run, serial `seq` order
//! at equal timestamps is exactly lexicographic `(rank of the causing
//! event's firing, emission index within that firing)` — causes fire in seq
//! order and schedule their children in emission order. Events scheduled
//! *before* the run started compare among themselves by schedule order and
//! precede everything else. That yields a three-tier key ([`Cause`]):
//!
//! * **Init** — scheduled before the run; ordered by setup slot.
//! * **Ranked** — the cause already has a global firing rank (it fired in an
//!   earlier window, or was ranked at a barrier); ordered by
//!   `(rank, emission)`.
//! * **Local** — the cause fired earlier in the *current* window in the
//!   *same* LP (cross-LP causes are impossible mid-window); ordered by the
//!   cause's position in the LP's firing log, which restricted to one LP is
//!   rank order.
//!
//! At each barrier a [`Sequencer`] merges the per-LP firing logs into the
//! global rank order the serial scheduler would have produced, after which
//! every `Local` key can be patched to `Ranked` ([`LpQueue::seal_window`]).
//! The rank order also dictates the order of deferred cross-LP side effects
//! (fabric sends, trace records), which is what makes shared-resource
//! state — wormhole link contention, the fault RNG draw sequence, trace-ring
//! eviction — evolve exactly as in the serial run.

use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as AtomicOrdering};

/// Why an event was scheduled — the parallel stand-in for the serial
/// scheduler's tie-breaking `seq`. See the module docs for the ordering
/// argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    /// Scheduled before the run started; `slot` is the setup-schedule index.
    Init {
        /// Position among pre-run schedules (serial `seq` equivalent).
        slot: u64,
    },
    /// Scheduled by an event whose global firing rank is known.
    Ranked {
        /// Global firing rank of the causing event.
        rank: u64,
        /// Schedule-call index within the cause's firing.
        emission: u32,
    },
    /// Scheduled by an event that fired earlier in the current window in
    /// the same LP and has not been globally ranked yet.
    Local {
        /// Position of the cause in this LP's current-window firing log.
        pos: u32,
        /// Schedule-call index within the cause's firing.
        emission: u32,
    },
}

/// Totally ordered comparison key of a [`Cause`]: `(tier, a, b)`.
type SerialKey = (u8, u64, u32);

impl Cause {
    /// Totally ordered comparison key: `(tier, a, b)`. Init sorts before
    /// Ranked before Local at equal times — matching serial `seq` order,
    /// because pre-run schedules hold the smallest seqs and every
    /// current-window cause fired (hence scheduled) after every
    /// already-ranked cause.
    fn key(self) -> SerialKey {
        match self {
            Cause::Init { slot } => (0, slot, 0),
            Cause::Ranked { rank, emission } => (1, rank, emission),
            Cause::Local { pos, emission } => (2, pos as u64, emission),
        }
    }
}

impl Ord for Cause {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}
impl PartialOrd for Cause {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Full ordering key of a pending event in an LP queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EvKey {
    /// Absolute firing time.
    pub at: SimTime,
    /// Serial-order tie-break at equal times.
    pub cause: Cause,
}

struct QueueEntry<E> {
    key: EvKey,
    ev: E,
}

impl<E> PartialEq for QueueEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for QueueEntry<E> {}
impl<E> PartialOrd for QueueEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for QueueEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: BinaryHeap is a max-heap, we want the smallest key on
        // top. Keys are unique within one LP (Init slots, (rank, emission)
        // pairs and (pos, emission) pairs each identify one schedule call),
        // so this never compares equal entries with distinct events.
        other.key.cmp(&self.key)
    }
}

/// Per-LP pending-event queue, split into two bands:
///
/// * `main` holds events with window-stable keys (`Init` / `Ranked`);
/// * `fresh` holds events scheduled during the current window (`Local`
///   keys), which are re-keyed to `Ranked` at the barrier.
///
/// The split means sealing a window only touches the events that window
/// created, not the (potentially large) backlog of timers and deliveries.
pub struct LpQueue<E> {
    main: BinaryHeap<QueueEntry<E>>,
    fresh: BinaryHeap<QueueEntry<E>>,
}

impl<E> Default for LpQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> LpQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        LpQueue {
            main: BinaryHeap::new(),
            fresh: BinaryHeap::new(),
        }
    }

    /// Insert an event under `key`. `Local` keys land in the fresh band and
    /// MUST be sealed (via [`LpQueue::seal_window`]) before the window they
    /// were scheduled in ends.
    pub fn push(&mut self, key: EvKey, ev: E) {
        let entry = QueueEntry { key, ev };
        match key.cause {
            Cause::Local { .. } => self.fresh.push(entry),
            _ => self.main.push(entry),
        }
    }

    /// Firing time of the earliest pending event.
    pub fn next_at(&self) -> Option<SimTime> {
        match (self.main.peek(), self.fresh.peek()) {
            (Some(a), Some(b)) => Some(a.key.at.min(b.key.at)),
            (Some(a), None) => Some(a.key.at),
            (None, Some(b)) => Some(b.key.at),
            (None, None) => None,
        }
    }

    /// Pop the earliest event if it fires strictly before `end`.
    pub fn pop_before(&mut self, end: SimTime) -> Option<(EvKey, E)> {
        let take_fresh = match (self.main.peek(), self.fresh.peek()) {
            (Some(a), Some(b)) => b.key < a.key,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (None, None) => return None,
        };
        let heap = if take_fresh {
            &mut self.fresh
        } else {
            &mut self.main
        };
        if heap.peek().map(|e| e.key.at)? >= end {
            return None;
        }
        let e = heap.pop().expect("peeked entry vanished");
        Some((e.key, e.ev))
    }

    /// Pop the earliest event unconditionally (merged-LP mode, where the
    /// whole run is one window).
    pub fn pop(&mut self) -> Option<(EvKey, E)> {
        self.pop_before(SimTime::MAX)
    }

    /// End-of-window re-key: every `Local{pos, emission}` key becomes
    /// `Ranked{pos_rank[pos], emission}` and moves to the main band.
    /// `pos_rank` is the per-LP slice filled by [`Sequencer::sequence`].
    ///
    /// Order preservation: a `Local` key sorts after every `Ranked` key at
    /// the same time, and the new ranks (assigned this barrier) are larger
    /// than every rank already in the queue, so the relative order of all
    /// pending events is unchanged — the patch only swaps in the name the
    /// serial scheduler would have used all along.
    pub fn seal_window(&mut self, pos_rank: &[u64]) {
        while let Some(QueueEntry { key, ev }) = self.fresh.pop() {
            let Cause::Local { pos, emission } = key.cause else {
                unreachable!("fresh band holds only Local keys");
            };
            let rank = pos_rank[pos as usize];
            debug_assert_ne!(rank, u64::MAX, "cause was never ranked");
            self.main.push(QueueEntry {
                key: EvKey {
                    at: key.at,
                    cause: Cause::Ranked { rank, emission },
                },
                ev,
            });
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.main.len() + self.fresh.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.main.is_empty() && self.fresh.is_empty()
    }

    /// True when the fresh (unsealed) band is non-empty.
    pub fn needs_seal(&self) -> bool {
        !self.fresh.is_empty()
    }
}

/// One fired event, as recorded in an LP's window log: when it fired and
/// the key it fired under. Logs are in firing order, so `at` is
/// non-decreasing.
#[derive(Debug, Clone, Copy)]
pub struct FiredRec {
    /// Firing time.
    pub at: SimTime,
    /// The fired event's own cause key.
    pub cause: Cause,
}

/// Merges per-LP firing logs into the global firing order the serial
/// scheduler would have produced, assigning each fired event a global rank.
/// Ranks are monotone across windows (the counter never resets), which is
/// what lets `Ranked` keys from different windows compare correctly.
pub struct Sequencer {
    next_rank: u64,
    /// Children whose cause has not been ranked yet, keyed by the cause's
    /// (lp, log position); values are the children's (log position,
    /// emission) in emission order.
    waiting: HashMap<(u32, u32), Vec<(u32, u32)>>,
    /// Scratch min-heap of records whose serial key is resolved:
    /// `(key, lp, pos)`.
    ready: BinaryHeap<Reverse<(SerialKey, u32, u32)>>,
    /// Scratch cursor heap for the k-way merge by time: `(at, lp)`.
    fronts: BinaryHeap<Reverse<(SimTime, u32)>>,
}

impl Default for Sequencer {
    fn default() -> Self {
        Self::new()
    }
}

impl Sequencer {
    /// A sequencer with the rank counter at zero.
    pub fn new() -> Self {
        Sequencer {
            next_rank: 0,
            waiting: HashMap::new(),
            ready: BinaryHeap::new(),
            fronts: BinaryHeap::new(),
        }
    }

    /// The rank the next fired event will receive.
    pub fn next_rank(&self) -> u64 {
        self.next_rank
    }

    /// Merge one window's per-LP firing logs into global rank order.
    ///
    /// On return, `pos_rank[lp][pos]` holds the global rank of `logs[lp]
    /// [pos]` (the vectors are (re)sized as needed), and `order` lists
    /// `(lp, pos)` pairs in ascending rank order — the exact order the
    /// serial scheduler would have fired these events in. Deferred
    /// side-effect replay (fabric sends, trace stitching) walks `order`.
    pub fn sequence(
        &mut self,
        logs: &[&[FiredRec]],
        pos_rank: &mut Vec<Vec<u64>>,
        order: &mut Vec<(u32, u32)>,
    ) {
        order.clear();
        pos_rank.resize_with(logs.len(), Vec::new);
        let mut total = 0;
        for (lp, log) in logs.iter().enumerate() {
            let ranks = &mut pos_rank[lp];
            ranks.clear();
            ranks.resize(log.len(), u64::MAX);
            total += log.len();
            if let Some(first) = log.first() {
                self.fronts.push(Reverse((first.at, lp as u32)));
            }
        }
        order.reserve(total);

        // Per-LP cursor into the log.
        let mut cursor = vec![0usize; logs.len()];

        while let Some(&Reverse((group_at, _))) = self.fronts.peek() {
            // Gather every record at `group_at`, across all LPs, in log
            // order per LP. Within one LP a cause always precedes its
            // children in the log, so by the time a child needs its cause's
            // rank, the cause is already in `ready` or `waiting`.
            while let Some(&Reverse((at, lp))) = self.fronts.peek() {
                if at != group_at {
                    break;
                }
                self.fronts.pop();
                let log = logs[lp as usize];
                let mut c = cursor[lp as usize];
                while c < log.len() && log[c].at == group_at {
                    let rec = log[c];
                    let pos = c as u32;
                    match rec.cause {
                        Cause::Init { slot } => {
                            self.ready.push(Reverse(((0, slot, 0), lp, pos)));
                        }
                        Cause::Ranked { rank, emission } => {
                            self.ready.push(Reverse(((1, rank, emission), lp, pos)));
                        }
                        Cause::Local {
                            pos: cause_pos,
                            emission,
                        } => {
                            let r = pos_rank[lp as usize][cause_pos as usize];
                            if r != u64::MAX {
                                self.ready.push(Reverse(((1, r, emission), lp, pos)));
                            } else {
                                // Cause fires at this same timestamp and is
                                // not ranked yet: park until it is.
                                self.waiting
                                    .entry((lp, cause_pos))
                                    .or_default()
                                    .push((pos, emission));
                            }
                        }
                    }
                    c += 1;
                }
                cursor[lp as usize] = c;
                if c < log.len() {
                    self.fronts.push(Reverse((log[c].at, lp)));
                }
            }

            // Rank the group: repeatedly take the record with the smallest
            // serial key; ranking a record releases its parked children with
            // their now-resolved `(rank, emission)` keys. Releases insert
            // keys larger than everything ranked so far, so the pop order is
            // the serial firing order.
            while let Some(Reverse((_, lp, pos))) = self.ready.pop() {
                let rank = self.next_rank;
                self.next_rank += 1;
                pos_rank[lp as usize][pos as usize] = rank;
                order.push((lp, pos));
                if let Some(children) = self.waiting.remove(&(lp, pos)) {
                    for (child_pos, emission) in children {
                        self.ready
                            .push(Reverse(((1, rank, emission), lp, child_pos)));
                    }
                }
            }
            debug_assert!(
                self.waiting.is_empty(),
                "unresolved causality within a time group"
            );
        }
        debug_assert_eq!(order.len(), total);
    }
}

/// A sense-reversing spin barrier for the window loop's phase changes.
///
/// Windows are short (often a handful of events per LP), so the
/// worker/coordinator handoff happens hundreds of thousands of times per
/// run; a futex-based barrier would dominate the profile. Spinning with
/// [`std::hint::spin_loop`] keeps the handoff in the tens of nanoseconds
/// when all threads are running, degrading to `yield_now` if a thread is
/// descheduled. When the barrier has more participants than the host has
/// cores, a waiter can *only* make progress by letting another thread
/// run, so the spin budget drops to zero and every wait yields
/// immediately — spinning there just burns the peer's timeslice.
pub struct SpinBarrier {
    n: usize,
    arrived: AtomicUsize,
    sense: AtomicBool,
    spin_budget: u32,
}

impl SpinBarrier {
    /// A barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        SpinBarrier {
            n,
            arrived: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            spin_budget: if n > cores { 0 } else { 1 << 14 },
        }
    }

    /// Block until all `n` participants have called `wait`. Each thread
    /// passes its own `local_sense`, initialised to `false`.
    pub fn wait(&self, local_sense: &mut bool) {
        let sense = !*local_sense;
        *local_sense = sense;
        if self.arrived.fetch_add(1, AtomicOrdering::AcqRel) + 1 == self.n {
            self.arrived.store(0, AtomicOrdering::Relaxed);
            self.sense.store(sense, AtomicOrdering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(AtomicOrdering::Acquire) != sense {
                if spins < self.spin_budget {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    #[test]
    fn cause_tiers_order_like_serial_seq() {
        let init = Cause::Init { slot: 7 };
        let ranked = Cause::Ranked {
            rank: 100,
            emission: 3,
        };
        let local = Cause::Local {
            pos: 0,
            emission: 0,
        };
        assert!(init < ranked && ranked < local);
        assert!(
            Cause::Ranked {
                rank: 100,
                emission: 3
            } < Cause::Ranked {
                rank: 100,
                emission: 4
            }
        );
        assert!(
            Cause::Local {
                pos: 1,
                emission: 9
            } < Cause::Local {
                pos: 2,
                emission: 0
            }
        );
        // Time dominates the tier.
        let early_local = EvKey {
            at: t(5),
            cause: local,
        };
        let late_init = EvKey {
            at: t(6),
            cause: init,
        };
        assert!(early_local < late_init);
    }

    #[test]
    fn lp_queue_pops_across_bands_in_key_order() {
        let mut q: LpQueue<&'static str> = LpQueue::new();
        q.push(
            EvKey {
                at: t(10),
                cause: Cause::Local {
                    pos: 0,
                    emission: 0,
                },
            },
            "local",
        );
        q.push(
            EvKey {
                at: t(10),
                cause: Cause::Ranked {
                    rank: 4,
                    emission: 1,
                },
            },
            "ranked",
        );
        q.push(
            EvKey {
                at: t(10),
                cause: Cause::Init { slot: 0 },
            },
            "init",
        );
        q.push(
            EvKey {
                at: t(5),
                cause: Cause::Local {
                    pos: 3,
                    emission: 2,
                },
            },
            "earliest",
        );
        assert_eq!(q.next_at(), Some(t(5)));
        let mut got = Vec::new();
        while let Some((_, ev)) = q.pop() {
            got.push(ev);
        }
        assert_eq!(got, ["earliest", "init", "ranked", "local"]);
    }

    #[test]
    fn pop_before_respects_the_window_end() {
        let mut q: LpQueue<u32> = LpQueue::new();
        for (ns, v) in [(10, 1u32), (20, 2), (30, 3)] {
            q.push(
                EvKey {
                    at: t(ns),
                    cause: Cause::Init { slot: v as u64 },
                },
                v,
            );
        }
        assert_eq!(q.pop_before(t(20)).map(|(_, v)| v), Some(1));
        assert_eq!(q.pop_before(t(20)), None);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn seal_window_rekeys_without_reordering() {
        let mut q: LpQueue<&'static str> = LpQueue::new();
        // Two future events: one already Ranked (rank 2), one Local from
        // cause at log pos 1. Suppose the barrier ranks pos 1 as rank 7.
        q.push(
            EvKey {
                at: t(100),
                cause: Cause::Local {
                    pos: 1,
                    emission: 0,
                },
            },
            "was-local",
        );
        q.push(
            EvKey {
                at: t(100),
                cause: Cause::Ranked {
                    rank: 2,
                    emission: 0,
                },
            },
            "old-ranked",
        );
        assert!(q.needs_seal());
        let pos_rank = [u64::MAX, 7u64];
        q.seal_window(&pos_rank);
        assert!(!q.needs_seal());
        let mut got = Vec::new();
        while let Some((key, ev)) = q.pop() {
            if ev == "was-local" {
                assert_eq!(
                    key.cause,
                    Cause::Ranked {
                        rank: 7,
                        emission: 0
                    }
                );
            }
            got.push(ev);
        }
        // Rank 2 still precedes rank 7 at the same time.
        assert_eq!(got, ["old-ranked", "was-local"]);
    }

    #[test]
    fn sequencer_single_lp_ranks_in_log_order() {
        let log = vec![
            FiredRec {
                at: t(0),
                cause: Cause::Init { slot: 0 },
            },
            FiredRec {
                at: t(0),
                cause: Cause::Local {
                    pos: 0,
                    emission: 0,
                },
            },
            FiredRec {
                at: t(5),
                cause: Cause::Local {
                    pos: 1,
                    emission: 0,
                },
            },
        ];
        let mut seq = Sequencer::new();
        let mut ranks = Vec::new();
        let mut order = Vec::new();
        seq.sequence(&[&log], &mut ranks, &mut order);
        assert_eq!(order, [(0, 0), (0, 1), (0, 2)]);
        assert_eq!(ranks[0], [0, 1, 2]);
        assert_eq!(seq.next_rank(), 3);
    }

    #[test]
    fn sequencer_interleaves_lps_by_serial_key() {
        // Two LPs, all events at t=0. LP0: an Init(slot 0) firing that
        // locally caused a chain (child emission 0, grandchild). LP1: an
        // Init(slot 1) firing with one child. Serial order: init0 (seq 0),
        // init1 (seq 1), then the children in cause-rank order: child of
        // rank 0 before child of rank 1, then the grandchild (cause rank 2).
        let lp0 = vec![
            FiredRec {
                at: t(0),
                cause: Cause::Init { slot: 0 },
            },
            FiredRec {
                at: t(0),
                cause: Cause::Local {
                    pos: 0,
                    emission: 0,
                },
            },
            FiredRec {
                at: t(0),
                cause: Cause::Local {
                    pos: 1,
                    emission: 0,
                },
            },
        ];
        let lp1 = vec![
            FiredRec {
                at: t(0),
                cause: Cause::Init { slot: 1 },
            },
            FiredRec {
                at: t(0),
                cause: Cause::Local {
                    pos: 0,
                    emission: 0,
                },
            },
        ];
        let mut seq = Sequencer::new();
        let mut ranks = Vec::new();
        let mut order = Vec::new();
        seq.sequence(&[&lp0, &lp1], &mut ranks, &mut order);
        assert_eq!(order, [(0, 0), (1, 0), (0, 1), (1, 1), (0, 2)]);
        assert_eq!(ranks[0], [0, 2, 4]);
        assert_eq!(ranks[1], [1, 3]);
    }

    #[test]
    fn sequencer_rank_counter_is_monotone_across_windows() {
        let mut seq = Sequencer::new();
        let mut ranks = Vec::new();
        let mut order = Vec::new();
        let w1 = vec![FiredRec {
            at: t(0),
            cause: Cause::Init { slot: 0 },
        }];
        seq.sequence(&[&w1], &mut ranks, &mut order);
        // Window 2: a delivery whose cause was ranked 0 in window 1.
        let w2 = vec![FiredRec {
            at: t(500),
            cause: Cause::Ranked {
                rank: 0,
                emission: 0,
            },
        }];
        seq.sequence(&[&w2], &mut ranks, &mut order);
        assert_eq!(ranks[0], [1]);
    }

    #[test]
    fn sequencer_handles_empty_and_single_record_logs() {
        let mut seq = Sequencer::new();
        let mut ranks = Vec::new();
        let mut order = Vec::new();
        let empty: Vec<FiredRec> = Vec::new();
        let one = vec![FiredRec {
            at: t(3),
            cause: Cause::Init { slot: 0 },
        }];
        seq.sequence(&[&empty, &one, &empty], &mut ranks, &mut order);
        assert_eq!(order, [(1, 0)]);
        assert_eq!(ranks[1], [0]);
        assert!(ranks[0].is_empty() && ranks[2].is_empty());
    }

    #[test]
    fn spin_barrier_synchronizes_rounds() {
        const THREADS: usize = 4;
        const ROUNDS: usize = 200;
        let barrier = SpinBarrier::new(THREADS);
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    let mut sense = false;
                    for round in 0..ROUNDS {
                        counter.fetch_add(1, AtomicOrdering::Relaxed);
                        barrier.wait(&mut sense);
                        // Between barriers every thread must observe the
                        // full round's increments.
                        let seen = counter.load(AtomicOrdering::Relaxed);
                        assert!(seen >= ((round + 1) * THREADS) as u64);
                        barrier.wait(&mut sense);
                    }
                });
            }
        });
        assert_eq!(
            counter.load(AtomicOrdering::Relaxed),
            (THREADS * ROUNDS) as u64
        );
    }
}
