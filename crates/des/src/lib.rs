//! Deterministic discrete-event simulation (DES) engine.
//!
//! This crate is the foundation of the Myrinet/GM NIC-barrier reproduction.
//! Everything above it — the wormhole fabric, the LANai NIC model, the GM
//! message-passing stack and the barrier algorithms themselves — is expressed
//! as state machines whose transitions are scheduled on a single virtual
//! clock provided by this engine.
//!
//! Design goals:
//!
//! * **Determinism.** Two runs with the same seed and the same configuration
//!   produce byte-identical event traces. Events scheduled for the same
//!   timestamp fire in FIFO order of scheduling (a monotone sequence number
//!   breaks ties), so no behaviour ever depends on hash iteration order or
//!   heap internals.
//! * **Genericity.** The engine is generic over the *world* type `W` and the
//!   *event* type `E`; the GM stack instantiates it with its cluster state
//!   and a typed event enum. The default event type [`Boxed`] is a boxed
//!   `FnOnce(&mut W, &mut Scheduler<W>)` closure, which keeps cold paths and
//!   tests free to capture whatever context they need; typed events live in
//!   an allocation-free slab (see [`scheduler`]).
//! * **Guard rails.** [`Simulation::run`] enforces an event budget so a bug
//!   that produces an event livelock fails a test instead of hanging it.
//!
//! ```
//! use gmsim_des::{Simulation, SimTime};
//!
//! let mut sim: Simulation<u64> = Simulation::new(0);
//! sim.scheduler_mut().schedule_fn(SimTime::from_us(5), |w: &mut u64, _s| *w += 1);
//! sim.run();
//! assert_eq!(*sim.world(), 1);
//! assert_eq!(sim.now(), SimTime::from_us(5));
//! ```

#![warn(missing_docs)]

pub mod check;
pub mod metrics;
pub mod pdes;
pub mod rng;
pub mod scheduler;
pub mod stats;
pub mod time;
pub mod trace;

pub use metrics::{Counter, MetricSet};
pub use rng::SimRng;
pub use scheduler::{Boxed, BoxedFn, Event, RunOutcome, Scheduler, Simulation};
pub use stats::{Histogram, Summary};
pub use time::SimTime;
pub use trace::{ComponentId, TracePayload, TraceRecord, Tracer, Unit};
