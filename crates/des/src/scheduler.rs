//! The event scheduler and simulation driver.
//!
//! A [`Scheduler`] is a priority queue of `(time, seq, event)` entries. The
//! `seq` counter makes ordering total and deterministic: events at equal
//! timestamps fire in the order they were scheduled. A [`Simulation`] couples
//! a scheduler with the simulated world and drives the loop.
//!
//! # Hot path
//!
//! The scheduler is generic over the event type `E`. With a typed event (an
//! enum such as the GM stack's `ClusterEvent`), entries live in a slab with
//! an internal freelist and the ordering layer holds plain `(time, seq,
//! slot)` index records — steady-state scheduling performs **zero heap
//! allocations** once the slab and queues have grown to the high-water
//! mark. The default event type [`Boxed`] wraps `Box<dyn FnOnce>` closures,
//! which keeps `schedule_fn` ergonomics for cold paths and tests (one
//! allocation per event, as before).
//!
//! # Ordering layer: timer wheel + far heap
//!
//! Almost every event a cluster simulation schedules lands within a few
//! microseconds of `now` (firmware cycles, wire hops, host overheads); only
//! retransmission timers and horizon sentinels sit further out. The
//! ordering layer exploits that: a **bucketed timer wheel** of
//! [`WHEEL_SLOTS`] buckets, each [`BUCKET_NS`] wide (a ~1 ms window sliding
//! with `now`), absorbs the near-future band with O(1) insertion, while a
//! binary heap holds the far-future remainder. Popping compares the wheel's
//! earliest entry with the heap's top and takes the global `(time, seq)`
//! minimum, so the fired order is **bit-identical** to the plain-heap
//! scheduler — ties still fire FIFO by sequence number, which the golden
//! 310-latency gate pins exactly. An occupancy bitmap (one bit per bucket)
//! makes the scan to the next non-empty bucket a word-wise skip, and heap
//! entries migrate into the wheel as `now` advances so the heap stays
//! small.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::marker::PhantomData;

/// A schedulable event acting on world `W`.
///
/// `fire` consumes the event by value — typed events are moved out of the
/// slab, never boxed. `from_boxed` absorbs a closure so that
/// [`Scheduler::schedule_fn`] works with any event type; typed events keep a
/// closure variant for cold-path use.
pub trait Event<W>: Sized {
    /// Consume the event, mutating the world and possibly scheduling more.
    fn fire(self, world: &mut W, sched: &mut Scheduler<W, Self>);

    /// Wrap a boxed closure as an event (cold path / tests).
    fn from_boxed(f: BoxedFn<W, Self>) -> Self;
}

/// A boxed event closure: what [`Scheduler::schedule_fn`] wraps and
/// [`Event::from_boxed`] absorbs.
pub type BoxedFn<W, E> = Box<dyn FnOnce(&mut W, &mut Scheduler<W, E>) + Send>;

/// The default event type: a boxed closure. One heap allocation per event —
/// fine for tests and setup, replaced by typed enums on hot paths.
pub struct Boxed<W>(BoxedFn<W, Boxed<W>>);

impl<W> Event<W> for Boxed<W> {
    fn fire(self, world: &mut W, sched: &mut Scheduler<W>) {
        (self.0)(world, sched)
    }
    fn from_boxed(f: Box<dyn FnOnce(&mut W, &mut Scheduler<W>) + Send>) -> Self {
        Boxed(f)
    }
}

/// Freelist sentinel: no next slot.
const NIL: u32 = u32::MAX;

/// Width of one timer-wheel bucket, as a power-of-two shift of nanoseconds.
/// 64 ns is comfortably below every modelled cost (the shortest firmware
/// step is ~30 ns at 33 MHz, most are hundreds), so a bucket rarely holds
/// more than a handful of events.
const BUCKET_SHIFT: u32 = 6;

/// Width of one timer-wheel bucket in nanoseconds.
pub const BUCKET_NS: u64 = 1 << BUCKET_SHIFT;

/// Number of wheel buckets (a power of two). With 64 ns buckets this spans
/// a ~1.05 ms sliding window — orders of magnitude beyond any per-event
/// delay in the barrier models, so in practice only retransmission timers
/// and horizon sentinels fall through to the far heap.
pub const WHEEL_SLOTS: usize = 1 << 14;

const SLOT_MASK: u64 = WHEEL_SLOTS as u64 - 1;
const BITMAP_WORDS: usize = WHEEL_SLOTS / 64;

/// What the far heap orders: time and tie-break sequence, plus the slab
/// slot holding the event payload.
struct HeapEntry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

/// Where [`Scheduler::next_event`] found the earliest pending entry.
enum Next {
    Wheel { idx: usize },
    Far,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks ties FIFO, giving full determinism.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// An occupied slab entry: the ordering key, the intrusive chain link for
/// wheel buckets, and the event payload. Keeping the chain link *inside*
/// the slab means wheel buckets are plain `u32` heads and steady-state
/// insertion/removal never allocates.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    /// Next slot in the same wheel bucket's chain ([`NIL`] = end of chain,
    /// or not wheel-resident).
    next: u32,
    event: E,
}

/// Slab storage for pending events: occupied slots hold the payload, vacant
/// slots chain the freelist.
enum Slot<E> {
    Vacant { next_free: u32 },
    Occupied(Entry<E>),
}

/// Priority queue of pending events plus the current virtual time.
///
/// Ordering is split into a near-future timer wheel and a far-future binary
/// heap (see the module docs); both are indexed by `(at, seq)` so the pop
/// order is identical to a single global priority queue.
pub struct Scheduler<W, E: Event<W> = Boxed<W>> {
    /// Near-future band: bucket `b` of an event at time `t` is
    /// `t >> BUCKET_SHIFT`; `wheel[b & SLOT_MASK]` is the head slab slot of
    /// an intrusive chain (or [`NIL`]) kept **sorted ascending by
    /// `(at, seq)`**, so the bucket minimum is always the head. Window
    /// invariant: every resident entry has
    /// `bucket(now) <= b < bucket(now) + WHEEL_SLOTS`, so absolute buckets
    /// and wheel slots are in bijection and no epoch tag is needed.
    wheel: Vec<u32>,
    /// Tail slot of each bucket chain ([`NIL`] when empty). Barrier rounds
    /// schedule bursts of same-timestamp events in ascending `seq` order;
    /// comparing against the tail first makes those appends O(1) instead of
    /// an O(k) insertion scan.
    wheel_tail: Vec<u32>,
    /// One bit per wheel slot: set iff the bucket is non-empty. Lets the
    /// min-scan skip 64 empty buckets per word.
    occupancy: Vec<u64>,
    /// Number of entries resident in the wheel.
    wheel_len: usize,
    /// Lower bound on the smallest absolute bucket of any wheel entry; only
    /// ever lowered by `schedule` and raised by `step`, so scans resume
    /// where the last one left off instead of rescanning from `now`.
    scan_bucket: u64,
    /// Far-future band: everything at or beyond the wheel window.
    far: BinaryHeap<HeapEntry>,
    slots: Vec<Slot<E>>,
    free_head: u32,
    now: SimTime,
    seq: u64,
    fired: u64,
    _world: PhantomData<fn(&mut W)>,
}

impl<W, E: Event<W>> Default for Scheduler<W, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W, E: Event<W>> Scheduler<W, E> {
    /// An empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            wheel: vec![NIL; WHEEL_SLOTS],
            wheel_tail: vec![NIL; WHEEL_SLOTS],
            occupancy: vec![0; BITMAP_WORDS],
            wheel_len: 0,
            scan_bucket: 0,
            far: BinaryHeap::new(),
            slots: Vec::new(),
            free_head: NIL,
            now: SimTime::ZERO,
            seq: 0,
            fired: 0,
            _world: PhantomData,
        }
    }

    /// Absolute bucket index of a timestamp.
    #[inline]
    fn bucket_of(at: SimTime) -> u64 {
        at.as_ns() >> BUCKET_SHIFT
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far.
    #[inline]
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.wheel_len + self.far.len()
    }

    /// Timestamp of the earliest pending event, if any.
    #[inline]
    pub fn peek_next_at(&self) -> Option<SimTime> {
        self.next_event().map(|(at, _, _)| at)
    }

    /// The occupied entry at `slot`; chains only ever link occupied slots.
    #[inline]
    fn entry(&self, slot: u32) -> &Entry<E> {
        match &self.slots[slot as usize] {
            Slot::Occupied(e) => e,
            Slot::Vacant { .. } => unreachable!("chained slot is vacant"),
        }
    }

    /// Earliest wheel entry at or after absolute bucket `start`, as
    /// `(abs_bucket, at, seq)` — the head of the first occupied bucket,
    /// since chains are sorted. Correctness of scanning in slot order:
    /// `start >= bucket(now)` and every resident bucket lies in
    /// `[start, start + WHEEL_SLOTS)` (window invariant plus the
    /// `scan_bucket` lower bound), so slot order from `start` is absolute
    /// bucket order.
    fn wheel_min_from(&self, start: u64) -> Option<(u64, SimTime, u64)> {
        if self.wheel_len == 0 {
            return None;
        }
        let idx0 = (start & SLOT_MASK) as usize;
        let mut word_i = idx0 / 64;
        // Absolute bucket corresponding to bit 0 of the current word.
        let mut word_base = start - (idx0 % 64) as u64;
        let mut masked = self.occupancy[word_i] & (!0u64 << (idx0 % 64));
        for _ in 0..=BITMAP_WORDS {
            if masked != 0 {
                let bucket = word_base + masked.trailing_zeros() as u64;
                let idx = (bucket & SLOT_MASK) as usize;
                let head = self.wheel[idx];
                debug_assert!(head != NIL, "occupancy bit set on empty bucket");
                let e = self.entry(head);
                return Some((bucket, e.at, e.seq));
            }
            word_base += 64;
            word_i = (word_i + 1) % BITMAP_WORDS;
            masked = self.occupancy[word_i];
        }
        unreachable!("wheel_len > 0 but no occupied bucket within the window")
    }

    /// Global earliest pending entry by `(at, seq)` across wheel and far
    /// heap — the same total order a single priority queue would give.
    fn next_event(&self) -> Option<(SimTime, u64, Next)> {
        let start = self.scan_bucket.max(Self::bucket_of(self.now));
        let wheel = self.wheel_min_from(start).map(|(bucket, at, seq)| {
            (
                at,
                seq,
                Next::Wheel {
                    idx: (bucket & SLOT_MASK) as usize,
                },
            )
        });
        let far = self.far.peek().map(|e| (e.at, e.seq, Next::Far));
        match (wheel, far) {
            (None, None) => None,
            (Some(w), None) => Some(w),
            (None, Some(f)) => Some(f),
            (Some(w), Some(f)) => Some(if (w.0, w.1) <= (f.0, f.1) { w } else { f }),
        }
    }

    /// Rewrite the chain link of an occupied slot.
    #[inline]
    fn set_next(&mut self, slot: u32, next: u32) {
        match &mut self.slots[slot as usize] {
            Slot::Occupied(e) => e.next = next,
            Slot::Vacant { .. } => unreachable!("chained slot is vacant"),
        }
    }

    /// Link an occupied slab slot into its wheel bucket, keeping the chain
    /// sorted ascending by `(at, seq)` and maintaining the occupancy
    /// bitmap, length, and `scan_bucket` bound. The tail comparison makes
    /// the dominant pattern — a burst of same-timestamp events arriving in
    /// ascending `seq` order — an O(1) append; only genuinely out-of-order
    /// keys pay an insertion scan.
    fn push_wheel(&mut self, slot: u32) {
        let (at, seq) = {
            let e = self.entry(slot);
            (e.at, e.seq)
        };
        let bucket = Self::bucket_of(at);
        let idx = (bucket & SLOT_MASK) as usize;
        let head = self.wheel[idx];
        if head == NIL {
            self.set_next(slot, NIL);
            self.wheel[idx] = slot;
            self.wheel_tail[idx] = slot;
            self.occupancy[idx / 64] |= 1 << (idx % 64);
        } else {
            let tail = self.wheel_tail[idx];
            let te = self.entry(tail);
            if (at, seq) > (te.at, te.seq) {
                self.set_next(slot, NIL);
                self.set_next(tail, slot);
                self.wheel_tail[idx] = slot;
            } else {
                let he = self.entry(head);
                if (at, seq) < (he.at, he.seq) {
                    self.set_next(slot, head);
                    self.wheel[idx] = slot;
                } else {
                    // Insert mid-chain: find the last node below the new
                    // key. Terminates before the tail, whose key is above.
                    let mut prev = head;
                    loop {
                        let next = self.entry(prev).next;
                        debug_assert!(next != NIL, "insertion scan ran off the chain");
                        let ne = self.entry(next);
                        if (ne.at, ne.seq) > (at, seq) {
                            self.set_next(slot, next);
                            self.set_next(prev, slot);
                            break;
                        }
                        prev = next;
                    }
                }
            }
        }
        self.wheel_len += 1;
        if bucket < self.scan_bucket {
            self.scan_bucket = bucket;
        }
    }

    /// Pop the head (minimum) of bucket `idx` and return its slab slot.
    #[inline]
    fn pop_wheel_head(&mut self, idx: usize) -> u32 {
        let head = self.wheel[idx];
        debug_assert!(head != NIL, "popping an empty bucket");
        let next = self.entry(head).next;
        self.wheel[idx] = next;
        if next == NIL {
            self.wheel_tail[idx] = NIL;
            self.occupancy[idx / 64] &= !(1u64 << (idx % 64));
        }
        self.wheel_len -= 1;
        head
    }

    /// Pull far-heap entries whose bucket has slid into the wheel window.
    /// Purely an optimisation: `next_event` is correct wherever an entry
    /// lives, this just keeps the heap small and pops O(1).
    fn migrate_far(&mut self) {
        let now_bucket = Self::bucket_of(self.now);
        while let Some(top) = self.far.peek() {
            if Self::bucket_of(top.at) - now_bucket < WHEEL_SLOTS as u64 {
                let e = self.far.pop().expect("peeked entry vanished");
                self.push_wheel(e.slot);
            } else {
                break;
            }
        }
    }

    /// Slab capacity (high-water mark of simultaneously pending events) —
    /// instrumentation for allocation tests.
    pub fn slab_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling backwards in time is always
    /// a model bug and must fail loudly.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let occupied = Slot::Occupied(Entry {
            at,
            seq,
            next: NIL,
            event,
        });
        let slot = if self.free_head == NIL {
            debug_assert!(self.slots.len() < NIL as usize, "slab full");
            self.slots.push(occupied);
            (self.slots.len() - 1) as u32
        } else {
            let slot = self.free_head;
            match std::mem::replace(&mut self.slots[slot as usize], occupied) {
                Slot::Vacant { next_free } => self.free_head = next_free,
                Slot::Occupied(_) => unreachable!("freelist head was occupied"),
            }
            slot
        };
        // `at >= now` (asserted above), so the bucket difference cannot
        // underflow; within the window it goes to the wheel, else far.
        if Self::bucket_of(at) - Self::bucket_of(self.now) < WHEEL_SLOTS as u64 {
            self.push_wheel(slot);
        } else {
            self.far.push(HeapEntry { at, seq, slot });
        }
    }

    /// Schedule a closure at absolute time `at`.
    #[inline]
    pub fn schedule_fn<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W, E>) + Send + 'static,
    {
        self.schedule(at, E::from_boxed(Box::new(f)));
    }

    /// Schedule a closure `delay` after the current time.
    #[inline]
    pub fn schedule_in<F>(&mut self, delay: SimTime, f: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W, E>) + Send + 'static,
    {
        let at = self.now + delay;
        self.schedule_fn(at, f);
    }

    /// Schedule a typed event `delay` after the current time.
    #[inline]
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Pop and fire the earliest event against `world`. Returns `false` when
    /// the queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        let (at, slot) = match self.next_event() {
            None => return false,
            Some((at, seq, src)) => {
                let slot = match src {
                    Next::Wheel { idx } => {
                        let slot = self.pop_wheel_head(idx);
                        debug_assert_eq!(self.entry(slot).seq, seq, "head is not the peeked min");
                        slot
                    }
                    Next::Far => self.far.pop().expect("peeked entry vanished").slot,
                };
                (at, slot)
            }
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        // Everything strictly before this event's bucket is empty now
        // (it was the global minimum), so the scan hint may jump forward.
        let bucket = Self::bucket_of(at);
        if bucket > self.scan_bucket {
            self.scan_bucket = bucket;
        }
        self.fired += 1;
        self.migrate_far();
        let freed = Slot::Vacant {
            next_free: self.free_head,
        };
        let event = match std::mem::replace(&mut self.slots[slot as usize], freed) {
            Slot::Occupied(e) => e.event,
            Slot::Vacant { .. } => unreachable!("queue entry pointed at a vacant slot"),
        };
        self.free_head = slot;
        event.fire(world, self);
        true
    }
}

/// Why [`Simulation::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained — the normal way a simulation ends.
    Quiescent,
    /// The time horizon passed; events beyond it remain queued.
    HorizonReached,
    /// The event budget was exhausted — almost certainly a livelock bug.
    BudgetExhausted,
}

/// A world plus a scheduler, with guarded run loops.
pub struct Simulation<W, E: Event<W> = Boxed<W>> {
    world: W,
    sched: Scheduler<W, E>,
    /// Upper bound on the total number of fired events (livelock guard).
    budget: u64,
}

impl<W, E: Event<W>> Simulation<W, E> {
    /// Default budget: generous for real experiments, small enough that a
    /// livelocked unit test fails in well under a second.
    pub const DEFAULT_BUDGET: u64 = 500_000_000;

    /// Create a simulation around `world`.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            sched: Scheduler::new(),
            budget: Self::DEFAULT_BUDGET,
        }
    }

    /// Replace the event budget (livelock guard).
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Immutable world access.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable world access (setup/teardown only — events mutate via firing).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// The scheduler, for seeding initial events.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<W, E> {
        &mut self.sched
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Total events fired.
    pub fn events_fired(&self) -> u64 {
        self.sched.fired()
    }

    /// Fire one event; `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        self.sched.step(&mut self.world)
    }

    /// Run until the queue drains or the budget is exhausted.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Run until the queue drains, the next event lies beyond `horizon`, or
    /// the budget is exhausted. The clock never advances past `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            if self.sched.fired() >= self.budget {
                return RunOutcome::BudgetExhausted;
            }
            match self.sched.peek_next_at() {
                None => return RunOutcome::Quiescent,
                Some(at) if at > horizon => return RunOutcome::HorizonReached,
                Some(_) => {
                    self.sched.step(&mut self.world);
                }
            }
        }
    }

    /// Run while `pred(world)` holds (checked before each event).
    pub fn run_while<P: FnMut(&W) -> bool>(&mut self, mut pred: P) -> RunOutcome {
        loop {
            if !pred(&self.world) {
                return RunOutcome::HorizonReached;
            }
            if self.sched.fired() >= self.budget {
                return RunOutcome::BudgetExhausted;
            }
            if !self.sched.step(&mut self.world) {
                return RunOutcome::Quiescent;
            }
        }
    }

    /// Consume the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim: Simulation<Vec<u32>> = Simulation::new(Vec::new());
        let s = sim.scheduler_mut();
        s.schedule_fn(SimTime::from_us(30), |w: &mut Vec<u32>, _| w.push(3));
        s.schedule_fn(SimTime::from_us(10), |w: &mut Vec<u32>, _| w.push(1));
        s.schedule_fn(SimTime::from_us(20), |w: &mut Vec<u32>, _| w.push(2));
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        assert_eq!(sim.world(), &[1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_us(30));
    }

    #[test]
    fn ties_fire_fifo() {
        let mut sim: Simulation<Vec<u32>> = Simulation::new(Vec::new());
        let t = SimTime::from_us(5);
        for i in 0..100 {
            sim.scheduler_mut()
                .schedule_fn(t, move |w: &mut Vec<u32>, _| w.push(i));
        }
        sim.run();
        assert_eq!(*sim.world(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Simulation::new(0u64);
        fn tick(w: &mut u64, s: &mut Scheduler<u64>) {
            *w += 1;
            if *w < 10 {
                s.schedule_in(SimTime::from_us(1), tick);
            }
        }
        sim.scheduler_mut().schedule_fn(SimTime::ZERO, tick);
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        assert_eq!(*sim.world(), 10);
        assert_eq!(sim.now(), SimTime::from_us(9));
    }

    #[test]
    fn horizon_stops_clock() {
        let mut sim: Simulation<u64> = Simulation::new(0);
        sim.scheduler_mut()
            .schedule_fn(SimTime::from_us(10), |w: &mut u64, _| *w = 1);
        sim.scheduler_mut()
            .schedule_fn(SimTime::from_us(100), |w: &mut u64, _| *w = 2);
        assert_eq!(
            sim.run_until(SimTime::from_us(50)),
            RunOutcome::HorizonReached
        );
        assert_eq!(*sim.world(), 1);
        assert_eq!(sim.now(), SimTime::from_us(10));
        // The remaining event still fires on a later run.
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        assert_eq!(*sim.world(), 2);
    }

    #[test]
    fn budget_catches_livelock() {
        let mut sim = Simulation::new(0u64).with_budget(1_000);
        fn forever(_: &mut u64, s: &mut Scheduler<u64>) {
            s.schedule_in(SimTime::from_ns(1), forever);
        }
        sim.scheduler_mut().schedule_fn(SimTime::ZERO, forever);
        assert_eq!(sim.run(), RunOutcome::BudgetExhausted);
    }

    #[test]
    fn run_while_predicate() {
        let mut sim: Simulation<u64> = Simulation::new(0);
        for i in 0..20u64 {
            sim.scheduler_mut()
                .schedule_fn(SimTime::from_us(i), |w: &mut u64, _| *w += 1);
        }
        sim.run_while(|w| *w < 5);
        assert_eq!(*sim.world(), 5);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Simulation<()> = Simulation::new(());
        sim.scheduler_mut()
            .schedule_fn(SimTime::from_us(10), |_, s: &mut Scheduler<()>| {
                s.schedule_fn(SimTime::from_us(5), |_, _| {});
            });
        sim.run();
    }

    #[test]
    fn step_returns_false_when_empty() {
        let mut sim: Simulation<()> = Simulation::new(());
        assert!(!sim.step());
        assert_eq!(sim.events_fired(), 0);
    }

    /// A minimal typed event for exercising the slab path directly.
    enum Typed {
        Push(u32),
        Chain { left: u32 },
    }

    impl Event<Vec<u32>> for Typed {
        fn fire(self, world: &mut Vec<u32>, sched: &mut Scheduler<Vec<u32>, Typed>) {
            match self {
                Typed::Push(v) => world.push(v),
                Typed::Chain { left } => {
                    world.push(left);
                    if left > 0 {
                        sched.schedule_after(SimTime::from_ns(5), Typed::Chain { left: left - 1 });
                    }
                }
            }
        }
        fn from_boxed(
            f: Box<dyn FnOnce(&mut Vec<u32>, &mut Scheduler<Vec<u32>, Typed>) + Send>,
        ) -> Self {
            // Tests only need a marker; real typed events keep a closure
            // variant. Run it immediately-on-fire via Chain-free encoding is
            // impossible here, so panic loudly if exercised.
            let _ = f;
            unreachable!("typed test event does not absorb closures")
        }
    }

    #[test]
    fn typed_events_fire_in_order_and_reuse_slots() {
        let mut sim: Simulation<Vec<u32>, Typed> = Simulation::new(Vec::new());
        let s = sim.scheduler_mut();
        s.schedule(SimTime::from_us(2), Typed::Push(20));
        s.schedule(SimTime::from_us(1), Typed::Push(10));
        s.schedule(SimTime::from_us(3), Typed::Chain { left: 3 });
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        assert_eq!(*sim.world(), [10, 20, 3, 2, 1, 0]);
        // The chain reuses freed slots: capacity stays at the high-water
        // mark of simultaneously pending events, not the event count.
        assert_eq!(sim.scheduler_mut().slab_capacity(), 3);
        assert_eq!(sim.events_fired(), 6);
    }

    #[test]
    fn far_future_events_fire_in_order() {
        // Events beyond the wheel window land in the far heap; they must
        // still interleave correctly with near-future events.
        let window = SimTime::from_ns(BUCKET_NS * WHEEL_SLOTS as u64);
        let mut sim: Simulation<Vec<u32>> = Simulation::new(Vec::new());
        let s = sim.scheduler_mut();
        s.schedule_fn(window * 3, |w: &mut Vec<u32>, _| w.push(4));
        s.schedule_fn(SimTime::from_ns(50), |w: &mut Vec<u32>, _| w.push(1));
        s.schedule_fn(window * 2, |w: &mut Vec<u32>, _| w.push(3));
        s.schedule_fn(window - SimTime::from_ns(1), |w: &mut Vec<u32>, _| {
            w.push(2)
        });
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        assert_eq!(*sim.world(), [1, 2, 3, 4]);
    }

    #[test]
    fn ties_fire_fifo_across_wheel_and_far() {
        // First event scheduled while T is beyond the window (far heap),
        // second scheduled for the same T after the clock has advanced
        // enough that T is wheel-resident. FIFO by seq must still hold.
        let window = SimTime::from_ns(BUCKET_NS * WHEEL_SLOTS as u64);
        let t = window * 2;
        let mut sim: Simulation<Vec<u32>> = Simulation::new(Vec::new());
        let s = sim.scheduler_mut();
        s.schedule_fn(t, |w: &mut Vec<u32>, _| w.push(1));
        let t2 = t;
        s.schedule_fn(
            t + t / 2, // make sure draining continues past t
            |w: &mut Vec<u32>, _| w.push(3),
        );
        s.schedule_fn(
            window + window / 2,
            move |_, s: &mut Scheduler<Vec<u32>>| {
                // Now `t` is within the window: this lands in the wheel while
                // its tie partner sits in the far heap.
                s.schedule_fn(t2, |w: &mut Vec<u32>, _| w.push(2));
            },
        );
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        assert_eq!(*sim.world(), [1, 2, 3]);
    }

    #[test]
    fn long_horizon_chain_wraps_the_wheel_many_times() {
        // A self-rescheduling chain whose period forces thousands of bucket
        // advances and several full wheel wraps.
        let mut sim = Simulation::new(0u64);
        fn tick(w: &mut u64, s: &mut Scheduler<u64>) {
            *w += 1;
            if *w < 5_000 {
                // ~37 buckets per step, ~11 wraps over the whole run.
                s.schedule_in(SimTime::from_ns(2_401), tick);
            }
        }
        sim.scheduler_mut().schedule_fn(SimTime::ZERO, tick);
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        assert_eq!(*sim.world(), 5_000);
        assert_eq!(sim.now(), SimTime::from_ns(2_401 * 4_999));
    }

    #[test]
    fn pending_counts_both_bands() {
        let window = SimTime::from_ns(BUCKET_NS * WHEEL_SLOTS as u64);
        let mut sim: Simulation<()> = Simulation::new(());
        let s = sim.scheduler_mut();
        s.schedule_fn(SimTime::from_ns(10), |_, _| {});
        s.schedule_fn(window * 5, |_, _| {});
        assert_eq!(s.pending(), 2);
        assert_eq!(s.peek_next_at(), Some(SimTime::from_ns(10)));
        sim.run();
        assert_eq!(sim.scheduler_mut().pending(), 0);
    }

    #[test]
    fn typed_ties_fire_fifo_through_slab_reuse() {
        let mut sim: Simulation<Vec<u32>, Typed> = Simulation::new(Vec::new());
        let t = SimTime::from_us(5);
        for i in 0..50 {
            sim.scheduler_mut().schedule(t, Typed::Push(i));
        }
        sim.run();
        assert_eq!(*sim.world(), (0..50).collect::<Vec<_>>());
    }
}
