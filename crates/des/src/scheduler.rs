//! The event scheduler and simulation driver.
//!
//! A [`Scheduler`] is a priority queue of `(time, seq, event)` entries. The
//! `seq` counter makes ordering total and deterministic: events at equal
//! timestamps fire in the order they were scheduled. A [`Simulation`] couples
//! a scheduler with the simulated world and drives the loop.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A schedulable event acting on world `W`.
///
/// Implemented for all `FnOnce(&mut W, &mut Scheduler<W>)` closures, which is
/// how the upper layers almost always use it.
pub trait Event<W> {
    /// Consume the event, mutating the world and possibly scheduling more.
    fn fire(self: Box<Self>, world: &mut W, sched: &mut Scheduler<W>);
}

impl<W, F> Event<W> for F
where
    F: FnOnce(&mut W, &mut Scheduler<W>),
{
    fn fire(self: Box<Self>, world: &mut W, sched: &mut Scheduler<W>) {
        (*self)(world, sched)
    }
}

struct Entry<W> {
    at: SimTime,
    seq: u64,
    event: Box<dyn Event<W>>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks ties FIFO, giving full determinism.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Priority queue of pending events plus the current virtual time.
pub struct Scheduler<W> {
    heap: BinaryHeap<Entry<W>>,
    now: SimTime,
    seq: u64,
    fired: u64,
}

impl<W> Default for Scheduler<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Scheduler<W> {
    /// An empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            fired: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far.
    #[inline]
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling backwards in time is always
    /// a model bug and must fail loudly.
    pub fn schedule(&mut self, at: SimTime, event: Box<dyn Event<W>>) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedule a closure at absolute time `at`.
    #[inline]
    pub fn schedule_fn<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        self.schedule(at, Box::new(f));
    }

    /// Schedule a closure `delay` after the current time.
    #[inline]
    pub fn schedule_in<F>(&mut self, delay: SimTime, f: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        let at = self.now + delay;
        self.schedule_fn(at, f);
    }

    /// Pop and fire the earliest event against `world`. Returns `false` when
    /// the queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        match self.heap.pop() {
            Some(Entry { at, event, .. }) => {
                debug_assert!(at >= self.now, "time went backwards");
                self.now = at;
                self.fired += 1;
                event.fire(world, self);
                true
            }
            None => false,
        }
    }
}

/// Why [`Simulation::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained — the normal way a simulation ends.
    Quiescent,
    /// The time horizon passed; events beyond it remain queued.
    HorizonReached,
    /// The event budget was exhausted — almost certainly a livelock bug.
    BudgetExhausted,
}

/// A world plus a scheduler, with guarded run loops.
pub struct Simulation<W> {
    world: W,
    sched: Scheduler<W>,
    /// Upper bound on the total number of fired events (livelock guard).
    budget: u64,
}

impl<W> Simulation<W> {
    /// Default budget: generous for real experiments, small enough that a
    /// livelocked unit test fails in well under a second.
    pub const DEFAULT_BUDGET: u64 = 500_000_000;

    /// Create a simulation around `world`.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            sched: Scheduler::new(),
            budget: Self::DEFAULT_BUDGET,
        }
    }

    /// Replace the event budget (livelock guard).
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Immutable world access.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable world access (setup/teardown only — events mutate via firing).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// The scheduler, for seeding initial events.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<W> {
        &mut self.sched
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Total events fired.
    pub fn events_fired(&self) -> u64 {
        self.sched.fired()
    }

    /// Fire one event; `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        self.sched.step(&mut self.world)
    }

    /// Run until the queue drains or the budget is exhausted.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Run until the queue drains, the next event lies beyond `horizon`, or
    /// the budget is exhausted. The clock never advances past `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            if self.sched.fired() >= self.budget {
                return RunOutcome::BudgetExhausted;
            }
            match self.sched.heap.peek() {
                None => return RunOutcome::Quiescent,
                Some(e) if e.at > horizon => return RunOutcome::HorizonReached,
                Some(_) => {
                    self.sched.step(&mut self.world);
                }
            }
        }
    }

    /// Run while `pred(world)` holds (checked before each event).
    pub fn run_while<P: FnMut(&W) -> bool>(&mut self, mut pred: P) -> RunOutcome {
        loop {
            if !pred(&self.world) {
                return RunOutcome::HorizonReached;
            }
            if self.sched.fired() >= self.budget {
                return RunOutcome::BudgetExhausted;
            }
            if !self.sched.step(&mut self.world) {
                return RunOutcome::Quiescent;
            }
        }
    }

    /// Consume the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        let s = sim.scheduler_mut();
        s.schedule_fn(SimTime::from_us(30), |w: &mut Vec<u32>, _| w.push(3));
        s.schedule_fn(SimTime::from_us(10), |w: &mut Vec<u32>, _| w.push(1));
        s.schedule_fn(SimTime::from_us(20), |w: &mut Vec<u32>, _| w.push(2));
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        assert_eq!(sim.world(), &[1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_us(30));
    }

    #[test]
    fn ties_fire_fifo() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        let t = SimTime::from_us(5);
        for i in 0..100 {
            sim.scheduler_mut()
                .schedule_fn(t, move |w: &mut Vec<u32>, _| w.push(i));
        }
        sim.run();
        assert_eq!(*sim.world(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Simulation::new(0u64);
        fn tick(w: &mut u64, s: &mut Scheduler<u64>) {
            *w += 1;
            if *w < 10 {
                s.schedule_in(SimTime::from_us(1), tick);
            }
        }
        sim.scheduler_mut().schedule_fn(SimTime::ZERO, tick);
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        assert_eq!(*sim.world(), 10);
        assert_eq!(sim.now(), SimTime::from_us(9));
    }

    #[test]
    fn horizon_stops_clock() {
        let mut sim = Simulation::new(0u64);
        sim.scheduler_mut()
            .schedule_fn(SimTime::from_us(10), |w: &mut u64, _| *w = 1);
        sim.scheduler_mut()
            .schedule_fn(SimTime::from_us(100), |w: &mut u64, _| *w = 2);
        assert_eq!(
            sim.run_until(SimTime::from_us(50)),
            RunOutcome::HorizonReached
        );
        assert_eq!(*sim.world(), 1);
        assert_eq!(sim.now(), SimTime::from_us(10));
        // The remaining event still fires on a later run.
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        assert_eq!(*sim.world(), 2);
    }

    #[test]
    fn budget_catches_livelock() {
        let mut sim = Simulation::new(0u64).with_budget(1_000);
        fn forever(_: &mut u64, s: &mut Scheduler<u64>) {
            s.schedule_in(SimTime::from_ns(1), forever);
        }
        sim.scheduler_mut().schedule_fn(SimTime::ZERO, forever);
        assert_eq!(sim.run(), RunOutcome::BudgetExhausted);
    }

    #[test]
    fn run_while_predicate() {
        let mut sim = Simulation::new(0u64);
        for i in 0..20u64 {
            sim.scheduler_mut()
                .schedule_fn(SimTime::from_us(i), |w: &mut u64, _| *w += 1);
        }
        sim.run_while(|w| *w < 5);
        assert_eq!(*sim.world(), 5);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new(());
        sim.scheduler_mut()
            .schedule_fn(SimTime::from_us(10), |_, s: &mut Scheduler<()>| {
                s.schedule_fn(SimTime::from_us(5), |_, _| {});
            });
        sim.run();
    }

    #[test]
    fn step_returns_false_when_empty() {
        let mut sim = Simulation::new(());
        assert!(!sim.step());
        assert_eq!(sim.events_fired(), 0);
    }
}
