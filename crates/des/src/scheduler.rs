//! The event scheduler and simulation driver.
//!
//! A [`Scheduler`] is a priority queue of `(time, seq, event)` entries. The
//! `seq` counter makes ordering total and deterministic: events at equal
//! timestamps fire in the order they were scheduled. A [`Simulation`] couples
//! a scheduler with the simulated world and drives the loop.
//!
//! # Hot path
//!
//! The scheduler is generic over the event type `E`. With a typed event (an
//! enum such as the GM stack's `ClusterEvent`), entries live in a slab with
//! an internal freelist and the binary heap orders plain `(time, seq, slot)`
//! index records — steady-state scheduling performs **zero heap
//! allocations** once the slab and heap have grown to the high-water mark.
//! The default event type [`Boxed`] wraps `Box<dyn FnOnce>` closures, which
//! keeps `schedule_fn` ergonomics for cold paths and tests (one allocation
//! per event, as before).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::marker::PhantomData;

/// A schedulable event acting on world `W`.
///
/// `fire` consumes the event by value — typed events are moved out of the
/// slab, never boxed. `from_boxed` absorbs a closure so that
/// [`Scheduler::schedule_fn`] works with any event type; typed events keep a
/// closure variant for cold-path use.
pub trait Event<W>: Sized {
    /// Consume the event, mutating the world and possibly scheduling more.
    fn fire(self, world: &mut W, sched: &mut Scheduler<W, Self>);

    /// Wrap a boxed closure as an event (cold path / tests).
    fn from_boxed(f: BoxedFn<W, Self>) -> Self;
}

/// A boxed event closure: what [`Scheduler::schedule_fn`] wraps and
/// [`Event::from_boxed`] absorbs.
pub type BoxedFn<W, E> = Box<dyn FnOnce(&mut W, &mut Scheduler<W, E>)>;

/// The default event type: a boxed closure. One heap allocation per event —
/// fine for tests and setup, replaced by typed enums on hot paths.
pub struct Boxed<W>(BoxedFn<W, Boxed<W>>);

impl<W> Event<W> for Boxed<W> {
    fn fire(self, world: &mut W, sched: &mut Scheduler<W>) {
        (self.0)(world, sched)
    }
    fn from_boxed(f: Box<dyn FnOnce(&mut W, &mut Scheduler<W>)>) -> Self {
        Boxed(f)
    }
}

/// Freelist sentinel: no next slot.
const NIL: u32 = u32::MAX;

/// What the heap orders: time and tie-break sequence, plus the slab slot
/// holding the event payload.
struct HeapEntry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks ties FIFO, giving full determinism.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Slab storage for pending events: occupied slots hold the payload, vacant
/// slots chain the freelist.
enum Slot<E> {
    Vacant { next_free: u32 },
    Occupied(E),
}

/// Priority queue of pending events plus the current virtual time.
pub struct Scheduler<W, E: Event<W> = Boxed<W>> {
    heap: BinaryHeap<HeapEntry>,
    slots: Vec<Slot<E>>,
    free_head: u32,
    now: SimTime,
    seq: u64,
    fired: u64,
    _world: PhantomData<fn(&mut W)>,
}

impl<W, E: Event<W>> Default for Scheduler<W, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W, E: Event<W>> Scheduler<W, E> {
    /// An empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free_head: NIL,
            now: SimTime::ZERO,
            seq: 0,
            fired: 0,
            _world: PhantomData,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far.
    #[inline]
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Timestamp of the earliest pending event, if any.
    #[inline]
    pub fn peek_next_at(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Slab capacity (high-water mark of simultaneously pending events) —
    /// instrumentation for allocation tests.
    pub fn slab_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling backwards in time is always
    /// a model bug and must fail loudly.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let slot = if self.free_head == NIL {
            debug_assert!(self.slots.len() < NIL as usize, "slab full");
            self.slots.push(Slot::Occupied(event));
            (self.slots.len() - 1) as u32
        } else {
            let slot = self.free_head;
            match std::mem::replace(&mut self.slots[slot as usize], Slot::Occupied(event)) {
                Slot::Vacant { next_free } => self.free_head = next_free,
                Slot::Occupied(_) => unreachable!("freelist head was occupied"),
            }
            slot
        };
        self.heap.push(HeapEntry { at, seq, slot });
    }

    /// Schedule a closure at absolute time `at`.
    #[inline]
    pub fn schedule_fn<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W, E>) + 'static,
    {
        self.schedule(at, E::from_boxed(Box::new(f)));
    }

    /// Schedule a closure `delay` after the current time.
    #[inline]
    pub fn schedule_in<F>(&mut self, delay: SimTime, f: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W, E>) + 'static,
    {
        let at = self.now + delay;
        self.schedule_fn(at, f);
    }

    /// Schedule a typed event `delay` after the current time.
    #[inline]
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Pop and fire the earliest event against `world`. Returns `false` when
    /// the queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        match self.heap.pop() {
            Some(HeapEntry { at, slot, .. }) => {
                debug_assert!(at >= self.now, "time went backwards");
                self.now = at;
                self.fired += 1;
                let freed = Slot::Vacant {
                    next_free: self.free_head,
                };
                let event = match std::mem::replace(&mut self.slots[slot as usize], freed) {
                    Slot::Occupied(e) => e,
                    Slot::Vacant { .. } => unreachable!("heap entry pointed at a vacant slot"),
                };
                self.free_head = slot;
                event.fire(world, self);
                true
            }
            None => false,
        }
    }
}

/// Why [`Simulation::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained — the normal way a simulation ends.
    Quiescent,
    /// The time horizon passed; events beyond it remain queued.
    HorizonReached,
    /// The event budget was exhausted — almost certainly a livelock bug.
    BudgetExhausted,
}

/// A world plus a scheduler, with guarded run loops.
pub struct Simulation<W, E: Event<W> = Boxed<W>> {
    world: W,
    sched: Scheduler<W, E>,
    /// Upper bound on the total number of fired events (livelock guard).
    budget: u64,
}

impl<W, E: Event<W>> Simulation<W, E> {
    /// Default budget: generous for real experiments, small enough that a
    /// livelocked unit test fails in well under a second.
    pub const DEFAULT_BUDGET: u64 = 500_000_000;

    /// Create a simulation around `world`.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            sched: Scheduler::new(),
            budget: Self::DEFAULT_BUDGET,
        }
    }

    /// Replace the event budget (livelock guard).
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Immutable world access.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable world access (setup/teardown only — events mutate via firing).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// The scheduler, for seeding initial events.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<W, E> {
        &mut self.sched
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Total events fired.
    pub fn events_fired(&self) -> u64 {
        self.sched.fired()
    }

    /// Fire one event; `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        self.sched.step(&mut self.world)
    }

    /// Run until the queue drains or the budget is exhausted.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Run until the queue drains, the next event lies beyond `horizon`, or
    /// the budget is exhausted. The clock never advances past `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            if self.sched.fired() >= self.budget {
                return RunOutcome::BudgetExhausted;
            }
            match self.sched.peek_next_at() {
                None => return RunOutcome::Quiescent,
                Some(at) if at > horizon => return RunOutcome::HorizonReached,
                Some(_) => {
                    self.sched.step(&mut self.world);
                }
            }
        }
    }

    /// Run while `pred(world)` holds (checked before each event).
    pub fn run_while<P: FnMut(&W) -> bool>(&mut self, mut pred: P) -> RunOutcome {
        loop {
            if !pred(&self.world) {
                return RunOutcome::HorizonReached;
            }
            if self.sched.fired() >= self.budget {
                return RunOutcome::BudgetExhausted;
            }
            if !self.sched.step(&mut self.world) {
                return RunOutcome::Quiescent;
            }
        }
    }

    /// Consume the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim: Simulation<Vec<u32>> = Simulation::new(Vec::new());
        let s = sim.scheduler_mut();
        s.schedule_fn(SimTime::from_us(30), |w: &mut Vec<u32>, _| w.push(3));
        s.schedule_fn(SimTime::from_us(10), |w: &mut Vec<u32>, _| w.push(1));
        s.schedule_fn(SimTime::from_us(20), |w: &mut Vec<u32>, _| w.push(2));
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        assert_eq!(sim.world(), &[1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_us(30));
    }

    #[test]
    fn ties_fire_fifo() {
        let mut sim: Simulation<Vec<u32>> = Simulation::new(Vec::new());
        let t = SimTime::from_us(5);
        for i in 0..100 {
            sim.scheduler_mut()
                .schedule_fn(t, move |w: &mut Vec<u32>, _| w.push(i));
        }
        sim.run();
        assert_eq!(*sim.world(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Simulation::new(0u64);
        fn tick(w: &mut u64, s: &mut Scheduler<u64>) {
            *w += 1;
            if *w < 10 {
                s.schedule_in(SimTime::from_us(1), tick);
            }
        }
        sim.scheduler_mut().schedule_fn(SimTime::ZERO, tick);
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        assert_eq!(*sim.world(), 10);
        assert_eq!(sim.now(), SimTime::from_us(9));
    }

    #[test]
    fn horizon_stops_clock() {
        let mut sim: Simulation<u64> = Simulation::new(0);
        sim.scheduler_mut()
            .schedule_fn(SimTime::from_us(10), |w: &mut u64, _| *w = 1);
        sim.scheduler_mut()
            .schedule_fn(SimTime::from_us(100), |w: &mut u64, _| *w = 2);
        assert_eq!(
            sim.run_until(SimTime::from_us(50)),
            RunOutcome::HorizonReached
        );
        assert_eq!(*sim.world(), 1);
        assert_eq!(sim.now(), SimTime::from_us(10));
        // The remaining event still fires on a later run.
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        assert_eq!(*sim.world(), 2);
    }

    #[test]
    fn budget_catches_livelock() {
        let mut sim = Simulation::new(0u64).with_budget(1_000);
        fn forever(_: &mut u64, s: &mut Scheduler<u64>) {
            s.schedule_in(SimTime::from_ns(1), forever);
        }
        sim.scheduler_mut().schedule_fn(SimTime::ZERO, forever);
        assert_eq!(sim.run(), RunOutcome::BudgetExhausted);
    }

    #[test]
    fn run_while_predicate() {
        let mut sim: Simulation<u64> = Simulation::new(0);
        for i in 0..20u64 {
            sim.scheduler_mut()
                .schedule_fn(SimTime::from_us(i), |w: &mut u64, _| *w += 1);
        }
        sim.run_while(|w| *w < 5);
        assert_eq!(*sim.world(), 5);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Simulation<()> = Simulation::new(());
        sim.scheduler_mut()
            .schedule_fn(SimTime::from_us(10), |_, s: &mut Scheduler<()>| {
                s.schedule_fn(SimTime::from_us(5), |_, _| {});
            });
        sim.run();
    }

    #[test]
    fn step_returns_false_when_empty() {
        let mut sim: Simulation<()> = Simulation::new(());
        assert!(!sim.step());
        assert_eq!(sim.events_fired(), 0);
    }

    /// A minimal typed event for exercising the slab path directly.
    enum Typed {
        Push(u32),
        Chain { left: u32 },
    }

    impl Event<Vec<u32>> for Typed {
        fn fire(self, world: &mut Vec<u32>, sched: &mut Scheduler<Vec<u32>, Typed>) {
            match self {
                Typed::Push(v) => world.push(v),
                Typed::Chain { left } => {
                    world.push(left);
                    if left > 0 {
                        sched.schedule_after(SimTime::from_ns(5), Typed::Chain { left: left - 1 });
                    }
                }
            }
        }
        fn from_boxed(f: Box<dyn FnOnce(&mut Vec<u32>, &mut Scheduler<Vec<u32>, Typed>)>) -> Self {
            // Tests only need a marker; real typed events keep a closure
            // variant. Run it immediately-on-fire via Chain-free encoding is
            // impossible here, so panic loudly if exercised.
            let _ = f;
            unreachable!("typed test event does not absorb closures")
        }
    }

    #[test]
    fn typed_events_fire_in_order_and_reuse_slots() {
        let mut sim: Simulation<Vec<u32>, Typed> = Simulation::new(Vec::new());
        let s = sim.scheduler_mut();
        s.schedule(SimTime::from_us(2), Typed::Push(20));
        s.schedule(SimTime::from_us(1), Typed::Push(10));
        s.schedule(SimTime::from_us(3), Typed::Chain { left: 3 });
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        assert_eq!(*sim.world(), [10, 20, 3, 2, 1, 0]);
        // The chain reuses freed slots: capacity stays at the high-water
        // mark of simultaneously pending events, not the event count.
        assert_eq!(sim.scheduler_mut().slab_capacity(), 3);
        assert_eq!(sim.events_fired(), 6);
    }

    #[test]
    fn typed_ties_fire_fifo_through_slab_reuse() {
        let mut sim: Simulation<Vec<u32>, Typed> = Simulation::new(Vec::new());
        let t = SimTime::from_us(5);
        for i in 0..50 {
            sim.scheduler_mut().schedule(t, Typed::Push(i));
        }
        sim.run();
        assert_eq!(*sim.world(), (0..50).collect::<Vec<_>>());
    }
}
