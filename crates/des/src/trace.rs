//! Lightweight event tracing.
//!
//! Tracing serves two purposes here: the determinism test (same seed ⇒
//! identical trace) and debuggability of the MCP state machines. A
//! [`TraceSink`] is deliberately simple — a bounded ring of formatted
//! records — so leaving it enabled in tests costs little.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time the event was recorded at.
    pub at: SimTime,
    /// Component that recorded it, e.g. `"nic3.sdma"`.
    pub component: String,
    /// Free-form message.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {}: {}",
            self.at.as_ns(),
            self.component,
            self.message
        )
    }
}

/// A bounded in-memory trace.
#[derive(Debug)]
pub struct TraceSink {
    enabled: bool,
    capacity: usize,
    records: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::disabled()
    }
}

impl TraceSink {
    /// A sink that records up to `capacity` events, dropping the oldest.
    pub fn bounded(capacity: usize) -> Self {
        TraceSink {
            enabled: true,
            capacity,
            records: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// A sink that ignores everything (zero overhead beyond one branch).
    pub fn disabled() -> Self {
        TraceSink {
            enabled: false,
            capacity: 0,
            records: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    pub fn record(&mut self, at: SimTime, component: &str, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceEvent {
            at,
            component: component.to_owned(),
            message: message.into(),
        });
    }

    /// Records currently held (oldest first).
    pub fn records(&self) -> impl Iterator<Item = &TraceEvent> {
        self.records.iter()
    }

    /// Number of records evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// A stable fingerprint of the full trace seen so far (including evicted
    /// records), for determinism tests. FNV-1a over the rendered records.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        mix(&self.dropped.to_le_bytes());
        for r in &self.records {
            mix(&r.at.as_ns().to_le_bytes());
            mix(r.component.as_bytes());
            mix(r.message.as_bytes());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let mut t = TraceSink::disabled();
        t.record(SimTime::ZERO, "x", "y");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn bounded_sink_evicts_oldest() {
        let mut t = TraceSink::bounded(2);
        t.record(SimTime::from_ns(1), "a", "1");
        t.record(SimTime::from_ns(2), "a", "2");
        t.record(SimTime::from_ns(3), "a", "3");
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let msgs: Vec<_> = t.records().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, ["2", "3"]);
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let mut a = TraceSink::bounded(16);
        let mut b = TraceSink::bounded(16);
        for i in 0..5u64 {
            a.record(SimTime::from_ns(i), "c", format!("m{i}"));
            b.record(SimTime::from_ns(i), "c", format!("m{i}"));
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.record(SimTime::from_ns(9), "c", "extra");
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn display_renders() {
        let e = TraceEvent {
            at: SimTime::from_ns(1500),
            component: "nic0.recv".into(),
            message: "pkt".into(),
        };
        let s = format!("{e}");
        assert!(s.contains("nic0.recv") && s.contains("pkt"));
    }
}
