//! Structured event tracing.
//!
//! Tracing serves three purposes here: the determinism tests (same seed ⇒
//! bit-identical trace), debuggability of the MCP state machines, and the
//! chrome://tracing / breakdown exporters in the bench crate. A trace is a
//! bounded ring of typed, `Copy`-able [`TraceRecord`]s — no strings, no
//! formatting on the hot path — recorded through a [`Tracer`] handle that
//! costs one branch when disabled.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

/// The functional unit a trace record was emitted by. Mirrors the hardware
/// decomposition of a GM node: the host CPU, the NIC's three DMA/send/recv
/// engines plus the firmware extension, and the wire itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Unit {
    /// Host processor (program callbacks, host-level barrier steps).
    Host,
    /// Host→NIC DMA engine.
    Sdma,
    /// Packet-interface send side of the NIC.
    Send,
    /// Packet-interface receive side of the NIC.
    Recv,
    /// NIC→host DMA engine.
    Rdma,
    /// The link/fabric between NICs.
    Wire,
    /// Firmware extension (NIC-based collective interpreter).
    Ext,
}

impl Unit {
    /// Stable short name, used by exporters as a thread label.
    pub fn name(self) -> &'static str {
        match self {
            Unit::Host => "host",
            Unit::Sdma => "sdma",
            Unit::Send => "send",
            Unit::Recv => "recv",
            Unit::Rdma => "rdma",
            Unit::Wire => "wire",
            Unit::Ext => "ext",
        }
    }

    fn code(self) -> u8 {
        match self {
            Unit::Host => 0,
            Unit::Sdma => 1,
            Unit::Send => 2,
            Unit::Recv => 3,
            Unit::Rdma => 4,
            Unit::Wire => 5,
            Unit::Ext => 6,
        }
    }
}

/// Identifies which component of which node recorded an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId {
    /// Cluster node index.
    pub node: u32,
    /// Functional unit on that node.
    pub unit: Unit,
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}.{}", self.node, self.unit.name())
    }
}

/// What happened. Every variant is plain-old-data so that recording never
/// allocates; peers and packet kinds are carried as raw indices/codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePayload {
    /// Host posted a send token to the NIC (`collective` for barrier tokens).
    SendTokenPost {
        /// Port the token was posted on.
        port: u8,
        /// True when the token starts a NIC-resident collective.
        collective: bool,
    },
    /// Host→NIC DMA of a message payload began.
    SdmaStart {
        /// Bytes transferred.
        bytes: u32,
    },
    /// Host→NIC DMA finished; the packet is ready to inject.
    SdmaFinish {
        /// Bytes transferred.
        bytes: u32,
    },
    /// A packet left this NIC for the wire.
    WireInject {
        /// Destination node.
        dst: u32,
        /// Packet-kind code (see the GM layer's `PacketKind`).
        kind: u8,
    },
    /// A packet arrived from the wire at this NIC.
    WireDeliver {
        /// Source node.
        src: u32,
        /// Packet-kind code.
        kind: u8,
        /// True when the fabric corrupted the packet (CRC will fail).
        corrupted: bool,
    },
    /// A barrier-round message was sent (by firmware or by the host loop).
    BarrierSend {
        /// Peer node the message targets.
        peer: u32,
        /// Collective packet type (PE / GATHER / BCAST / ...).
        kind: u8,
        /// True when delivered as a same-NIC local flag, skipping the wire.
        local: bool,
    },
    /// A barrier-round message was received/recorded.
    BarrierRecv {
        /// Peer node the message came from.
        peer: u32,
        /// Collective packet type.
        kind: u8,
    },
    /// A reliable packet was retransmitted (nack- or timer-driven).
    Retransmit {
        /// Peer the connection is with.
        peer: u32,
    },
    /// A retransmission timer fired with unacked packets outstanding.
    Timeout {
        /// Peer the connection is with.
        peer: u32,
    },
    /// NIC→host completion DMA (receive landing or notify token).
    CompletionDma {
        /// Port the completion targets.
        port: u8,
        /// Bytes DMA'd to host memory.
        bytes: u32,
    },
    /// A reliable connection exhausted its retransmit budget and declared
    /// its peer unreachable.
    GaveUp {
        /// Peer the connection was with.
        peer: u32,
    },
}

impl TracePayload {
    /// Stable short name, used by exporters as the event label.
    pub fn name(&self) -> &'static str {
        match self {
            TracePayload::SendTokenPost { .. } => "send_token_post",
            TracePayload::SdmaStart { .. } => "sdma_start",
            TracePayload::SdmaFinish { .. } => "sdma_finish",
            TracePayload::WireInject { .. } => "wire_inject",
            TracePayload::WireDeliver { .. } => "wire_deliver",
            TracePayload::BarrierSend { .. } => "barrier_send",
            TracePayload::BarrierRecv { .. } => "barrier_recv",
            TracePayload::Retransmit { .. } => "retransmit",
            TracePayload::Timeout { .. } => "timeout",
            TracePayload::CompletionDma { .. } => "completion_dma",
            TracePayload::GaveUp { .. } => "gave_up",
        }
    }

    /// Fold the payload into an FNV-1a accumulator via a stable per-variant
    /// byte encoding (tag byte + little-endian fields).
    fn mix(&self, mix: &mut impl FnMut(&[u8])) {
        match *self {
            TracePayload::SendTokenPost { port, collective } => {
                mix(&[0, port, collective as u8]);
            }
            TracePayload::SdmaStart { bytes } => {
                mix(&[1]);
                mix(&bytes.to_le_bytes());
            }
            TracePayload::SdmaFinish { bytes } => {
                mix(&[2]);
                mix(&bytes.to_le_bytes());
            }
            TracePayload::WireInject { dst, kind } => {
                mix(&[3, kind]);
                mix(&dst.to_le_bytes());
            }
            TracePayload::WireDeliver {
                src,
                kind,
                corrupted,
            } => {
                mix(&[4, kind, corrupted as u8]);
                mix(&src.to_le_bytes());
            }
            TracePayload::BarrierSend { peer, kind, local } => {
                mix(&[5, kind, local as u8]);
                mix(&peer.to_le_bytes());
            }
            TracePayload::BarrierRecv { peer, kind } => {
                mix(&[6, kind]);
                mix(&peer.to_le_bytes());
            }
            TracePayload::Retransmit { peer } => {
                mix(&[7]);
                mix(&peer.to_le_bytes());
            }
            TracePayload::Timeout { peer } => {
                mix(&[8]);
                mix(&peer.to_le_bytes());
            }
            TracePayload::CompletionDma { port, bytes } => {
                mix(&[9, port]);
                mix(&bytes.to_le_bytes());
            }
            TracePayload::GaveUp { peer } => {
                mix(&[10]);
                mix(&peer.to_le_bytes());
            }
        }
    }
}

/// One trace record: when, who, what. `Copy`, 32 bytes, no heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time the event was recorded at.
    pub at: SimTime,
    /// Component that recorded it.
    pub component: ComponentId,
    /// What happened.
    pub payload: TracePayload,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {}: {}",
            self.at.as_ns(),
            self.component,
            self.payload.name()
        )?;
        match self.payload {
            TracePayload::SendTokenPost { port, collective } => {
                write!(f, " port={port} collective={collective}")
            }
            TracePayload::SdmaStart { bytes } | TracePayload::SdmaFinish { bytes } => {
                write!(f, " bytes={bytes}")
            }
            TracePayload::WireInject { dst, kind } => write!(f, " dst=n{dst} kind={kind}"),
            TracePayload::WireDeliver {
                src,
                kind,
                corrupted,
            } => write!(f, " src=n{src} kind={kind} corrupted={corrupted}"),
            TracePayload::BarrierSend { peer, kind, local } => {
                write!(f, " peer=n{peer} kind={kind} local={local}")
            }
            TracePayload::BarrierRecv { peer, kind } => write!(f, " peer=n{peer} kind={kind}"),
            TracePayload::Retransmit { peer }
            | TracePayload::Timeout { peer }
            | TracePayload::GaveUp { peer } => {
                write!(f, " peer=n{peer}")
            }
            TracePayload::CompletionDma { port, bytes } => {
                write!(f, " port={port} bytes={bytes}")
            }
        }
    }
}

#[derive(Debug)]
struct TraceBuffer {
    /// `usize::MAX` for capture buffers (unbounded, drained at barriers).
    capacity: usize,
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

impl TraceBuffer {
    fn push(&mut self, rec: TraceRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(rec);
    }
}

/// A cheaply clonable handle onto a shared bounded trace buffer.
///
/// Every component that can emit trace records holds a clone; all clones made
/// from one [`Tracer::bounded`] write into the same ring. The disabled handle
/// ([`Tracer::disabled`], also `Default`) carries no buffer, so recording is
/// a single `Option` branch — this is what keeps the zero-allocation gates
/// honest with tracing compiled in.
///
/// The buffer lives behind an `Arc<Mutex<..>>` so the parallel DES engine can
/// give each logical process its own capture tracer on its own thread. The
/// lock is uncontended in both the serial path (one thread) and the parallel
/// path (one capture buffer per LP), so the cost is a couple of atomic ops
/// per record — and only when tracing is enabled at all.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    buf: Option<Arc<Mutex<TraceBuffer>>>,
}

impl Tracer {
    /// A handle that ignores everything (one branch per record call).
    pub fn disabled() -> Self {
        Tracer { buf: None }
    }

    /// A handle onto a fresh ring of up to `capacity` records; the oldest
    /// records are evicted (and counted) once the ring is full.
    pub fn bounded(capacity: usize) -> Self {
        Tracer {
            buf: Some(Arc::new(Mutex::new(TraceBuffer {
                capacity,
                records: VecDeque::with_capacity(capacity.min(4096)),
                dropped: 0,
            }))),
        }
    }

    /// An unbounded capture buffer: nothing is ever evicted, and
    /// [`Tracer::take_records`] drains what accumulated. The parallel engine
    /// points each logical process at one of these and replays the captured
    /// records into the final bounded ring in global event order, so
    /// eviction (and therefore the fingerprint) matches the serial run
    /// bit-for-bit.
    pub fn capture() -> Self {
        Tracer {
            buf: Some(Arc::new(Mutex::new(TraceBuffer {
                capacity: usize::MAX,
                records: VecDeque::new(),
                dropped: 0,
            }))),
        }
    }

    /// Whether records are being kept.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Record an event (no-op when disabled).
    #[inline]
    pub fn record(&self, at: SimTime, component: ComponentId, payload: TracePayload) {
        if let Some(buf) = &self.buf {
            buf.lock().unwrap().push(TraceRecord {
                at,
                component,
                payload,
            });
        }
    }

    /// Push an already-built record through the ring (same eviction rules as
    /// [`Tracer::record`]). Used to replay captured records.
    #[inline]
    pub fn push(&self, rec: TraceRecord) {
        if let Some(buf) = &self.buf {
            buf.lock().unwrap().push(rec);
        }
    }

    /// Drain and return everything currently held (oldest first), leaving
    /// the buffer empty. Empty when disabled.
    pub fn take_records(&self) -> Vec<TraceRecord> {
        match &self.buf {
            Some(buf) => {
                let mut b = buf.lock().unwrap();
                b.records.drain(..).collect()
            }
            None => Vec::new(),
        }
    }

    /// Copy out the records currently held (oldest first). Empty when
    /// disabled.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        match &self.buf {
            Some(buf) => buf.lock().unwrap().records.iter().copied().collect(),
            None => Vec::new(),
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.buf
            .as_ref()
            .map_or(0, |b| b.lock().unwrap().records.len())
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of records evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.buf.as_ref().map_or(0, |b| b.lock().unwrap().dropped)
    }

    /// A stable fingerprint of the trace (held records plus eviction count),
    /// for determinism tests. FNV-1a over a fixed per-variant byte encoding,
    /// so it is sensitive to any field of any record.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        let Some(buf) = &self.buf else { return h };
        let buf = buf.lock().unwrap();
        mix(&buf.dropped.to_le_bytes());
        for r in &buf.records {
            mix(&r.at.as_ns().to_le_bytes());
            mix(&r.component.node.to_le_bytes());
            mix(&[r.component.unit.code()]);
            r.payload.mix(&mut mix);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp(node: u32, unit: Unit) -> ComponentId {
        ComponentId { node, unit }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.record(
            SimTime::ZERO,
            comp(0, Unit::Host),
            TracePayload::Timeout { peer: 1 },
        );
        assert!(t.is_empty());
        assert!(!t.is_enabled());
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn bounded_tracer_evicts_oldest() {
        let t = Tracer::bounded(2);
        for i in 0..3u32 {
            t.record(
                SimTime::from_ns(i as u64),
                comp(0, Unit::Wire),
                TracePayload::WireInject { dst: i, kind: 1 },
            );
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let dsts: Vec<u32> = t
            .snapshot()
            .iter()
            .map(|r| match r.payload {
                TracePayload::WireInject { dst, .. } => dst,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(dsts, [1, 2]);
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Tracer::bounded(8);
        let clone = t.clone();
        clone.record(
            SimTime::from_ns(5),
            comp(3, Unit::Sdma),
            TracePayload::SdmaStart { bytes: 64 },
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.fingerprint(), clone.fingerprint());
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = Tracer::bounded(16);
        let b = Tracer::bounded(16);
        for i in 0..5u64 {
            for t in [&a, &b] {
                t.record(
                    SimTime::from_ns(i),
                    comp(1, Unit::Ext),
                    TracePayload::BarrierSend {
                        peer: i as u32,
                        kind: 2,
                        local: false,
                    },
                );
            }
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Any field difference must change the hash: flip `local` only.
        b.record(
            SimTime::from_ns(9),
            comp(1, Unit::Ext),
            TracePayload::BarrierSend {
                peer: 9,
                kind: 2,
                local: true,
            },
        );
        a.record(
            SimTime::from_ns(9),
            comp(1, Unit::Ext),
            TracePayload::BarrierSend {
                peer: 9,
                kind: 2,
                local: false,
            },
        );
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn capture_then_replay_matches_direct_bounded_recording() {
        // Replaying a capture through a bounded ring must reproduce the
        // direct ring exactly, eviction count included.
        let direct = Tracer::bounded(3);
        let cap = Tracer::capture();
        for i in 0..5u32 {
            for t in [&direct, &cap] {
                t.record(
                    SimTime::from_ns(i as u64),
                    comp(i, Unit::Wire),
                    TracePayload::WireInject { dst: i, kind: 0 },
                );
            }
        }
        assert_eq!(cap.len(), 5);
        assert_eq!(cap.dropped(), 0);
        let replayed = Tracer::bounded(3);
        for rec in cap.take_records() {
            replayed.push(rec);
        }
        assert!(cap.is_empty());
        assert_eq!(replayed.dropped(), 2);
        assert_eq!(replayed.fingerprint(), direct.fingerprint());
    }

    #[test]
    fn tracer_handles_are_send() {
        fn assert_send<T: Send + Sync>() {}
        assert_send::<Tracer>();
    }

    #[test]
    fn display_renders() {
        let r = TraceRecord {
            at: SimTime::from_ns(1500),
            component: comp(0, Unit::Recv),
            payload: TracePayload::WireDeliver {
                src: 4,
                kind: 3,
                corrupted: false,
            },
        };
        let s = format!("{r}");
        assert!(s.contains("n0.recv") && s.contains("wire_deliver"), "{s}");
    }
}
