//! Simulated time.
//!
//! Virtual time is a monotonically non-decreasing count of nanoseconds held
//! in a `u64`. Nanosecond resolution comfortably covers the quantities in the
//! paper: NIC firmware costs are tens of cycles at 33–132 MHz (hundreds of
//! nanoseconds each) and the measured barriers are tens of microseconds.
//! A `u64` of nanoseconds overflows after ~584 years of virtual time, far
//! beyond any experiment.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, in nanoseconds.
///
/// `SimTime` is used both for absolute timestamps and for durations; the
/// arithmetic below is closed over both uses and checked in debug builds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero, the instant every simulation starts at.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable time; used as an "infinitely late" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    ///
    /// Saturates at [`SimTime::MAX`] on overflow (debug builds assert): a
    /// silently wrapped duration would schedule an event in the distant
    /// *past*, whereas the saturated "infinitely late" sentinel is at worst
    /// an event that never fires.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        debug_assert!(us.checked_mul(1_000).is_some(), "SimTime::from_us overflow");
        SimTime(us.saturating_mul(1_000))
    }

    /// Construct from milliseconds.
    ///
    /// Saturates at [`SimTime::MAX`] on overflow (debug builds assert).
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        debug_assert!(
            ms.checked_mul(1_000_000).is_some(),
            "SimTime::from_ms overflow"
        );
        SimTime(ms.saturating_mul(1_000_000))
    }

    /// Construct from seconds.
    ///
    /// Saturates at [`SimTime::MAX`] on overflow (debug builds assert).
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        debug_assert!(
            s.checked_mul(1_000_000_000).is_some(),
            "SimTime::from_secs overflow"
        );
        SimTime(s.saturating_mul(1_000_000_000))
    }

    /// Construct from a (non-negative, finite) floating-point count of
    /// microseconds. Fractions below a nanosecond are rounded to nearest.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        debug_assert!(us.is_finite() && us >= 0.0, "invalid duration: {us}");
        SimTime((us * 1_000.0).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Value in microseconds, as a float (the unit the paper reports in).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in seconds, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction: `a.saturating_sub(b)` is zero when `b > a`.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, rhs: SimTime) -> SimTime {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    /// Saturates at [`SimTime::MAX`] on overflow (debug builds assert) —
    /// same audit as the unit constructors: `MAX + anything` must stay the
    /// "infinitely late" sentinel, never wrap into the past.
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        debug_assert!(
            self.0.checked_add(rhs.0).is_some(),
            "SimTime overflow in add"
        );
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime underflow: {self:?} - {rhs:?}");
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        debug_assert!(self.0 >= rhs.0, "SimTime underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    /// Saturates at [`SimTime::MAX`] on overflow (debug builds assert).
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        debug_assert!(self.0.checked_mul(rhs).is_some(), "SimTime overflow in mul");
        SimTime(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    /// Human-oriented display in the most natural unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_us(3), SimTime::from_ns(3_000));
        assert_eq!(SimTime::from_ms(2), SimTime::from_us(2_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1_000));
        assert_eq!(SimTime::from_us_f64(1.5), SimTime::from_ns(1_500));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let a = SimTime::from_us(10);
        let b = SimTime::from_us(4);
        assert_eq!(a + b, SimTime::from_us(14));
        assert_eq!(a - b, SimTime::from_us(6));
        assert_eq!(a * 3, SimTime::from_us(30));
        assert_eq!(a / 2, SimTime::from_us(5));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.saturating_sub(b), SimTime::from_us(6));
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_ns(5);
        let b = SimTime::from_ns(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(a), a);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4).map(SimTime::from_us).sum();
        assert_eq!(total, SimTime::from_us(10));
    }

    #[test]
    fn unit_conversions() {
        let t = SimTime::from_ns(1_234_567);
        assert!((t.as_us_f64() - 1234.567).abs() < 1e-9);
        assert!((t.as_secs_f64() - 0.001234567).abs() < 1e-15);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_ns(17)), "17ns");
        assert_eq!(format!("{}", SimTime::from_us(2)), "2.000us");
        assert_eq!(format!("{}", SimTime::from_ms(2)), "2.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.000s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(SimTime::MAX.checked_add(SimTime::from_ns(1)), None);
        assert_eq!(
            SimTime::from_ns(1).checked_add(SimTime::from_ns(2)),
            Some(SimTime::from_ns(3))
        );
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn debug_sub_underflow_panics() {
        let _ = SimTime::from_ns(1) - SimTime::from_ns(2);
    }

    #[test]
    #[should_panic(expected = "from_us overflow")]
    #[cfg(debug_assertions)]
    fn debug_from_us_overflow_panics() {
        let _ = SimTime::from_us(u64::MAX / 2);
    }

    #[test]
    #[should_panic(expected = "overflow in add")]
    #[cfg(debug_assertions)]
    fn debug_add_overflow_panics() {
        let _ = SimTime::MAX + SimTime::from_ns(1);
    }

    #[test]
    #[should_panic(expected = "overflow in mul")]
    #[cfg(debug_assertions)]
    fn debug_mul_overflow_panics() {
        let _ = SimTime::from_secs(1_000) * u64::MAX;
    }

    // In release builds the constructors and arithmetic saturate to the
    // "infinitely late" sentinel instead of silently wrapping into the past.
    #[test]
    #[cfg(not(debug_assertions))]
    fn release_conversions_saturate() {
        assert_eq!(SimTime::from_us(u64::MAX / 2), SimTime::MAX);
        assert_eq!(SimTime::from_ms(u64::MAX / 2), SimTime::MAX);
        assert_eq!(SimTime::from_secs(u64::MAX / 2), SimTime::MAX);
        assert_eq!(SimTime::MAX + SimTime::from_ns(1), SimTime::MAX);
        assert_eq!(SimTime::from_secs(1_000) * u64::MAX, SimTime::MAX);
    }

    #[test]
    fn in_range_conversions_are_exact() {
        // The saturating forms must not perturb any in-range value.
        assert_eq!(SimTime::from_us(u64::MAX / 1_000), {
            SimTime::from_ns((u64::MAX / 1_000) * 1_000)
        });
        assert_eq!(SimTime::from_secs(584), SimTime::from_ns(584_000_000_000));
    }
}
