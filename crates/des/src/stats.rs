//! Streaming statistics for experiment measurement.
//!
//! The paper reports the mean over 100 000 consecutive barriers; our harness
//! additionally reports spread so that calibration regressions show up. Both
//! accumulators are single-pass and allocation-free per sample.

use crate::time::SimTime;

/// Streaming mean/min/max/variance (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty accumulator.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add one duration sample, in microseconds (the paper's reporting unit).
    pub fn record_time_us(&mut self, t: SimTime) {
        self.record(t.as_us_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest sample (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest sample (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Unbiased sample standard deviation (0 for n < 2).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Merge another accumulator into this one (parallel sweeps).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64) * (other.n as f64) / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-width-bin histogram over `[0, bin_width * bins)` with separate
/// underflow (`x < 0`) and overflow (`x >= bin_width * bins`) buckets; used
/// for latency distributions in the testbed.
///
/// Underflow and overflow are tracked apart because they rank at opposite
/// ends of the distribution: a below-range sample sits *before* every
/// binned sample, an above-range sample *after*. Folding them together
/// (as an earlier version did) silently shifted every quantile upward
/// whenever a negative sample had been recorded.
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// `bins` buckets of width `bin_width`.
    pub fn new(bin_width: f64, bins: usize) -> Self {
        assert!(bin_width > 0.0 && bin_width.is_finite() && bins > 0);
        Histogram {
            bin_width,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Add a sample. Negative samples land in the underflow bucket,
    /// samples at or beyond `bin_width * bins` in the overflow bucket.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < 0.0 {
            self.underflow += 1;
            return;
        }
        let idx = (x / self.bin_width) as usize;
        match self.counts.get_mut(idx) {
            Some(c) => *c += 1,
            None => self.overflow += 1,
        }
    }

    /// Total samples recorded (in-range + underflow + overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples below the binned range (`x < 0`).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples above the binned range (`x >= bin_width * bins`).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Merge another histogram into this one (per-node aggregation). Both
    /// sides must have the same bin width and bin count.
    ///
    /// Widths are compared by exact bit pattern (`f64::to_bits`), not by
    /// `==`: two histograms constructed from the same configuration carry
    /// bit-identical widths, and the bit comparison can never be confused
    /// by NaN or rounding-path differences the way a float `==` can.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.bin_width.to_bits() == other.bin_width.to_bits(),
            "bin width mismatch: {} vs {}",
            self.bin_width,
            other.bin_width
        );
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        for (into, from) in self.counts.iter_mut().zip(other.counts.iter()) {
            *into += from;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }

    /// Approximate mean from bucket midpoints (`None` if no in-range
    /// samples). Underflow and overflow samples are excluded — out-of-range
    /// samples have no usable midpoint, so the mean describes the binned
    /// distribution only.
    pub fn mean(&self) -> Option<f64> {
        let in_range = self.total - self.underflow - self.overflow;
        if in_range == 0 {
            return None;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * (i as f64 + 0.5) * self.bin_width)
            .sum();
        Some(sum / in_range as f64)
    }

    /// Approximate quantile (`q` in `[0,1]`) from bucket upper edges.
    ///
    /// The rank is taken over *all* samples: underflow samples rank below
    /// every bin (they count toward the rank but can't be the answer) and
    /// overflow samples rank above. Returns `None` if the histogram is
    /// empty or the requested quantile lands in the underflow or overflow
    /// bucket — the histogram cannot bound an out-of-range sample's value.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        if target <= self.underflow {
            return None; // the quantile is a below-range sample
        }
        let mut seen = self.underflow;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i as f64 + 1.0) * self.bin_width);
            }
        }
        None // the quantile is an above-range sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.138089935299395).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn summary_merge_equals_single_stream() {
        let data: Vec<f64> = (0..100).map(|i| (i * i % 37) as f64).collect();
        let mut whole = Summary::new();
        data.iter().for_each(|&x| whole.record(x));
        let mut a = Summary::new();
        let mut b = Summary::new();
        data[..40].iter().for_each(|&x| a.record(x));
        data[40..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.stddev() - whole.stddev()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        a.record(3.0);
        let before = a.mean();
        a.merge(&Summary::new());
        assert_eq!(a.mean(), before);
        let mut e = Summary::new();
        e.merge(&a);
        assert_eq!(e.count(), 1);
    }

    #[test]
    fn summary_record_time() {
        let mut s = Summary::new();
        s.record_time_us(SimTime::from_us(100));
        assert!((s.mean() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(10.0, 5);
        for x in [0.0, 5.0, 15.0, 49.9, 50.0, 1000.0, -1.0] {
            h.record(x);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(4), 1);
        assert_eq!(h.overflow(), 2, "50.0 and 1000.0 are above range");
        assert_eq!(h.underflow(), 1, "-1.0 is below range");
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((49.0..=51.0).contains(&median), "median={median}");
        assert!(h.quantile(1.0).unwrap() >= 99.0);
        assert!(Histogram::new(1.0, 4).quantile(0.5).is_none());
    }

    #[test]
    fn underflow_does_not_shift_quantiles_upward() {
        // The regression this fix exists for: a below-range sample used to
        // be filed with overflow, so it was invisible to the bin walk while
        // still inflating the rank target — every quantile shifted up.
        let mut with_under = Histogram::new(1.0, 100);
        with_under.record(-5.0);
        let mut without = Histogram::new(1.0, 100);
        for i in 0..99 {
            with_under.record(i as f64 + 0.5);
            without.record(i as f64 + 0.5);
        }
        // Ranked over all 100 samples, the median of `with_under` is the
        // 50th sample: the -5.0 underflow is rank 1, so the 50th is bin 48.
        let m_with = with_under.quantile(0.5).unwrap();
        let m_without = without.quantile(0.5).unwrap();
        assert!(
            (m_with - m_without).abs() <= 1.0,
            "underflow shifted the median: {m_with} vs {m_without}"
        );
    }

    #[test]
    fn quantile_landing_out_of_range_is_none() {
        let mut h = Histogram::new(1.0, 4);
        h.record(-1.0);
        h.record(-2.0);
        h.record(1.5);
        h.record(100.0);
        // q=0.25 → rank 1 of 4 → an underflow sample: unanswerable.
        assert_eq!(h.quantile(0.25), None);
        // q=0.75 → rank 3 → the in-range 1.5 → bin 1's upper edge.
        assert_eq!(h.quantile(0.75), Some(2.0));
        // q=1.0 → rank 4 → the overflow sample: unanswerable.
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn quantile_boundary_ranks() {
        // q = 0 clamps to rank 1 (the minimum), never rank 0.
        let mut h = Histogram::new(1.0, 4);
        h.record(0.5);
        h.record(2.5);
        assert_eq!(h.quantile(0.0), Some(1.0));
        // q = 1.0 of an all-in-range histogram is the maximum's bin edge.
        assert_eq!(h.quantile(1.0), Some(3.0));

        // Rank landing exactly on the last underflow sample: unanswerable;
        // one rank past it: the first in-range bin.
        let mut u = Histogram::new(1.0, 4);
        u.record(-1.0);
        u.record(-1.0);
        u.record(0.5);
        u.record(1.5);
        // q = 0.5 → rank 2 of 4 → exactly the last underflow sample.
        assert_eq!(u.quantile(0.5), None);
        // q = 0.75 → rank 3 → the first in-range sample.
        assert_eq!(u.quantile(0.75), Some(1.0));

        // Rank landing exactly on the last in-range sample answers; the
        // next rank (the first overflow sample) does not.
        let mut o = Histogram::new(1.0, 4);
        o.record(0.5);
        o.record(1.5);
        o.record(99.0);
        o.record(99.0);
        // q = 0.5 → rank 2 of 4 → the last in-range sample.
        assert_eq!(o.quantile(0.5), Some(2.0));
        // q = 0.75 → rank 3 → the first overflow sample.
        assert_eq!(o.quantile(0.75), None);
    }

    #[test]
    fn quantile_of_single_sample_histograms() {
        // Every quantile of a one-sample histogram is that sample's bin.
        let mut h = Histogram::new(2.0, 8);
        h.record(5.0);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(6.0), "q={q}");
        }
        // A lone underflow or overflow sample is unanswerable at any q.
        let mut u = Histogram::new(2.0, 8);
        u.record(-1.0);
        let mut o = Histogram::new(2.0, 8);
        o.record(1e9);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(u.quantile(q), None, "underflow q={q}");
            assert_eq!(o.quantile(q), None, "overflow q={q}");
        }
    }

    #[test]
    fn mean_excludes_underflow_and_overflow() {
        let mut h = Histogram::new(1.0, 10);
        h.record(-3.0);
        h.record(4.5);
        h.record(99.0);
        // Only 4.5 is in range; its bucket midpoint is 4.5.
        assert!((h.mean().unwrap() - 4.5).abs() < 1e-12);
        let mut empty_in_range = Histogram::new(1.0, 10);
        empty_in_range.record(-1.0);
        assert_eq!(empty_in_range.mean(), None);
    }

    #[test]
    fn histogram_merge_sums_all_buckets() {
        let mut a = Histogram::new(2.0, 4);
        let mut b = Histogram::new(2.0, 4);
        for x in [-1.0, 1.0, 3.0] {
            a.record(x);
        }
        for x in [5.0, 100.0, -2.0] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.total(), 6);
        assert_eq!(a.underflow(), 2);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.bucket(0), 1);
        assert_eq!(a.bucket(1), 1);
        assert_eq!(a.bucket(2), 1);
    }

    #[test]
    fn same_config_histograms_always_merge() {
        // Widths from the same configuration are bit-identical even when
        // the value has no exact binary representation.
        let width = 0.1f64 * 3.0; // 0.30000000000000004
        let mut a = Histogram::new(width, 8);
        let b = Histogram::new(width, 8);
        a.merge(&b); // must not panic
        assert_eq!(a.total(), 0);
    }

    #[test]
    #[should_panic(expected = "bin width mismatch")]
    fn different_widths_refuse_to_merge() {
        let mut a = Histogram::new(0.1, 8);
        a.merge(&Histogram::new(0.2, 8));
    }
}
