//! Streaming statistics for experiment measurement.
//!
//! The paper reports the mean over 100 000 consecutive barriers; our harness
//! additionally reports spread so that calibration regressions show up. Both
//! accumulators are single-pass and allocation-free per sample.

use crate::time::SimTime;

/// Streaming mean/min/max/variance (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty accumulator.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add one duration sample, in microseconds (the paper's reporting unit).
    pub fn record_time_us(&mut self, t: SimTime) {
        self.record(t.as_us_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest sample (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest sample (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Unbiased sample standard deviation (0 for n < 2).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Merge another accumulator into this one (parallel sweeps).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64) * (other.n as f64) / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-width-bin histogram over `[0, bin_width * bins)` with an overflow
/// bucket; used for latency distributions in the testbed.
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// `bins` buckets of width `bin_width`.
    pub fn new(bin_width: f64, bins: usize) -> Self {
        assert!(bin_width > 0.0 && bins > 0);
        Histogram {
            bin_width,
            counts: vec![0; bins],
            overflow: 0,
            total: 0,
        }
    }

    /// Add a sample.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < 0.0 {
            self.overflow += 1;
            return;
        }
        let idx = (x / self.bin_width) as usize;
        match self.counts.get_mut(idx) {
            Some(c) => *c += 1,
            None => self.overflow += 1,
        }
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples that fell outside the binned range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Merge another histogram into this one (per-node aggregation). Both
    /// sides must have the same bin width and bin count.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bin_width, other.bin_width, "bin width mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        for (into, from) in self.counts.iter_mut().zip(other.counts.iter()) {
            *into += from;
        }
        self.overflow += other.overflow;
        self.total += other.total;
    }

    /// Approximate mean from bucket midpoints (`None` if no in-range
    /// samples). Overflow samples are excluded.
    pub fn mean(&self) -> Option<f64> {
        let in_range = self.total - self.overflow;
        if in_range == 0 {
            return None;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * (i as f64 + 0.5) * self.bin_width)
            .sum();
        Some(sum / in_range as f64)
    }

    /// Approximate quantile (`q` in `[0,1]`) from bucket upper edges;
    /// `None` if empty or the quantile lands in the overflow bucket.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i as f64 + 1.0) * self.bin_width);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.138089935299395).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn summary_merge_equals_single_stream() {
        let data: Vec<f64> = (0..100).map(|i| (i * i % 37) as f64).collect();
        let mut whole = Summary::new();
        data.iter().for_each(|&x| whole.record(x));
        let mut a = Summary::new();
        let mut b = Summary::new();
        data[..40].iter().for_each(|&x| a.record(x));
        data[40..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.stddev() - whole.stddev()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        a.record(3.0);
        let before = a.mean();
        a.merge(&Summary::new());
        assert_eq!(a.mean(), before);
        let mut e = Summary::new();
        e.merge(&a);
        assert_eq!(e.count(), 1);
    }

    #[test]
    fn summary_record_time() {
        let mut s = Summary::new();
        s.record_time_us(SimTime::from_us(100));
        assert!((s.mean() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(10.0, 5);
        for x in [0.0, 5.0, 15.0, 49.9, 50.0, 1000.0, -1.0] {
            h.record(x);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(4), 1);
        assert_eq!(h.overflow(), 3);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((49.0..=51.0).contains(&median), "median={median}");
        assert!(h.quantile(1.0).unwrap() >= 99.0);
        assert!(Histogram::new(1.0, 4).quantile(0.5).is_none());
    }
}
