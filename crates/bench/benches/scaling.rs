//! The §2.2 scaling study as a Criterion bench (experiment id `scale`):
//! large-cluster barrier simulation throughput.

use gmsim_bench::harness::{BenchmarkId, Criterion, Throughput};
use gmsim_bench::{criterion_group, criterion_main};
use gmsim_lanai::NicModel;
use gmsim_testbed::{Algorithm, BarrierExperiment, Descriptor};

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling");
    g.sample_size(10);
    for n in [16usize, 64, 256] {
        let e = BarrierExperiment::new(n, Algorithm::Nic(Descriptor::Pe))
            .nic(NicModel::LANAI_9)
            .rounds(30, 5);
        let m = e.run().unwrap();
        println!("n={n}: NIC-PE on LANai 9 = {:.2} us", m.mean_us);
        // Throughput in simulated barriers per wall second.
        g.throughput(Throughput::Elements(e.rounds));
        g.bench_with_input(BenchmarkId::new("nic_pe_lanai9", n), &e, |b, e| {
            b.iter(|| e.run().unwrap().mean_us)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
