//! Figure 5(a)/(c) as Criterion benches: each benchmark simulates a stream
//! of consecutive barriers and reports the wall-clock cost of regenerating
//! that figure cell. The virtual-time results themselves are printed once
//! per cell so `cargo bench` doubles as a figure check.

use gmsim_bench::harness::{BenchmarkId, Criterion};
use gmsim_bench::{criterion_group, criterion_main};
use gmsim_lanai::NicModel;
use gmsim_testbed::{Algorithm, BarrierExperiment, Descriptor};

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_latency");
    g.sample_size(10);
    for (nic, tag, sizes) in [
        (NicModel::LANAI_4_3, "lanai4.3", &[2usize, 4, 8, 16][..]),
        (NicModel::LANAI_7_2, "lanai7.2", &[2usize, 4, 8][..]),
    ] {
        for &n in sizes {
            for alg in [
                Algorithm::Nic(Descriptor::Pe),
                Algorithm::Host(Descriptor::Pe),
                Algorithm::Nic(Descriptor::gb(2)),
                Algorithm::Host(Descriptor::gb(2)),
            ] {
                let e = BarrierExperiment::new(n, alg).nic(nic).rounds(60, 10);
                let m = e.run().unwrap();
                println!("{tag} {:>12} n={n:<2} -> {:8.2} us", alg.name(), m.mean_us);
                g.bench_with_input(
                    BenchmarkId::new(format!("{tag}/{}", alg.name()), n),
                    &e,
                    |b, e| b.iter(|| e.run().unwrap().mean_us),
                );
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
