//! DES hot-path throughput gate.
//!
//! Reports raw scheduler events/sec (boxed-closure path vs the typed slab
//! path) plus a `repro scale`-style wall-clock measurement of the N = 32
//! barrier configuration, and writes the numbers to `BENCH_des.json` at the
//! workspace root so successive PRs leave a perf trajectory.
//!
//! Sample count comes from `GMSIM_BENCH_SAMPLES` (default 10) so CI can run
//! a cheap 2-sample smoke pass.

use gmsim_bench::harness::sample_size_from_env;
use gmsim_des::{BoxedFn, Event, Scheduler, SimTime, Simulation};
use gmsim_testbed::{Algorithm, BarrierExperiment, Descriptor};
use std::time::Instant;

/// Events fired per scheduler-throughput iteration.
const EVENTS: u64 = 1_000_000;

/// Seed ("before" this PR) numbers, measured on the boxed-closure-only
/// scheduler at the same commit the refactor started from (release build,
/// `GMSIM_BENCH_SAMPLES=3`, this container). Kept here so `BENCH_des.json`
/// always carries the before/after pair.
mod baseline {
    /// Boxed scheduler events/sec on the seed.
    pub const SCHED_EVENTS_PER_SEC: f64 = 31_977_131.0;
    /// N=32 NIC-PE wall seconds on the seed.
    pub const SCALE_N32_NIC_PE_WALL_S: f64 = 0.0461;
    /// N=32 host-PE wall seconds on the seed.
    pub const SCALE_N32_HOST_PE_WALL_S: f64 = 0.0473;
}

/// Min wall time over `samples` runs of `f`.
fn min_wall(samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Boxed-closure scheduler: every event is a fresh `Box<dyn FnOnce>`.
///
/// Note a subtlety: a non-capturing fn item is zero-sized, and boxing a ZST
/// does not allocate — this lane therefore measures pure queue overhead.
/// The payload lanes below measure what the GM stack actually schedules:
/// events carrying packet-sized state.
fn boxed_events_per_sec(samples: usize) -> f64 {
    fn tick(w: &mut u64, s: &mut Scheduler<u64>) {
        *w += 1;
        s.schedule_in(SimTime::from_ns(10), tick);
    }
    let wall = min_wall(samples, || {
        let mut sim = Simulation::new(0u64).with_budget(EVENTS);
        for lane in 0..64u64 {
            sim.scheduler_mut()
                .schedule_fn(SimTime::from_ns(lane), tick);
        }
        sim.run();
        assert_eq!(std::hint::black_box(sim.events_fired()), EVENTS);
    });
    EVENTS as f64 / wall
}

/// Packet-sized event payload: what a `Transmit`/`WireDeliver` event carries
/// (a [`gmsim_gm::Packet`] is a few scalar words).
type Payload = [u64; 4];

/// Boxed-closure scheduler with a captured payload: one heap allocation per
/// event, exactly like the pre-refactor cluster glue that captured a
/// `Packet` per hop.
fn boxed_payload_events_per_sec(samples: usize) -> f64 {
    fn tick(payload: Payload) -> impl FnOnce(&mut u64, &mut Scheduler<u64>) + Send + 'static {
        move |w, s| {
            *w += 1;
            let mut next = std::hint::black_box(payload);
            next[0] = next[0].wrapping_add(1);
            s.schedule_in(SimTime::from_ns(10), tick(next));
        }
    }
    let wall = min_wall(samples, || {
        let mut sim = Simulation::new(0u64).with_budget(EVENTS);
        for lane in 0..64u64 {
            sim.scheduler_mut()
                .schedule_fn(SimTime::from_ns(lane), tick([lane, 2, 3, 4]));
        }
        sim.run();
        assert_eq!(std::hint::black_box(sim.events_fired()), EVENTS);
    });
    EVENTS as f64 / wall
}

/// Typed slab scheduler with the same payload moved through the slab: zero
/// allocations at steady state.
fn typed_payload_events_per_sec(samples: usize) -> f64 {
    enum Tick {
        Fire(Payload),
    }
    impl Event<u64> for Tick {
        fn fire(self, w: &mut u64, s: &mut Scheduler<u64, Tick>) {
            let Tick::Fire(payload) = self;
            *w += 1;
            let mut next = std::hint::black_box(payload);
            next[0] = next[0].wrapping_add(1);
            s.schedule_after(SimTime::from_ns(10), Tick::Fire(next));
        }
        fn from_boxed(_: BoxedFn<u64, Tick>) -> Self {
            unreachable!("throughput loop never schedules closures")
        }
    }
    let wall = min_wall(samples, || {
        let mut sim: Simulation<u64, Tick> = Simulation::new(0u64).with_budget(EVENTS);
        for lane in 0..64u64 {
            sim.scheduler_mut()
                .schedule(SimTime::from_ns(lane), Tick::Fire([lane, 2, 3, 4]));
        }
        sim.run();
        assert_eq!(std::hint::black_box(sim.events_fired()), EVENTS);
    });
    EVENTS as f64 / wall
}

/// Typed slab scheduler: the same self-rescheduling workload as
/// [`boxed_events_per_sec`], but each event is an enum variant moved through
/// the slab — zero allocations at steady state.
fn typed_events_per_sec(samples: usize) -> f64 {
    enum Tick {
        Fire,
    }
    impl Event<u64> for Tick {
        fn fire(self, w: &mut u64, s: &mut Scheduler<u64, Tick>) {
            *w += 1;
            s.schedule_after(SimTime::from_ns(10), Tick::Fire);
        }
        fn from_boxed(_: BoxedFn<u64, Tick>) -> Self {
            unreachable!("throughput loop never schedules closures")
        }
    }
    let wall = min_wall(samples, || {
        let mut sim: Simulation<u64, Tick> = Simulation::new(0u64).with_budget(EVENTS);
        for lane in 0..64u64 {
            sim.scheduler_mut()
                .schedule(SimTime::from_ns(lane), Tick::Fire);
        }
        sim.run();
        assert_eq!(std::hint::black_box(sim.events_fired()), EVENTS);
    });
    EVENTS as f64 / wall
}

/// One `repro scale`-style experiment at N = 32 (not part of the scale
/// table's node list, so it pins a fresh configuration).
fn scale_n32(nic_side: bool) -> BarrierExperiment {
    let alg = if nic_side {
        Algorithm::Nic(Descriptor::Pe)
    } else {
        Algorithm::Host(Descriptor::Pe)
    };
    BarrierExperiment::new(32, alg).rounds(220, 20)
}

fn main() {
    let samples = sample_size_from_env();
    let scale_samples = samples.clamp(1, 5);

    let boxed = boxed_events_per_sec(samples);
    println!("bench des_throughput/scheduler/boxed            {boxed:>14.0} events/s");
    let typed = typed_events_per_sec(samples);
    println!(
        "bench des_throughput/scheduler/typed            {typed:>14.0} events/s  ({:.2}x boxed)",
        typed / boxed
    );
    let boxed_payload = boxed_payload_events_per_sec(samples);
    println!("bench des_throughput/scheduler/boxed_payload    {boxed_payload:>14.0} events/s");
    let typed_payload = typed_payload_events_per_sec(samples);
    println!(
        "bench des_throughput/scheduler/typed_payload    {typed_payload:>14.0} events/s  ({:.2}x boxed)",
        typed_payload / boxed_payload
    );

    let mut sim_events = 0u64;
    let nic_wall = min_wall(scale_samples, || {
        sim_events = scale_n32(true).run().unwrap().events;
    });
    let host_wall = min_wall(scale_samples, || {
        scale_n32(false).run().unwrap();
    });
    println!(
        "bench des_throughput/scale_n32/nic_pe           wall {nic_wall:>9.3}s  ({:.0} events/s)",
        sim_events as f64 / nic_wall
    );
    println!("bench des_throughput/scale_n32/host_pe          wall {host_wall:>9.3}s");

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"gmsim-des-throughput/v1\",\n",
            "  \"samples\": {samples},\n",
            "  \"scheduler\": {{\n",
            "    \"baseline_boxed_events_per_sec\": {base_sched:.0},\n",
            "    \"boxed_events_per_sec\": {boxed:.0},\n",
            "    \"typed_events_per_sec\": {typed:.0},\n",
            "    \"boxed_payload_events_per_sec\": {boxed_payload:.0},\n",
            "    \"typed_payload_events_per_sec\": {typed_payload:.0}\n",
            "  }},\n",
            "  \"scale_n32\": {{\n",
            "    \"baseline_nic_pe_wall_s\": {base_nic:.4},\n",
            "    \"baseline_host_pe_wall_s\": {base_host:.4},\n",
            "    \"nic_pe_wall_s\": {nic:.4},\n",
            "    \"host_pe_wall_s\": {host:.4},\n",
            "    \"nic_pe_sim_events\": {ev}\n",
            "  }}\n",
            "}}\n"
        ),
        samples = samples,
        base_sched = baseline::SCHED_EVENTS_PER_SEC,
        boxed = boxed,
        typed = typed,
        boxed_payload = boxed_payload,
        typed_payload = typed_payload,
        base_nic = baseline::SCALE_N32_NIC_PE_WALL_S,
        base_host = baseline::SCALE_N32_HOST_PE_WALL_S,
        nic = nic_wall,
        host = host_wall,
        ev = sim_events,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_des.json");
    std::fs::write(out, &json).expect("write BENCH_des.json");
    print!("{json}");
}
