//! Design-choice ablations as Criterion benches (experiment id `ablate`):
//! reliability mode (§3.3/4.4), the same-NIC optimization (§3.4), and the
//! unexpected-record cost (§3.1).

use gmsim_bench::harness::Criterion;
use gmsim_bench::{criterion_group, criterion_main};
use gmsim_gm::config::CollectiveWireMode;
use gmsim_testbed::{Algorithm, BarrierExperiment, Descriptor, Placement};
use nic_barrier::BarrierCosts;

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    let reliable = BarrierExperiment::new(16, Algorithm::Nic(Descriptor::Pe)).rounds(60, 10);
    let unreliable = reliable.wire(CollectiveWireMode::Unreliable);
    println!(
        "reliability: reliable {:.2}us vs unreliable {:.2}us",
        reliable.run().unwrap().mean_us,
        unreliable.run().unwrap().mean_us
    );
    g.bench_function("wire_reliable", |b| {
        b.iter(|| reliable.run().unwrap().mean_us)
    });
    g.bench_function("wire_unreliable", |b| {
        b.iter(|| unreliable.run().unwrap().mean_us)
    });

    let packed = BarrierExperiment::new(16, Algorithm::Nic(Descriptor::Pe))
        .placement(Placement::Packed { procs_per_node: 2 })
        .rounds(60, 10);
    let no_opt = packed.same_nic_opt(false);
    println!(
        "same-NIC: optimized {:.2}us vs loopback {:.2}us",
        packed.run().unwrap().mean_us,
        no_opt.run().unwrap().mean_us
    );
    g.bench_function("same_nic_on", |b| b.iter(|| packed.run().unwrap().mean_us));
    g.bench_function("same_nic_off", |b| b.iter(|| no_opt.run().unwrap().mean_us));

    let mut slow = BarrierCosts::GM_1_2_3;
    slow.record_cycles *= 4;
    let heavy = BarrierExperiment::new(16, Algorithm::Nic(Descriptor::Pe))
        .rounds(60, 10)
        .costs(slow);
    println!(
        "record cost: O(1) bits {:.2}us vs 4x record {:.2}us",
        reliable.run().unwrap().mean_us,
        heavy.run().unwrap().mean_us
    );
    g.bench_function("record_4x", |b| b.iter(|| heavy.run().unwrap().mean_us));
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
