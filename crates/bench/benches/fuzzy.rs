//! The §2.1 fuzzy-barrier study as a Criterion bench (experiment id
//! `fuzzy`): overlapped vs blocking compute-synchronize loops.

use gmsim_bench::harness::{BenchmarkId, Criterion};
use gmsim_bench::{criterion_group, criterion_main};
use gmsim_testbed::FuzzyExperiment;

fn bench_fuzzy(c: &mut Criterion) {
    let mut g = c.benchmark_group("fuzzy_barrier");
    g.sample_size(10);
    for compute in [20u64, 60, 120] {
        let fuzzy = FuzzyExperiment::new(8, compute, true);
        let blocking = FuzzyExperiment::new(8, compute, false);
        println!(
            "compute {compute:>3}us: fuzzy {:.2}us vs blocking {:.2}us",
            fuzzy.run().mean_us,
            blocking.run().mean_us
        );
        g.bench_with_input(BenchmarkId::new("overlap", compute), &fuzzy, |b, e| {
            b.iter(|| e.run().mean_us)
        });
        g.bench_with_input(BenchmarkId::new("blocking", compute), &blocking, |b, e| {
            b.iter(|| e.run().mean_us)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fuzzy);
criterion_main!(benches);
