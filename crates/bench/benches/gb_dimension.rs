//! The §6 GB tree-dimension sweep as a Criterion bench (experiment id
//! `gbdim`): the cost of finding the optimal dimension for one cluster
//! size, which is what the paper did for every GB data point.

use gmsim_bench::harness::{BenchmarkId, Criterion};
use gmsim_bench::{criterion_group, criterion_main};
use gmsim_testbed::{best_gb_dim, Algorithm, BarrierExperiment, Descriptor};

fn bench_gbdim(c: &mut Criterion) {
    let mut g = c.benchmark_group("gb_dimension_sweep");
    g.sample_size(10);
    for n in [4usize, 8, 16] {
        let base = BarrierExperiment::new(n, Algorithm::Nic(Descriptor::gb(1))).rounds(40, 5);
        let (dim, m) = best_gb_dim(base);
        println!(
            "n={n}: best NIC-GB dimension d={dim} at {:.2} us",
            m.mean_us
        );
        g.bench_with_input(BenchmarkId::new("nic_gb_best_dim", n), &base, |b, e| {
            b.iter(|| best_gb_dim(*e).0)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gbdim);
criterion_main!(benches);
