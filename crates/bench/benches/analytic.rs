//! Figure 2 / Equations 1–3 as a Criterion bench (experiment id `fig2`):
//! evaluates the analytic model and checks it against a simulation point.

use gmsim_bench::harness::Criterion;
use gmsim_bench::{criterion_group, criterion_main};
use gmsim_gm::GmConfig;
use gmsim_lanai::NicModel;
use gmsim_testbed::{Algorithm, BarrierExperiment, Descriptor};
use nic_barrier::CostModel;
use std::hint::black_box;

fn bench_analytic(c: &mut Criterion) {
    let model = CostModel::from_config(&GmConfig::paper_host(NicModel::LANAI_4_3));
    for n in [2usize, 4, 8, 16] {
        println!(
            "n={n:<2}: Eq1 host={:8.2}us  Eq2 nic={:8.2}us  Eq3 factor={:.2}x",
            model.host_barrier_us(n),
            model.nic_barrier_us(n),
            model.improvement(n)
        );
    }
    let sim = BarrierExperiment::new(16, Algorithm::Nic(Descriptor::Pe))
        .rounds(60, 10)
        .run()
        .unwrap();
    println!(
        "model vs simulation at n=16: {:.2} vs {:.2} us",
        model.nic_barrier_us(16),
        sim.mean_us
    );
    c.bench_function("eq1_eq2_eq3_evaluation", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in [2usize, 4, 8, 16, 64, 1024] {
                acc += model.host_barrier_us(black_box(n));
                acc += model.nic_barrier_us(black_box(n));
                acc += model.improvement(black_box(n));
            }
            acc
        })
    });
}

criterion_group!(benches, bench_analytic);
criterion_main!(benches);
