//! Substrate microbenchmarks: the building blocks under the figures —
//! scheduler throughput, fabric timing, reliability machinery, schedule
//! construction. These guard the simulator's own performance so the
//! figure-regeneration benches stay fast.

use gmsim_bench::harness::{BenchmarkId, Criterion, Throughput};
use gmsim_bench::{criterion_group, criterion_main};
use gmsim_des::{Scheduler, SimTime, Simulation};
use gmsim_myrinet::{Fabric, NicId, TopologyBuilder};
use gmsim_testbed::{run_all, Algorithm, BarrierExperiment, Descriptor};
use nic_barrier::schedule::{gb, pe};
use std::hint::black_box;

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_scheduler");
    for n in [1_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("schedule_and_fire", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Simulation::new(0u64);
                fn tick(w: &mut u64, s: &mut Scheduler<u64>) {
                    *w += 1;
                    s.schedule_in(SimTime::from_ns(10), |w: &mut u64, s| {
                        if w.is_multiple_of(2) {
                            let _ = (w, s);
                        }
                    });
                }
                for i in 0..n {
                    sim.scheduler_mut().schedule_fn(SimTime::from_ns(i), tick);
                }
                sim.run();
                sim.into_world()
            })
        });
    }
    g.finish();
}

fn bench_fabric(c: &mut Criterion) {
    let mut g = c.benchmark_group("myrinet_fabric");
    let topo = TopologyBuilder::single_switch(16);
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("send_10k_worms", |b| {
        b.iter(|| {
            let mut f = Fabric::new(topo.clone());
            let mut t = SimTime::ZERO;
            for i in 0..10_000usize {
                let d = f.send(NicId(i % 16), NicId((i + 1) % 16), 64, t);
                t = t.max(d.tx_done);
            }
            f.stats().sends
        })
    });
    g.finish();
}

fn bench_schedules(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_construction");
    for n in [16usize, 256, 4096] {
        g.bench_with_input(BenchmarkId::new("pe_all_ranks", n), &n, |b, &n| {
            b.iter(|| {
                let mut total = 0;
                for rank in 0..n {
                    total += pe::schedule(black_box(rank), n).len();
                }
                total
            })
        });
        g.bench_with_input(BenchmarkId::new("gb_all_ranks_d4", n), &n, |b, &n| {
            b.iter(|| {
                let mut total = 0;
                for rank in 0..n {
                    total += gb::children(black_box(rank), 4, n).len();
                }
                total
            })
        });
    }
    g.finish();
}

fn bench_parallel_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_sweep");
    g.sample_size(10);
    let exps: Vec<BarrierExperiment> = (1..8)
        .map(|d| BarrierExperiment::new(8, Algorithm::Nic(Descriptor::gb(d))).rounds(30, 5))
        .collect();
    g.bench_function("seven_gb_dims_parallel", |b| {
        b.iter(|| run_all(&exps).len())
    });
    g.bench_function("seven_gb_dims_serial", |b| {
        b.iter(|| exps.iter().map(|e| e.run().unwrap().mean_us).sum::<f64>())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_scheduler,
    bench_fabric,
    bench_schedules,
    bench_parallel_sweep
);
criterion_main!(benches);
