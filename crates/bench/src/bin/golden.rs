//! Regenerates the golden-equivalence fixture consumed by
//! `tests/golden_equivalence.rs`.
//!
//! ```text
//! cargo run --release -p gmsim-bench --bin golden > tests/data/golden_barriers.txt
//! ```
//!
//! The fixture pins the virtual-time barrier latency of every PE/GB
//! configuration with N ∈ 2..=32 and tree dimension ∈ 1..=4, on both the
//! NIC-side and host-side implementations. It was first captured from the
//! pre-IR (hand-inlined) state machines, so the schedule-IR interpreters
//! are held to *identical* virtual time, not merely close. Values are
//! printed with round-trip precision (`{:.17e}`) — the test compares
//! parsed f64s for exact equality.

use gmsim_testbed::{Algorithm, BarrierExperiment, Descriptor};

fn main() {
    println!("# family n dim mean_us  (rounds=40 warmup=5, LANai 4.3, no skew)");
    for n in 2usize..=32 {
        for (family, alg) in [
            ("nic-pe", Algorithm::Nic(Descriptor::Pe)),
            ("host-pe", Algorithm::Host(Descriptor::Pe)),
        ] {
            let m = BarrierExperiment::new(n, alg).rounds(40, 5).run().unwrap();
            println!("{family} {n} 0 {:.17e}", m.mean_us);
        }
        for dim in 1usize..=4 {
            for (family, alg) in [
                ("nic-gb", Algorithm::Nic(Descriptor::gb(dim))),
                ("host-gb", Algorithm::Host(Descriptor::gb(dim))),
            ] {
                let m = BarrierExperiment::new(n, alg).rounds(40, 5).run().unwrap();
                println!("{family} {n} {dim} {:.17e}", m.mean_us);
            }
        }
    }
}
