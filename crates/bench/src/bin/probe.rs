//! Calibration probe: prints raw simulated numbers next to the paper's
//! targets while tuning firmware cost constants. Not part of the figure
//! reproduction (that is `repro`); kept as a diagnostic tool.

use gmsim_lanai::NicModel;
use gmsim_testbed::{Algorithm, BarrierExperiment, Descriptor};

fn main() {
    println!("== one-shot vs steady-state, LANai 4.3, NIC-PE ==");
    for n in [2usize, 4, 8, 16] {
        let m = BarrierExperiment::new(n, Algorithm::Nic(Descriptor::Pe))
            .rounds(120, 20)
            .run()
            .unwrap();
        println!(
            "n={n:2}  first={:8.2}us  steady={:8.2}us  (stddev {:.3})",
            m.first_round_us,
            m.mean_us,
            m.per_round.stddev()
        );
    }
    println!("== host-PE LANai 4.3 ==");
    for n in [2usize, 4, 8, 16] {
        let m = BarrierExperiment::new(n, Algorithm::Host(Descriptor::Pe))
            .rounds(120, 20)
            .run()
            .unwrap();
        println!(
            "n={n:2}  first={:8.2}us  steady={:8.2}us",
            m.first_round_us, m.mean_us
        );
    }
    println!("== LANai 7.2, 8 nodes ==");
    for alg in [
        Algorithm::Nic(Descriptor::Pe),
        Algorithm::Host(Descriptor::Pe),
    ] {
        let m = BarrierExperiment::new(8, alg)
            .nic(NicModel::LANAI_7_2)
            .rounds(120, 20)
            .run()
            .unwrap();
        println!(
            "{:8}  first={:8.2}us  steady={:8.2}us",
            alg.name(),
            m.first_round_us,
            m.mean_us
        );
    }
    println!("== GB best-dimension, LANai 4.3 ==");
    for n in [2usize, 4, 8, 16] {
        let (nd, nm) = gmsim_testbed::best_gb_dim(
            BarrierExperiment::new(n, Algorithm::Nic(Descriptor::gb(1))).rounds(80, 10),
        );
        let (hd, hm) = gmsim_testbed::best_gb_dim(
            BarrierExperiment::new(n, Algorithm::Host(Descriptor::gb(1))).rounds(80, 10),
        );
        println!(
            "n={n:2}  NIC-GB d={nd} {:8.2}us   host-GB d={hd} {:8.2}us   factor {:.2}",
            nm.mean_us,
            hm.mean_us,
            hm.mean_us / nm.mean_us
        );
    }
    println!(
        "targets: NIC-PE(16)=102.14 host-PE(16)=181.8 | 7.2: NIC-PE(8)=49.25 host-PE(8)=90.24"
    );
    println!("targets: NIC-GB(16)=152.27 factor 1.46; NIC-GB(2) worse than host-GB(2)");
}
