//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p gmsim-bench --bin repro -- all
//! cargo run --release -p gmsim-bench --bin repro -- fig5a fig5b headline
//! cargo run --release -p gmsim-bench --bin repro -- breakdown
//! cargo run --release -p gmsim-bench --bin repro -- --trace trace.json
//! cargo run --release -p gmsim-bench --bin repro -- --smoke scale
//! ```
//!
//! Experiment ids (see DESIGN.md §5): fig5a fig5b fig5c fig5d fig2 gbdim
//! headline scale layer fuzzy ablate mpi util dissem scan breakdown faults
//! payload advisor fabric.
//!
//! `--trace <path>` runs a 16-node NIC-based PE barrier with structured
//! tracing on and writes a chrome://tracing (Perfetto-loadable) JSON file.

use gmsim_gm::config::CollectiveWireMode;
use gmsim_gm::GmConfig;
use gmsim_lanai::NicModel;
use gmsim_testbed::table::{factor, us};
use gmsim_testbed::{
    best_gb_dim, run_all, Algorithm, BarrierExperiment, Descriptor, FuzzyExperiment,
    MultiTenantExperiment, Placement, Table,
};
use nic_barrier::{BarrierCosts, CostModel};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = if let Some(i) = args.iter().position(|a| a == "--smoke") {
        args.remove(i);
        true
    } else {
        false
    };
    let mut trace_path = None;
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        if i + 1 >= args.len() {
            eprintln!("--trace needs an output path");
            std::process::exit(2);
        }
        trace_path = Some(args.remove(i + 1));
        args.remove(i);
    }
    if let Some(path) = &trace_path {
        export_chrome_trace(path);
    }
    let ids: Vec<&str> =
        if args.iter().any(|a| a == "all") || (args.is_empty() && trace_path.is_none()) {
            vec![
                "fig5a",
                "fig5b",
                "fig5c",
                "fig5d",
                "fig2",
                "gbdim",
                "headline",
                "scale",
                "layer",
                "fuzzy",
                "ablate",
                "mpi",
                "util",
                "dissem",
                "scan",
                "breakdown",
                "faults",
                "multitenant",
                "payload",
                "advisor",
                "fabric",
            ]
        } else {
            args.iter().map(String::as_str).collect()
        };
    let mut ok = true;
    for id in ids {
        match id {
            "fig5a" => fig5_latency(NicModel::LANAI_4_3, &[2, 4, 8, 16], "fig5a"),
            "fig5b" => fig5_improvement(NicModel::LANAI_4_3, &[2, 4, 8, 16], "fig5b"),
            "fig5c" => fig5_latency(NicModel::LANAI_7_2, &[2, 4, 8], "fig5c"),
            "fig5d" => fig5_improvement(NicModel::LANAI_7_2, &[2, 4, 8], "fig5d"),
            "fig2" => fig2_timing_model(),
            "gbdim" => gb_dimension_sweep(),
            "headline" => headline(),
            "scale" => ok = scaling_study(smoke) && ok,
            "layer" => layer_study(),
            "fuzzy" => fuzzy_study(),
            "ablate" => ablations(),
            "mpi" => mpi_study(),
            "util" => util_study(),
            "dissem" => dissemination_study(),
            "scan" => scan_study(),
            "breakdown" => breakdown(),
            "faults" => faults_study(),
            "multitenant" => ok = multitenant_study(smoke) && ok,
            "payload" => ok = payload_study(smoke) && ok,
            "advisor" => ok = advisor_study(smoke) && ok,
            "fabric" => ok = fabric_study(smoke) && ok,
            "trace" => trace_one_barrier(),
            other => eprintln!("unknown experiment id: {other}"),
        }
    }
    if !ok {
        std::process::exit(1);
    }
}

fn measure(e: BarrierExperiment) -> f64 {
    e.run().unwrap().mean_us
}

/// The four curves of Figure 5(a)/(c): barrier latency vs nodes.
fn fig5_latency(nic: NicModel, sizes: &[usize], id: &str) {
    println!("\n=== {id}: barrier latency vs nodes, {} ===", nic.name);
    let mut t = Table::new(vec![
        "nodes",
        "NIC-PE (us)",
        "NIC-GB best (us)",
        "host-PE (us)",
        "host-GB best (us)",
    ]);
    for &n in sizes {
        let nic_pe = measure(BarrierExperiment::new(n, Algorithm::Nic(Descriptor::Pe)).nic(nic));
        let host_pe = measure(BarrierExperiment::new(n, Algorithm::Host(Descriptor::Pe)).nic(nic));
        let (nd, ngb) =
            best_gb_dim(BarrierExperiment::new(n, Algorithm::Nic(Descriptor::gb(1))).nic(nic));
        let (hd, hgb) =
            best_gb_dim(BarrierExperiment::new(n, Algorithm::Host(Descriptor::gb(1))).nic(nic));
        t.row(vec![
            n.to_string(),
            us(nic_pe),
            format!("{} (d={nd})", us(ngb.mean_us)),
            us(host_pe),
            format!("{} (d={hd})", us(hgb.mean_us)),
        ]);
    }
    print!("{}", t.render());
}

/// Figure 5(b)/(d): factor of improvement vs nodes.
fn fig5_improvement(nic: NicModel, sizes: &[usize], id: &str) {
    println!(
        "\n=== {id}: factor of improvement (host / NIC), {} ===",
        nic.name
    );
    let mut t = Table::new(vec!["nodes", "PE factor", "GB factor"]);
    for &n in sizes {
        let nic_pe = measure(BarrierExperiment::new(n, Algorithm::Nic(Descriptor::Pe)).nic(nic));
        let host_pe = measure(BarrierExperiment::new(n, Algorithm::Host(Descriptor::Pe)).nic(nic));
        let (_, ngb) =
            best_gb_dim(BarrierExperiment::new(n, Algorithm::Nic(Descriptor::gb(1))).nic(nic));
        let (_, hgb) =
            best_gb_dim(BarrierExperiment::new(n, Algorithm::Host(Descriptor::gb(1))).nic(nic));
        t.row(vec![
            n.to_string(),
            factor(host_pe / nic_pe),
            factor(hgb.mean_us / ngb.mean_us),
        ]);
    }
    print!("{}", t.render());
}

/// Figure 2 / Equations 1–3: analytic component model vs simulation.
fn fig2_timing_model() {
    println!("\n=== fig2: timing model components and Eq.1-3 vs simulation ===");
    // The paper's Figure 2 timing diagrams (8-node example), from the model.
    let m = CostModel::from_config(&GmConfig::paper_host(NicModel::LANAI_4_3));
    print!("{}", gmsim_testbed::Diagram::host_barrier(&m, 8).render(96));
    print!("{}", gmsim_testbed::Diagram::nic_barrier(&m, 8).render(96));
    for nic in [NicModel::LANAI_4_3, NicModel::LANAI_7_2] {
        let m = CostModel::from_config(&GmConfig::paper_host(nic));
        println!(
            "{}: Send={} SDMA={} Network={} Recv={} RDMA={} HRecv={} (us)",
            nic.name,
            us(m.send_us),
            us(m.sdma_us),
            us(m.network_us),
            us(m.recv_us),
            us(m.rdma_us),
            us(m.hrecv_us)
        );
    }
    let mut t = Table::new(vec![
        "nic",
        "nodes",
        "Eq1 host (us)",
        "sim host (us)",
        "Eq2 nic (us)",
        "sim nic (us)",
        "Eq3 factor",
        "sim factor",
    ]);
    for nic in [NicModel::LANAI_4_3, NicModel::LANAI_7_2] {
        let m = CostModel::from_config(&GmConfig::paper_host(nic));
        for n in [2usize, 4, 8, 16] {
            if nic == NicModel::LANAI_7_2 && n == 16 {
                continue; // the paper has only eight 7.2 cards
            }
            let sim_host =
                measure(BarrierExperiment::new(n, Algorithm::Host(Descriptor::Pe)).nic(nic));
            let sim_nic =
                measure(BarrierExperiment::new(n, Algorithm::Nic(Descriptor::Pe)).nic(nic));
            t.row(vec![
                nic.name.to_string(),
                n.to_string(),
                us(m.host_barrier_us(n)),
                us(sim_host),
                us(m.nic_barrier_us(n)),
                us(sim_nic),
                factor(m.improvement(n)),
                factor(sim_host / sim_nic),
            ]);
        }
    }
    print!("{}", t.render());
}

/// §6 ¶2: the GB tree-dimension sweep behind "the latencies reported in the
/// graphs are the minimum latencies over all dimensions".
fn gb_dimension_sweep() {
    println!("\n=== gbdim: GB latency vs tree dimension, LANai 4.3 ===");
    for n in [4usize, 8, 16] {
        let mut t = Table::new(vec!["dim", "NIC-GB (us)", "host-GB (us)"]);
        let nic_exps: Vec<_> = (1..n)
            .map(|d| BarrierExperiment::new(n, Algorithm::Nic(Descriptor::gb(d))))
            .collect();
        let host_exps: Vec<_> = (1..n)
            .map(|d| BarrierExperiment::new(n, Algorithm::Host(Descriptor::gb(d))))
            .collect();
        let nic_res = run_all(&nic_exps);
        let host_res = run_all(&host_exps);
        for (i, d) in (1..n).enumerate() {
            t.row(vec![
                d.to_string(),
                us(nic_res[i].mean_us),
                us(host_res[i].mean_us),
            ]);
        }
        println!("-- {n} nodes --");
        print!("{}", t.render());
    }
}

/// The in-text headline numbers (§1/§6) against our measurements.
fn headline() {
    println!("\n=== headline: paper's published numbers vs this reproduction ===");
    let l43 = NicModel::LANAI_4_3;
    let l72 = NicModel::LANAI_7_2;
    let nic_pe_16 = measure(BarrierExperiment::new(16, Algorithm::Nic(Descriptor::Pe)).nic(l43));
    let host_pe_16 = measure(BarrierExperiment::new(16, Algorithm::Host(Descriptor::Pe)).nic(l43));
    let nic_pe_8_43 = measure(BarrierExperiment::new(8, Algorithm::Nic(Descriptor::Pe)).nic(l43));
    let host_pe_8_43 = measure(BarrierExperiment::new(8, Algorithm::Host(Descriptor::Pe)).nic(l43));
    let (_, nic_gb_16) =
        best_gb_dim(BarrierExperiment::new(16, Algorithm::Nic(Descriptor::gb(1))).nic(l43));
    let (_, host_gb_16) =
        best_gb_dim(BarrierExperiment::new(16, Algorithm::Host(Descriptor::gb(1))).nic(l43));
    let nic_pe_8_72 = measure(BarrierExperiment::new(8, Algorithm::Nic(Descriptor::Pe)).nic(l72));
    let host_pe_8_72 = measure(BarrierExperiment::new(8, Algorithm::Host(Descriptor::Pe)).nic(l72));
    let mut t = Table::new(vec!["metric", "paper", "measured", "error"]);
    let mut row = |name: &str, paper: f64, got: f64, is_factor: bool| {
        let err = (got - paper) / paper * 100.0;
        t.row(vec![
            name.to_string(),
            if is_factor { factor(paper) } else { us(paper) },
            if is_factor { factor(got) } else { us(got) },
            format!("{err:+.1}%"),
        ]);
    };
    row("NIC-PE 16n LANai4.3 (us)", 102.14, nic_pe_16, false);
    row("NIC-GB 16n LANai4.3 (us)", 152.27, nic_gb_16.mean_us, false);
    row(
        "PE improvement 16n L4.3",
        1.78,
        host_pe_16 / nic_pe_16,
        true,
    );
    row(
        "GB improvement 16n L4.3",
        1.46,
        host_gb_16.mean_us / nic_gb_16.mean_us,
        true,
    );
    row(
        "PE improvement 8n L4.3",
        1.66,
        host_pe_8_43 / nic_pe_8_43,
        true,
    );
    row("NIC-PE 8n LANai7.2 (us)", 49.25, nic_pe_8_72, false);
    row("host-PE 8n LANai7.2 (us)", 90.24, host_pe_8_72, false);
    row(
        "PE improvement 8n L7.2",
        1.83,
        host_pe_8_72 / nic_pe_8_72,
        true,
    );
    print!("{}", t.render());
}

/// §2.2's scaling prediction taken far beyond the paper's testbed: barrier
/// latency vs cluster size for PE, GB (d = 8), and dissemination, NIC- and
/// host-based, on both LANai generations, from 32 up to 4096 nodes (the
/// two-level Clos through 1024, the three-level Clos beyond). Every point
/// is cross-checked against the analytic scaling forms in
/// `nic_barrier::analytic` within the stated tolerances
/// ([`nic_barrier::PE_MODEL_TOLERANCE`] / [`nic_barrier::GB_MODEL_TOLERANCE`]);
/// any violation is reported inline with the offending configuration and
/// the study exits nonzero. The grid runs through
/// the parallel [`gmsim_testbed::SweepEngine`] with a deterministic
/// per-cell seed; the 2048/4096-node rows ride the conservative parallel
/// DES engine (DESIGN.md §15). A closing table times one N = 1024 cell
/// serial vs 2/4/8 PDES workers and gates their bit-identity. Results —
/// including host core count and the worker counts used — land in
/// `BENCH_scale.json` for CI. `--smoke` caps the sweep at 256 nodes plus
/// one tiny 2048-node PDES cell (the CI scale-smoke and pdes-smoke jobs).
///
/// Returns `false` if any point violates its tolerance or any parallel
/// run diverges from serial.
fn scaling_study(smoke: bool) -> bool {
    use gmsim_testbed::{cell_seed, SweepEngine};
    use nic_barrier::{GB_MODEL_TOLERANCE, PE_MODEL_TOLERANCE};
    use std::time::Instant;

    /// Base seed for the per-cell seed stream; arbitrary but fixed so the
    /// study is reproducible run-to-run and across worker counts.
    const SCALE_SEED: u64 = 0x5ca1_ab1e_0000_0001;

    let host_cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    // Workers for the in-simulation parallel engine. Capped at 8 (the
    // widest configuration the speedup table measures); on a single-core
    // host this is 1 and `build_parallel` falls back to the serial
    // scheduler — the results are bit-identical either way.
    let pdes_threads = host_cores.min(8);

    println!(
        "\n=== scale{}: barrier latency vs nodes, 32..{}, vs analytic model ===",
        if smoke { " (smoke)" } else { "" },
        if smoke { "256 (+2048 pdes)" } else { "4096" }
    );
    let grid: &[usize] = if smoke {
        &[32, 64, 128, 256]
    } else {
        &[32, 64, 128, 256, 512, 1024]
    };
    // Beyond the sweep grid: cluster sizes that only the parallel engine
    // makes practical. Fewer rounds (the steady state is reached within
    // two), and in smoke mode a single tiny PE cell keeps the CI path hot.
    let big: &[usize] = if smoke { &[2048] } else { &[2048, 4096] };
    // (algorithm, json key, is_gb) — GB points get the looser tolerance.
    let algs: [(Algorithm, &str, bool); 6] = [
        (Algorithm::Nic(Descriptor::Pe), "nic_pe", false),
        (Algorithm::Host(Descriptor::Pe), "host_pe", false),
        (Algorithm::Nic(Descriptor::gb(8)), "nic_gb8", true),
        (Algorithm::Host(Descriptor::gb(8)), "host_gb8", true),
        (
            Algorithm::Nic(Descriptor::dissemination()),
            "nic_dissem",
            false,
        ),
        (
            Algorithm::Host(Descriptor::dissemination()),
            "host_dissem",
            false,
        ),
    ];
    let mut cells = Vec::new();
    for nic in [NicModel::LANAI_4_3, NicModel::LANAI_7_2] {
        for &n in grid {
            for &(alg, key, is_gb) in &algs {
                let mut e = BarrierExperiment::new(n, alg).nic(nic).rounds(30, 5);
                e.seed = cell_seed(SCALE_SEED, cells.len() as u64);
                cells.push((nic, n, key, is_gb, e));
            }
        }
    }
    for nic in [NicModel::LANAI_4_3, NicModel::LANAI_7_2] {
        for &n in big {
            for &(alg, key, is_gb) in &algs {
                if smoke && (nic != NicModel::LANAI_4_3 || key != "nic_pe") {
                    continue;
                }
                let (rounds, warmup) = if smoke { (6, 1) } else { (12, 2) };
                let mut e = BarrierExperiment::new(n, alg)
                    .nic(nic)
                    .rounds(rounds, warmup)
                    .parallel(pdes_threads);
                e.seed = cell_seed(SCALE_SEED, cells.len() as u64);
                cells.push((nic, n, key, is_gb, e));
            }
        }
    }
    let sweep = SweepEngine::new();
    let sweep_workers = sweep.effective_workers(cells.len());
    let measured = sweep.run(&cells, |_, (_, _, key, _, e)| {
        e.run()
            .unwrap_or_else(|err| panic!("scale cell {key} n={}: {err}", e.procs))
            .mean_us
    });

    let mut ok = true;
    let mut json_rows = Vec::new();
    let mut t = Table::new(vec![
        "nic",
        "nodes",
        "algorithm",
        "sim (us)",
        "model (us)",
        "err",
        "tol",
        "ok",
    ]);
    for ((nic, n, key, is_gb, _), meas) in cells.iter().zip(&measured) {
        let m = CostModel::from_config(&GmConfig::paper_host(*nic));
        let model = match *key {
            "nic_pe" => m.nic_pe_us(*n),
            "host_pe" => m.host_pe_us(*n),
            "nic_gb8" => m.nic_gb_us(*n, 8),
            "host_gb8" => m.host_gb_us(*n, 8),
            "nic_dissem" => m.nic_dissemination_us(*n),
            "host_dissem" => m.host_dissemination_us(*n),
            other => unreachable!("unknown scale key {other}"),
        };
        let tol = if *is_gb {
            GB_MODEL_TOLERANCE
        } else {
            PE_MODEL_TOLERANCE
        };
        let rel = (model - meas) / meas;
        let pass = rel.abs() <= tol;
        ok &= pass;
        if !pass {
            eprintln!(
                "scale: FAIL {} n={} {}: model {:.3} us vs sim {:.3} us \
                 ({:+.1}% exceeds the ±{:.0}% tolerance)",
                nic.name,
                n,
                key,
                model,
                meas,
                rel * 100.0,
                tol * 100.0
            );
        }
        t.row(vec![
            nic.name.to_string(),
            n.to_string(),
            key.to_string(),
            us(*meas),
            us(model),
            format!("{:+.1}%", rel * 100.0),
            format!("{:.0}%", tol * 100.0),
            if pass { "yes" } else { "NO" }.to_string(),
        ]);
        json_rows.push(format!(
            concat!(
                "    {{\"nic\": \"{nic}\", \"clock_mhz\": {mhz}, \"nodes\": {n}, ",
                "\"algorithm\": \"{key}\", \"measured_us\": {meas:.3}, ",
                "\"model_us\": {model:.3}, \"rel_err\": {rel:.4}, ",
                "\"tolerance\": {tol}, \"pass\": {pass}}}"
            ),
            nic = nic.name,
            mhz = nic.clock.mhz(),
            n = n,
            key = key,
            meas = meas,
            model = model,
            rel = rel,
            tol = tol,
            pass = pass,
        ));
    }
    print!("{}", t.render());
    println!("(NIC-PE's lead over host-PE keeps widening with log2 N, as §2.2 predicts)");

    // Wall-clock speedup of the conservative parallel engine on one run:
    // the same experiment, serial vs 2/4/8 workers. The virtual-time mean
    // must be bit-identical at every worker count (the DESIGN.md §15
    // contract); wall-clock speedup depends on the host — with
    // `host_cores` = 1 every worker count shares the core and the table
    // documents slowdown, not speedup.
    let speed_n = if smoke { 64 } else { 1024 };
    let (srounds, swarmup) = if smoke { (10, 2) } else { (20, 4) };
    println!("\n--- pdes speedup: NIC-PE {speed_n} nodes, serial vs parallel workers ---");
    let mut st = Table::new(vec![
        "workers",
        "wall (s)",
        "speedup",
        "mean (us)",
        "bit-identical",
    ]);
    let mut speed_rows = Vec::new();
    let base =
        BarrierExperiment::new(speed_n, Algorithm::Nic(Descriptor::Pe)).rounds(srounds, swarmup);
    let mut serial_wall = None;
    let mut serial_mean: Option<f64> = None;
    for &threads in &[1usize, 2, 4, 8] {
        let start = Instant::now();
        let m = base
            .parallel(threads)
            .run()
            .unwrap_or_else(|err| panic!("speedup cell t={threads}: {err}"));
        let wall = start.elapsed().as_secs_f64();
        let base_wall = *serial_wall.get_or_insert(wall);
        let reference = *serial_mean.get_or_insert(m.mean_us);
        let identical = m.mean_us.to_bits() == reference.to_bits();
        if !identical {
            eprintln!(
                "scale: FAIL pdes t={threads} n={speed_n}: mean {:.17e} us \
                 diverged from serial {:.17e} us",
                m.mean_us, reference
            );
        }
        ok &= identical;
        let speedup = base_wall / wall;
        st.row(vec![
            threads.to_string(),
            format!("{wall:.2}"),
            factor(speedup),
            us(m.mean_us),
            if identical { "yes" } else { "NO" }.to_string(),
        ]);
        speed_rows.push(format!(
            concat!(
                "    {{\"nodes\": {n}, \"threads\": {threads}, \"wall_s\": {wall:.3}, ",
                "\"speedup\": {speedup:.3}, \"mean_us\": {mean:.4}, ",
                "\"bit_identical\": {identical}}}"
            ),
            n = speed_n,
            threads = threads,
            wall = wall,
            speedup = speedup,
            mean = m.mean_us,
            identical = identical,
        ));
    }
    print!("{}", st.render());

    let json = format!(
        "{{\n  \"schema\": \"gmsim-scale/v2\",\n  \"experiment\": \
         \"latency_vs_nodes_vs_analytic_model\",\n  \"smoke\": {},\n  \
         \"host_cores\": {},\n  \"sweep_workers\": {},\n  \"pdes_threads\": {},\n  \
         \"points\": [\n{}\n  ],\n  \"speedup\": [\n{}\n  ]\n}}\n",
        smoke,
        host_cores,
        sweep_workers,
        pdes_threads,
        json_rows.join(",\n"),
        speed_rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(out, &json).expect("write BENCH_scale.json");
    println!("wrote {}", out);
    if !ok {
        eprintln!("scale: at least one point violated its model tolerance");
    }
    ok
}

/// §2.2's layering prediction: "as the host send overhead increases, say
/// from the addition of another programming layer such as MPI, the factor
/// of improvement will increase".
fn layer_study() {
    println!("\n=== layer: factor of improvement vs host-layer overhead, 16n LANai 4.3 ===");
    let mut t = Table::new(vec![
        "layer factor",
        "host-PE (us)",
        "NIC-PE (us)",
        "improvement",
    ]);
    for mult in [1.0f64, 1.5, 2.0, 3.0, 4.0] {
        let host = measure(BarrierExperiment::new(16, Algorithm::Host(Descriptor::Pe)).layer(mult));
        let nic = measure(BarrierExperiment::new(16, Algorithm::Nic(Descriptor::Pe)).layer(mult));
        t.row(vec![
            format!("{mult:.1}x"),
            us(host),
            us(nic),
            factor(host / nic),
        ]);
    }
    print!("{}", t.render());
}

/// §2.1's fuzzy barrier: computation hidden inside the NIC barrier.
fn fuzzy_study() {
    println!("\n=== fuzzy: compute overlapped with the NIC barrier, 8n LANai 4.3 ===");
    let mut t = Table::new(vec![
        "compute (us)",
        "blocking period (us)",
        "fuzzy period (us)",
        "hidden (us)",
    ]);
    for compute in [0u64, 20, 40, 60, 80, 120] {
        let blocking = FuzzyExperiment::new(8, compute, false).run().mean_us;
        let fuzzy = FuzzyExperiment::new(8, compute, true).run().mean_us;
        t.row(vec![
            compute.to_string(),
            us(blocking),
            us(fuzzy),
            us(blocking - fuzzy),
        ]);
    }
    print!("{}", t.render());
}

/// §8 / CAC'01 follow-up: MPI_Barrier bound to the NIC-based vs host-based
/// barrier under an MPI-like layer, raw barrier latency and a BSP app.
fn mpi_study() {
    use gmsim_des::SimTime;
    use gmsim_gm::cluster::ClusterBuilder;
    use gmsim_mpi::{script, MpiConfig, MpiProcess, NOTE_MPI_DONE};
    use nic_barrier::{BarrierExtension, BarrierGroup};

    let run = |n: usize, config: MpiConfig, barriers: u64| -> f64 {
        let group = BarrierGroup::one_per_node(n, 1);
        let mut b = ClusterBuilder::new(n)
            .config(GmConfig::paper_host(NicModel::LANAI_4_3))
            .extension(BarrierExtension::factory());
        for rank in 0..n {
            b = b.program(
                group.member(rank),
                Box::new(MpiProcess::new(
                    group.clone(),
                    rank,
                    config,
                    script().repeat(barriers, |s| s.barrier()).build(),
                )),
                SimTime::ZERO,
            );
        }
        let mut sim = b.build();
        sim.run();
        sim.world()
            .notes
            .iter()
            .filter(|nt| nt.tag == NOTE_MPI_DONE)
            .map(|nt| nt.at)
            .max()
            .expect("mpi run did not finish")
            .as_us_f64()
            / barriers as f64
    };
    println!("\n=== mpi: MPI_Barrier over GM, NIC-bound vs host-bound (per-barrier us) ===");
    let mut t = Table::new(vec![
        "nodes",
        "MPI host-based (us)",
        "MPI NIC-based (us)",
        "factor",
        "raw-GM factor",
    ]);
    for n in [2usize, 4, 8, 16] {
        let host = run(n, MpiConfig::host_based(), 60);
        let nic = run(n, MpiConfig::nic_based(), 60);
        let raw_host = measure(BarrierExperiment::new(n, Algorithm::Host(Descriptor::Pe)));
        let raw_nic = measure(BarrierExperiment::new(n, Algorithm::Nic(Descriptor::Pe)));
        t.row(vec![
            n.to_string(),
            us(host),
            us(nic),
            factor(host / nic),
            factor(raw_host / raw_nic),
        ]);
    }
    print!("{}", t.render());
    println!("(the MPI factor exceeding the raw-GM factor is the paper's §2.2/§8 prediction)");
}

/// §1's host-utilization claim: "Because the barrier algorithm is
/// performed at the NIC, the processor is free to perform computation
/// while polling for the barrier to complete."
fn util_study() {
    use gmsim_des::SimTime;
    use gmsim_gm::cluster::ClusterBuilder;
    use nic_barrier::programs::NicBarrierLoop;
    use nic_barrier::{BarrierExtension, BarrierGroup, HostBarrierLoop};

    // Run a barrier stream and report how much host time each barrier
    // costs (the rest is available to the application).
    let run = |n: usize, nic_based: bool, rounds: u64| -> (f64, f64) {
        let group = BarrierGroup::one_per_node(n, 1);
        let mut b = ClusterBuilder::new(n)
            .config(GmConfig::paper_host(NicModel::LANAI_4_3))
            .extension(BarrierExtension::factory());
        for rank in 0..n {
            let prog: Box<dyn gmsim_gm::HostProgram> = if nic_based {
                Box::new(NicBarrierLoop::new(
                    group.clone(),
                    rank,
                    Descriptor::Pe,
                    rounds,
                ))
            } else {
                Box::new(HostBarrierLoop::new(&group, rank, Descriptor::Pe, rounds))
            };
            b = b.program(group.member(rank), prog, SimTime::ZERO);
        }
        let mut sim = b.build();
        sim.run();
        let cl = sim.world();
        let total = cl
            .notes
            .iter()
            .map(|nt| nt.at)
            .max()
            .unwrap_or(SimTime::ZERO)
            .as_us_f64();
        // Host busy time on node 0: send initiations + event processing.
        let cfg = cl.config();
        let h = &cl.nodes[0].host.stats;
        let busy = h.sends as f64 * cfg.host_send_overhead.as_us_f64()
            + h.events as f64 * cfg.host_recv_overhead.as_us_f64()
            + h.compute.as_us_f64();
        (busy / rounds as f64, total / rounds as f64)
    };
    println!("\n=== util: host processor cost per barrier (16 nodes, LANai 4.3) ===");
    let mut t = Table::new(vec![
        "implementation",
        "host busy (us/barrier)",
        "period (us)",
        "host free",
    ]);
    for (name, nic_based) in [("NIC-based PE", true), ("host-based PE", false)] {
        let (busy, period) = run(16, nic_based, 120);
        t.row(vec![
            name.to_string(),
            us(busy),
            us(period),
            format!("{:.0}%", (1.0 - busy / period) * 100.0),
        ]);
    }
    print!("{}", t.render());
    println!("(the freed host time is what the fuzzy barrier converts into computation)");
}

/// Diagnostic: the measured wire-event interleaving of one 4-node
/// NIC-based PE barrier (every packet send and reception, in virtual-time
/// order). Not a paper figure; it shows the §5.2 firmware chaining live.
fn trace_one_barrier() {
    use gmsim_des::SimTime;
    use gmsim_gm::cluster::ClusterBuilder;
    use nic_barrier::programs::NicBarrierLoop;
    use nic_barrier::{BarrierExtension, BarrierGroup};

    println!("\n=== trace: one 4-node NIC-based PE barrier, every wire event ===");
    let group = BarrierGroup::one_per_node(4, 1);
    let mut b = ClusterBuilder::new(4)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .trace(4096)
        .extension(BarrierExtension::factory());
    for rank in 0..4 {
        b = b.program(
            group.member(rank),
            Box::new(NicBarrierLoop::new(group.clone(), rank, Descriptor::Pe, 1)),
            SimTime::ZERO,
        );
    }
    let mut sim = b.build();
    sim.run();
    let cl = sim.world();
    for rec in cl.tracer.snapshot() {
        println!("  {rec}");
    }
    for note in &cl.notes {
        println!(
            "  [{:>12}] host{}: barrier complete",
            note.at.as_ns(),
            note.node.0
        );
    }
}

/// Extension beyond the paper: dissemination barrier vs PE, NIC- and
/// host-based. Dissemination's send/receive peers differ per round, so it
/// pays one extra half-round of skew tolerance but no fold steps at
/// non-powers of two.
fn dissemination_study() {
    println!("\n=== dissem: dissemination barrier vs PE (extension), LANai 4.3 ===");
    let mut t = Table::new(vec![
        "procs",
        "NIC-PE (us)",
        "NIC-dissem (us)",
        "host-PE (us)",
        "host-dissem (us)",
    ]);
    for n in [2usize, 3, 4, 6, 8, 12, 16] {
        let cells = vec![
            n.to_string(),
            us(measure(BarrierExperiment::new(
                n,
                Algorithm::Nic(Descriptor::Pe),
            ))),
            us(measure(BarrierExperiment::new(
                n,
                Algorithm::Nic(Descriptor::dissemination()),
            ))),
            us(measure(BarrierExperiment::new(
                n,
                Algorithm::Host(Descriptor::Pe),
            ))),
            us(measure(BarrierExperiment::new(
                n,
                Algorithm::Host(Descriptor::dissemination()),
            ))),
        ];
        t.row(cells);
    }
    print!("{}", t.render());
    println!("(at non-powers of two dissemination avoids PE's fold steps)");
}

/// Extension beyond the paper: NIC-offloaded inclusive prefix scan
/// (Hillis–Steele) through the same compiled-schedule path, vs the
/// host-based interpretation of the identical IR and the plain barrier.
fn scan_study() {
    use nic_barrier::ReduceOp;

    println!("\n=== scan: NIC-offloaded MPI_Scan vs host-based (extension), LANai 4.3 ===");
    let mut t = Table::new(vec![
        "procs",
        "NIC-scan (us)",
        "host-scan (us)",
        "factor",
        "NIC-PE barrier (us)",
    ]);
    let op = ReduceOp::Sum;
    for n in [2usize, 3, 4, 6, 8, 12, 16] {
        let nic = measure(BarrierExperiment::new(
            n,
            Algorithm::Nic(Descriptor::scan(op)),
        ));
        let host = measure(BarrierExperiment::new(
            n,
            Algorithm::Host(Descriptor::scan(op)),
        ));
        let pe = measure(BarrierExperiment::new(n, Algorithm::Nic(Descriptor::Pe)));
        t.row(vec![
            n.to_string(),
            us(nic),
            us(host),
            factor(host / nic),
            us(pe),
        ]);
    }
    print!("{}", t.render());
    println!("(scan shares PE's exchange structure, so its latency tracks the barrier)");
}

/// Beyond the paper: barrier completion latency vs injected drop rate on
/// the reliable stream — the cost of GM's go-back-N recovery with the
/// adaptive RTO. Emits `BENCH_faults.json` alongside the table so CI can
/// archive the curve.
fn faults_study() {
    use gmsim_des::Counter;
    use gmsim_myrinet::FaultPlan;

    println!("\n=== faults: NIC-PE barrier latency vs drop rate, 8n LANai 4.3 ===");
    let mut t = Table::new(vec![
        "drop rate",
        "mean (us)",
        "drops",
        "retx",
        "rto backoffs",
        "timer cancels",
    ]);
    let rates = [0.0f64, 0.02, 0.05, 0.10, 0.20];
    let mut json_rows = Vec::new();
    for &rate in &rates {
        let m = BarrierExperiment::new(8, Algorithm::Nic(Descriptor::Pe))
            .rounds(120, 10)
            .faults(FaultPlan::drops(rate))
            .run()
            .expect("faults run");
        let drops = m.metrics.get(Counter::PacketsDropped);
        let retx = m.metrics.get(Counter::PacketsRetransmitted);
        let backoffs = m.metrics.get(Counter::RtoBackoffs);
        let cancels = m.metrics.get(Counter::TimerCancels);
        t.row(vec![
            format!("{:.0}%", rate * 100.0),
            us(m.mean_us),
            drops.to_string(),
            retx.to_string(),
            backoffs.to_string(),
            cancels.to_string(),
        ]);
        json_rows.push(format!(
            concat!(
                "    {{\"drop_rate\": {rate}, \"mean_us\": {mean:.3}, ",
                "\"drops\": {drops}, \"retx\": {retx}, ",
                "\"rto_backoffs\": {backoffs}, \"timer_cancels\": {cancels}}}"
            ),
            rate = rate,
            mean = m.mean_us,
            drops = drops,
            retx = retx,
            backoffs = backoffs,
            cancels = cancels,
        ));
    }
    print!("{}", t.render());
    println!("(recovery is timeout-driven, so the mean climbs with the RTO, not the wire time)");
    let json = format!(
        "{{\n  \"schema\": \"gmsim-faults/v1\",\n  \"experiment\": \
         \"nic_pe_8n_lanai43_drop_sweep\",\n  \"points\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");
    std::fs::write(out, &json).expect("write BENCH_faults.json");
    println!("wrote {}", out);
}

/// Beyond the paper: multi-tenant interference. Hundreds of mixed-size
/// teams run their barriers concurrently on one cluster (with background
/// point-to-point traffic), and the per-team mean/p99 latency is charted
/// against the number of concurrent teams, at N ∈ {16, 64, 256}.
///
/// The isolated baseline anchors the chart *and* gates the refactor: one
/// whole-cluster team driven through the multi-tenant path must reproduce
/// the classic global-barrier latency to within float noise — if it
/// regresses, the team plumbing broke the single-team path, and the study
/// returns `false` (nonzero exit). Results land in
/// `BENCH_multitenant.json`; `--smoke` shrinks the grid for CI.
fn multitenant_study(smoke: bool) -> bool {
    use gmsim_des::Counter;

    /// The isolated whole-cluster team may differ from the global barrier
    /// only by float summation order in the aggregation.
    const BASELINE_TOLERANCE: f64 = 1e-6;

    println!(
        "\n=== multitenant{}: concurrent-team interference, LANai 4.3 ===",
        if smoke { " (smoke)" } else { "" }
    );
    let sizes: &[usize] = if smoke { &[16, 64] } else { &[16, 64, 256] };
    let (rounds, warmup) = if smoke { (20, 4) } else { (40, 8) };

    let mut ok = true;
    let mut baseline_rows = Vec::new();
    let mut point_rows = Vec::new();
    let mut bt = Table::new(vec![
        "nodes",
        "global barrier (us)",
        "isolated team (us)",
        "rel err",
        "ok",
    ]);
    let mut t = Table::new(vec![
        "nodes",
        "teams",
        "mean (us)",
        "p99 (us)",
        "vs isolated",
        "peak",
        "xrejects",
    ]);
    for &n in sizes {
        // Gate: one team spanning every node, driven through the
        // multi-tenant machinery, vs today's global barrier.
        let reference = BarrierExperiment::new(n, Algorithm::Nic(Descriptor::Pe))
            .rounds(rounds, warmup)
            .run()
            .expect("reference run")
            .mean_us;
        let isolated = MultiTenantExperiment::new(n, 1)
            .team_sizes(n, n)
            .rounds(rounds, warmup)
            .run()
            .expect("isolated baseline run");
        let rel = (isolated.mean_us - reference) / reference;
        let pass = rel.abs() <= BASELINE_TOLERANCE;
        ok &= pass;
        bt.row(vec![
            n.to_string(),
            us(reference),
            us(isolated.mean_us),
            format!("{:+.2e}", rel),
            if pass { "yes" } else { "NO" }.to_string(),
        ]);
        baseline_rows.push(format!(
            concat!(
                "    {{\"nodes\": {n}, \"reference_us\": {reference:.4}, ",
                "\"isolated_us\": {iso:.4}, \"rel_err\": {rel:.3e}, \"pass\": {pass}}}"
            ),
            n = n,
            reference = reference,
            iso = isolated.mean_us,
            rel = rel,
            pass = pass,
        ));

        // Interference curve: mixed-size teams under background traffic.
        // At 256 nodes the full study packs hundreds of teams onto the
        // cluster, several per node.
        let team_counts: &[usize] = match (smoke, n) {
            (true, _) => &[1, 2, 4],
            (false, 256) => &[1, 4, 16, 64, 256],
            (false, _) => &[1, 2, 4, 8, 16],
        };
        let mut isolated_small: Option<f64> = None;
        for &teams in team_counts {
            let m = MultiTenantExperiment::new(n, teams)
                .team_sizes(4, 8.min(n))
                .rounds(rounds, warmup)
                .background(true)
                .run()
                .unwrap_or_else(|err| panic!("multitenant n={n} teams={teams}: {err}"));
            let base = *isolated_small.get_or_insert(m.mean_us);
            let peak = m.metrics.get(Counter::ConcurrentPeak);
            let xrejects = m.metrics.get(Counter::CrossTeamRejects);
            t.row(vec![
                n.to_string(),
                teams.to_string(),
                us(m.mean_us),
                us(m.p99_us),
                factor(m.mean_us / base),
                peak.to_string(),
                xrejects.to_string(),
            ]);
            point_rows.push(format!(
                concat!(
                    "    {{\"nodes\": {n}, \"teams\": {teams}, \"mean_us\": {mean:.4}, ",
                    "\"p99_us\": {p99:.4}, \"concurrent_peak\": {peak}, ",
                    "\"cross_team_rejects\": {xr}}}"
                ),
                n = n,
                teams = teams,
                mean = m.mean_us,
                p99 = m.p99_us,
                peak = peak,
                xr = xrejects,
            ));
        }
    }
    print!("{}", bt.render());
    print!("{}", t.render());
    println!("(one NIC multiplexes every co-resident team; contention shows up in p99 first)");
    let json = format!(
        "{{\n  \"schema\": \"gmsim-multitenant/v1\",\n  \"experiment\": \
         \"concurrent_team_interference\",\n  \"smoke\": {},\n  \"baseline\": [\n{}\n  ],\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        smoke,
        baseline_rows.join(",\n"),
        point_rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_multitenant.json");
    std::fs::write(out, &json).expect("write BENCH_multitenant.json");
    println!("wrote {}", out);
    if !ok {
        eprintln!("multitenant: the isolated baseline regressed vs the global barrier");
    }
    ok
}

/// Tentpole study of the data-carrying collective redesign: latency vs
/// message size (1 B – 1 MiB) for broadcast, reduce, allreduce and scan at
/// N ∈ {16, 64, 256, 1024}, each size measured twice — forced *eager*
/// (one worm, `Payload::eager`) and forced *pipelined* (4 KiB segments,
/// `Payload::pipelined`) — so the eager→pipelined crossover is visible in
/// the curves rather than asserted. Every simulated point is gated
/// against the payload forms in `nic_barrier::analytic` within
/// [`nic_barrier::PAYLOAD_MODEL_TOLERANCE`]; results (including the
/// per-curve crossover size) land in `BENCH_payload.json` for CI.
/// `--smoke` caps the grid at 64 nodes / 64 KiB (the CI payload-smoke
/// job). Returns `false` if any point violates the tolerance.
fn payload_study(smoke: bool) -> bool {
    use gmsim_gm::Payload;
    use gmsim_testbed::{cell_seed, SweepEngine};
    use nic_barrier::{ReduceOp, PAYLOAD_MODEL_TOLERANCE};

    const PAYLOAD_SEED: u64 = 0x5ca1_ab1e_0000_0002;
    /// Segment size of the pipelined arm (also `Payload::for_size`'s
    /// default granularity and eager threshold).
    const SEG: u64 = 4096;

    println!(
        "\n=== payload{}: collective latency vs message size, eager vs pipelined ===",
        if smoke { " (smoke)" } else { "" }
    );
    let sizes: &[usize] = if smoke {
        &[16, 64]
    } else {
        &[16, 64, 256, 1024]
    };
    let bytes: &[u64] = if smoke {
        &[1, 1024, 4096, 16384, 65536]
    } else {
        &[1, 64, 1024, 4096, 16384, 65536, 262144, 1048576]
    };
    // (descriptor, json key). All trees run at dim = 2, the MPI layer's
    // binding.
    let colls: [(Descriptor, &str); 4] = [
        (Descriptor::bcast(2), "bcast"),
        (Descriptor::reduce(ReduceOp::Sum, 2), "reduce"),
        (Descriptor::allreduce(ReduceOp::Sum, 2), "allreduce"),
        (Descriptor::scan(ReduceOp::Sum), "scan"),
    ];

    let mut cells = Vec::new();
    for &n in sizes {
        for &(desc, key) in &colls {
            for &b in bytes {
                for eager in [true, false] {
                    let payload = if eager {
                        Payload::eager(b)
                    } else {
                        Payload::pipelined(b, SEG)
                    };
                    // Segment counts grow with the message; fewer timing
                    // rounds keep the big cells tractable without moving
                    // the steady-state mean.
                    let (rounds, warmup) = if n >= 1024 || b >= 262144 {
                        (4, 1)
                    } else {
                        (8, 2)
                    };
                    let mut e =
                        BarrierExperiment::new(n, Algorithm::Nic(desc.with_payload(payload)))
                            .rounds(rounds, warmup);
                    e.seed = cell_seed(PAYLOAD_SEED, cells.len() as u64);
                    cells.push((n, key, b, eager, payload, e));
                }
            }
        }
    }
    let sweep = SweepEngine::new();
    let measured = sweep.run(&cells, |_, (n, key, b, _, _, e)| {
        e.run()
            .unwrap_or_else(|err| panic!("payload cell {key} n={n} bytes={b}: {err}"))
            .mean_us
    });

    let m = CostModel::from_config(&GmConfig::paper_host(NicModel::LANAI_4_3));
    let mut ok = true;
    let mut json_rows = Vec::new();
    let mut t = Table::new(vec![
        "nodes",
        "collective",
        "bytes",
        "mode",
        "sim (us)",
        "model (us)",
        "err",
        "ok",
    ]);
    // (n, key, bytes) -> (eager_us, pipelined_us) for crossover detection.
    let mut pairs = std::collections::BTreeMap::new();
    for ((n, key, b, eager, payload, _), meas) in cells.iter().zip(&measured) {
        let model = match *key {
            "bcast" => m.nic_bcast_us(*n, 2, *payload),
            "reduce" => m.nic_reduce_us(*n, 2, *payload),
            "allreduce" => m.nic_allreduce_us(*n, 2, *payload),
            "scan" => m.nic_scan_us(*n, *payload),
            other => unreachable!("unknown payload key {other}"),
        };
        let rel = (model - meas) / meas;
        let pass = rel.abs() <= PAYLOAD_MODEL_TOLERANCE;
        ok &= pass;
        if !pass {
            eprintln!(
                "payload: FAIL {key} n={n} bytes={b} {}: model {model:.3} us vs \
                 sim {meas:.3} us ({:+.1}% exceeds the ±{:.0}% tolerance)",
                if *eager { "eager" } else { "pipelined" },
                rel * 100.0,
                PAYLOAD_MODEL_TOLERANCE * 100.0
            );
        }
        t.row(vec![
            n.to_string(),
            key.to_string(),
            b.to_string(),
            if *eager { "eager" } else { "pipelined" }.to_string(),
            us(*meas),
            us(model),
            format!("{:+.1}%", rel * 100.0),
            if pass { "yes" } else { "NO" }.to_string(),
        ]);
        let entry = pairs.entry((*n, *key, *b)).or_insert((f64::NAN, f64::NAN));
        if *eager {
            entry.0 = *meas;
        } else {
            entry.1 = *meas;
        }
        json_rows.push(format!(
            concat!(
                "    {{\"nodes\": {n}, \"collective\": \"{key}\", \"bytes\": {b}, ",
                "\"mode\": \"{mode}\", \"segments\": {segs}, \"measured_us\": {meas:.3}, ",
                "\"model_us\": {model:.3}, \"rel_err\": {rel:.4}, ",
                "\"tolerance\": {tol}, \"pass\": {pass}}}"
            ),
            n = n,
            key = key,
            b = b,
            mode = if *eager { "eager" } else { "pipelined" },
            segs = payload.segments().get(),
            meas = meas,
            model = model,
            rel = rel,
            tol = PAYLOAD_MODEL_TOLERANCE,
            pass = pass,
        ));
    }
    print!("{}", t.render());

    // The crossover: the smallest size at which segmenting beats the
    // single worm. Below it the per-segment overhead dominates (eager
    // wins); above it the pipeline hides the per-byte terms behind the
    // tree depth.
    let mut ct = Table::new(vec!["nodes", "collective", "crossover (bytes)"]);
    let mut cross_rows = Vec::new();
    for &n in sizes {
        for &(_, key) in &colls {
            let cross = bytes
                .iter()
                .find(|&&b| {
                    let (e, p) = pairs[&(n, key, b)];
                    p < e
                })
                .copied();
            let label = cross.map_or("none (eager wins)".to_string(), |b| b.to_string());
            ct.row(vec![n.to_string(), key.to_string(), label]);
            cross_rows.push(format!(
                "    {{\"nodes\": {n}, \"collective\": \"{key}\", \"crossover_bytes\": {}}}",
                cross.map_or("null".to_string(), |b| b.to_string()),
            ));
        }
    }
    print!("{}", ct.render());
    println!("(eager wins small messages; segment pipelining wins once per-byte time dominates)");

    let json = format!(
        "{{\n  \"schema\": \"gmsim-payload/v1\",\n  \"experiment\": \
         \"collective_latency_vs_size_vs_analytic_model\",\n  \"smoke\": {},\n  \
         \"seg_bytes\": {},\n  \"points\": [\n{}\n  ],\n  \"crossover\": [\n{}\n  ]\n}}\n",
        smoke,
        SEG,
        json_rows.join(",\n"),
        cross_rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_payload.json");
    std::fs::write(out, &json).expect("write BENCH_payload.json");
    println!("wrote {}", out);
    if !ok {
        eprintln!("payload: at least one point violated the model tolerance");
    }
    ok
}

/// The advisor validation study: replay the advisor's scenario space
/// (group size × payload × drop rate) in simulation, measure every
/// candidate the advisor ranks, and gate the pick's measured *regret* —
/// how much slower the recommended candidate is than the measured-best
/// one — against `ADVISOR_REGRET_TOLERANCE`. Writes `BENCH_advisor.json`
/// for CI. `--smoke` trims the grid to 64 nodes (the CI advisor-smoke
/// job). Returns `false` if any cell's regret exceeds the tolerance.
fn advisor_study(smoke: bool) -> bool {
    use gmsim_gm::Payload;
    use gmsim_myrinet::FaultPlan;
    use gmsim_testbed::{cell_seed, SweepEngine};
    use nic_barrier::{advisor, ADVISOR_REGRET_TOLERANCE};

    const ADVISOR_SEED: u64 = 0x5ca1_ab1e_0000_0003;

    println!(
        "\n=== advisor{}: recommended algorithm vs measured best ===",
        if smoke { " (smoke)" } else { "" }
    );
    let sizes: &[usize] = if smoke {
        &[8, 64]
    } else {
        &[8, 64, 256, 1024, 4096]
    };
    let faults: &[f64] = if smoke {
        &[0.0, 0.001]
    } else {
        &[0.0, 0.001, 0.01]
    };
    let payloads: &[u64] = &[0, 4096];

    let m = CostModel::from_config(&GmConfig::paper_host(NicModel::LANAI_4_3));
    // One scenario per grid point; one sweep cell per ranked candidate.
    let mut scenarios = Vec::new();
    let mut cells = Vec::new();
    for &n in sizes {
        for &bytes in payloads {
            for &fault in faults {
                let mut sc = advisor::Scenario::barrier(n).with_faults(fault);
                if bytes > 0 {
                    sc = sc.with_payload(Payload::for_size(bytes));
                }
                let rec = advisor::recommend(&m, &sc);
                let scenario_idx = scenarios.len();
                for c in &rec.ranked {
                    let alg = match c.placement {
                        advisor::Placement::Nic => Algorithm::Nic(c.descriptor),
                        advisor::Placement::Host => Algorithm::Host(c.descriptor),
                    };
                    // The biggest clusters keep fewer timed rounds to stay
                    // tractable; payload cells get enough rounds that one
                    // lucky/unlucky drop placement cannot dominate a mean
                    // (a single RTO is ~20× a fault-free payload round).
                    let (rounds, warmup) = if n >= 2048 {
                        (12, 2)
                    } else if bytes > 0 {
                        (24, 4)
                    } else {
                        (40, 5)
                    };
                    let mut e = BarrierExperiment::new(n, alg).rounds(rounds, warmup);
                    if fault > 0.0 {
                        // Deep host schedules at 4096 nodes post more
                        // sends per barrier than GM's default 16-token
                        // pool, and under drops a stuck send holds its
                        // token for a full RTO while the stream advances;
                        // open the ports with a deeper pool, as a real
                        // application running that schedule would.
                        e = e.faults(FaultPlan::drops(fault)).send_token_pool(64);
                    }
                    // Paired seeding: every candidate in a scenario sees
                    // the same drop pattern, so algorithmically identical
                    // schedules (PE vs radix-2 dissemination at powers of
                    // two) measure identically instead of differing by
                    // drop-placement luck.
                    e.seed = cell_seed(ADVISOR_SEED, scenario_idx as u64);
                    cells.push((scenario_idx, c.name(), c.predicted_us, e));
                }
                scenarios.push((n, bytes, fault, rec));
            }
        }
    }
    let sweep = SweepEngine::new();
    let measured = sweep.run(&cells, |_, (_, name, _, e)| {
        e.run()
            .unwrap_or_else(|err| panic!("advisor cell {name}: {err}"))
            .mean_us
    });

    let mut ok = true;
    let mut cell_rows = Vec::new();
    let mut cand_rows = Vec::new();
    let mut t = Table::new(vec![
        "nodes",
        "payload",
        "fault",
        "advisor pick",
        "pick (us)",
        "measured best",
        "best (us)",
        "regret",
        "ok",
    ]);
    for (si, (n, bytes, fault, _)) in scenarios.iter().enumerate() {
        // This scenario's candidates, still in the advisor's rank order.
        let results: Vec<(&str, f64, f64)> = cells
            .iter()
            .zip(&measured)
            .filter(|((idx, ..), _)| *idx == si)
            .map(|((_, name, pred, _), meas)| (name.as_str(), *pred, *meas))
            .collect();
        let (pick_name, pick_pred, pick_meas) = results[0];
        let &(best_name, _, best_meas) = results
            .iter()
            .min_by(|a, b| a.2.total_cmp(&b.2))
            .expect("scenario with no candidates");
        let regret = (pick_meas - best_meas) / best_meas;
        let pass = regret <= ADVISOR_REGRET_TOLERANCE;
        ok &= pass;
        if !pass {
            eprintln!(
                "advisor: FAIL n={n} payload={bytes} fault={fault}: pick {pick_name} measured \
                 {pick_meas:.3} us vs best {best_name} {best_meas:.3} us \
                 ({:+.1}% exceeds the {:.0}% regret tolerance)",
                regret * 100.0,
                ADVISOR_REGRET_TOLERANCE * 100.0
            );
        }
        t.row(vec![
            n.to_string(),
            bytes.to_string(),
            format!("{fault}"),
            pick_name.to_string(),
            us(pick_meas),
            best_name.to_string(),
            us(best_meas),
            format!("{:+.1}%", regret * 100.0),
            if pass { "yes" } else { "NO" }.to_string(),
        ]);
        cell_rows.push(format!(
            concat!(
                "    {{\"nodes\": {n}, \"payload_bytes\": {bytes}, \"fault_rate\": {fault}, ",
                "\"pick\": \"{pick}\", \"pick_predicted_us\": {pred:.3}, ",
                "\"pick_measured_us\": {meas:.3}, \"best\": \"{best}\", ",
                "\"best_measured_us\": {best_meas:.3}, \"regret\": {regret:.4}, ",
                "\"tolerance\": {tol}, \"pass\": {pass}}}"
            ),
            n = n,
            bytes = bytes,
            fault = fault,
            pick = pick_name,
            pred = pick_pred,
            meas = pick_meas,
            best = best_name,
            best_meas = best_meas,
            regret = regret,
            tol = ADVISOR_REGRET_TOLERANCE,
            pass = pass,
        ));
        for (name, pred, meas) in &results {
            cand_rows.push(format!(
                concat!(
                    "    {{\"nodes\": {n}, \"payload_bytes\": {bytes}, ",
                    "\"fault_rate\": {fault}, \"candidate\": \"{name}\", ",
                    "\"predicted_us\": {pred:.3}, \"measured_us\": {meas:.3}}}"
                ),
                n = n,
                bytes = bytes,
                fault = fault,
                name = name,
                pred = pred,
                meas = meas,
            ));
        }
    }
    print!("{}", t.render());
    println!("(regret = advisor pick's measured latency over the measured-best candidate's)");

    let json = format!(
        "{{\n  \"schema\": \"gmsim-advisor/v1\",\n  \"experiment\": \
         \"advisor_pick_vs_measured_best\",\n  \"smoke\": {},\n  \
         \"regret_tolerance\": {},\n  \"cells\": [\n{}\n  ],\n  \
         \"candidates\": [\n{}\n  ]\n}}\n",
        smoke,
        ADVISOR_REGRET_TOLERANCE,
        cell_rows.join(",\n"),
        cand_rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_advisor.json");
    std::fs::write(out, &json).expect("write BENCH_advisor.json");
    println!("wrote {}", out);
    if !ok {
        eprintln!("advisor: at least one cell exceeded the regret tolerance");
    }
    ok
}

/// Fabric study: algorithm × fabric × oversubscription × routing policy,
/// measured against the per-fabric analytic forms (DESIGN.md §18). The
/// grid sweeps the non-blocking, 2:1 and 4:1 Clos plus a k=8 fat tree
/// under static-BFS, dispersed and adaptive routing, and gates every
/// cell's model error against `FABRIC_MODEL_TOLERANCE`.
fn fabric_study(smoke: bool) -> bool {
    use gmsim_testbed::{cell_seed, FabricSpec, RoutePolicy, SweepEngine};
    use nic_barrier::{advisor, FABRIC_MODEL_TOLERANCE};

    const FABRIC_SEED: u64 = 0x5ca1_ab1e_0000_0004;

    println!(
        "\n=== fabric{}: algorithm x fabric x routing vs per-fabric model ===",
        if smoke { " (smoke)" } else { "" }
    );
    let fabrics: &[(&str, FabricSpec, usize)] = if smoke {
        &[
            (
                "clos-1to1",
                FabricSpec::Clos {
                    leaves: 8,
                    hosts_per_leaf: 8,
                    spines: 8,
                },
                64,
            ),
            (
                "clos-4to1",
                FabricSpec::Clos {
                    leaves: 8,
                    hosts_per_leaf: 8,
                    spines: 2,
                },
                64,
            ),
        ]
    } else {
        &[
            (
                "clos-1to1",
                FabricSpec::Clos {
                    leaves: 8,
                    hosts_per_leaf: 8,
                    spines: 8,
                },
                64,
            ),
            (
                "clos-2to1",
                FabricSpec::Clos {
                    leaves: 8,
                    hosts_per_leaf: 8,
                    spines: 4,
                },
                64,
            ),
            (
                "clos-4to1",
                FabricSpec::Clos {
                    leaves: 8,
                    hosts_per_leaf: 8,
                    spines: 2,
                },
                64,
            ),
            ("fat-tree-k8", FabricSpec::FatTree { k: 8 }, 128),
        ]
    };
    let policies: &[(&str, RoutePolicy)] = if smoke {
        &[
            ("dispersed", RoutePolicy::Dispersed),
            ("adaptive", RoutePolicy::Adaptive),
        ]
    } else {
        &[
            ("static", RoutePolicy::StaticBfs),
            ("dispersed", RoutePolicy::Dispersed),
            ("adaptive", RoutePolicy::Adaptive),
        ]
    };
    let algorithms: Vec<(&str, Descriptor)> = if smoke {
        vec![("nic-pe", Descriptor::pe()), ("nic-gb8", Descriptor::gb(8))]
    } else {
        vec![
            ("nic-pe", Descriptor::pe()),
            ("nic-gb8", Descriptor::gb(8)),
            ("nic-dissem2", Descriptor::dissemination_radix(2)),
        ]
    };

    let m = CostModel::from_config(&GmConfig::paper_host(NicModel::LANAI_4_3));
    let mut cells = Vec::new();
    for &(fname, spec, n) in fabrics {
        for &(pname, policy) in policies {
            for &(aname, desc) in &algorithms {
                let sc = advisor::Scenario::barrier(n).with_fabric(spec, policy);
                let predicted = advisor::predict(&m, &sc, advisor::Placement::Nic, &desc);
                let mut e = BarrierExperiment::new(n, Algorithm::Nic(desc)).rounds(40, 5);
                e = e.fabric(spec, policy);
                // Paired seeding per (fabric, policy): all algorithms on
                // one cabling see identical conditions.
                e.seed = cell_seed(FABRIC_SEED, cells.len() as u64);
                cells.push((fname, n, spec, pname, aname, predicted, e));
            }
        }
    }
    let sweep = SweepEngine::new();
    let measured = sweep.run(&cells, |_, (fname, _, _, pname, aname, _, e)| {
        e.run()
            .unwrap_or_else(|err| panic!("fabric cell {fname}/{pname}/{aname}: {err}"))
            .mean_us
    });

    let mut ok = true;
    let mut rows = Vec::new();
    let mut t = Table::new(vec![
        "fabric",
        "nodes",
        "oversub",
        "routing",
        "algorithm",
        "model (us)",
        "measured (us)",
        "err",
        "ok",
    ]);
    for ((fname, n, spec, pname, aname, predicted, _), meas) in cells.iter().zip(&measured) {
        let err = (predicted - meas) / meas;
        let pass = err.abs() <= FABRIC_MODEL_TOLERANCE;
        ok &= pass;
        if !pass {
            eprintln!(
                "fabric: FAIL {fname}/{pname}/{aname}: model {predicted:.3} us vs measured \
                 {meas:.3} us ({:+.1}% exceeds the {:.0}% tolerance)",
                err * 100.0,
                FABRIC_MODEL_TOLERANCE * 100.0
            );
        }
        let oversub = spec.oversub_ratio(*n);
        t.row(vec![
            fname.to_string(),
            n.to_string(),
            format!("{oversub:.1}"),
            pname.to_string(),
            aname.to_string(),
            us(*predicted),
            us(*meas),
            format!("{:+.1}%", err * 100.0),
            if pass { "yes" } else { "NO" }.to_string(),
        ]);
        rows.push(format!(
            concat!(
                "    {{\"fabric\": \"{fabric}\", \"nodes\": {n}, \"oversub\": {oversub}, ",
                "\"routing\": \"{routing}\", \"algorithm\": \"{alg}\", ",
                "\"model_us\": {pred:.3}, \"measured_us\": {meas:.3}, ",
                "\"err\": {err:.4}, \"tolerance\": {tol}, \"pass\": {pass}}}"
            ),
            fabric = fname,
            n = n,
            oversub = oversub,
            routing = pname,
            alg = aname,
            pred = predicted,
            meas = meas,
            err = err,
            tol = FABRIC_MODEL_TOLERANCE,
            pass = pass,
        ));
    }
    print!("{}", t.render());
    println!("(err = per-fabric analytic prediction against the measured mean)");

    let json = format!(
        "{{\n  \"schema\": \"gmsim-fabric/v1\",\n  \"experiment\": \
         \"fabric_model_vs_measured\",\n  \"smoke\": {},\n  \
         \"model_tolerance\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
        smoke,
        FABRIC_MODEL_TOLERANCE,
        rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fabric.json");
    std::fs::write(out, &json).expect("write BENCH_fabric.json");
    println!("wrote {}", out);
    if !ok {
        eprintln!("fabric: at least one cell exceeded the model tolerance");
    }
    ok
}

/// Ablations of the §3 design choices.
fn ablations() {
    println!("\n=== ablate: design-choice ablations ===");
    // 1. Reliability: the paper's unreliable prototype vs the integrated
    //    reliable stream (§3.3/4.4).
    let mut t = Table::new(vec!["config", "NIC-PE 16n (us)"]);
    for (name, wire) in [
        (
            "reliable barrier packets (adopted design)",
            CollectiveWireMode::Reliable,
        ),
        (
            "unreliable (paper's measured prototype)",
            CollectiveWireMode::Unreliable,
        ),
    ] {
        let m = measure(BarrierExperiment::new(16, Algorithm::Nic(Descriptor::Pe)).wire(wire));
        t.row(vec![name.to_string(), us(m)]);
    }
    print!("{}", t.render());

    // 2. §3.4 same-NIC optimization, 16 processes packed 2 per node.
    let mut t = Table::new(vec!["config", "NIC-PE 16 procs / 8 nodes (us)"]);
    for (name, on) in [
        ("same-NIC flag optimization ON", true),
        ("OFF (loopback packets)", false),
    ] {
        let m = measure(
            BarrierExperiment::new(16, Algorithm::Nic(Descriptor::Pe))
                .placement(Placement::Packed { procs_per_node: 2 })
                .same_nic_opt(on),
        );
        t.row(vec![name.to_string(), us(m)]);
    }
    print!("{}", t.render());

    // 3. Unexpected-record cost sensitivity: a 4x more expensive record
    //    (e.g. a hash probe instead of the paper's bit test).
    let mut slow = BarrierCosts::GM_1_2_3;
    slow.record_cycles *= 4;
    let mut t = Table::new(vec!["config", "NIC-PE 16n (us)"]);
    t.row(vec![
        "bit-array record (paper, O(1))".to_string(),
        us(measure(BarrierExperiment::new(
            16,
            Algorithm::Nic(Descriptor::Pe),
        ))),
    ]);
    t.row(vec![
        "4x record cost".to_string(),
        us(measure(
            BarrierExperiment::new(16, Algorithm::Nic(Descriptor::Pe)).costs(slow),
        )),
    ]);
    print!("{}", t.render());
}

/// `--trace <path>`: run a 16-node NIC-based PE barrier stream with
/// structured tracing enabled and export it as chrome://tracing JSON
/// (load in Perfetto or chrome://tracing). Every process is a node,
/// every thread a NIC unit; SDMA transfers become duration spans and a
/// derived per-node "nic barrier" span runs from the collective token
/// post to the completion DMA.
fn export_chrome_trace(path: &str) {
    use gmsim_des::{TracePayload, TraceRecord, Unit};

    let m = BarrierExperiment::new(16, Algorithm::Nic(Descriptor::Pe))
        .rounds(12, 2)
        .trace(1 << 16)
        .run()
        .expect("trace run failed");
    let records = &m.trace;

    let tid = |u: Unit| match u {
        Unit::Host => 0,
        Unit::Sdma => 1,
        Unit::Send => 2,
        Unit::Recv => 3,
        Unit::Rdma => 4,
        Unit::Wire => 5,
        Unit::Ext => 6,
    };
    let ts_us = |r: &TraceRecord| r.at.as_ns() as f64 / 1000.0;

    let mut out = String::with_capacity(records.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, ev: String| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&ev);
    };

    // Process/thread naming metadata.
    let nodes: std::collections::BTreeSet<u32> = records.iter().map(|r| r.component.node).collect();
    for &n in &nodes {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{n},\
                 \"args\":{{\"name\":\"node{n}\"}}}}"
            ),
        );
        for u in [
            Unit::Host,
            Unit::Sdma,
            Unit::Send,
            Unit::Recv,
            Unit::Rdma,
            Unit::Wire,
            Unit::Ext,
        ] {
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{n},\"tid\":{},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    tid(u),
                    u.name()
                ),
            );
        }
    }

    // Derived per-node barrier spans: collective token post → completion
    // DMA. Ring eviction can orphan a completion; skip those.
    let mut open: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
    for r in records {
        match r.payload {
            TracePayload::SendTokenPost {
                collective: true, ..
            } => {
                open.entry(r.component.node).or_insert_with(|| ts_us(r));
            }
            TracePayload::CompletionDma { .. } => {
                if let Some(start) = open.remove(&r.component.node) {
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"ph\":\"X\",\"name\":\"nic barrier\",\"cat\":\"barrier\",\
                             \"pid\":{},\"tid\":{},\"ts\":{start:.3},\"dur\":{:.3}}}",
                            r.component.node,
                            tid(Unit::Ext),
                            ts_us(r) - start,
                        ),
                    );
                }
            }
            _ => {}
        }
    }

    // The records themselves: SDMA begin/end pairs as B/E spans,
    // everything else as instants.
    for r in records {
        let (pid, t) = (r.component.node, ts_us(r));
        let tid = tid(r.component.unit);
        let ev = match r.payload {
            TracePayload::SdmaStart { bytes } => format!(
                "{{\"ph\":\"B\",\"name\":\"sdma\",\"cat\":\"dma\",\"pid\":{pid},\
                 \"tid\":{tid},\"ts\":{t:.3},\"args\":{{\"bytes\":{bytes}}}}}"
            ),
            TracePayload::SdmaFinish { .. } => format!(
                "{{\"ph\":\"E\",\"name\":\"sdma\",\"cat\":\"dma\",\"pid\":{pid},\
                 \"tid\":{tid},\"ts\":{t:.3}}}"
            ),
            p => format!(
                "{{\"ph\":\"i\",\"name\":\"{}\",\"cat\":\"event\",\"pid\":{pid},\
                 \"tid\":{tid},\"ts\":{t:.3},\"s\":\"t\"}}",
                p.name()
            ),
        };
        push(&mut out, &mut first, ev);
    }
    out.push_str("\n]}\n");
    std::fs::write(path, &out).expect("write trace file");
    println!(
        "wrote {} trace events ({} structured records) to {path}",
        records.len() + open.len(),
        records.len()
    );
}

/// `breakdown`: the paper's host-vs-NIC cost decomposition (§2.2, Figure 2,
/// Equations 1–2) next to what the simulator measures, for PE and GB at
/// N ∈ {8, 16}. The per-phase terms show *where* the NIC-based barrier
/// wins: every intermediate round drops Send/SDMA/RDMA/HostRecv.
fn breakdown() {
    use gmsim_des::Counter;

    println!("\n=== breakdown: per-phase host-vs-NIC cost decomposition, LANai 4.3 ===");
    let cfg = GmConfig::paper_host(NicModel::LANAI_4_3);
    let m = CostModel::from_config(&cfg);
    let mut t = Table::new(vec!["phase", "host pays", "NIC pays", "cost (us)"]);
    for (phase, host, nic, cost) in [
        ("HostSend (gm_send)", "every round", "once", m.send_us),
        ("SDMA (token fetch)", "every round", "once", m.sdma_us),
        ("Wire", "every round", "every round", m.network_us),
        ("NIC recv", "every round", "every round", m.nic_recv_us),
        ("NIC fwd step", "-", "every round", m.nic_step_us),
        ("RDMA (event DMA)", "every round", "once", m.rdma_us),
        ("HostRecv (poll)", "every round", "once", m.hrecv_us),
    ] {
        t.row(vec![
            phase.to_string(),
            host.to_string(),
            nic.to_string(),
            us(cost),
        ]);
    }
    print!("{}", t.render());

    let mut t = Table::new(vec![
        "N",
        "algorithm",
        "model (us)",
        "measured (us)",
        "fw cycles/barrier",
        "turnaround mean (us)",
        "turnaround p95 (us)",
    ]);
    for n in [8usize, 16] {
        for (alg, model_us) in [
            (Algorithm::Host(Descriptor::Pe), m.host_barrier_us(n)),
            (Algorithm::Nic(Descriptor::Pe), m.nic_barrier_us(n)),
        ] {
            let meas = BarrierExperiment::new(n, alg).run().expect("breakdown run");
            // Firmware cycles per completed barrier, NIC-interpreted runs
            // only (host runs drive no extension, so the per-barrier share
            // would be the whole run's GM bookkeeping).
            let fw = if alg.is_nic() {
                let barriers = meas.metrics.get(Counter::BarrierCompletions).max(1);
                format!(
                    "{:.0}",
                    meas.metrics.get(Counter::FirmwareCycles) as f64 / barriers as f64
                )
            } else {
                "-".to_string()
            };
            t.row(vec![
                n.to_string(),
                alg.name(),
                us(model_us),
                us(meas.mean_us),
                fw,
                meas.nic_turnaround
                    .mean()
                    .map_or("-".into(), |v| format!("{v:.2}")),
                meas.nic_turnaround
                    .quantile(0.95)
                    .map_or("-".into(), |v| format!("{v:.2}")),
            ]);
        }
        for nic_side in [false, true] {
            let alg = if nic_side {
                Algorithm::Nic(Descriptor::gb(1))
            } else {
                Algorithm::Host(Descriptor::gb(1))
            };
            let (dim, meas) = best_gb_dim(BarrierExperiment::new(n, alg));
            t.row(vec![
                n.to_string(),
                format!("{}-GB best d={dim}", if nic_side { "NIC" } else { "host" }),
                "-".to_string(),
                us(meas.mean_us),
                "-".to_string(),
                meas.nic_turnaround
                    .mean()
                    .map_or("-".into(), |v| format!("{v:.2}")),
                meas.nic_turnaround
                    .quantile(0.95)
                    .map_or("-".into(), |v| format!("{v:.2}")),
            ]);
        }
    }
    print!("{}", t.render());
    println!(
        "(Eq.1 charges the host column's phases in all {{2,..}}ceil(log2 N) rounds; \
         Eq.2 pays host phases once and NIC recv+fwd per round)"
    );
}
