//! Benchmark harness (under construction).
