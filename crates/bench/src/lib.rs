//! Benchmark support for the reproduction suite: a self-contained
//! Criterion-style harness (see [`harness`]) used by the `benches/`
//! targets, which double as figure checks via their printed output.

#![warn(missing_docs)]

pub mod harness;
