//! A self-contained micro-benchmark harness exposing the small slice of
//! the Criterion API the bench targets use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, throughput
//! annotations and the `criterion_group!`/`criterion_main!` macros).
//!
//! The build must resolve offline, so the external framework is replaced
//! by wall-clock sampling with `std::time::Instant`: every benchmark runs
//! one warmup iteration plus `sample_size` measured iterations and prints
//! mean/min wall time (and element throughput when declared). Statistical
//! machinery (outlier analysis, HTML reports) is intentionally out of
//! scope — these benches guard against order-of-magnitude regressions and
//! double as figure checks via their `println!` output.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Default measured iterations per benchmark when a target does not call
/// [`BenchmarkGroup::sample_size`]: the `GMSIM_BENCH_SAMPLES` environment
/// variable if set and parsable, else 10. Lets CI run cheap 2-sample smoke
/// passes without touching every bench target.
pub fn sample_size_from_env() -> usize {
    parse_sample_size(std::env::var("GMSIM_BENCH_SAMPLES").ok().as_deref())
}

fn parse_sample_size(var: Option<&str>) -> usize {
    var.and_then(|s| s.trim().parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or(10)
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            sample_size: sample_size_from_env(),
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        run_one(name, sample_size_from_env(), None, f);
    }
}

/// Identifier for one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name` plus a parameter rendered as `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{param}"),
        }
    }
}

/// Declared work-per-iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
}

/// A named group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Measured iterations per benchmark (warmup excluded).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        run_one(
            &format!("{}/{}", self.name, name),
            self.sample_size,
            self.throughput,
            f,
        );
    }

    /// Run one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(
            &format!("{}/{}", self.name, id.text),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
    }

    /// End the group (report-flush point in Criterion; a no-op here).
    pub fn finish(self) {}
}

/// Per-benchmark timing driver handed to the closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    rounds: usize,
}

impl Bencher {
    /// Time `f`, discarding one warmup run and keeping the configured
    /// number of measured runs. Return values are consumed to keep the
    /// compiler from eliding the work.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        std::hint::black_box(f()); // warmup
        for _ in 0..self.rounds {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        rounds: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {label:<48} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let extra = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "bench {label:<48} mean {:>10.3?}  min {:>10.3?}{extra}",
        mean, min
    );
}

/// Collect benchmark functions into a runnable suite, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point for a `harness = false` bench target, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_expected_iterations() {
        use std::cell::Cell;
        let calls = Cell::new(0u32);
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(4);
        g.bench_function("count", |b| b.iter(|| calls.set(calls.get() + 1)));
        g.finish();
        // 1 warmup + 4 measured
        assert_eq!(calls.get(), 5);
    }

    #[test]
    fn sample_size_parses_env_shapes() {
        assert_eq!(parse_sample_size(None), 10);
        assert_eq!(parse_sample_size(Some("2")), 2);
        assert_eq!(parse_sample_size(Some(" 7 ")), 7);
        assert_eq!(parse_sample_size(Some("0")), 1, "clamped to at least one");
        assert_eq!(parse_sample_size(Some("junk")), 10);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.throughput(Throughput::Elements(7));
        g.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &x| b.iter(|| x * x));
        g.finish();
    }
}
