//! Fault injection.
//!
//! GM provides reliable delivery over an unreliable wire; to exercise that
//! machinery (acks, nacks, go-back-N) the fabric can drop, corrupt,
//! duplicate, or delay (reorder) worms. Faults are driven by the fabric's
//! own seeded RNG stream, so an experiment with faults is exactly as
//! reproducible as one without. A plan with all probabilities at zero
//! consumes no entropy at all, keeping fault-free traces bit-identical
//! regardless of how much fault machinery exists.

use gmsim_des::{SimRng, SimTime};

/// Probabilistic fault configuration, uniform across links (optionally
/// scoped to one source NIC via [`FaultPlan::only_from`]).
///
/// The four fault probabilities are sampled *independently* per worm, in a
/// fixed order (drop, corrupt, duplicate, reorder), so each marginal rate
/// matches its configured probability and the RNG stream advances by the
/// same amount regardless of which faults fire. When both drop and corrupt
/// fire for the same worm, drop wins (a vanished worm cannot also arrive
/// with a bad CRC); duplicate/reorder likewise only take effect for worms
/// that are not dropped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability an injected worm vanishes entirely.
    pub drop_probability: f64,
    /// Probability a delivered worm arrives with a bad CRC (the receiving
    /// NIC discards it, which GM turns into a timeout/retransmission).
    pub corrupt_probability: f64,
    /// Probability a delivered worm arrives twice (a second, intact copy
    /// lands one serialization time after the first).
    pub duplicate_probability: f64,
    /// Probability a delivered worm is delayed by [`FaultPlan::reorder_delay`],
    /// letting later worms overtake it (observed as out-of-order arrival).
    pub reorder_probability: f64,
    /// Extra latency applied to reordered worms.
    pub reorder_delay: SimTime,
    /// When a drop fires, also drop the next `burst_len - 1` judged worms
    /// (models a link glitch taking out a run of back-to-back worms).
    /// `0` and `1` both mean single-worm drops.
    pub burst_len: u32,
    /// When set, faults only apply to worms injected by this source NIC;
    /// all other traffic passes intact (per-link fault scoping).
    pub only_src: Option<u32>,
}

impl FaultPlan {
    /// A perfectly reliable wire (the common case; Myrinet links have very
    /// low intrinsic bit-error rates).
    pub const NONE: FaultPlan = FaultPlan {
        drop_probability: 0.0,
        corrupt_probability: 0.0,
        duplicate_probability: 0.0,
        reorder_probability: 0.0,
        reorder_delay: SimTime::ZERO,
        burst_len: 0,
        only_src: None,
    };

    /// Uniform drop probability, no other faults.
    pub fn drops(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        FaultPlan {
            drop_probability: p,
            ..FaultPlan::NONE
        }
    }

    /// Uniform corruption probability, no other faults.
    pub fn corrupts(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        FaultPlan {
            corrupt_probability: p,
            ..FaultPlan::NONE
        }
    }

    /// Uniform duplication probability, no other faults.
    pub fn duplicates(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        FaultPlan {
            duplicate_probability: p,
            ..FaultPlan::NONE
        }
    }

    /// Uniform reorder probability with the given extra delay.
    pub fn reorders(p: f64, delay: SimTime) -> Self {
        assert!((0.0..=1.0).contains(&p));
        FaultPlan {
            reorder_probability: p,
            reorder_delay: delay,
            ..FaultPlan::NONE
        }
    }

    /// Builder: drops come in bursts of `len` consecutive judged worms.
    pub fn with_burst(mut self, len: u32) -> Self {
        self.burst_len = len;
        self
    }

    /// Builder: scope all faults to worms injected by source NIC `src`.
    pub fn only_from(mut self, src: u32) -> Self {
        self.only_src = Some(src);
        self
    }

    /// True when no fault can ever fire (lets the fabric skip RNG draws,
    /// keeping fault-free traces identical regardless of fault code).
    pub fn is_none(&self) -> bool {
        self.drop_probability == 0.0
            && self.corrupt_probability == 0.0
            && self.duplicate_probability == 0.0
            && self.reorder_probability == 0.0
    }

    /// Decide the fate of one worm injected by source NIC `src`.
    ///
    /// Consumes zero entropy when the plan [`is_none`](Self::is_none), when
    /// `src` is outside the plan's scope, or while a drop burst is in
    /// progress; otherwise consumes exactly four draws, independent of
    /// outcome.
    pub fn judge(&self, src: u32, state: &mut FaultState, rng: &mut SimRng) -> Verdict {
        if self.is_none() {
            return Verdict::INTACT;
        }
        if self.only_src.is_some_and(|s| s != src) {
            return Verdict::INTACT;
        }
        if state.burst_left > 0 {
            state.burst_left -= 1;
            return Verdict::DROPPED;
        }
        // Fixed draw order keeps the RNG stream position independent of
        // which faults fire.
        let drop = rng.chance(self.drop_probability);
        let corrupt = rng.chance(self.corrupt_probability);
        let duplicate = rng.chance(self.duplicate_probability);
        let reorder = rng.chance(self.reorder_probability);
        if drop {
            state.burst_left = self.burst_len.saturating_sub(1);
            return Verdict::DROPPED;
        }
        Verdict {
            fate: if corrupt {
                Fate::Corrupted
            } else {
                Fate::Intact
            },
            duplicate,
            reorder,
        }
    }
}

/// Outcome of fault judgement for one worm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Arrives unharmed.
    Intact,
    /// Never arrives.
    Dropped,
    /// Arrives but fails CRC; receiver discards it silently.
    Corrupted,
}

/// Full fault judgement for one worm: its fate plus orthogonal
/// duplicate/reorder flags (only meaningful for worms that arrive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Drop / corrupt / intact outcome.
    pub fate: Fate,
    /// A second intact copy also arrives.
    pub duplicate: bool,
    /// Arrival is delayed by the plan's `reorder_delay`.
    pub reorder: bool,
}

impl Verdict {
    /// The no-fault verdict.
    pub const INTACT: Verdict = Verdict {
        fate: Fate::Intact,
        duplicate: false,
        reorder: false,
    };

    /// The dropped verdict.
    pub const DROPPED: Verdict = Verdict {
        fate: Fate::Dropped,
        duplicate: false,
        reorder: false,
    };
}

/// Mutable fault-injection state carried by the fabric between worms
/// (burst progress). Kept outside [`FaultPlan`] so the plan stays a plain
/// `Copy` configuration value.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultState {
    /// Remaining worms to drop in the current burst.
    pub burst_left: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn judge(plan: &FaultPlan, rng: &mut SimRng) -> Verdict {
        let mut state = FaultState::default();
        plan.judge(0, &mut state, rng)
    }

    #[test]
    fn none_never_faults() {
        let mut rng = SimRng::new(1);
        for _ in 0..1000 {
            assert_eq!(judge(&FaultPlan::NONE, &mut rng), Verdict::INTACT);
        }
    }

    #[test]
    fn none_consumes_no_entropy() {
        let mut a = SimRng::new(5);
        let mut b = SimRng::new(5);
        let _ = judge(&FaultPlan::NONE, &mut a);
        assert_eq!(a.next(), b.next());
    }

    #[test]
    fn certain_drop() {
        let mut rng = SimRng::new(2);
        let plan = FaultPlan::drops(1.0);
        for _ in 0..100 {
            assert_eq!(judge(&plan, &mut rng), Verdict::DROPPED);
        }
    }

    #[test]
    fn drop_rate_roughly_matches() {
        let mut rng = SimRng::new(3);
        let plan = FaultPlan::drops(0.25);
        let dropped = (0..10_000)
            .filter(|_| judge(&plan, &mut rng).fate == Fate::Dropped)
            .count();
        assert!((2_000..3_000).contains(&dropped), "dropped={dropped}");
    }

    #[test]
    fn corruption_fires() {
        let mut rng = SimRng::new(4);
        let plan = FaultPlan::corrupts(1.0);
        assert_eq!(judge(&plan, &mut rng).fate, Fate::Corrupted);
    }

    #[test]
    fn mixed_rates_are_independent() {
        // Drop 0.25 and corrupt 0.2 sampled independently: among surviving
        // (not-dropped) worms the corruption rate must match p_corrupt, not
        // the old conditional (1-p_drop)*p_corrupt compounding.
        let mut rng = SimRng::new(6);
        let plan = FaultPlan {
            drop_probability: 0.25,
            corrupt_probability: 0.2,
            ..FaultPlan::NONE
        };
        let mut dropped = 0u32;
        let mut corrupted = 0u32;
        let total = 20_000u32;
        for _ in 0..total {
            match judge(&plan, &mut rng).fate {
                Fate::Dropped => dropped += 1,
                Fate::Corrupted => corrupted += 1,
                Fate::Intact => {}
            }
        }
        let survivors = total - dropped;
        let drop_rate = dropped as f64 / total as f64;
        let corrupt_rate = corrupted as f64 / survivors as f64;
        assert!((0.22..=0.28).contains(&drop_rate), "drop_rate={drop_rate}");
        assert!(
            (0.17..=0.23).contains(&corrupt_rate),
            "corrupt_rate={corrupt_rate}"
        );
    }

    #[test]
    fn duplicate_and_reorder_fire() {
        let mut rng = SimRng::new(7);
        let plan = FaultPlan {
            duplicate_probability: 1.0,
            reorder_probability: 1.0,
            reorder_delay: SimTime::from_us(5),
            ..FaultPlan::NONE
        };
        let v = judge(&plan, &mut rng);
        assert_eq!(v.fate, Fate::Intact);
        assert!(v.duplicate);
        assert!(v.reorder);
    }

    #[test]
    fn drop_suppresses_duplicate_and_reorder() {
        let mut rng = SimRng::new(8);
        let plan = FaultPlan {
            drop_probability: 1.0,
            duplicate_probability: 1.0,
            reorder_probability: 1.0,
            reorder_delay: SimTime::from_us(5),
            ..FaultPlan::NONE
        };
        assert_eq!(judge(&plan, &mut rng), Verdict::DROPPED);
    }

    #[test]
    fn entropy_use_is_outcome_independent() {
        // Whatever faults fire, one judgement advances the stream by the
        // same four draws — so downstream draws stay aligned across plans
        // with equal probabilities but different outcomes.
        let plan = FaultPlan {
            drop_probability: 0.5,
            corrupt_probability: 0.5,
            ..FaultPlan::NONE
        };
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        let mut state = FaultState::default();
        let _ = plan.judge(0, &mut state, &mut a);
        for _ in 0..4 {
            let _ = b.chance(0.5);
        }
        assert_eq!(a.next(), b.next());
    }

    #[test]
    fn burst_drops_consecutive_worms() {
        let mut rng = SimRng::new(10);
        let plan = FaultPlan::drops(1.0).with_burst(3);
        let mut state = FaultState::default();
        // First judgement draws and drops, arming a burst of 2 more.
        for i in 0..3 {
            assert_eq!(
                plan.judge(0, &mut state, &mut rng).fate,
                Fate::Dropped,
                "worm {i}"
            );
        }
        assert_eq!(state.burst_left, 0);
    }

    #[test]
    fn burst_continuation_skips_draws() {
        let plan = FaultPlan::drops(1.0).with_burst(2);
        let mut a = SimRng::new(11);
        let mut b = SimRng::new(11);
        let mut state = FaultState { burst_left: 1 };
        assert_eq!(plan.judge(0, &mut state, &mut a), Verdict::DROPPED);
        assert_eq!(a.next(), b.next(), "burst continuation must not draw");
    }

    #[test]
    fn only_src_scopes_faults() {
        let mut rng = SimRng::new(12);
        let plan = FaultPlan::drops(1.0).only_from(3);
        let mut state = FaultState::default();
        assert_eq!(plan.judge(0, &mut state, &mut rng), Verdict::INTACT);
        assert_eq!(plan.judge(3, &mut state, &mut rng), Verdict::DROPPED);
    }

    #[test]
    fn out_of_scope_src_skips_draws() {
        let plan = FaultPlan::drops(0.5).only_from(3);
        let mut a = SimRng::new(13);
        let mut b = SimRng::new(13);
        let mut state = FaultState::default();
        let _ = plan.judge(0, &mut state, &mut a);
        assert_eq!(a.next(), b.next());
    }
}
