//! Fault injection.
//!
//! GM provides reliable delivery over an unreliable wire; to exercise that
//! machinery (acks, nacks, go-back-N) the fabric can drop or corrupt worms.
//! Faults are driven by the fabric's own seeded RNG stream, so an experiment
//! with faults is exactly as reproducible as one without.

use gmsim_des::SimRng;

/// Probabilistic fault configuration, uniform across links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability an injected worm vanishes entirely.
    pub drop_probability: f64,
    /// Probability a delivered worm arrives with a bad CRC (the receiving
    /// NIC discards it, which GM turns into a timeout/retransmission).
    pub corrupt_probability: f64,
}

impl FaultPlan {
    /// A perfectly reliable wire (the common case; Myrinet links have very
    /// low intrinsic bit-error rates).
    pub const NONE: FaultPlan = FaultPlan {
        drop_probability: 0.0,
        corrupt_probability: 0.0,
    };

    /// Uniform drop probability, no corruption.
    pub fn drops(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        FaultPlan {
            drop_probability: p,
            corrupt_probability: 0.0,
        }
    }

    /// True when no fault can ever fire (lets the fabric skip RNG draws,
    /// keeping fault-free traces identical regardless of fault code).
    pub fn is_none(&self) -> bool {
        self.drop_probability == 0.0 && self.corrupt_probability == 0.0
    }

    /// Decide the fate of one worm.
    pub fn judge(&self, rng: &mut SimRng) -> Fate {
        if self.is_none() {
            return Fate::Intact;
        }
        if rng.chance(self.drop_probability) {
            Fate::Dropped
        } else if rng.chance(self.corrupt_probability) {
            Fate::Corrupted
        } else {
            Fate::Intact
        }
    }
}

/// Outcome of fault judgement for one worm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Arrives unharmed.
    Intact,
    /// Never arrives.
    Dropped,
    /// Arrives but fails CRC; receiver discards it silently.
    Corrupted,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_faults() {
        let mut rng = SimRng::new(1);
        for _ in 0..1000 {
            assert_eq!(FaultPlan::NONE.judge(&mut rng), Fate::Intact);
        }
    }

    #[test]
    fn none_consumes_no_entropy() {
        let mut a = SimRng::new(5);
        let mut b = SimRng::new(5);
        let _ = FaultPlan::NONE.judge(&mut a);
        assert_eq!(a.next(), b.next());
    }

    #[test]
    fn certain_drop() {
        let mut rng = SimRng::new(2);
        let plan = FaultPlan::drops(1.0);
        for _ in 0..100 {
            assert_eq!(plan.judge(&mut rng), Fate::Dropped);
        }
    }

    #[test]
    fn drop_rate_roughly_matches() {
        let mut rng = SimRng::new(3);
        let plan = FaultPlan::drops(0.25);
        let dropped = (0..10_000)
            .filter(|_| plan.judge(&mut rng) == Fate::Dropped)
            .count();
        assert!((2_000..3_000).contains(&dropped), "dropped={dropped}");
    }

    #[test]
    fn corruption_fires() {
        let mut rng = SimRng::new(4);
        let plan = FaultPlan {
            drop_probability: 0.0,
            corrupt_probability: 1.0,
        };
        assert_eq!(plan.judge(&mut rng), Fate::Corrupted);
    }
}
