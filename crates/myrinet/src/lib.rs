//! Source-routed wormhole Myrinet fabric model.
//!
//! Myrinet (the network the paper runs on) is a switched, source-routed,
//! wormhole (cut-through) network: the sending NIC prepends one route byte
//! per switch hop, each switch strips its byte and forwards the worm as soon
//! as the head arrives, and a blocked head stalls in place. Links in the
//! paper's generation run at 1.28 Gb/s full duplex.
//!
//! This crate models exactly what barrier latency depends on:
//!
//! * **per-hop latency** — switch fall-through time plus cable propagation,
//! * **serialization** — packet bytes over link bandwidth, paid once for a
//!   cut-through path (not per hop),
//! * **contention** — every directed link tracks `busy_until`; a worm whose
//!   head reaches a busy output waits for it,
//! * **topology** — single 8- or 16-port switches (the paper's two testbeds)
//!   and multi-switch chains for scaling studies, and
//! * **faults** — per-link drop/corrupt injection to exercise the GM
//!   reliability layer.
//!
//! The fabric is a *timing oracle*, not a packet store: callers ask "if this
//! many bytes leave NIC `a` for NIC `b` now, when do they fully arrive, and
//! do they arrive intact?" and schedule their own delivery events. That keeps
//! this crate free of any payload type and independently testable.

#![warn(missing_docs)]

pub mod fabric;
pub mod fault;
pub mod packet;
pub mod route;
pub mod topology;

pub use fabric::{Delivery, Fabric, FabricStats};
pub use fault::{Fate, FaultPlan, FaultState, Verdict};
pub use packet::{wire_size, WireFormat};
pub use route::{LinkId, NicId, SwitchId};
pub use topology::{FabricSpec, LinkSpec, RoutePolicy, Topology, TopologyBuilder, UnreachablePair};
