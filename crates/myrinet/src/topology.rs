//! Topology construction and route computation.
//!
//! A topology is a graph of NICs and switches joined by full-duplex cables.
//! Builders cover the paper's two physical testbeds — a single 16-port
//! switch for the LANai 4.3 cluster and a single 8-port switch for the
//! LANai 7.2 cluster — plus multi-switch chains used by the scaling study,
//! two- and three-level Clos fabrics with configurable oversubscription
//! ([`TopologyBuilder::clos_oversub`]), and k-ary fat trees
//! ([`TopologyBuilder::fat_tree`]).
//!
//! Routes (shortest paths, BFS with deterministic tie-breaking by vertex
//! index) are computed once at `build()`. Fabrics with multiple equal-cost
//! paths additionally carry a [`RoutePolicy`]: static BFS routes, Myrinet
//! style `(src + dst)` dispersal, or adaptive least-loaded uplink selection
//! driven by the contention model's per-link busy horizons.

use crate::packet::wire_size;
use crate::route::{LinkId, NicId, Route, SwitchId, Vertex};
use gmsim_des::SimTime;
use std::collections::VecDeque;

/// Physical characteristics of one cable (applied to both directions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Bandwidth in bytes per nanosecond (1.28 Gb/s = 0.16 B/ns).
    pub bytes_per_ns: f64,
    /// Propagation delay down the cable.
    pub propagation: SimTime,
}

impl LinkSpec {
    /// The paper's Myrinet generation: 1.28 Gb/s links, short machine-room
    /// cables (~25 ns).
    pub const MYRINET_1280: LinkSpec = LinkSpec {
        bytes_per_ns: 0.16,
        propagation: SimTime::from_ns(25),
    };

    /// Serialization time for `bytes` on this link.
    pub fn serialize(&self, bytes: usize) -> SimTime {
        SimTime::from_ns((bytes as f64 / self.bytes_per_ns).ceil() as u64)
    }
}

/// One directed link of the built topology.
#[derive(Debug, Clone, Copy)]
pub struct DirectedLink {
    /// Where the link starts.
    pub from: Vertex,
    /// Where the link ends.
    pub to: Vertex,
    /// Physical cable parameters.
    pub spec: LinkSpec,
}

/// How NIC-to-NIC routes are stored or derived.
///
/// Up to two Clos levels (≤1024 hosts) the all-pairs table is materialised
/// (`Dense`); a three-level Clos at 4096 hosts would need ~17M boxed routes
/// (gigabytes), so its routes are *computed* from the regular link-id layout
/// the [`TopologyBuilder::clos3`] builder lays down.
#[derive(Debug, Clone)]
enum RouteTable {
    /// `routes[src * nics + dst]`; the self route is empty.
    Dense(Vec<Route>),
    /// Routes derived on demand from the three-level Clos layout.
    Clos3(Clos3Spec),
}

/// Link-id layout of a [`TopologyBuilder::clos3`] fabric, from which any
/// route can be computed without a stored table. See `clos3` for the
/// construction order the formulas mirror.
#[derive(Debug, Clone, Copy)]
struct Clos3Spec {
    pods: usize,
    /// Leaf switches per pod (= aggregation switches per pod).
    leaves: usize,
    /// Hosts per leaf (= core switches per plane).
    hosts: usize,
    /// First link id of the agg↔core cables.
    base_ac: usize,
    /// First link id of the NIC↔leaf cables.
    base_nic: usize,
}

impl Clos3Spec {
    fn hosts_per_pod(&self) -> usize {
        self.leaves * self.hosts
    }

    /// NIC→leaf link of `nic`.
    fn nic_up(&self, nic: usize) -> LinkId {
        LinkId(self.base_nic + 2 * nic)
    }

    /// Leaf→NIC link of `nic`.
    fn nic_down(&self, nic: usize) -> LinkId {
        LinkId(self.base_nic + 2 * nic + 1)
    }

    /// Leaf(p, l)→agg(p, a) link.
    fn leaf_up(&self, p: usize, l: usize, a: usize) -> LinkId {
        LinkId(2 * ((p * self.leaves + l) * self.leaves + a))
    }

    /// Agg(p, a)→leaf(p, l) link.
    fn leaf_down(&self, p: usize, l: usize, a: usize) -> LinkId {
        LinkId(2 * ((p * self.leaves + l) * self.leaves + a) + 1)
    }

    /// Agg(p, a)→core(a, c) link.
    fn agg_up(&self, p: usize, a: usize, c: usize) -> LinkId {
        LinkId(self.base_ac + 2 * ((p * self.leaves + a) * self.hosts + c))
    }

    /// Core(a, c)→agg(p, a) link.
    fn agg_down(&self, p: usize, a: usize, c: usize) -> LinkId {
        LinkId(self.base_ac + 2 * ((p * self.leaves + a) * self.hosts + c) + 1)
    }

    /// Append the dispersed source route for `src → dst` to `out`.
    fn route_into(&self, src: usize, dst: usize, out: &mut Vec<LinkId>) {
        debug_assert!(src.max(dst) < self.pods * self.hosts_per_pod());
        if src == dst {
            return;
        }
        out.push(self.nic_up(src));
        let (ls, ld) = (src / self.hosts, dst / self.hosts);
        if ls != ld {
            let (ps, pd) = (src / self.hosts_per_pod(), dst / self.hosts_per_pod());
            // Same dispersal rule as the two-level Clos: spread pairs over
            // the aggregation/core stages by (src + dst).
            let a = (src + dst) % self.leaves;
            if ps == pd {
                out.push(self.leaf_up(ps, ls % self.leaves, a));
                out.push(self.leaf_down(pd, ld % self.leaves, a));
            } else {
                let c = ((src + dst) / self.leaves) % self.hosts;
                out.push(self.leaf_up(ps, ls % self.leaves, a));
                out.push(self.agg_up(ps, a, c));
                out.push(self.agg_down(pd, a, c));
                out.push(self.leaf_down(pd, ld % self.leaves, a));
            }
        }
        out.push(self.nic_down(dst));
    }

    /// Append the adaptive source route for `src → dst` to `out`, picking
    /// the aggregation switch (and, cross-pod, the core) with the smallest
    /// busy horizon on its uplink. Ties break toward the lowest index, so
    /// selection is a pure function of `busy` and the pair.
    fn adaptive_route_into(&self, src: usize, dst: usize, busy: &[SimTime], out: &mut Vec<LinkId>) {
        debug_assert!(src.max(dst) < self.pods * self.hosts_per_pod());
        if src == dst {
            return;
        }
        out.push(self.nic_up(src));
        let (ls, ld) = (src / self.hosts, dst / self.hosts);
        if ls != ld {
            let (ps, pd) = (src / self.hosts_per_pod(), dst / self.hosts_per_pod());
            let lsrc = ls % self.leaves;
            let mut a = 0;
            for cand in 1..self.leaves {
                if busy[self.leaf_up(ps, lsrc, cand).0] < busy[self.leaf_up(ps, lsrc, a).0] {
                    a = cand;
                }
            }
            if ps == pd {
                out.push(self.leaf_up(ps, lsrc, a));
                out.push(self.leaf_down(pd, ld % self.leaves, a));
            } else {
                let mut c = 0;
                for cand in 1..self.hosts {
                    if busy[self.agg_up(ps, a, cand).0] < busy[self.agg_up(ps, a, c).0] {
                        c = cand;
                    }
                }
                out.push(self.leaf_up(ps, lsrc, a));
                out.push(self.agg_up(ps, a, c));
                out.push(self.agg_down(pd, a, c));
                out.push(self.leaf_down(pd, ld % self.leaves, a));
            }
        }
        out.push(self.nic_down(dst));
    }
}

/// How source routes are chosen on fabrics that offer several equal-cost
/// paths (two- and three-level Clos, fat trees). On fabrics with a single
/// path per pair (one crossbar, switch chains) the policy is irrelevant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePolicy {
    /// The raw BFS shortest paths with deterministic tie-breaking: every
    /// pair sharing a (source leaf, destination leaf) funnels through the
    /// same first-listed spine — the worst-case hotspot baseline.
    StaticBfs,
    /// `(src + dst) % spines` dispersal, the way Myrinet's route dispersal
    /// spread pairwise traffic across the bisection. The default.
    #[default]
    Dispersed,
    /// Pick the uplink with the smallest busy horizon at send time, using
    /// the per-link in-flight counters the contention model already tracks.
    /// Deterministic — and therefore bit-identical between the serial and
    /// parallel engines — because both engines invoke `Fabric::send` in the
    /// same committed global order, and the choice is a pure function of
    /// the busy horizons at that point (ties break to the lowest index).
    Adaptive,
}

/// Link-id layout of a two-level [`TopologyBuilder::clos`] fabric, used by
/// [`RoutePolicy::Adaptive`] to enumerate the candidate spine uplinks of a
/// pair without consulting the stored route table.
#[derive(Debug, Clone, Copy)]
struct Clos2Spec {
    hosts_per_leaf: usize,
    spines: usize,
    /// First link id of the NIC↔leaf cables (the leaf↔spine cables come
    /// first in construction order).
    base_nic: usize,
}

impl Clos2Spec {
    fn nic_up(&self, nic: usize) -> LinkId {
        LinkId(self.base_nic + 2 * nic)
    }

    fn nic_down(&self, nic: usize) -> LinkId {
        LinkId(self.base_nic + 2 * nic + 1)
    }

    fn leaf_to_spine(&self, leaf: usize, spine: usize) -> LinkId {
        LinkId(2 * (leaf * self.spines + spine))
    }

    fn spine_to_leaf(&self, leaf: usize, spine: usize) -> LinkId {
        LinkId(2 * (leaf * self.spines + spine) + 1)
    }

    /// Append the adaptive route for `src → dst`: the spine whose
    /// `leaf → spine` uplink has the smallest busy horizon, ties to the
    /// lowest spine index.
    fn adaptive_route_into(&self, src: usize, dst: usize, busy: &[SimTime], out: &mut Vec<LinkId>) {
        if src == dst {
            return;
        }
        let (ls, ld) = (src / self.hosts_per_leaf, dst / self.hosts_per_leaf);
        out.push(self.nic_up(src));
        if ls != ld {
            let mut best = 0;
            for s in 1..self.spines {
                if busy[self.leaf_to_spine(ls, s).0] < busy[self.leaf_to_spine(ls, best).0] {
                    best = s;
                }
            }
            out.push(self.leaf_to_spine(ls, best));
            out.push(self.spine_to_leaf(ld, best));
        }
        out.push(self.nic_down(dst));
    }
}

/// The regular-layout spec backing adaptive route selection, when the
/// fabric has one.
#[derive(Debug, Clone, Copy)]
enum AdaptiveSpec {
    Clos2(Clos2Spec),
    Clos3(Clos3Spec),
}

/// Typed error from [`TopologyBuilder::try_build`]: some ordered NIC pair
/// has no path. Previously `build` silently stored an *empty* route for
/// such pairs — indistinguishable from the self-route, so the breakage
/// surfaced only as a send-time panic deep in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnreachablePair {
    /// Source NIC of the first unreachable pair found.
    pub src: NicId,
    /// Destination NIC it cannot reach.
    pub dst: NicId,
}

impl std::fmt::Display for UnreachablePair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "topology has no route from NIC {} to NIC {}",
            self.src.0, self.dst.0
        )
    }
}

impl std::error::Error for UnreachablePair {}

/// A compact, `Copy` description of a fabric family, resolved to a concrete
/// [`Topology`] (for a host count and [`RoutePolicy`]) by
/// [`FabricSpec::build`]. This is the knob experiments and studies sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricSpec {
    /// The tiered [`TopologyBuilder::for_cluster`] policy (crossbar ≤ 16
    /// hosts, non-blocking two-level Clos ≤ 1024, three-level beyond).
    Auto,
    /// A two-level Clos with an explicit spine count; oversubscribed when
    /// `spines < hosts_per_leaf` (oversubscription ratio
    /// `hosts_per_leaf / spines`).
    Clos {
        /// Leaf switches.
        leaves: usize,
        /// Hosts per leaf switch.
        hosts_per_leaf: usize,
        /// Spine switches every leaf is cabled to.
        spines: usize,
    },
    /// A k-ary fat tree (`k` even): `k` pods of `k/2` edge and `k/2`
    /// aggregation switches, `(k/2)²` cores, `k³/4` hosts, non-blocking.
    FatTree {
        /// Switch radix; must be even and ≥ 2.
        k: usize,
    },
}

impl FabricSpec {
    /// Number of hosts this fabric can attach. `Auto` scales with the
    /// request, so it reports `requested` back.
    pub fn host_capacity(&self, requested: usize) -> usize {
        match *self {
            FabricSpec::Auto => requested,
            FabricSpec::Clos {
                leaves,
                hosts_per_leaf,
                ..
            } => leaves * hosts_per_leaf,
            FabricSpec::FatTree { k } => k * k * k / 4,
        }
    }

    /// Hosts sharing a leaf (edge) switch with any given host, for `n`
    /// attached hosts — the first distance tier of the analytic model.
    pub fn leaf_hosts(&self, n: usize) -> usize {
        match *self {
            FabricSpec::Auto => {
                if n <= TopologyBuilder::MAX_SINGLE_SWITCH_HOSTS {
                    n.max(1)
                } else {
                    TopologyBuilder::CLOS_LEAF_HOSTS
                }
            }
            FabricSpec::Clos { hosts_per_leaf, .. } => hosts_per_leaf,
            FabricSpec::FatTree { k } => k / 2,
        }
    }

    /// Hosts per pod when the fabric has a third (core) level, else `None`.
    pub fn pod_hosts(&self, n: usize) -> Option<usize> {
        match *self {
            FabricSpec::Auto => (n > TopologyBuilder::MAX_TWO_LEVEL_HOSTS)
                .then_some(TopologyBuilder::CLOS_LEAF_HOSTS * TopologyBuilder::CLOS_LEAF_HOSTS),
            FabricSpec::Clos { .. } => None,
            FabricSpec::FatTree { k } => Some(k * k / 4),
        }
    }

    /// Uplinks available to a leaf for cross-leaf traffic.
    pub fn spine_count(&self, n: usize) -> usize {
        match *self {
            FabricSpec::Auto => {
                if n <= TopologyBuilder::MAX_SINGLE_SWITCH_HOSTS {
                    1
                } else {
                    TopologyBuilder::CLOS_LEAF_HOSTS
                }
            }
            FabricSpec::Clos { spines, .. } => spines,
            FabricSpec::FatTree { k } => k / 2,
        }
    }

    /// Oversubscription ratio: worst-case hosts per leaf divided by its
    /// uplinks. 1.0 for every non-blocking fabric; 2.0 for a 2:1 Clos.
    pub fn oversub_ratio(&self, n: usize) -> f64 {
        if n <= TopologyBuilder::MAX_SINGLE_SWITCH_HOSTS && matches!(self, FabricSpec::Auto) {
            return 1.0;
        }
        self.leaf_hosts(n) as f64 / self.spine_count(n) as f64
    }

    /// Resolve to a concrete topology for `hosts` attached hosts under
    /// `policy`.
    ///
    /// # Panics
    /// Panics if the fabric cannot attach `hosts` hosts (see
    /// [`FabricSpec::host_capacity`]) or if a `FatTree` radix is odd.
    pub fn build(&self, hosts: usize, policy: RoutePolicy) -> Topology {
        assert!(
            self.host_capacity(hosts) >= hosts,
            "fabric {self:?} holds {} hosts, {hosts} requested",
            self.host_capacity(hosts),
        );
        match *self {
            FabricSpec::Auto => TopologyBuilder::for_cluster_policy(hosts, policy),
            FabricSpec::Clos {
                leaves,
                hosts_per_leaf,
                spines,
            } => TopologyBuilder::clos_policy(leaves, hosts_per_leaf, spines, policy),
            FabricSpec::FatTree { k } => TopologyBuilder::fat_tree_policy(k, policy),
        }
    }
}

/// A finished topology: vertices, directed links, and NIC-to-NIC routes
/// (stored or computed — see `RouteTable`).
#[derive(Debug, Clone)]
pub struct Topology {
    nics: usize,
    switch_latency: Vec<SimTime>,
    links: Vec<DirectedLink>,
    table: RouteTable,
    policy: RoutePolicy,
    adaptive: Option<AdaptiveSpec>,
}

/// Which logical process each NIC belongs to, for the parallel DES engine.
/// Partitions follow the physical fabric: one LP per leaf switch, except on
/// a single crossbar where every NIC is its own LP (a lone partition would
/// serialise the run).
#[derive(Debug, Clone)]
pub struct PartitionMap {
    /// `lp_of[nic]` = logical-process index.
    pub lp_of: Vec<u32>,
    /// Number of logical processes.
    pub count: usize,
}

impl Topology {
    /// Number of attached NICs.
    pub fn nic_count(&self) -> usize {
        self.nics
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switch_latency.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The directed link table entry.
    pub fn link(&self, id: LinkId) -> &DirectedLink {
        &self.links[id.0]
    }

    /// Fall-through latency of a switch.
    pub fn switch_latency(&self, s: SwitchId) -> SimTime {
        self.switch_latency[s.0]
    }

    /// The route from `src` to `dst` (owned; computed topologies derive it
    /// on the fly). Hot paths should use [`Topology::route_links_into`].
    ///
    /// # Panics
    /// Panics if either NIC is out of range.
    pub fn route(&self, src: NicId, dst: NicId) -> Route {
        let mut links = Vec::new();
        self.route_links_into(src, dst, &mut links);
        Route::new(links)
    }

    /// Append the links of the `src → dst` route to `out` (cleared first).
    /// Zero allocations once `out` has grown to the longest route.
    ///
    /// # Panics
    /// Panics if either NIC is out of range.
    pub fn route_links_into(&self, src: NicId, dst: NicId, out: &mut Vec<LinkId>) {
        assert!(src.0 < self.nics && dst.0 < self.nics, "NIC out of range");
        out.clear();
        match &self.table {
            RouteTable::Dense(routes) => {
                out.extend_from_slice(routes[src.0 * self.nics + dst.0].links());
            }
            RouteTable::Clos3(spec) => spec.route_into(src.0, dst.0, out),
        }
    }

    /// The route policy this topology was built with.
    pub fn route_policy(&self) -> RoutePolicy {
        self.policy
    }

    /// The route `Fabric::send` will inject for `src → dst` given the
    /// current per-link busy horizons: under [`RoutePolicy::Adaptive`] the
    /// least-loaded uplink, otherwise exactly
    /// [`Topology::route_links_into`]. Adaptive selection is a pure
    /// function of `(src, dst, busy)`, so two engines that invoke sends in
    /// the same committed order pick the same routes — the determinism
    /// argument the parallel engine's bit-identity rests on (DESIGN.md
    /// §18). Adaptive routes always have the same link count as their
    /// dispersed counterparts, so the conservative lookahead from
    /// [`Topology::min_delivery_latency`] is unaffected.
    ///
    /// # Panics
    /// Panics if either NIC is out of range.
    pub fn route_for_send_into(
        &self,
        src: NicId,
        dst: NicId,
        busy: &[SimTime],
        out: &mut Vec<LinkId>,
    ) {
        match &self.adaptive {
            Some(AdaptiveSpec::Clos2(spec)) => {
                assert!(src.0 < self.nics && dst.0 < self.nics, "NIC out of range");
                out.clear();
                spec.adaptive_route_into(src.0, dst.0, busy, out);
            }
            Some(AdaptiveSpec::Clos3(spec)) => {
                assert!(src.0 < self.nics && dst.0 < self.nics, "NIC out of range");
                out.clear();
                spec.adaptive_route_into(src.0, dst.0, busy, out);
            }
            None => self.route_links_into(src, dst, out),
        }
    }

    /// Sum of switch fall-through latencies along a route.
    pub fn switch_delay(&self, route: &Route) -> SimTime {
        let mut total = SimTime::ZERO;
        for l in route.links() {
            if let Vertex::Switch(s) = self.links[l.0].from {
                total += self.switch_latency[s.0];
            }
        }
        total
    }

    /// True when every NIC can reach every other NIC.
    pub fn fully_connected(&self) -> bool {
        match &self.table {
            RouteTable::Dense(routes) => {
                for s in 0..self.nics {
                    for d in 0..self.nics {
                        if s != d && routes[s * self.nics + d].is_empty() {
                            return false;
                        }
                    }
                }
                true
            }
            // Every pair has a formula route by construction.
            RouteTable::Clos3(_) => true,
        }
    }

    /// The switch a NIC's first outgoing cable lands on, or `None` for an
    /// unconnected NIC.
    pub fn attached_switch(&self, nic: NicId) -> Option<SwitchId> {
        self.links.iter().find_map(|l| match (l.from, l.to) {
            (Vertex::Nic(n), Vertex::Switch(s)) if n == nic => Some(s),
            _ => None,
        })
    }

    /// Partition the NICs into logical processes for parallel simulation:
    /// one LP per attached (leaf) switch, unless all NICs share one switch,
    /// in which case each NIC becomes its own LP. LP indices follow the
    /// order switches first appear in NIC order, so fabrics that attach
    /// NICs leaf-by-leaf (all the standard builders) yield contiguous
    /// NIC ranges per LP.
    pub fn partition_map(&self) -> PartitionMap {
        let mut switch_of: Vec<Option<SwitchId>> = Vec::with_capacity(self.nics);
        for n in 0..self.nics {
            switch_of.push(self.attached_switch(NicId(n)));
        }
        let mut distinct: Vec<Option<SwitchId>> = Vec::new();
        for &s in &switch_of {
            if !distinct.contains(&s) {
                distinct.push(s);
            }
        }
        if distinct.len() <= 1 {
            // Single crossbar (or degenerate): per-NIC partitions.
            return PartitionMap {
                lp_of: (0..self.nics as u32).collect(),
                count: self.nics,
            };
        }
        let lp_of = switch_of
            .iter()
            .map(|s| distinct.iter().position(|d| d == s).unwrap() as u32)
            .collect();
        PartitionMap {
            lp_of,
            count: distinct.len(),
        }
    }

    /// Unstalled wire latency from injection to delivery along `links`, for
    /// a `payload`-byte packet: the same walk `Fabric::send`
    /// (crate::Fabric) performs, minus busy-link stalls (which only ever
    /// push arrival later).
    pub fn delivery_latency(&self, links: &[LinkId], payload: usize) -> SimTime {
        let mut head = SimTime::ZERO;
        for (i, l) in links.iter().enumerate() {
            let link = &self.links[l.0];
            if i > 0 {
                if let Vertex::Switch(s) = link.from {
                    head += self.switch_latency[s.0];
                }
            }
            head += link.spec.propagation;
        }
        let hops = links.len().saturating_sub(1);
        let ser = self.links[links[0].0]
            .spec
            .serialize(wire_size(payload, hops));
        head + ser
    }

    /// The conservative lookahead for parallel simulation: the minimum
    /// unstalled delivery latency over all ordered NIC pairs, for the
    /// smallest (zero-payload) packet. Any packet injected at `t` arrives
    /// no earlier than `t + min_delivery_latency()`; stalls, faults and
    /// real payloads only push arrival later. `None` when some pair is
    /// unreachable, [`SimTime::ZERO`] when a zero-latency link makes
    /// conservative windows impossible (callers must fall back to a merged
    /// LP).
    pub fn min_delivery_latency(&self) -> Option<SimTime> {
        match &self.table {
            RouteTable::Dense(routes) => {
                let mut min: Option<SimTime> = None;
                for s in 0..self.nics {
                    for d in 0..self.nics {
                        if s == d {
                            continue;
                        }
                        let links = routes[s * self.nics + d].links();
                        if links.is_empty() {
                            return None;
                        }
                        let lat = self.delivery_latency(links, 0);
                        min = Some(min.map_or(lat, |m: SimTime| m.min(lat)));
                    }
                }
                min
            }
            RouteTable::Clos3(spec) => {
                // Same-leaf is minimal: longer routes add the same NIC links
                // plus extra (uniform-spec) hops and fall-throughs.
                let mut links = Vec::new();
                spec.route_into(0, 1, &mut links);
                Some(self.delivery_latency(&links, 0))
            }
        }
    }
}

/// Incremental topology builder.
pub struct TopologyBuilder {
    nics: usize,
    switch_latency: Vec<SimTime>,
    links: Vec<DirectedLink>,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TopologyBuilder {
    /// Fall-through latency of the modelled Myrinet crossbar switches.
    pub const DEFAULT_SWITCH_LATENCY: SimTime = SimTime::from_ns(300);

    /// An empty builder.
    pub fn new() -> Self {
        TopologyBuilder {
            nics: 0,
            switch_latency: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Add a NIC vertex; returns its id.
    pub fn add_nic(&mut self) -> NicId {
        let id = NicId(self.nics);
        self.nics += 1;
        id
    }

    /// Add a switch with the given fall-through latency; returns its id.
    pub fn add_switch(&mut self, latency: SimTime) -> SwitchId {
        self.switch_latency.push(latency);
        SwitchId(self.switch_latency.len() - 1)
    }

    /// Join two vertices with a full-duplex cable (two directed links).
    pub fn connect(&mut self, a: Vertex, b: Vertex, spec: LinkSpec) {
        self.links.push(DirectedLink {
            from: a,
            to: b,
            spec,
        });
        self.links.push(DirectedLink {
            from: b,
            to: a,
            spec,
        });
    }

    /// Finish: computes all-pairs NIC-to-NIC shortest routes.
    ///
    /// # Panics
    /// Panics when some ordered NIC pair has no path — use
    /// [`TopologyBuilder::try_build`] for a typed error instead.
    /// (Historically this case silently stored an empty route,
    /// indistinguishable from the self-route.)
    pub fn build(self) -> Topology {
        match self.try_build() {
            Ok(t) => t,
            Err(e) => panic!("TopologyBuilder::build: {e}"),
        }
    }

    /// Finish, reporting the first unreachable ordered NIC pair as a typed
    /// error instead of panicking.
    pub fn try_build(self) -> Result<Topology, UnreachablePair> {
        let nics = self.nics;
        let n_vertices = nics + self.switch_latency.len();
        let vidx = |v: Vertex| -> usize {
            match v {
                Vertex::Nic(n) => n.0,
                Vertex::Switch(s) => nics + s.0,
            }
        };
        // adjacency: outgoing (link, to) per vertex, in link order so BFS
        // tie-breaking is deterministic.
        let mut adj: Vec<Vec<(LinkId, usize)>> = vec![Vec::new(); n_vertices];
        for (i, l) in self.links.iter().enumerate() {
            adj[vidx(l.from)].push((LinkId(i), vidx(l.to)));
        }

        let mut routes = Vec::with_capacity(nics * nics);
        for src in 0..nics {
            // BFS from src over the whole graph.
            let mut prev: Vec<Option<(usize, LinkId)>> = vec![None; n_vertices];
            let mut seen = vec![false; n_vertices];
            let mut queue = VecDeque::new();
            seen[src] = true;
            queue.push_back(src);
            while let Some(v) = queue.pop_front() {
                for &(link, to) in &adj[v] {
                    // NICs are leaves: never route *through* another NIC.
                    if seen[to] {
                        continue;
                    }
                    if to < nics && to != v {
                        seen[to] = true;
                        prev[to] = Some((v, link));
                        continue; // do not expand past a NIC
                    }
                    seen[to] = true;
                    prev[to] = Some((v, link));
                    queue.push_back(to);
                }
            }
            for dst in 0..nics {
                if dst == src {
                    routes.push(Route::new(vec![]));
                    continue;
                }
                let mut rev = Vec::new();
                let mut v = dst;
                let mut ok = true;
                while v != src {
                    match prev[v] {
                        Some((p, link)) => {
                            rev.push(link);
                            v = p;
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    rev.reverse();
                    routes.push(Route::new(rev));
                } else {
                    return Err(UnreachablePair {
                        src: NicId(src),
                        dst: NicId(dst),
                    });
                }
            }
        }
        Ok(Topology {
            nics,
            switch_latency: self.switch_latency,
            links: self.links,
            table: RouteTable::Dense(routes),
            policy: RoutePolicy::StaticBfs,
            adaptive: None,
        })
    }

    /// Largest cluster [`TopologyBuilder::for_cluster`] puts on a single
    /// crossbar — the paper's 16-port switch.
    pub const MAX_SINGLE_SWITCH_HOSTS: usize = 16;

    /// Hosts per leaf switch in the [`TopologyBuilder::for_cluster`] Clos
    /// policy: 8 hosts + 8 spine uplinks fill a 16-port crossbar and keep
    /// the fabric non-blocking.
    pub const CLOS_LEAF_HOSTS: usize = 8;

    /// Largest cluster [`TopologyBuilder::for_cluster`] serves with a
    /// two-level Clos; beyond this it grows a third (core) level.
    pub const MAX_TWO_LEVEL_HOSTS: usize = 1024;

    /// The standard fabric for an `n`-host cluster, shared by the testbed
    /// and the analytic model: one crossbar up to
    /// [`Self::MAX_SINGLE_SWITCH_HOSTS`] hosts (the paper's testbed), a
    /// non-blocking two-level Clos of 16-port crossbars
    /// ([`Self::CLOS_LEAF_HOSTS`] hosts + as many uplinks per leaf) up to
    /// [`Self::MAX_TWO_LEVEL_HOSTS`] hosts — which is how real Myrinet
    /// installations scaled — and a three-level (pod + core) Clos beyond
    /// that, up to 4096 hosts and further.
    pub fn for_cluster(hosts: usize) -> Topology {
        Self::for_cluster_policy(hosts, RoutePolicy::Dispersed)
    }

    /// [`TopologyBuilder::for_cluster`] with an explicit [`RoutePolicy`].
    /// On a single crossbar (≤ 16 hosts) every pair has exactly one path,
    /// so the policy is accepted but has no effect.
    pub fn for_cluster_policy(hosts: usize, policy: RoutePolicy) -> Topology {
        if hosts <= Self::MAX_SINGLE_SWITCH_HOSTS {
            Self::single_switch(hosts)
        } else if hosts <= Self::MAX_TWO_LEVEL_HOSTS {
            Self::clos_policy(
                hosts.div_ceil(Self::CLOS_LEAF_HOSTS),
                Self::CLOS_LEAF_HOSTS,
                Self::CLOS_LEAF_HOSTS,
                policy,
            )
        } else {
            let pod_hosts = Self::CLOS_LEAF_HOSTS * Self::CLOS_LEAF_HOSTS;
            Self::clos3_policy(hosts.div_ceil(pod_hosts), policy)
        }
    }

    /// The paper's testbed shape: `hosts` NICs on one crossbar switch
    /// (16-port for the LANai 4.3 cluster, 8-port for the 7.2 cluster).
    pub fn single_switch(hosts: usize) -> Topology {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch(Self::DEFAULT_SWITCH_LATENCY);
        for _ in 0..hosts {
            let n = b.add_nic();
            b.connect(Vertex::Nic(n), Vertex::Switch(sw), LinkSpec::MYRINET_1280);
        }
        b.build()
    }

    /// A two-level Clos network, how real Myrinet installations scaled
    /// past one crossbar: `leaves` leaf switches with `hosts_per_leaf`
    /// NICs each, every leaf cabled to every one of `spines` spine
    /// switches. With `spines >= hosts_per_leaf` the fabric is
    /// non-blocking. Source routes are *dispersed*: the spine for a
    /// (src, dst) pair is chosen by `(src + dst) % spines`, spreading
    /// simultaneous pairwise-exchange traffic across the bisection the way
    /// Myrinet's route-dispersal did.
    pub fn clos(leaves: usize, hosts_per_leaf: usize, spines: usize) -> Topology {
        Self::clos_policy(leaves, hosts_per_leaf, spines, RoutePolicy::Dispersed)
    }

    /// An *oversubscribed* two-level Clos: `spines < hosts_per_leaf` means
    /// a leaf's hosts contend for fewer uplinks than ports
    /// (oversubscription ratio `hosts_per_leaf / spines` — e.g. 8 hosts
    /// over 4 spines is a 2:1 fabric). Identical to
    /// [`TopologyBuilder::clos`] otherwise; routes disperse by
    /// `(src + dst) % spines`.
    pub fn clos_oversub(leaves: usize, hosts_per_leaf: usize, spines: usize) -> Topology {
        assert!(
            spines <= hosts_per_leaf,
            "clos_oversub wants spines ({spines}) <= hosts_per_leaf ({hosts_per_leaf}); \
             use clos() for over-provisioned fabrics"
        );
        Self::clos_policy(leaves, hosts_per_leaf, spines, RoutePolicy::Dispersed)
    }

    /// [`TopologyBuilder::clos`] with an explicit [`RoutePolicy`].
    pub fn clos_policy(
        leaves: usize,
        hosts_per_leaf: usize,
        spines: usize,
        policy: RoutePolicy,
    ) -> Topology {
        assert!(leaves >= 1 && hosts_per_leaf >= 1 && spines >= 1);
        let mut b = TopologyBuilder::new();
        let leaf_sw: Vec<SwitchId> = (0..leaves)
            .map(|_| b.add_switch(Self::DEFAULT_SWITCH_LATENCY))
            .collect();
        let spine_sw: Vec<SwitchId> = (0..spines)
            .map(|_| b.add_switch(Self::DEFAULT_SWITCH_LATENCY))
            .collect();
        for &l in &leaf_sw {
            for &s in &spine_sw {
                b.connect(Vertex::Switch(l), Vertex::Switch(s), LinkSpec::MYRINET_1280);
            }
        }
        for &l in &leaf_sw {
            for _ in 0..hosts_per_leaf {
                let n = b.add_nic();
                b.connect(Vertex::Nic(n), Vertex::Switch(l), LinkSpec::MYRINET_1280);
            }
        }
        // Build once for the link table (BFS routes), then — unless the
        // policy is StaticBfs — replace the routes with dispersed ones.
        let mut topo = b.build();
        let spec = Clos2Spec {
            hosts_per_leaf,
            spines,
            base_nic: 2 * leaves * spines,
        };
        topo.policy = policy;
        if policy == RoutePolicy::Adaptive {
            topo.adaptive = Some(AdaptiveSpec::Clos2(spec));
        }
        if policy == RoutePolicy::StaticBfs {
            return topo;
        }
        use std::collections::HashMap;
        let mut link_of: HashMap<(Vertex, Vertex), LinkId> = HashMap::new();
        for i in 0..topo.link_count() {
            let l = topo.links[i];
            link_of.insert((l.from, l.to), LinkId(i));
        }
        let nics = topo.nic_count();
        let leaf_of = |nic: usize| leaf_sw[nic / hosts_per_leaf];
        let mut routes = Vec::with_capacity(nics * nics);
        for src in 0..nics {
            for dst in 0..nics {
                if src == dst {
                    routes.push(Route::new(vec![]));
                    continue;
                }
                let (la, lb) = (leaf_of(src), leaf_of(dst));
                let up = link_of[&(Vertex::Nic(NicId(src)), Vertex::Switch(la))];
                let down = link_of[&(Vertex::Switch(lb), Vertex::Nic(NicId(dst)))];
                if la == lb {
                    routes.push(Route::new(vec![up, down]));
                } else {
                    let spine = spine_sw[(src + dst) % spines];
                    let to_spine = link_of[&(Vertex::Switch(la), Vertex::Switch(spine))];
                    let from_spine = link_of[&(Vertex::Switch(spine), Vertex::Switch(lb))];
                    routes.push(Route::new(vec![up, to_spine, from_spine, down]));
                }
            }
        }
        topo.table = RouteTable::Dense(routes);
        topo
    }

    /// A three-level Clos: `pods` pods of 8 leaf switches × 8 hosts (64
    /// hosts per pod), every leaf cabled to all 8 aggregation switches of
    /// its pod, and aggregation switch `a` of every pod cabled to the 8
    /// core switches of *plane* `a`. Same-pod routes disperse over the
    /// aggregation stage by `(src + dst) % 8`; cross-pod routes
    /// additionally disperse over the plane's cores. 64 pods = 4096 hosts.
    ///
    /// Routes are computed from the link-id layout rather than stored: the
    /// all-pairs table at 4096 hosts would be ~17M routes. The layout is
    /// pinned by the construction order below and mirrored by
    /// `Clos3Spec`'s formulas; `clos3_routes_chain_and_disperse` in the
    /// test suite cross-checks computed routes against the actual link
    /// table.
    pub fn clos3(pods: usize) -> Topology {
        Self::clos3_policy(pods, RoutePolicy::Dispersed)
    }

    /// [`TopologyBuilder::clos3`] with an explicit [`RoutePolicy`].
    ///
    /// `StaticBfs` needs the all-pairs table materialised, which is only
    /// feasible up to [`Self::MAX_TWO_LEVEL_HOSTS`] hosts; larger fabrics
    /// fall back to dispersed routes.
    pub fn clos3_policy(pods: usize, policy: RoutePolicy) -> Topology {
        Self::three_level(pods, Self::CLOS_LEAF_HOSTS, policy)
    }

    /// A k-ary fat tree (`k` even, ≥ 2): `k` pods of `k/2` edge switches
    /// (`k/2` hosts each) and `k/2` aggregation switches, with `(k/2)²`
    /// core switches — `k³/4` hosts on `k`-port switches, non-blocking at
    /// every level. Structurally this is the three-level Clos with
    /// pod width `k/2` instead of 8; routes disperse (or adapt) over the
    /// aggregation and core stages exactly as [`TopologyBuilder::clos3`]'s
    /// do.
    pub fn fat_tree(k: usize) -> Topology {
        Self::fat_tree_policy(k, RoutePolicy::Dispersed)
    }

    /// [`TopologyBuilder::fat_tree`] with an explicit [`RoutePolicy`].
    pub fn fat_tree_policy(k: usize, policy: RoutePolicy) -> Topology {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "fat tree radix must be even, got {k}"
        );
        Self::three_level(k, k / 2, policy)
    }

    /// Shared construction for three-level fabrics: `pods` pods of `k`
    /// leaf (edge) switches × `k` hosts, `k` aggregation switches per pod,
    /// and `k²` cores (plane-major). `clos3` uses `k = 8` with a free pod
    /// count; a fat tree uses `k = radix/2` with `pods = radix`.
    fn three_level(pods: usize, k: usize, policy: RoutePolicy) -> Topology {
        assert!(pods >= 1 && k >= 1);
        #[allow(non_snake_case)]
        let K = k;
        let mut b = TopologyBuilder::new();
        // Switches: leaves, then aggs, then cores (plane-major).
        let leaf: Vec<SwitchId> = (0..pods * K)
            .map(|_| b.add_switch(Self::DEFAULT_SWITCH_LATENCY))
            .collect();
        let agg: Vec<SwitchId> = (0..pods * K)
            .map(|_| b.add_switch(Self::DEFAULT_SWITCH_LATENCY))
            .collect();
        let core: Vec<SwitchId> = (0..K * K)
            .map(|_| b.add_switch(Self::DEFAULT_SWITCH_LATENCY))
            .collect();
        // Cables: leaf↔agg (pod-, then leaf-, then agg-major) ...
        for p in 0..pods {
            for l in 0..K {
                for a in 0..K {
                    b.connect(
                        Vertex::Switch(leaf[p * K + l]),
                        Vertex::Switch(agg[p * K + a]),
                        LinkSpec::MYRINET_1280,
                    );
                }
            }
        }
        let base_ac = b.links.len();
        // ... then agg↔core (pod-, agg-, core-major; agg a only reaches
        // plane a) ...
        for p in 0..pods {
            for a in 0..K {
                for c in 0..K {
                    b.connect(
                        Vertex::Switch(agg[p * K + a]),
                        Vertex::Switch(core[a * K + c]),
                        LinkSpec::MYRINET_1280,
                    );
                }
            }
        }
        let base_nic = b.links.len();
        // ... then NIC↔leaf, leaf by leaf.
        for p in 0..pods {
            for l in 0..K {
                for _ in 0..K {
                    let n = b.add_nic();
                    b.connect(
                        Vertex::Nic(n),
                        Vertex::Switch(leaf[p * K + l]),
                        LinkSpec::MYRINET_1280,
                    );
                }
            }
        }
        let spec = Clos3Spec {
            pods,
            leaves: K,
            hosts: K,
            base_ac,
            base_nic,
        };
        if policy == RoutePolicy::StaticBfs && b.nics <= Self::MAX_TWO_LEVEL_HOSTS {
            let mut t = b.build();
            t.policy = RoutePolicy::StaticBfs;
            return t;
        }
        Topology {
            nics: b.nics,
            switch_latency: b.switch_latency,
            links: b.links,
            table: RouteTable::Clos3(spec),
            policy: if policy == RoutePolicy::StaticBfs {
                // Too large to materialise the all-pairs BFS table.
                RoutePolicy::Dispersed
            } else {
                policy
            },
            adaptive: (policy == RoutePolicy::Adaptive).then_some(AdaptiveSpec::Clos3(spec)),
        }
    }

    /// A chain of switches with `hosts_per_switch` NICs each — used by the
    /// scaling study to grow beyond one crossbar. Switch i is cabled to
    /// switch i+1.
    pub fn switch_chain(switches: usize, hosts_per_switch: usize) -> Topology {
        assert!(switches >= 1);
        let mut b = TopologyBuilder::new();
        let sws: Vec<SwitchId> = (0..switches)
            .map(|_| b.add_switch(Self::DEFAULT_SWITCH_LATENCY))
            .collect();
        for w in windows2(&sws) {
            b.connect(
                Vertex::Switch(w.0),
                Vertex::Switch(w.1),
                LinkSpec::MYRINET_1280,
            );
        }
        for &sw in &sws {
            for _ in 0..hosts_per_switch {
                let n = b.add_nic();
                b.connect(Vertex::Nic(n), Vertex::Switch(sw), LinkSpec::MYRINET_1280);
            }
        }
        b.build()
    }
}

fn windows2(s: &[SwitchId]) -> impl Iterator<Item = (SwitchId, SwitchId)> + '_ {
    s.windows(2).map(|w| (w[0], w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_switch_routes_are_two_links() {
        let t = TopologyBuilder::single_switch(8);
        assert_eq!(t.nic_count(), 8);
        assert_eq!(t.switch_count(), 1);
        assert!(t.fully_connected());
        for s in 0..8 {
            for d in 0..8 {
                let r = t.route(NicId(s), NicId(d));
                if s == d {
                    assert!(r.is_empty());
                } else {
                    assert_eq!(r.len(), 2, "{s}->{d}");
                    assert_eq!(r.switch_hops(), 1);
                }
            }
        }
    }

    #[test]
    fn single_switch_16_matches_paper_testbed() {
        let t = TopologyBuilder::single_switch(16);
        assert_eq!(t.nic_count(), 16);
        // 16 cables, 2 directed links each
        assert_eq!(t.link_count(), 32);
    }

    #[test]
    fn chain_routes_cross_intermediate_switches() {
        let t = TopologyBuilder::switch_chain(3, 2); // nics 0,1 on sw0; 2,3 on sw1; 4,5 on sw2
        assert!(t.fully_connected());
        let same_switch = t.route(NicId(0), NicId(1));
        assert_eq!(same_switch.switch_hops(), 1);
        let far = t.route(NicId(0), NicId(5));
        assert_eq!(far.switch_hops(), 3);
        assert_eq!(far.len(), 4);
    }

    #[test]
    fn routes_are_symmetric_in_length() {
        let t = TopologyBuilder::switch_chain(4, 3);
        for s in 0..12 {
            for d in 0..12 {
                assert_eq!(
                    t.route(NicId(s), NicId(d)).len(),
                    t.route(NicId(d), NicId(s)).len()
                );
            }
        }
    }

    #[test]
    fn routes_never_pass_through_nics() {
        let t = TopologyBuilder::switch_chain(2, 4);
        for s in 0..8 {
            for d in 0..8 {
                let r = t.route(NicId(s), NicId(d));
                for (i, l) in r.links().iter().enumerate() {
                    let link = t.link(*l);
                    if i > 0 {
                        assert!(
                            matches!(link.from, Vertex::Switch(_)),
                            "interior vertex must be a switch"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn serialization_time() {
        let s = LinkSpec::MYRINET_1280;
        // 160 bytes at 0.16 B/ns = 1000 ns
        assert_eq!(s.serialize(160), SimTime::from_ns(1000));
        assert_eq!(s.serialize(0), SimTime::ZERO);
    }

    #[test]
    fn switch_delay_sums_fallthrough() {
        let t = TopologyBuilder::switch_chain(3, 1);
        let r = t.route(NicId(0), NicId(2)).clone();
        assert_eq!(
            t.switch_delay(&r),
            TopologyBuilder::DEFAULT_SWITCH_LATENCY * 3
        );
    }

    #[test]
    fn clos_routes_are_two_or_four_links() {
        let t = TopologyBuilder::clos(4, 4, 4);
        assert_eq!(t.nic_count(), 16);
        assert!(t.fully_connected());
        for s in 0..16 {
            for d in 0..16 {
                if s == d {
                    continue;
                }
                let r = t.route(NicId(s), NicId(d));
                if s / 4 == d / 4 {
                    assert_eq!(r.len(), 2, "same leaf {s}->{d}");
                } else {
                    assert_eq!(r.len(), 4, "cross leaf {s}->{d}");
                    assert_eq!(r.switch_hops(), 3);
                }
            }
        }
    }

    #[test]
    fn clos_disperses_spine_choice() {
        let t = TopologyBuilder::clos(2, 8, 8);
        // Fix a source on leaf 0; destinations on leaf 1 should use many
        // different spine uplinks, not all the same one.
        let mut uplinks = std::collections::HashSet::new();
        for d in 8..16 {
            let r = t.route(NicId(0), NicId(d));
            uplinks.insert(r.links()[1]);
        }
        assert!(
            uplinks.len() >= 4,
            "only {} distinct uplinks",
            uplinks.len()
        );
    }

    #[test]
    fn clos_route_endpoints_are_consistent() {
        let t = TopologyBuilder::clos(3, 2, 2);
        for s in 0..6 {
            for d in 0..6 {
                if s == d {
                    continue;
                }
                let r = t.route(NicId(s), NicId(d));
                let first = t.link(r.links()[0]);
                let last = t.link(*r.links().last().unwrap());
                assert_eq!(first.from, Vertex::Nic(NicId(s)));
                assert_eq!(last.to, Vertex::Nic(NicId(d)));
                // consecutive links chain
                for w in r.links().windows(2) {
                    assert_eq!(t.link(w[0]).to, t.link(w[1]).from);
                }
            }
        }
    }

    #[test]
    fn clos3_routes_chain_and_disperse() {
        // Small three-level Clos: 4 pods = 256 hosts. Computed routes must
        // be real paths through the link table (endpoints match, links
        // chain) with the expected lengths.
        let t = TopologyBuilder::clos3(4);
        assert_eq!(t.nic_count(), 256);
        assert!(t.fully_connected());
        let pairs = [
            (0usize, 1usize, 2usize), // same leaf: nic-leaf-nic
            (0, 9, 4),                // same pod, different leaf
            (0, 63, 4),               // same pod boundary
            (0, 64, 6),               // adjacent pods
            (7, 200, 6),              // far cross-pod
            (255, 0, 6),              // reverse direction
            (64, 65, 2),              // same leaf in pod 1
        ];
        for (s, d, len) in pairs {
            let r = t.route(NicId(s), NicId(d));
            assert_eq!(r.len(), len, "{s}->{d}");
            let first = t.link(r.links()[0]);
            let last = t.link(*r.links().last().unwrap());
            assert_eq!(first.from, Vertex::Nic(NicId(s)));
            assert_eq!(last.to, Vertex::Nic(NicId(d)));
            for w in r.links().windows(2) {
                assert_eq!(t.link(w[0]).to, t.link(w[1]).from, "{s}->{d}");
            }
        }
        // Cross-pod routes from one source should spread over several
        // distinct uplinks (aggregation dispersal).
        let mut uplinks = std::collections::HashSet::new();
        for d in 64..128 {
            uplinks.insert(t.route(NicId(0), NicId(d)).links()[1]);
        }
        assert!(uplinks.len() >= 4, "only {} uplinks", uplinks.len());
    }

    #[test]
    fn clos3_routes_exhaustive_validity_sample() {
        // Denser sweep on a 2-pod fabric: every pair is a valid chained
        // path and is symmetric in length.
        let t = TopologyBuilder::clos3(2);
        let n = t.nic_count();
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                let r = t.route(NicId(s), NicId(d));
                assert_eq!(t.link(r.links()[0]).from, Vertex::Nic(NicId(s)));
                assert_eq!(t.link(*r.links().last().unwrap()).to, Vertex::Nic(NicId(d)));
                for w in r.links().windows(2) {
                    assert_eq!(t.link(w[0]).to, t.link(w[1]).from);
                }
                assert_eq!(r.len(), t.route(NicId(d), NicId(s)).len());
            }
        }
    }

    #[test]
    fn for_cluster_policy_tiers() {
        assert_eq!(TopologyBuilder::for_cluster(16).switch_count(), 1);
        // 1024 = 128 leaves + 8 spines, two levels (unchanged from the
        // two-level policy — the golden scale study depends on it).
        assert_eq!(TopologyBuilder::for_cluster(1024).switch_count(), 136);
        // 4096 = 64 pods: 512 leaves + 512 aggs + 64 cores.
        let t = TopologyBuilder::for_cluster(4096);
        assert_eq!(t.nic_count(), 4096);
        assert_eq!(t.switch_count(), 512 + 512 + 64);
    }

    #[test]
    fn partition_map_single_switch_is_per_node() {
        let p = TopologyBuilder::single_switch(8).partition_map();
        assert_eq!(p.count, 8);
        assert_eq!(p.lp_of, (0..8u32).collect::<Vec<_>>());
    }

    #[test]
    fn partition_map_clos_groups_by_leaf() {
        let p = TopologyBuilder::clos(4, 8, 8).partition_map();
        assert_eq!(p.count, 4);
        for nic in 0..32usize {
            assert_eq!(p.lp_of[nic], (nic / 8) as u32);
        }
        let p3 = TopologyBuilder::clos3(2).partition_map();
        assert_eq!(p3.count, 16);
        assert_eq!(p3.lp_of[0], 0);
        assert_eq!(p3.lp_of[127], 15);
    }

    #[test]
    fn min_delivery_latency_matches_wire_math() {
        // Single switch, default params: 2×25ns propagation + 300ns
        // fall-through + ser(wire_size(0, 1) = 18B at 0.16 B/ns → 113ns).
        let expect = SimTime::from_ns(25 + 300 + 25 + 113);
        for t in [
            TopologyBuilder::single_switch(4),
            TopologyBuilder::clos(4, 8, 8),
            TopologyBuilder::clos3(2),
        ] {
            assert_eq!(t.min_delivery_latency(), Some(expect));
        }
    }

    #[test]
    fn min_delivery_latency_none_when_disconnected() {
        // `try_build` refuses disconnected fabrics, so a Dense table with
        // empty cross-routes can only arise from a bug; pin the defensive
        // `None` (the parallel engine falls back to a merged LP on it) by
        // constructing the degenerate table directly.
        let t = Topology {
            nics: 2,
            switch_latency: vec![],
            links: vec![],
            table: RouteTable::Dense(vec![Route::new(vec![]); 4]),
            policy: RoutePolicy::StaticBfs,
            adaptive: None,
        };
        assert_eq!(t.min_delivery_latency(), None);
        assert!(!t.fully_connected());
    }

    #[test]
    fn try_build_reports_unreachable_pair() {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch(TopologyBuilder::DEFAULT_SWITCH_LATENCY);
        let a = b.add_nic();
        b.connect(Vertex::Nic(a), Vertex::Switch(sw), LinkSpec::MYRINET_1280);
        let _orphan = b.add_nic(); // never cabled
        let err = b.try_build().unwrap_err();
        assert_eq!(
            err,
            UnreachablePair {
                src: NicId(0),
                dst: NicId(1)
            }
        );
        assert!(err.to_string().contains("no route"));
    }

    #[test]
    #[should_panic(expected = "no route from NIC 0 to NIC 1")]
    fn build_panics_on_unreachable_pair() {
        let mut b = TopologyBuilder::new();
        let _ = b.add_nic();
        let _ = b.add_nic();
        let _ = b.build();
    }

    #[test]
    fn zero_latency_fabric_reports_zero_lookahead() {
        // Infinite bandwidth + zero propagation + zero fall-through is the
        // degenerate case the parallel engine must refuse to window.
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch(SimTime::ZERO);
        let spec = LinkSpec {
            bytes_per_ns: f64::INFINITY,
            propagation: SimTime::ZERO,
        };
        for _ in 0..2 {
            let n = b.add_nic();
            b.connect(Vertex::Nic(n), Vertex::Switch(sw), spec);
        }
        assert_eq!(b.build().min_delivery_latency(), Some(SimTime::ZERO));
    }

    #[test]
    fn static_bfs_clos_funnels_through_one_spine() {
        let t = TopologyBuilder::clos_policy(2, 8, 8, RoutePolicy::StaticBfs);
        assert_eq!(t.route_policy(), RoutePolicy::StaticBfs);
        let mut uplinks = std::collections::HashSet::new();
        for d in 8..16 {
            let r = t.route(NicId(0), NicId(d));
            assert_eq!(r.len(), 4);
            uplinks.insert(r.links()[1]);
        }
        assert_eq!(uplinks.len(), 1, "BFS ties all break to the same spine");
    }

    #[test]
    fn clos_oversub_restricts_spines() {
        let t = TopologyBuilder::clos_oversub(4, 8, 2);
        assert_eq!(t.nic_count(), 32);
        assert_eq!(t.switch_count(), 6);
        let mut uplinks = std::collections::HashSet::new();
        for d in 8..16 {
            uplinks.insert(t.route(NicId(0), NicId(d)).links()[1]);
        }
        assert_eq!(uplinks.len(), 2, "4:1 fabric disperses over its 2 spines");
    }

    #[test]
    fn adaptive_clos_picks_least_loaded_spine() {
        let t = TopologyBuilder::clos_policy(2, 4, 4, RoutePolicy::Adaptive);
        assert_eq!(t.route_policy(), RoutePolicy::Adaptive);
        let mut busy = vec![SimTime::ZERO; t.link_count()];
        let mut out = Vec::new();
        t.route_for_send_into(NicId(0), NicId(4), &busy, &mut out);
        assert_eq!(out.len(), 4);
        let first_choice = out[1];
        // Load the chosen uplink; the next send must move to another spine.
        busy[first_choice.0] = SimTime::from_ns(10_000);
        let mut out2 = Vec::new();
        t.route_for_send_into(NicId(0), NicId(4), &busy, &mut out2);
        assert_ne!(out2[1], first_choice);
        for o in [&out, &out2] {
            assert_eq!(t.link(o[0]).from, Vertex::Nic(NicId(0)));
            assert_eq!(t.link(*o.last().unwrap()).to, Vertex::Nic(NicId(4)));
            for w in o.windows(2) {
                assert_eq!(t.link(w[0]).to, t.link(w[1]).from);
            }
        }
        // Same-leaf pairs never touch a spine.
        t.route_for_send_into(NicId(0), NicId(1), &busy, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn fat_tree_shapes_and_routes_chain() {
        let t = TopologyBuilder::fat_tree(4);
        // k = 4: 4 pods × 2 edges × 2 hosts = 16 hosts; 8 edge + 8 agg +
        // 4 core switches.
        assert_eq!(t.nic_count(), 16);
        assert_eq!(t.switch_count(), 20);
        assert!(t.fully_connected());
        for (s, d, len) in [(0usize, 1usize, 2usize), (0, 2, 4), (0, 15, 6), (5, 4, 2)] {
            let r = t.route(NicId(s), NicId(d));
            assert_eq!(r.len(), len, "{s}->{d}");
            assert_eq!(t.link(r.links()[0]).from, Vertex::Nic(NicId(s)));
            assert_eq!(t.link(*r.links().last().unwrap()).to, Vertex::Nic(NicId(d)));
            for w in r.links().windows(2) {
                assert_eq!(t.link(w[0]).to, t.link(w[1]).from, "{s}->{d}");
            }
        }
        // One LP per edge switch, two hosts each.
        let p = t.partition_map();
        assert_eq!(p.count, 8);
        assert_eq!(p.lp_of[3], 1);
        assert_eq!(
            t.min_delivery_latency(),
            Some(SimTime::from_ns(25 + 300 + 25 + 113))
        );
    }

    #[test]
    fn adaptive_fat_tree_moves_off_loaded_links() {
        let t = TopologyBuilder::fat_tree_policy(4, RoutePolicy::Adaptive);
        let mut busy = vec![SimTime::ZERO; t.link_count()];
        let mut out = Vec::new();
        t.route_for_send_into(NicId(0), NicId(15), &busy, &mut out);
        assert_eq!(out.len(), 6);
        let up = out[1];
        busy[up.0] = SimTime::from_ns(5_000);
        let mut out2 = Vec::new();
        t.route_for_send_into(NicId(0), NicId(15), &busy, &mut out2);
        assert_ne!(out2[1], up);
        for o in [&out, &out2] {
            assert_eq!(t.link(o[0]).from, Vertex::Nic(NicId(0)));
            assert_eq!(t.link(*o.last().unwrap()).to, Vertex::Nic(NicId(15)));
            for w in o.windows(2) {
                assert_eq!(t.link(w[0]).to, t.link(w[1]).from);
            }
        }
    }

    #[test]
    fn fabric_spec_capacity_and_shape_helpers() {
        let clos = FabricSpec::Clos {
            leaves: 8,
            hosts_per_leaf: 8,
            spines: 4,
        };
        assert_eq!(clos.host_capacity(64), 64);
        assert_eq!(clos.leaf_hosts(64), 8);
        assert_eq!(clos.spine_count(64), 4);
        assert!((clos.oversub_ratio(64) - 2.0).abs() < 1e-12);
        assert_eq!(clos.pod_hosts(64), None);
        let ft = FabricSpec::FatTree { k: 8 };
        assert_eq!(ft.host_capacity(0), 128);
        assert_eq!(ft.leaf_hosts(128), 4);
        assert_eq!(ft.pod_hosts(128), Some(16));
        assert!((ft.oversub_ratio(128) - 1.0).abs() < 1e-12);
        assert_eq!(FabricSpec::Auto.leaf_hosts(8), 8);
        assert_eq!(FabricSpec::Auto.leaf_hosts(100), 8);
        assert_eq!(FabricSpec::Auto.pod_hosts(4096), Some(64));
        assert!((FabricSpec::Auto.oversub_ratio(8) - 1.0).abs() < 1e-12);
        let t = clos.build(64, RoutePolicy::Adaptive);
        assert_eq!(t.nic_count(), 64);
        assert_eq!(t.route_policy(), RoutePolicy::Adaptive);
    }

    #[test]
    fn for_cluster_partial_leaves_agree_with_partition_map() {
        // Non-multiple-of-8 host counts build whole leaves; NIC count,
        // partition map and route shapes must stay mutually consistent
        // (the analytic tier forms and the parallel engine both assume
        // aligned 8-host leaf blocks).
        for n in [17usize, 23, 100, 250, 777, 1000, 1023] {
            let t = TopologyBuilder::for_cluster(n);
            let leaves = n.div_ceil(TopologyBuilder::CLOS_LEAF_HOSTS);
            assert_eq!(
                t.nic_count(),
                leaves * TopologyBuilder::CLOS_LEAF_HOSTS,
                "n={n}"
            );
            assert!(t.nic_count() >= n);
            assert!(t.nic_count() < n + TopologyBuilder::CLOS_LEAF_HOSTS);
            let p = t.partition_map();
            assert_eq!(p.count, leaves, "n={n}");
            for nic in 0..t.nic_count() {
                assert_eq!(
                    p.lp_of[nic] as usize,
                    nic / TopologyBuilder::CLOS_LEAF_HOSTS,
                    "n={n} nic={nic}"
                );
            }
            // Rank distance ≥ 8 always crosses a leaf (4-link route);
            // same-leaf pairs stay 2 links — the premise of the analytic
            // cross-leaf surcharge tier.
            assert_eq!(
                t.route(NicId(0), NicId(TopologyBuilder::CLOS_LEAF_HOSTS))
                    .len(),
                4
            );
            assert_eq!(t.route(NicId(0), NicId(1)).len(), 2);
        }
        // Three-level tier builds whole 64-host pods.
        let t = TopologyBuilder::for_cluster(2500);
        assert_eq!(t.nic_count(), 2500usize.div_ceil(64) * 64);
        assert!(t.nic_count() >= 2500 && t.nic_count() < 2500 + 64);
    }
}
