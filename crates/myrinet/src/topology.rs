//! Topology construction and route computation.
//!
//! A topology is a graph of NICs and switches joined by full-duplex cables.
//! Builders cover the paper's two physical testbeds — a single 16-port
//! switch for the LANai 4.3 cluster and a single 8-port switch for the
//! LANai 7.2 cluster — plus multi-switch chains used by the scaling study.
//! Routes (shortest paths, BFS with deterministic tie-breaking by vertex
//! index) are computed once at `build()`.

use crate::route::{LinkId, NicId, Route, SwitchId, Vertex};
use gmsim_des::SimTime;
use std::collections::VecDeque;

/// Physical characteristics of one cable (applied to both directions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Bandwidth in bytes per nanosecond (1.28 Gb/s = 0.16 B/ns).
    pub bytes_per_ns: f64,
    /// Propagation delay down the cable.
    pub propagation: SimTime,
}

impl LinkSpec {
    /// The paper's Myrinet generation: 1.28 Gb/s links, short machine-room
    /// cables (~25 ns).
    pub const MYRINET_1280: LinkSpec = LinkSpec {
        bytes_per_ns: 0.16,
        propagation: SimTime::from_ns(25),
    };

    /// Serialization time for `bytes` on this link.
    pub fn serialize(&self, bytes: usize) -> SimTime {
        SimTime::from_ns((bytes as f64 / self.bytes_per_ns).ceil() as u64)
    }
}

/// One directed link of the built topology.
#[derive(Debug, Clone, Copy)]
pub struct DirectedLink {
    /// Where the link starts.
    pub from: Vertex,
    /// Where the link ends.
    pub to: Vertex,
    /// Physical cable parameters.
    pub spec: LinkSpec,
}

/// A finished topology: vertices, directed links, and all-pairs NIC routes.
#[derive(Debug, Clone)]
pub struct Topology {
    nics: usize,
    switch_latency: Vec<SimTime>,
    links: Vec<DirectedLink>,
    /// routes[src * nics + dst]; the self route is empty.
    routes: Vec<Route>,
}

impl Topology {
    /// Number of attached NICs.
    pub fn nic_count(&self) -> usize {
        self.nics
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switch_latency.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The directed link table entry.
    pub fn link(&self, id: LinkId) -> &DirectedLink {
        &self.links[id.0]
    }

    /// Fall-through latency of a switch.
    pub fn switch_latency(&self, s: SwitchId) -> SimTime {
        self.switch_latency[s.0]
    }

    /// The precomputed route from `src` to `dst`.
    ///
    /// # Panics
    /// Panics if either NIC is out of range.
    pub fn route(&self, src: NicId, dst: NicId) -> &Route {
        assert!(src.0 < self.nics && dst.0 < self.nics, "NIC out of range");
        &self.routes[src.0 * self.nics + dst.0]
    }

    /// Sum of switch fall-through latencies along a route.
    pub fn switch_delay(&self, route: &Route) -> SimTime {
        let mut total = SimTime::ZERO;
        for l in route.links() {
            if let Vertex::Switch(s) = self.links[l.0].from {
                total += self.switch_latency[s.0];
            }
        }
        total
    }

    /// True when every NIC can reach every other NIC.
    pub fn fully_connected(&self) -> bool {
        for s in 0..self.nics {
            for d in 0..self.nics {
                if s != d && self.routes[s * self.nics + d].is_empty() {
                    return false;
                }
            }
        }
        true
    }
}

/// Incremental topology builder.
pub struct TopologyBuilder {
    nics: usize,
    switch_latency: Vec<SimTime>,
    links: Vec<DirectedLink>,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TopologyBuilder {
    /// Fall-through latency of the modelled Myrinet crossbar switches.
    pub const DEFAULT_SWITCH_LATENCY: SimTime = SimTime::from_ns(300);

    /// An empty builder.
    pub fn new() -> Self {
        TopologyBuilder {
            nics: 0,
            switch_latency: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Add a NIC vertex; returns its id.
    pub fn add_nic(&mut self) -> NicId {
        let id = NicId(self.nics);
        self.nics += 1;
        id
    }

    /// Add a switch with the given fall-through latency; returns its id.
    pub fn add_switch(&mut self, latency: SimTime) -> SwitchId {
        self.switch_latency.push(latency);
        SwitchId(self.switch_latency.len() - 1)
    }

    /// Join two vertices with a full-duplex cable (two directed links).
    pub fn connect(&mut self, a: Vertex, b: Vertex, spec: LinkSpec) {
        self.links.push(DirectedLink {
            from: a,
            to: b,
            spec,
        });
        self.links.push(DirectedLink {
            from: b,
            to: a,
            spec,
        });
    }

    /// Finish: computes all-pairs NIC-to-NIC shortest routes.
    pub fn build(self) -> Topology {
        let nics = self.nics;
        let n_vertices = nics + self.switch_latency.len();
        let vidx = |v: Vertex| -> usize {
            match v {
                Vertex::Nic(n) => n.0,
                Vertex::Switch(s) => nics + s.0,
            }
        };
        // adjacency: outgoing (link, to) per vertex, in link order so BFS
        // tie-breaking is deterministic.
        let mut adj: Vec<Vec<(LinkId, usize)>> = vec![Vec::new(); n_vertices];
        for (i, l) in self.links.iter().enumerate() {
            adj[vidx(l.from)].push((LinkId(i), vidx(l.to)));
        }

        let mut routes = Vec::with_capacity(nics * nics);
        for src in 0..nics {
            // BFS from src over the whole graph.
            let mut prev: Vec<Option<(usize, LinkId)>> = vec![None; n_vertices];
            let mut seen = vec![false; n_vertices];
            let mut queue = VecDeque::new();
            seen[src] = true;
            queue.push_back(src);
            while let Some(v) = queue.pop_front() {
                for &(link, to) in &adj[v] {
                    // NICs are leaves: never route *through* another NIC.
                    if seen[to] {
                        continue;
                    }
                    if to < nics && to != v {
                        seen[to] = true;
                        prev[to] = Some((v, link));
                        continue; // do not expand past a NIC
                    }
                    seen[to] = true;
                    prev[to] = Some((v, link));
                    queue.push_back(to);
                }
            }
            for dst in 0..nics {
                if dst == src {
                    routes.push(Route::new(vec![]));
                    continue;
                }
                let mut rev = Vec::new();
                let mut v = dst;
                let mut ok = true;
                while v != src {
                    match prev[v] {
                        Some((p, link)) => {
                            rev.push(link);
                            v = p;
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    rev.reverse();
                    routes.push(Route::new(rev));
                } else {
                    routes.push(Route::new(vec![])); // unreachable ⇒ empty
                }
            }
        }
        Topology {
            nics,
            switch_latency: self.switch_latency,
            links: self.links,
            routes,
        }
    }

    /// Largest cluster [`TopologyBuilder::for_cluster`] puts on a single
    /// crossbar — the paper's 16-port switch.
    pub const MAX_SINGLE_SWITCH_HOSTS: usize = 16;

    /// Hosts per leaf switch in the [`TopologyBuilder::for_cluster`] Clos
    /// policy: 8 hosts + 8 spine uplinks fill a 16-port crossbar and keep
    /// the fabric non-blocking.
    pub const CLOS_LEAF_HOSTS: usize = 8;

    /// The standard fabric for an `n`-host cluster, shared by the testbed
    /// and the analytic model: one crossbar up to
    /// [`Self::MAX_SINGLE_SWITCH_HOSTS`] hosts (the paper's testbed), and a
    /// non-blocking two-level Clos of 16-port crossbars
    /// ([`Self::CLOS_LEAF_HOSTS`] hosts + as many uplinks per leaf) beyond
    /// that — which is how real Myrinet installations scaled.
    pub fn for_cluster(hosts: usize) -> Topology {
        if hosts <= Self::MAX_SINGLE_SWITCH_HOSTS {
            Self::single_switch(hosts)
        } else {
            Self::clos(
                hosts.div_ceil(Self::CLOS_LEAF_HOSTS),
                Self::CLOS_LEAF_HOSTS,
                Self::CLOS_LEAF_HOSTS,
            )
        }
    }

    /// The paper's testbed shape: `hosts` NICs on one crossbar switch
    /// (16-port for the LANai 4.3 cluster, 8-port for the 7.2 cluster).
    pub fn single_switch(hosts: usize) -> Topology {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch(Self::DEFAULT_SWITCH_LATENCY);
        for _ in 0..hosts {
            let n = b.add_nic();
            b.connect(Vertex::Nic(n), Vertex::Switch(sw), LinkSpec::MYRINET_1280);
        }
        b.build()
    }

    /// A two-level Clos network, how real Myrinet installations scaled
    /// past one crossbar: `leaves` leaf switches with `hosts_per_leaf`
    /// NICs each, every leaf cabled to every one of `spines` spine
    /// switches. With `spines >= hosts_per_leaf` the fabric is
    /// non-blocking. Source routes are *dispersed*: the spine for a
    /// (src, dst) pair is chosen by `(src + dst) % spines`, spreading
    /// simultaneous pairwise-exchange traffic across the bisection the way
    /// Myrinet's route-dispersal did.
    pub fn clos(leaves: usize, hosts_per_leaf: usize, spines: usize) -> Topology {
        assert!(leaves >= 1 && hosts_per_leaf >= 1 && spines >= 1);
        let mut b = TopologyBuilder::new();
        let leaf_sw: Vec<SwitchId> = (0..leaves)
            .map(|_| b.add_switch(Self::DEFAULT_SWITCH_LATENCY))
            .collect();
        let spine_sw: Vec<SwitchId> = (0..spines)
            .map(|_| b.add_switch(Self::DEFAULT_SWITCH_LATENCY))
            .collect();
        for &l in &leaf_sw {
            for &s in &spine_sw {
                b.connect(Vertex::Switch(l), Vertex::Switch(s), LinkSpec::MYRINET_1280);
            }
        }
        for &l in &leaf_sw {
            for _ in 0..hosts_per_leaf {
                let n = b.add_nic();
                b.connect(Vertex::Nic(n), Vertex::Switch(l), LinkSpec::MYRINET_1280);
            }
        }
        // Build once for the link table, then replace the BFS routes with
        // dispersed ones.
        let mut topo = b.build();
        use std::collections::HashMap;
        let mut link_of: HashMap<(Vertex, Vertex), LinkId> = HashMap::new();
        for i in 0..topo.link_count() {
            let l = topo.links[i];
            link_of.insert((l.from, l.to), LinkId(i));
        }
        let nics = topo.nic_count();
        let leaf_of = |nic: usize| leaf_sw[nic / hosts_per_leaf];
        let mut routes = Vec::with_capacity(nics * nics);
        for src in 0..nics {
            for dst in 0..nics {
                if src == dst {
                    routes.push(Route::new(vec![]));
                    continue;
                }
                let (la, lb) = (leaf_of(src), leaf_of(dst));
                let up = link_of[&(Vertex::Nic(NicId(src)), Vertex::Switch(la))];
                let down = link_of[&(Vertex::Switch(lb), Vertex::Nic(NicId(dst)))];
                if la == lb {
                    routes.push(Route::new(vec![up, down]));
                } else {
                    let spine = spine_sw[(src + dst) % spines];
                    let to_spine = link_of[&(Vertex::Switch(la), Vertex::Switch(spine))];
                    let from_spine = link_of[&(Vertex::Switch(spine), Vertex::Switch(lb))];
                    routes.push(Route::new(vec![up, to_spine, from_spine, down]));
                }
            }
        }
        topo.routes = routes;
        topo
    }

    /// A chain of switches with `hosts_per_switch` NICs each — used by the
    /// scaling study to grow beyond one crossbar. Switch i is cabled to
    /// switch i+1.
    pub fn switch_chain(switches: usize, hosts_per_switch: usize) -> Topology {
        assert!(switches >= 1);
        let mut b = TopologyBuilder::new();
        let sws: Vec<SwitchId> = (0..switches)
            .map(|_| b.add_switch(Self::DEFAULT_SWITCH_LATENCY))
            .collect();
        for w in windows2(&sws) {
            b.connect(
                Vertex::Switch(w.0),
                Vertex::Switch(w.1),
                LinkSpec::MYRINET_1280,
            );
        }
        for &sw in &sws {
            for _ in 0..hosts_per_switch {
                let n = b.add_nic();
                b.connect(Vertex::Nic(n), Vertex::Switch(sw), LinkSpec::MYRINET_1280);
            }
        }
        b.build()
    }
}

fn windows2(s: &[SwitchId]) -> impl Iterator<Item = (SwitchId, SwitchId)> + '_ {
    s.windows(2).map(|w| (w[0], w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_switch_routes_are_two_links() {
        let t = TopologyBuilder::single_switch(8);
        assert_eq!(t.nic_count(), 8);
        assert_eq!(t.switch_count(), 1);
        assert!(t.fully_connected());
        for s in 0..8 {
            for d in 0..8 {
                let r = t.route(NicId(s), NicId(d));
                if s == d {
                    assert!(r.is_empty());
                } else {
                    assert_eq!(r.len(), 2, "{s}->{d}");
                    assert_eq!(r.switch_hops(), 1);
                }
            }
        }
    }

    #[test]
    fn single_switch_16_matches_paper_testbed() {
        let t = TopologyBuilder::single_switch(16);
        assert_eq!(t.nic_count(), 16);
        // 16 cables, 2 directed links each
        assert_eq!(t.link_count(), 32);
    }

    #[test]
    fn chain_routes_cross_intermediate_switches() {
        let t = TopologyBuilder::switch_chain(3, 2); // nics 0,1 on sw0; 2,3 on sw1; 4,5 on sw2
        assert!(t.fully_connected());
        let same_switch = t.route(NicId(0), NicId(1));
        assert_eq!(same_switch.switch_hops(), 1);
        let far = t.route(NicId(0), NicId(5));
        assert_eq!(far.switch_hops(), 3);
        assert_eq!(far.len(), 4);
    }

    #[test]
    fn routes_are_symmetric_in_length() {
        let t = TopologyBuilder::switch_chain(4, 3);
        for s in 0..12 {
            for d in 0..12 {
                assert_eq!(
                    t.route(NicId(s), NicId(d)).len(),
                    t.route(NicId(d), NicId(s)).len()
                );
            }
        }
    }

    #[test]
    fn routes_never_pass_through_nics() {
        let t = TopologyBuilder::switch_chain(2, 4);
        for s in 0..8 {
            for d in 0..8 {
                let r = t.route(NicId(s), NicId(d));
                for (i, l) in r.links().iter().enumerate() {
                    let link = t.link(*l);
                    if i > 0 {
                        assert!(
                            matches!(link.from, Vertex::Switch(_)),
                            "interior vertex must be a switch"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn serialization_time() {
        let s = LinkSpec::MYRINET_1280;
        // 160 bytes at 0.16 B/ns = 1000 ns
        assert_eq!(s.serialize(160), SimTime::from_ns(1000));
        assert_eq!(s.serialize(0), SimTime::ZERO);
    }

    #[test]
    fn switch_delay_sums_fallthrough() {
        let t = TopologyBuilder::switch_chain(3, 1);
        let r = t.route(NicId(0), NicId(2)).clone();
        assert_eq!(
            t.switch_delay(&r),
            TopologyBuilder::DEFAULT_SWITCH_LATENCY * 3
        );
    }

    #[test]
    fn clos_routes_are_two_or_four_links() {
        let t = TopologyBuilder::clos(4, 4, 4);
        assert_eq!(t.nic_count(), 16);
        assert!(t.fully_connected());
        for s in 0..16 {
            for d in 0..16 {
                if s == d {
                    continue;
                }
                let r = t.route(NicId(s), NicId(d));
                if s / 4 == d / 4 {
                    assert_eq!(r.len(), 2, "same leaf {s}->{d}");
                } else {
                    assert_eq!(r.len(), 4, "cross leaf {s}->{d}");
                    assert_eq!(r.switch_hops(), 3);
                }
            }
        }
    }

    #[test]
    fn clos_disperses_spine_choice() {
        let t = TopologyBuilder::clos(2, 8, 8);
        // Fix a source on leaf 0; destinations on leaf 1 should use many
        // different spine uplinks, not all the same one.
        let mut uplinks = std::collections::HashSet::new();
        for d in 8..16 {
            let r = t.route(NicId(0), NicId(d));
            uplinks.insert(r.links()[1]);
        }
        assert!(
            uplinks.len() >= 4,
            "only {} distinct uplinks",
            uplinks.len()
        );
    }

    #[test]
    fn clos_route_endpoints_are_consistent() {
        let t = TopologyBuilder::clos(3, 2, 2);
        for s in 0..6 {
            for d in 0..6 {
                if s == d {
                    continue;
                }
                let r = t.route(NicId(s), NicId(d));
                let first = t.link(r.links()[0]);
                let last = t.link(*r.links().last().unwrap());
                assert_eq!(first.from, Vertex::Nic(NicId(s)));
                assert_eq!(last.to, Vertex::Nic(NicId(d)));
                // consecutive links chain
                for w in r.links().windows(2) {
                    assert_eq!(t.link(w[0]).to, t.link(w[1]).from);
                }
            }
        }
    }

    #[test]
    fn disconnected_pairs_detected() {
        let mut b = TopologyBuilder::new();
        let _a = b.add_nic();
        let _c = b.add_nic();
        let t = b.build();
        assert!(!t.fully_connected());
    }
}
