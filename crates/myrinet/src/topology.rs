//! Topology construction and route computation.
//!
//! A topology is a graph of NICs and switches joined by full-duplex cables.
//! Builders cover the paper's two physical testbeds — a single 16-port
//! switch for the LANai 4.3 cluster and a single 8-port switch for the
//! LANai 7.2 cluster — plus multi-switch chains used by the scaling study.
//! Routes (shortest paths, BFS with deterministic tie-breaking by vertex
//! index) are computed once at `build()`.

use crate::packet::wire_size;
use crate::route::{LinkId, NicId, Route, SwitchId, Vertex};
use gmsim_des::SimTime;
use std::collections::VecDeque;

/// Physical characteristics of one cable (applied to both directions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Bandwidth in bytes per nanosecond (1.28 Gb/s = 0.16 B/ns).
    pub bytes_per_ns: f64,
    /// Propagation delay down the cable.
    pub propagation: SimTime,
}

impl LinkSpec {
    /// The paper's Myrinet generation: 1.28 Gb/s links, short machine-room
    /// cables (~25 ns).
    pub const MYRINET_1280: LinkSpec = LinkSpec {
        bytes_per_ns: 0.16,
        propagation: SimTime::from_ns(25),
    };

    /// Serialization time for `bytes` on this link.
    pub fn serialize(&self, bytes: usize) -> SimTime {
        SimTime::from_ns((bytes as f64 / self.bytes_per_ns).ceil() as u64)
    }
}

/// One directed link of the built topology.
#[derive(Debug, Clone, Copy)]
pub struct DirectedLink {
    /// Where the link starts.
    pub from: Vertex,
    /// Where the link ends.
    pub to: Vertex,
    /// Physical cable parameters.
    pub spec: LinkSpec,
}

/// How NIC-to-NIC routes are stored or derived.
///
/// Up to two Clos levels (≤1024 hosts) the all-pairs table is materialised
/// (`Dense`); a three-level Clos at 4096 hosts would need ~17M boxed routes
/// (gigabytes), so its routes are *computed* from the regular link-id layout
/// the [`TopologyBuilder::clos3`] builder lays down.
#[derive(Debug, Clone)]
enum RouteTable {
    /// `routes[src * nics + dst]`; the self route is empty.
    Dense(Vec<Route>),
    /// Routes derived on demand from the three-level Clos layout.
    Clos3(Clos3Spec),
}

/// Link-id layout of a [`TopologyBuilder::clos3`] fabric, from which any
/// route can be computed without a stored table. See `clos3` for the
/// construction order the formulas mirror.
#[derive(Debug, Clone, Copy)]
struct Clos3Spec {
    pods: usize,
    /// Leaf switches per pod (= aggregation switches per pod).
    leaves: usize,
    /// Hosts per leaf (= core switches per plane).
    hosts: usize,
    /// First link id of the agg↔core cables.
    base_ac: usize,
    /// First link id of the NIC↔leaf cables.
    base_nic: usize,
}

impl Clos3Spec {
    fn hosts_per_pod(&self) -> usize {
        self.leaves * self.hosts
    }

    /// NIC→leaf link of `nic`.
    fn nic_up(&self, nic: usize) -> LinkId {
        LinkId(self.base_nic + 2 * nic)
    }

    /// Leaf→NIC link of `nic`.
    fn nic_down(&self, nic: usize) -> LinkId {
        LinkId(self.base_nic + 2 * nic + 1)
    }

    /// Leaf(p, l)→agg(p, a) link.
    fn leaf_up(&self, p: usize, l: usize, a: usize) -> LinkId {
        LinkId(2 * ((p * self.leaves + l) * self.leaves + a))
    }

    /// Agg(p, a)→leaf(p, l) link.
    fn leaf_down(&self, p: usize, l: usize, a: usize) -> LinkId {
        LinkId(2 * ((p * self.leaves + l) * self.leaves + a) + 1)
    }

    /// Agg(p, a)→core(a, c) link.
    fn agg_up(&self, p: usize, a: usize, c: usize) -> LinkId {
        LinkId(self.base_ac + 2 * ((p * self.leaves + a) * self.hosts + c))
    }

    /// Core(a, c)→agg(p, a) link.
    fn agg_down(&self, p: usize, a: usize, c: usize) -> LinkId {
        LinkId(self.base_ac + 2 * ((p * self.leaves + a) * self.hosts + c) + 1)
    }

    /// Append the dispersed source route for `src → dst` to `out`.
    fn route_into(&self, src: usize, dst: usize, out: &mut Vec<LinkId>) {
        debug_assert!(src.max(dst) < self.pods * self.hosts_per_pod());
        if src == dst {
            return;
        }
        out.push(self.nic_up(src));
        let (ls, ld) = (src / self.hosts, dst / self.hosts);
        if ls != ld {
            let (ps, pd) = (src / self.hosts_per_pod(), dst / self.hosts_per_pod());
            // Same dispersal rule as the two-level Clos: spread pairs over
            // the aggregation/core stages by (src + dst).
            let a = (src + dst) % self.leaves;
            if ps == pd {
                out.push(self.leaf_up(ps, ls % self.leaves, a));
                out.push(self.leaf_down(pd, ld % self.leaves, a));
            } else {
                let c = ((src + dst) / self.leaves) % self.hosts;
                out.push(self.leaf_up(ps, ls % self.leaves, a));
                out.push(self.agg_up(ps, a, c));
                out.push(self.agg_down(pd, a, c));
                out.push(self.leaf_down(pd, ld % self.leaves, a));
            }
        }
        out.push(self.nic_down(dst));
    }
}

/// A finished topology: vertices, directed links, and NIC-to-NIC routes
/// (stored or computed — see `RouteTable`).
#[derive(Debug, Clone)]
pub struct Topology {
    nics: usize,
    switch_latency: Vec<SimTime>,
    links: Vec<DirectedLink>,
    table: RouteTable,
}

/// Which logical process each NIC belongs to, for the parallel DES engine.
/// Partitions follow the physical fabric: one LP per leaf switch, except on
/// a single crossbar where every NIC is its own LP (a lone partition would
/// serialise the run).
#[derive(Debug, Clone)]
pub struct PartitionMap {
    /// `lp_of[nic]` = logical-process index.
    pub lp_of: Vec<u32>,
    /// Number of logical processes.
    pub count: usize,
}

impl Topology {
    /// Number of attached NICs.
    pub fn nic_count(&self) -> usize {
        self.nics
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switch_latency.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The directed link table entry.
    pub fn link(&self, id: LinkId) -> &DirectedLink {
        &self.links[id.0]
    }

    /// Fall-through latency of a switch.
    pub fn switch_latency(&self, s: SwitchId) -> SimTime {
        self.switch_latency[s.0]
    }

    /// The route from `src` to `dst` (owned; computed topologies derive it
    /// on the fly). Hot paths should use [`Topology::route_links_into`].
    ///
    /// # Panics
    /// Panics if either NIC is out of range.
    pub fn route(&self, src: NicId, dst: NicId) -> Route {
        let mut links = Vec::new();
        self.route_links_into(src, dst, &mut links);
        Route::new(links)
    }

    /// Append the links of the `src → dst` route to `out` (cleared first).
    /// Zero allocations once `out` has grown to the longest route.
    ///
    /// # Panics
    /// Panics if either NIC is out of range.
    pub fn route_links_into(&self, src: NicId, dst: NicId, out: &mut Vec<LinkId>) {
        assert!(src.0 < self.nics && dst.0 < self.nics, "NIC out of range");
        out.clear();
        match &self.table {
            RouteTable::Dense(routes) => {
                out.extend_from_slice(routes[src.0 * self.nics + dst.0].links());
            }
            RouteTable::Clos3(spec) => spec.route_into(src.0, dst.0, out),
        }
    }

    /// Sum of switch fall-through latencies along a route.
    pub fn switch_delay(&self, route: &Route) -> SimTime {
        let mut total = SimTime::ZERO;
        for l in route.links() {
            if let Vertex::Switch(s) = self.links[l.0].from {
                total += self.switch_latency[s.0];
            }
        }
        total
    }

    /// True when every NIC can reach every other NIC.
    pub fn fully_connected(&self) -> bool {
        match &self.table {
            RouteTable::Dense(routes) => {
                for s in 0..self.nics {
                    for d in 0..self.nics {
                        if s != d && routes[s * self.nics + d].is_empty() {
                            return false;
                        }
                    }
                }
                true
            }
            // Every pair has a formula route by construction.
            RouteTable::Clos3(_) => true,
        }
    }

    /// The switch a NIC's first outgoing cable lands on, or `None` for an
    /// unconnected NIC.
    pub fn attached_switch(&self, nic: NicId) -> Option<SwitchId> {
        self.links.iter().find_map(|l| match (l.from, l.to) {
            (Vertex::Nic(n), Vertex::Switch(s)) if n == nic => Some(s),
            _ => None,
        })
    }

    /// Partition the NICs into logical processes for parallel simulation:
    /// one LP per attached (leaf) switch, unless all NICs share one switch,
    /// in which case each NIC becomes its own LP. LP indices follow the
    /// order switches first appear in NIC order, so fabrics that attach
    /// NICs leaf-by-leaf (all the standard builders) yield contiguous
    /// NIC ranges per LP.
    pub fn partition_map(&self) -> PartitionMap {
        let mut switch_of: Vec<Option<SwitchId>> = Vec::with_capacity(self.nics);
        for n in 0..self.nics {
            switch_of.push(self.attached_switch(NicId(n)));
        }
        let mut distinct: Vec<Option<SwitchId>> = Vec::new();
        for &s in &switch_of {
            if !distinct.contains(&s) {
                distinct.push(s);
            }
        }
        if distinct.len() <= 1 {
            // Single crossbar (or degenerate): per-NIC partitions.
            return PartitionMap {
                lp_of: (0..self.nics as u32).collect(),
                count: self.nics,
            };
        }
        let lp_of = switch_of
            .iter()
            .map(|s| distinct.iter().position(|d| d == s).unwrap() as u32)
            .collect();
        PartitionMap {
            lp_of,
            count: distinct.len(),
        }
    }

    /// Unstalled wire latency from injection to delivery along `links`, for
    /// a `payload`-byte packet: the same walk `Fabric::send`
    /// (crate::Fabric) performs, minus busy-link stalls (which only ever
    /// push arrival later).
    pub fn delivery_latency(&self, links: &[LinkId], payload: usize) -> SimTime {
        let mut head = SimTime::ZERO;
        for (i, l) in links.iter().enumerate() {
            let link = &self.links[l.0];
            if i > 0 {
                if let Vertex::Switch(s) = link.from {
                    head += self.switch_latency[s.0];
                }
            }
            head += link.spec.propagation;
        }
        let hops = links.len().saturating_sub(1);
        let ser = self.links[links[0].0]
            .spec
            .serialize(wire_size(payload, hops));
        head + ser
    }

    /// The conservative lookahead for parallel simulation: the minimum
    /// unstalled delivery latency over all ordered NIC pairs, for the
    /// smallest (zero-payload) packet. Any packet injected at `t` arrives
    /// no earlier than `t + min_delivery_latency()`; stalls, faults and
    /// real payloads only push arrival later. `None` when some pair is
    /// unreachable, [`SimTime::ZERO`] when a zero-latency link makes
    /// conservative windows impossible (callers must fall back to a merged
    /// LP).
    pub fn min_delivery_latency(&self) -> Option<SimTime> {
        match &self.table {
            RouteTable::Dense(routes) => {
                let mut min: Option<SimTime> = None;
                for s in 0..self.nics {
                    for d in 0..self.nics {
                        if s == d {
                            continue;
                        }
                        let links = routes[s * self.nics + d].links();
                        if links.is_empty() {
                            return None;
                        }
                        let lat = self.delivery_latency(links, 0);
                        min = Some(min.map_or(lat, |m: SimTime| m.min(lat)));
                    }
                }
                min
            }
            RouteTable::Clos3(spec) => {
                // Same-leaf is minimal: longer routes add the same NIC links
                // plus extra (uniform-spec) hops and fall-throughs.
                let mut links = Vec::new();
                spec.route_into(0, 1, &mut links);
                Some(self.delivery_latency(&links, 0))
            }
        }
    }
}

/// Incremental topology builder.
pub struct TopologyBuilder {
    nics: usize,
    switch_latency: Vec<SimTime>,
    links: Vec<DirectedLink>,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TopologyBuilder {
    /// Fall-through latency of the modelled Myrinet crossbar switches.
    pub const DEFAULT_SWITCH_LATENCY: SimTime = SimTime::from_ns(300);

    /// An empty builder.
    pub fn new() -> Self {
        TopologyBuilder {
            nics: 0,
            switch_latency: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Add a NIC vertex; returns its id.
    pub fn add_nic(&mut self) -> NicId {
        let id = NicId(self.nics);
        self.nics += 1;
        id
    }

    /// Add a switch with the given fall-through latency; returns its id.
    pub fn add_switch(&mut self, latency: SimTime) -> SwitchId {
        self.switch_latency.push(latency);
        SwitchId(self.switch_latency.len() - 1)
    }

    /// Join two vertices with a full-duplex cable (two directed links).
    pub fn connect(&mut self, a: Vertex, b: Vertex, spec: LinkSpec) {
        self.links.push(DirectedLink {
            from: a,
            to: b,
            spec,
        });
        self.links.push(DirectedLink {
            from: b,
            to: a,
            spec,
        });
    }

    /// Finish: computes all-pairs NIC-to-NIC shortest routes.
    pub fn build(self) -> Topology {
        let nics = self.nics;
        let n_vertices = nics + self.switch_latency.len();
        let vidx = |v: Vertex| -> usize {
            match v {
                Vertex::Nic(n) => n.0,
                Vertex::Switch(s) => nics + s.0,
            }
        };
        // adjacency: outgoing (link, to) per vertex, in link order so BFS
        // tie-breaking is deterministic.
        let mut adj: Vec<Vec<(LinkId, usize)>> = vec![Vec::new(); n_vertices];
        for (i, l) in self.links.iter().enumerate() {
            adj[vidx(l.from)].push((LinkId(i), vidx(l.to)));
        }

        let mut routes = Vec::with_capacity(nics * nics);
        for src in 0..nics {
            // BFS from src over the whole graph.
            let mut prev: Vec<Option<(usize, LinkId)>> = vec![None; n_vertices];
            let mut seen = vec![false; n_vertices];
            let mut queue = VecDeque::new();
            seen[src] = true;
            queue.push_back(src);
            while let Some(v) = queue.pop_front() {
                for &(link, to) in &adj[v] {
                    // NICs are leaves: never route *through* another NIC.
                    if seen[to] {
                        continue;
                    }
                    if to < nics && to != v {
                        seen[to] = true;
                        prev[to] = Some((v, link));
                        continue; // do not expand past a NIC
                    }
                    seen[to] = true;
                    prev[to] = Some((v, link));
                    queue.push_back(to);
                }
            }
            for dst in 0..nics {
                if dst == src {
                    routes.push(Route::new(vec![]));
                    continue;
                }
                let mut rev = Vec::new();
                let mut v = dst;
                let mut ok = true;
                while v != src {
                    match prev[v] {
                        Some((p, link)) => {
                            rev.push(link);
                            v = p;
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    rev.reverse();
                    routes.push(Route::new(rev));
                } else {
                    routes.push(Route::new(vec![])); // unreachable ⇒ empty
                }
            }
        }
        Topology {
            nics,
            switch_latency: self.switch_latency,
            links: self.links,
            table: RouteTable::Dense(routes),
        }
    }

    /// Largest cluster [`TopologyBuilder::for_cluster`] puts on a single
    /// crossbar — the paper's 16-port switch.
    pub const MAX_SINGLE_SWITCH_HOSTS: usize = 16;

    /// Hosts per leaf switch in the [`TopologyBuilder::for_cluster`] Clos
    /// policy: 8 hosts + 8 spine uplinks fill a 16-port crossbar and keep
    /// the fabric non-blocking.
    pub const CLOS_LEAF_HOSTS: usize = 8;

    /// Largest cluster [`TopologyBuilder::for_cluster`] serves with a
    /// two-level Clos; beyond this it grows a third (core) level.
    pub const MAX_TWO_LEVEL_HOSTS: usize = 1024;

    /// The standard fabric for an `n`-host cluster, shared by the testbed
    /// and the analytic model: one crossbar up to
    /// [`Self::MAX_SINGLE_SWITCH_HOSTS`] hosts (the paper's testbed), a
    /// non-blocking two-level Clos of 16-port crossbars
    /// ([`Self::CLOS_LEAF_HOSTS`] hosts + as many uplinks per leaf) up to
    /// [`Self::MAX_TWO_LEVEL_HOSTS`] hosts — which is how real Myrinet
    /// installations scaled — and a three-level (pod + core) Clos beyond
    /// that, up to 4096 hosts and further.
    pub fn for_cluster(hosts: usize) -> Topology {
        if hosts <= Self::MAX_SINGLE_SWITCH_HOSTS {
            Self::single_switch(hosts)
        } else if hosts <= Self::MAX_TWO_LEVEL_HOSTS {
            Self::clos(
                hosts.div_ceil(Self::CLOS_LEAF_HOSTS),
                Self::CLOS_LEAF_HOSTS,
                Self::CLOS_LEAF_HOSTS,
            )
        } else {
            let pod_hosts = Self::CLOS_LEAF_HOSTS * Self::CLOS_LEAF_HOSTS;
            Self::clos3(hosts.div_ceil(pod_hosts))
        }
    }

    /// The paper's testbed shape: `hosts` NICs on one crossbar switch
    /// (16-port for the LANai 4.3 cluster, 8-port for the 7.2 cluster).
    pub fn single_switch(hosts: usize) -> Topology {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch(Self::DEFAULT_SWITCH_LATENCY);
        for _ in 0..hosts {
            let n = b.add_nic();
            b.connect(Vertex::Nic(n), Vertex::Switch(sw), LinkSpec::MYRINET_1280);
        }
        b.build()
    }

    /// A two-level Clos network, how real Myrinet installations scaled
    /// past one crossbar: `leaves` leaf switches with `hosts_per_leaf`
    /// NICs each, every leaf cabled to every one of `spines` spine
    /// switches. With `spines >= hosts_per_leaf` the fabric is
    /// non-blocking. Source routes are *dispersed*: the spine for a
    /// (src, dst) pair is chosen by `(src + dst) % spines`, spreading
    /// simultaneous pairwise-exchange traffic across the bisection the way
    /// Myrinet's route-dispersal did.
    pub fn clos(leaves: usize, hosts_per_leaf: usize, spines: usize) -> Topology {
        assert!(leaves >= 1 && hosts_per_leaf >= 1 && spines >= 1);
        let mut b = TopologyBuilder::new();
        let leaf_sw: Vec<SwitchId> = (0..leaves)
            .map(|_| b.add_switch(Self::DEFAULT_SWITCH_LATENCY))
            .collect();
        let spine_sw: Vec<SwitchId> = (0..spines)
            .map(|_| b.add_switch(Self::DEFAULT_SWITCH_LATENCY))
            .collect();
        for &l in &leaf_sw {
            for &s in &spine_sw {
                b.connect(Vertex::Switch(l), Vertex::Switch(s), LinkSpec::MYRINET_1280);
            }
        }
        for &l in &leaf_sw {
            for _ in 0..hosts_per_leaf {
                let n = b.add_nic();
                b.connect(Vertex::Nic(n), Vertex::Switch(l), LinkSpec::MYRINET_1280);
            }
        }
        // Build once for the link table, then replace the BFS routes with
        // dispersed ones.
        let mut topo = b.build();
        use std::collections::HashMap;
        let mut link_of: HashMap<(Vertex, Vertex), LinkId> = HashMap::new();
        for i in 0..topo.link_count() {
            let l = topo.links[i];
            link_of.insert((l.from, l.to), LinkId(i));
        }
        let nics = topo.nic_count();
        let leaf_of = |nic: usize| leaf_sw[nic / hosts_per_leaf];
        let mut routes = Vec::with_capacity(nics * nics);
        for src in 0..nics {
            for dst in 0..nics {
                if src == dst {
                    routes.push(Route::new(vec![]));
                    continue;
                }
                let (la, lb) = (leaf_of(src), leaf_of(dst));
                let up = link_of[&(Vertex::Nic(NicId(src)), Vertex::Switch(la))];
                let down = link_of[&(Vertex::Switch(lb), Vertex::Nic(NicId(dst)))];
                if la == lb {
                    routes.push(Route::new(vec![up, down]));
                } else {
                    let spine = spine_sw[(src + dst) % spines];
                    let to_spine = link_of[&(Vertex::Switch(la), Vertex::Switch(spine))];
                    let from_spine = link_of[&(Vertex::Switch(spine), Vertex::Switch(lb))];
                    routes.push(Route::new(vec![up, to_spine, from_spine, down]));
                }
            }
        }
        topo.table = RouteTable::Dense(routes);
        topo
    }

    /// A three-level Clos: `pods` pods of 8 leaf switches × 8 hosts (64
    /// hosts per pod), every leaf cabled to all 8 aggregation switches of
    /// its pod, and aggregation switch `a` of every pod cabled to the 8
    /// core switches of *plane* `a`. Same-pod routes disperse over the
    /// aggregation stage by `(src + dst) % 8`; cross-pod routes
    /// additionally disperse over the plane's cores. 64 pods = 4096 hosts.
    ///
    /// Routes are computed from the link-id layout rather than stored: the
    /// all-pairs table at 4096 hosts would be ~17M routes. The layout is
    /// pinned by the construction order below and mirrored by
    /// `Clos3Spec`'s formulas; `clos3_routes_chain_and_disperse` in the
    /// test suite cross-checks computed routes against the actual link
    /// table.
    pub fn clos3(pods: usize) -> Topology {
        assert!(pods >= 1);
        const K: usize = TopologyBuilder::CLOS_LEAF_HOSTS; // 8
        let mut b = TopologyBuilder::new();
        // Switches: leaves, then aggs, then cores (plane-major).
        let leaf: Vec<SwitchId> = (0..pods * K)
            .map(|_| b.add_switch(Self::DEFAULT_SWITCH_LATENCY))
            .collect();
        let agg: Vec<SwitchId> = (0..pods * K)
            .map(|_| b.add_switch(Self::DEFAULT_SWITCH_LATENCY))
            .collect();
        let core: Vec<SwitchId> = (0..K * K)
            .map(|_| b.add_switch(Self::DEFAULT_SWITCH_LATENCY))
            .collect();
        // Cables: leaf↔agg (pod-, then leaf-, then agg-major) ...
        for p in 0..pods {
            for l in 0..K {
                for a in 0..K {
                    b.connect(
                        Vertex::Switch(leaf[p * K + l]),
                        Vertex::Switch(agg[p * K + a]),
                        LinkSpec::MYRINET_1280,
                    );
                }
            }
        }
        let base_ac = b.links.len();
        // ... then agg↔core (pod-, agg-, core-major; agg a only reaches
        // plane a) ...
        for p in 0..pods {
            for a in 0..K {
                for c in 0..K {
                    b.connect(
                        Vertex::Switch(agg[p * K + a]),
                        Vertex::Switch(core[a * K + c]),
                        LinkSpec::MYRINET_1280,
                    );
                }
            }
        }
        let base_nic = b.links.len();
        // ... then NIC↔leaf, leaf by leaf.
        for p in 0..pods {
            for l in 0..K {
                for _ in 0..K {
                    let n = b.add_nic();
                    b.connect(
                        Vertex::Nic(n),
                        Vertex::Switch(leaf[p * K + l]),
                        LinkSpec::MYRINET_1280,
                    );
                }
            }
        }
        Topology {
            nics: b.nics,
            switch_latency: b.switch_latency,
            links: b.links,
            table: RouteTable::Clos3(Clos3Spec {
                pods,
                leaves: K,
                hosts: K,
                base_ac,
                base_nic,
            }),
        }
    }

    /// A chain of switches with `hosts_per_switch` NICs each — used by the
    /// scaling study to grow beyond one crossbar. Switch i is cabled to
    /// switch i+1.
    pub fn switch_chain(switches: usize, hosts_per_switch: usize) -> Topology {
        assert!(switches >= 1);
        let mut b = TopologyBuilder::new();
        let sws: Vec<SwitchId> = (0..switches)
            .map(|_| b.add_switch(Self::DEFAULT_SWITCH_LATENCY))
            .collect();
        for w in windows2(&sws) {
            b.connect(
                Vertex::Switch(w.0),
                Vertex::Switch(w.1),
                LinkSpec::MYRINET_1280,
            );
        }
        for &sw in &sws {
            for _ in 0..hosts_per_switch {
                let n = b.add_nic();
                b.connect(Vertex::Nic(n), Vertex::Switch(sw), LinkSpec::MYRINET_1280);
            }
        }
        b.build()
    }
}

fn windows2(s: &[SwitchId]) -> impl Iterator<Item = (SwitchId, SwitchId)> + '_ {
    s.windows(2).map(|w| (w[0], w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_switch_routes_are_two_links() {
        let t = TopologyBuilder::single_switch(8);
        assert_eq!(t.nic_count(), 8);
        assert_eq!(t.switch_count(), 1);
        assert!(t.fully_connected());
        for s in 0..8 {
            for d in 0..8 {
                let r = t.route(NicId(s), NicId(d));
                if s == d {
                    assert!(r.is_empty());
                } else {
                    assert_eq!(r.len(), 2, "{s}->{d}");
                    assert_eq!(r.switch_hops(), 1);
                }
            }
        }
    }

    #[test]
    fn single_switch_16_matches_paper_testbed() {
        let t = TopologyBuilder::single_switch(16);
        assert_eq!(t.nic_count(), 16);
        // 16 cables, 2 directed links each
        assert_eq!(t.link_count(), 32);
    }

    #[test]
    fn chain_routes_cross_intermediate_switches() {
        let t = TopologyBuilder::switch_chain(3, 2); // nics 0,1 on sw0; 2,3 on sw1; 4,5 on sw2
        assert!(t.fully_connected());
        let same_switch = t.route(NicId(0), NicId(1));
        assert_eq!(same_switch.switch_hops(), 1);
        let far = t.route(NicId(0), NicId(5));
        assert_eq!(far.switch_hops(), 3);
        assert_eq!(far.len(), 4);
    }

    #[test]
    fn routes_are_symmetric_in_length() {
        let t = TopologyBuilder::switch_chain(4, 3);
        for s in 0..12 {
            for d in 0..12 {
                assert_eq!(
                    t.route(NicId(s), NicId(d)).len(),
                    t.route(NicId(d), NicId(s)).len()
                );
            }
        }
    }

    #[test]
    fn routes_never_pass_through_nics() {
        let t = TopologyBuilder::switch_chain(2, 4);
        for s in 0..8 {
            for d in 0..8 {
                let r = t.route(NicId(s), NicId(d));
                for (i, l) in r.links().iter().enumerate() {
                    let link = t.link(*l);
                    if i > 0 {
                        assert!(
                            matches!(link.from, Vertex::Switch(_)),
                            "interior vertex must be a switch"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn serialization_time() {
        let s = LinkSpec::MYRINET_1280;
        // 160 bytes at 0.16 B/ns = 1000 ns
        assert_eq!(s.serialize(160), SimTime::from_ns(1000));
        assert_eq!(s.serialize(0), SimTime::ZERO);
    }

    #[test]
    fn switch_delay_sums_fallthrough() {
        let t = TopologyBuilder::switch_chain(3, 1);
        let r = t.route(NicId(0), NicId(2)).clone();
        assert_eq!(
            t.switch_delay(&r),
            TopologyBuilder::DEFAULT_SWITCH_LATENCY * 3
        );
    }

    #[test]
    fn clos_routes_are_two_or_four_links() {
        let t = TopologyBuilder::clos(4, 4, 4);
        assert_eq!(t.nic_count(), 16);
        assert!(t.fully_connected());
        for s in 0..16 {
            for d in 0..16 {
                if s == d {
                    continue;
                }
                let r = t.route(NicId(s), NicId(d));
                if s / 4 == d / 4 {
                    assert_eq!(r.len(), 2, "same leaf {s}->{d}");
                } else {
                    assert_eq!(r.len(), 4, "cross leaf {s}->{d}");
                    assert_eq!(r.switch_hops(), 3);
                }
            }
        }
    }

    #[test]
    fn clos_disperses_spine_choice() {
        let t = TopologyBuilder::clos(2, 8, 8);
        // Fix a source on leaf 0; destinations on leaf 1 should use many
        // different spine uplinks, not all the same one.
        let mut uplinks = std::collections::HashSet::new();
        for d in 8..16 {
            let r = t.route(NicId(0), NicId(d));
            uplinks.insert(r.links()[1]);
        }
        assert!(
            uplinks.len() >= 4,
            "only {} distinct uplinks",
            uplinks.len()
        );
    }

    #[test]
    fn clos_route_endpoints_are_consistent() {
        let t = TopologyBuilder::clos(3, 2, 2);
        for s in 0..6 {
            for d in 0..6 {
                if s == d {
                    continue;
                }
                let r = t.route(NicId(s), NicId(d));
                let first = t.link(r.links()[0]);
                let last = t.link(*r.links().last().unwrap());
                assert_eq!(first.from, Vertex::Nic(NicId(s)));
                assert_eq!(last.to, Vertex::Nic(NicId(d)));
                // consecutive links chain
                for w in r.links().windows(2) {
                    assert_eq!(t.link(w[0]).to, t.link(w[1]).from);
                }
            }
        }
    }

    #[test]
    fn clos3_routes_chain_and_disperse() {
        // Small three-level Clos: 4 pods = 256 hosts. Computed routes must
        // be real paths through the link table (endpoints match, links
        // chain) with the expected lengths.
        let t = TopologyBuilder::clos3(4);
        assert_eq!(t.nic_count(), 256);
        assert!(t.fully_connected());
        let pairs = [
            (0usize, 1usize, 2usize), // same leaf: nic-leaf-nic
            (0, 9, 4),                // same pod, different leaf
            (0, 63, 4),               // same pod boundary
            (0, 64, 6),               // adjacent pods
            (7, 200, 6),              // far cross-pod
            (255, 0, 6),              // reverse direction
            (64, 65, 2),              // same leaf in pod 1
        ];
        for (s, d, len) in pairs {
            let r = t.route(NicId(s), NicId(d));
            assert_eq!(r.len(), len, "{s}->{d}");
            let first = t.link(r.links()[0]);
            let last = t.link(*r.links().last().unwrap());
            assert_eq!(first.from, Vertex::Nic(NicId(s)));
            assert_eq!(last.to, Vertex::Nic(NicId(d)));
            for w in r.links().windows(2) {
                assert_eq!(t.link(w[0]).to, t.link(w[1]).from, "{s}->{d}");
            }
        }
        // Cross-pod routes from one source should spread over several
        // distinct uplinks (aggregation dispersal).
        let mut uplinks = std::collections::HashSet::new();
        for d in 64..128 {
            uplinks.insert(t.route(NicId(0), NicId(d)).links()[1]);
        }
        assert!(uplinks.len() >= 4, "only {} uplinks", uplinks.len());
    }

    #[test]
    fn clos3_routes_exhaustive_validity_sample() {
        // Denser sweep on a 2-pod fabric: every pair is a valid chained
        // path and is symmetric in length.
        let t = TopologyBuilder::clos3(2);
        let n = t.nic_count();
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                let r = t.route(NicId(s), NicId(d));
                assert_eq!(t.link(r.links()[0]).from, Vertex::Nic(NicId(s)));
                assert_eq!(t.link(*r.links().last().unwrap()).to, Vertex::Nic(NicId(d)));
                for w in r.links().windows(2) {
                    assert_eq!(t.link(w[0]).to, t.link(w[1]).from);
                }
                assert_eq!(r.len(), t.route(NicId(d), NicId(s)).len());
            }
        }
    }

    #[test]
    fn for_cluster_policy_tiers() {
        assert_eq!(TopologyBuilder::for_cluster(16).switch_count(), 1);
        // 1024 = 128 leaves + 8 spines, two levels (unchanged from the
        // two-level policy — the golden scale study depends on it).
        assert_eq!(TopologyBuilder::for_cluster(1024).switch_count(), 136);
        // 4096 = 64 pods: 512 leaves + 512 aggs + 64 cores.
        let t = TopologyBuilder::for_cluster(4096);
        assert_eq!(t.nic_count(), 4096);
        assert_eq!(t.switch_count(), 512 + 512 + 64);
    }

    #[test]
    fn partition_map_single_switch_is_per_node() {
        let p = TopologyBuilder::single_switch(8).partition_map();
        assert_eq!(p.count, 8);
        assert_eq!(p.lp_of, (0..8u32).collect::<Vec<_>>());
    }

    #[test]
    fn partition_map_clos_groups_by_leaf() {
        let p = TopologyBuilder::clos(4, 8, 8).partition_map();
        assert_eq!(p.count, 4);
        for nic in 0..32usize {
            assert_eq!(p.lp_of[nic], (nic / 8) as u32);
        }
        let p3 = TopologyBuilder::clos3(2).partition_map();
        assert_eq!(p3.count, 16);
        assert_eq!(p3.lp_of[0], 0);
        assert_eq!(p3.lp_of[127], 15);
    }

    #[test]
    fn min_delivery_latency_matches_wire_math() {
        // Single switch, default params: 2×25ns propagation + 300ns
        // fall-through + ser(wire_size(0, 1) = 18B at 0.16 B/ns → 113ns).
        let expect = SimTime::from_ns(25 + 300 + 25 + 113);
        for t in [
            TopologyBuilder::single_switch(4),
            TopologyBuilder::clos(4, 8, 8),
            TopologyBuilder::clos3(2),
        ] {
            assert_eq!(t.min_delivery_latency(), Some(expect));
        }
    }

    #[test]
    fn min_delivery_latency_none_when_disconnected() {
        let mut b = TopologyBuilder::new();
        let _ = b.add_nic();
        let _ = b.add_nic();
        assert_eq!(b.build().min_delivery_latency(), None);
    }

    #[test]
    fn zero_latency_fabric_reports_zero_lookahead() {
        // Infinite bandwidth + zero propagation + zero fall-through is the
        // degenerate case the parallel engine must refuse to window.
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch(SimTime::ZERO);
        let spec = LinkSpec {
            bytes_per_ns: f64::INFINITY,
            propagation: SimTime::ZERO,
        };
        for _ in 0..2 {
            let n = b.add_nic();
            b.connect(Vertex::Nic(n), Vertex::Switch(sw), spec);
        }
        assert_eq!(b.build().min_delivery_latency(), Some(SimTime::ZERO));
    }

    #[test]
    fn disconnected_pairs_detected() {
        let mut b = TopologyBuilder::new();
        let _a = b.add_nic();
        let _c = b.add_nic();
        let t = b.build();
        assert!(!t.fully_connected());
    }
}
