//! The fabric: per-link occupancy, cut-through timing, fault judgement.
//!
//! [`Fabric::send`] answers, for a worm of `payload` bytes leaving NIC `src`
//! for NIC `dst` at time `now`:
//!
//! * when the source NIC's transmit interface is free again (`tx_done` —
//!   the sender serializes the worm onto its first link),
//! * when the worm has fully arrived at `dst` (`arrival`), and
//! * whether it arrives at all ([`Delivery::fate`]).
//!
//! Wormhole timing. Let `ser = bytes / bandwidth` (bytes include framing and
//! route bytes). The head advances hop by hop; at each directed link it may
//! stall until the link frees. Once the head reaches the destination, the
//! tail follows `ser` later. A link is occupied from the moment the head
//! enters it until the tail has left it; with cut-through and equal
//! bandwidths the occupancy of link *i* is `[head_i, head_i + ser]`.
//! A worm whose head reaches a busy link at `t` enters it at
//! `max(t, busy_until)` — and, as in real wormhole switching, stalls the
//! upstream portion of its path while it waits. We conservatively extend the
//! upstream links' occupancy to the stall end, which reproduces wormhole
//! tree saturation under contention.

use crate::fault::{Fate, FaultPlan, FaultState};
use crate::packet::WireFormat;
use crate::route::{LinkId, NicId, Vertex};
use crate::topology::Topology;
use gmsim_des::{SimRng, SimTime};

/// The result of injecting one worm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// When the source NIC's transmit interface is free again.
    pub tx_done: SimTime,
    /// When the worm has fully arrived at the destination NIC (tail in).
    /// Meaningless when `fate == Fate::Dropped`.
    pub arrival: SimTime,
    /// Whether the worm survived fault judgement.
    pub fate: Fate,
    /// When fault injection duplicates the worm, the arrival time of the
    /// second (intact) copy; `None` for the overwhelmingly common case.
    pub dup_arrival: Option<SimTime>,
}

impl Delivery {
    /// True when the destination will actually see the worm intact.
    pub fn is_delivered(&self) -> bool {
        self.fate == Fate::Intact
    }
}

/// Aggregate fabric counters.
#[derive(Debug, Clone, Default)]
pub struct FabricStats {
    /// Worms injected.
    pub sends: u64,
    /// Worms dropped by fault injection.
    pub drops: u64,
    /// Worms delivered with a corrupted CRC.
    pub corruptions: u64,
    /// Worms delivered twice by fault injection.
    pub duplicates: u64,
    /// Worms delayed by fault injection (reordered past later traffic).
    pub reorders: u64,
    /// Total payload bytes injected (excluding framing).
    pub payload_bytes: u64,
    /// Total head-stall time across all sends (contention measure).
    pub stall_time: SimTime,
}

/// The network fabric: topology + per-directed-link occupancy + faults.
///
/// ```
/// use gmsim_des::SimTime;
/// use gmsim_myrinet::{Fabric, NicId, TopologyBuilder};
///
/// let mut fabric = Fabric::new(TopologyBuilder::single_switch(8));
/// let d = fabric.send(NicId(0), NicId(3), 64, SimTime::ZERO);
/// assert!(d.is_delivered());
/// assert!(d.arrival > SimTime::ZERO);
/// ```
pub struct Fabric {
    topology: Topology,
    format: WireFormat,
    /// `busy_until` per directed link.
    busy: Vec<SimTime>,
    faults: FaultPlan,
    fault_state: FaultState,
    rng: SimRng,
    stats: FabricStats,
    /// Reusable per-send scratch: links the head has entered, with entry
    /// times (kept across sends so the hot path never allocates).
    entered: Vec<(LinkId, SimTime)>,
    /// Reusable per-send scratch for the route's links (computed route
    /// tables derive them on the fly; dense tables copy a handful of ids).
    route_scratch: Vec<LinkId>,
}

impl Fabric {
    /// A fault-free fabric over `topology`.
    pub fn new(topology: Topology) -> Self {
        let links = topology.link_count();
        Fabric {
            topology,
            format: WireFormat::GM,
            busy: vec![SimTime::ZERO; links],
            faults: FaultPlan::NONE,
            fault_state: FaultState::default(),
            rng: SimRng::new(0),
            stats: FabricStats::default(),
            entered: Vec::new(),
            route_scratch: Vec::new(),
        }
    }

    /// Enable fault injection, seeded independently of workload RNG.
    pub fn with_faults(mut self, plan: FaultPlan, seed: u64) -> Self {
        self.faults = plan;
        self.rng = SimRng::new(seed);
        self
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Counters so far.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Inject a worm. See module docs for the timing model.
    ///
    /// # Panics
    /// Panics on a self-send (`src == dst`) — GM never puts those on the
    /// wire — or an unreachable destination.
    pub fn send(&mut self, src: NicId, dst: NicId, payload: usize, now: SimTime) -> Delivery {
        assert_ne!(src, dst, "self-sends never touch the fabric");
        // Split borrows: the route stays borrowed from `topology` while the
        // occupancy/stat fields mutate, so the hot path never clones it.
        let Fabric {
            topology,
            format,
            busy,
            stats,
            entered,
            route_scratch,
            ..
        } = self;
        // Route selection happens here, under the committed send order:
        // adaptive policies read the per-link busy horizons, so identical
        // send sequences (serial or replayed by the parallel engine) pick
        // identical routes.
        topology.route_for_send_into(src, dst, busy, route_scratch);
        let route: &[LinkId] = route_scratch;
        assert!(!route.is_empty(), "no route {src:?} -> {dst:?}");

        let bytes = format.on_wire(payload, route.len() - 1);
        stats.sends += 1;
        stats.payload_bytes += payload as u64;

        // Walk the head along the route.
        let mut head = now;
        entered.clear();
        for &link_id in route {
            let link = *topology.link(link_id);
            // Fall-through delay of the switch the link leaves from.
            if let Vertex::Switch(s) = link.from {
                head += topology.switch_latency(s);
            }
            let free = busy[link_id.0];
            if free > head {
                // Head stalls: upstream links stay occupied until we move.
                stats.stall_time += free - head;
                for &(up, _) in entered.iter() {
                    busy[up.0] = busy[up.0].max(free);
                }
                head = free;
            }
            entered.push((link_id, head));
            head += link.spec.propagation;
        }

        // Tail: with uniform bandwidth the tail trails the head by one
        // serialization time on every link.
        let ser = topology.link(route[0]).spec.serialize(bytes);
        for &(link_id, entry) in entered.iter() {
            let occupied_until = entry + ser;
            busy[link_id.0] = busy[link_id.0].max(occupied_until);
        }

        let first_entry = entered[0].1;
        let tx_done = first_entry + ser;
        let mut arrival = head + ser;

        let verdict = self
            .faults
            .judge(src.0 as u32, &mut self.fault_state, &mut self.rng);
        match verdict.fate {
            Fate::Dropped => self.stats.drops += 1,
            Fate::Corrupted => self.stats.corruptions += 1,
            Fate::Intact => {}
        }
        if verdict.reorder {
            // Delayed arrival: later worms on the same path overtake this
            // one, which the receiver observes as out-of-order delivery.
            arrival += self.faults.reorder_delay;
            self.stats.reorders += 1;
        }
        let dup_arrival = if verdict.duplicate {
            // The spurious copy trails the original by one serialization
            // time, as if the sender's retransmit logic double-fired.
            self.stats.duplicates += 1;
            Some(arrival + ser)
        } else {
            None
        };

        Delivery {
            tx_done,
            arrival,
            fate: verdict.fate,
            dup_arrival,
        }
    }

    /// Earliest time the first link out of `src` toward `dst` is free —
    /// used by the NIC send machine to model transmit-channel occupancy.
    pub fn first_link_free(&self, src: NicId, dst: NicId) -> SimTime {
        let route = self.topology.route(src, dst);
        if route.is_empty() {
            return SimTime::ZERO;
        }
        self.busy[route.links()[0].0]
    }

    /// Split the fabric into (topology, everything mutable). Used by the
    /// parallel engine, which commits deferred sends at window barriers.
    pub fn topology_owned(self) -> Topology {
        self.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LinkSpec, TopologyBuilder};

    fn fabric(n: usize) -> Fabric {
        Fabric::new(TopologyBuilder::single_switch(n))
    }

    #[test]
    fn uncontended_latency_breakdown() {
        let mut f = fabric(4);
        let d = f.send(NicId(0), NicId(1), 8, SimTime::ZERO);
        assert!(d.is_delivered());
        // bytes = 1 route + 16 hdr + 8 payload + 1 crc = 26; ser = ceil(26/0.16)=163ns
        // head: link0 enter 0, prop 25; switch 300; link1 enter 325, prop 25 -> head=350
        // arrival = 350 + 163 = 513; tx_done = 0 + 163
        assert_eq!(d.tx_done, SimTime::from_ns(163));
        assert_eq!(d.arrival, SimTime::from_ns(513));
    }

    #[test]
    fn contention_serializes_on_shared_link() {
        let mut f = fabric(4);
        // Two worms to the same destination at the same instant: the second
        // must wait for the first on the switch->dst link.
        let d1 = f.send(NicId(0), NicId(2), 100, SimTime::ZERO);
        let d2 = f.send(NicId(1), NicId(2), 100, SimTime::ZERO);
        assert!(d2.arrival > d1.arrival);
        assert!(f.stats().stall_time > SimTime::ZERO);
    }

    #[test]
    fn distinct_destinations_do_not_contend() {
        let mut f = fabric(4);
        let d1 = f.send(NicId(0), NicId(2), 64, SimTime::ZERO);
        let d2 = f.send(NicId(1), NicId(3), 64, SimTime::ZERO);
        assert_eq!(d1.arrival, d2.arrival);
        assert_eq!(f.stats().stall_time, SimTime::ZERO);
    }

    #[test]
    fn full_duplex_no_self_contention() {
        let mut f = fabric(2);
        let d1 = f.send(NicId(0), NicId(1), 64, SimTime::ZERO);
        let d2 = f.send(NicId(1), NicId(0), 64, SimTime::ZERO);
        assert_eq!(
            d1.arrival, d2.arrival,
            "opposite directions are independent"
        );
    }

    #[test]
    fn pairwise_exchange_pattern_is_conflict_free() {
        // The PE algorithm's step: 0<->1, 2<->3 simultaneously. On a single
        // crossbar no two worms share a directed link.
        let mut f = fabric(4);
        let arr: Vec<_> = [(0, 1), (1, 0), (2, 3), (3, 2)]
            .iter()
            .map(|&(s, d)| f.send(NicId(s), NicId(d), 8, SimTime::ZERO).arrival)
            .collect();
        assert!(arr.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn adaptive_routing_dodges_a_busy_spine() {
        use crate::topology::RoutePolicy;
        // 2 leaves × 2 hosts over 2 spines. Both hosts of leaf 0 send
        // cross-leaf at the same instant to the same destination leaf.
        // Dispersal by (src + dst) sends both worms up the same spine
        // (parity: src+dst is 2 and 4), so the second stalls; the adaptive
        // policy moves the second worm to the idle spine.
        let run = |policy: RoutePolicy| {
            let mut f = Fabric::new(TopologyBuilder::clos_policy(2, 2, 2, policy));
            f.send(NicId(0), NicId(2), 64, SimTime::ZERO);
            f.send(NicId(1), NicId(3), 64, SimTime::ZERO);
            f.stats().stall_time
        };
        assert!(run(RoutePolicy::Dispersed) > SimTime::ZERO);
        assert!(run(RoutePolicy::StaticBfs) > SimTime::ZERO);
        assert_eq!(run(RoutePolicy::Adaptive), SimTime::ZERO);
    }

    #[test]
    fn adaptive_choice_is_a_pure_function_of_send_order() {
        use crate::topology::RoutePolicy;
        // Same committed send sequence twice -> bit-identical deliveries.
        let run = || {
            let mut f = Fabric::new(TopologyBuilder::clos_policy(4, 4, 2, RoutePolicy::Adaptive));
            let mut out = Vec::new();
            for s in 0..4usize {
                for d in 4..16usize {
                    let del = f.send(NicId(s), NicId(d), 32, SimTime::from_ns(10 * s as u64));
                    out.push((del.arrival, del.tx_done));
                }
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn later_send_sees_free_link() {
        let mut f = fabric(2);
        let d1 = f.send(NicId(0), NicId(1), 1000, SimTime::ZERO);
        // After the first worm fully drains, a second is uncontended.
        let d2 = f.send(NicId(0), NicId(1), 1000, d1.arrival);
        assert_eq!(d2.arrival - d1.arrival, d1.arrival - SimTime::ZERO);
    }

    #[test]
    fn drops_counted() {
        let t = TopologyBuilder::single_switch(2);
        let mut f = Fabric::new(t).with_faults(FaultPlan::drops(1.0), 7);
        let d = f.send(NicId(0), NicId(1), 8, SimTime::ZERO);
        assert_eq!(d.fate, Fate::Dropped);
        assert_eq!(f.stats().drops, 1);
    }

    #[test]
    fn duplicates_get_a_trailing_copy() {
        let t = TopologyBuilder::single_switch(2);
        let mut f = Fabric::new(t).with_faults(FaultPlan::duplicates(1.0), 7);
        let d = f.send(NicId(0), NicId(1), 8, SimTime::ZERO);
        assert!(d.is_delivered());
        let dup = d.dup_arrival.expect("certain duplication");
        assert!(dup > d.arrival);
        assert_eq!(f.stats().duplicates, 1);
    }

    #[test]
    fn reorder_delays_arrival() {
        let t = TopologyBuilder::single_switch(2);
        let delay = SimTime::from_us(5);
        let mut faulty = Fabric::new(t).with_faults(FaultPlan::reorders(1.0, delay), 7);
        let mut clean = fabric(2);
        let d = faulty.send(NicId(0), NicId(1), 8, SimTime::ZERO);
        let c = clean.send(NicId(0), NicId(1), 8, SimTime::ZERO);
        assert_eq!(d.arrival, c.arrival + delay);
        assert_eq!(faulty.stats().reorders, 1);
    }

    #[test]
    fn scoped_faults_spare_other_sources() {
        let t = TopologyBuilder::single_switch(4);
        let mut f = Fabric::new(t).with_faults(FaultPlan::drops(1.0).only_from(2), 7);
        assert!(f.send(NicId(0), NicId(1), 8, SimTime::ZERO).is_delivered());
        assert_eq!(
            f.send(NicId(2), NicId(3), 8, SimTime::ZERO).fate,
            Fate::Dropped
        );
        assert_eq!(f.stats().drops, 1);
    }

    #[test]
    fn bigger_payload_takes_longer() {
        let mut f1 = fabric(2);
        let mut f2 = fabric(2);
        let small = f1.send(NicId(0), NicId(1), 8, SimTime::ZERO);
        let big = f2.send(NicId(0), NicId(1), 4096, SimTime::ZERO);
        assert!(big.arrival > small.arrival);
        assert!(big.tx_done > small.tx_done);
    }

    #[test]
    fn multihop_adds_switch_latency() {
        let chain = TopologyBuilder::switch_chain(3, 1);
        let mut f = Fabric::new(chain);
        let near = Fabric::new(TopologyBuilder::switch_chain(1, 3)).send(
            NicId(0),
            NicId(1),
            8,
            SimTime::ZERO,
        );
        let far = f.send(NicId(0), NicId(2), 8, SimTime::ZERO);
        assert!(far.arrival > near.arrival);
    }

    #[test]
    #[should_panic(expected = "self-sends")]
    fn self_send_panics() {
        fabric(2).send(NicId(0), NicId(0), 8, SimTime::ZERO);
    }

    #[test]
    fn custom_link_speed_scales_serialization() {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch(SimTime::ZERO);
        let n0 = b.add_nic();
        let n1 = b.add_nic();
        let slow = LinkSpec {
            bytes_per_ns: 0.016, // 10x slower
            propagation: SimTime::ZERO,
        };
        b.connect(Vertex::Nic(n0), Vertex::Switch(sw), slow);
        b.connect(Vertex::Nic(n1), Vertex::Switch(sw), slow);
        let mut f = Fabric::new(b.build());
        let d = f.send(NicId(0), NicId(1), 8, SimTime::ZERO);
        // 26 bytes at 0.016 B/ns = 1625 ns serialization, paid once (head
        // reaches dst after 0 prop/switch) => arrival 1625*... head=0, +ser
        assert_eq!(d.arrival, SimTime::from_ns(1625));
    }
}
