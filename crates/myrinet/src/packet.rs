//! Wire format accounting.
//!
//! What travels a Myrinet link is slightly larger than the payload: the
//! source route (one byte per switch, stripped hop by hop), a packet-type
//! header, and a trailing CRC. The GM layer asks this module how many bytes
//! a payload occupies on the wire so serialization time is charged honestly.

/// Framing overhead parameters for the modelled Myrinet generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireFormat {
    /// Fixed header bytes (packet type + GM transport header).
    pub header_bytes: usize,
    /// Trailing CRC bytes.
    pub crc_bytes: usize,
}

impl WireFormat {
    /// GM-era framing: 16-byte transport header, 1-byte CRC-8 trailer.
    pub const GM: WireFormat = WireFormat {
        header_bytes: 16,
        crc_bytes: 1,
    };

    /// Bytes on the first (most loaded) link for `payload` bytes crossing
    /// `switch_hops` switches: route bytes are all still present there.
    pub fn on_wire(&self, payload: usize, switch_hops: usize) -> usize {
        switch_hops + self.header_bytes + payload + self.crc_bytes
    }
}

/// Convenience wrapper using the default GM framing.
pub fn wire_size(payload: usize, switch_hops: usize) -> usize {
    WireFormat::GM.on_wire(payload, switch_hops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gm_framing_adds_fixed_overhead() {
        assert_eq!(wire_size(0, 0), 17);
        assert_eq!(wire_size(100, 1), 118);
    }

    #[test]
    fn route_bytes_scale_with_hops() {
        let f = WireFormat::GM;
        assert_eq!(f.on_wire(8, 3) - f.on_wire(8, 0), 3);
    }

    #[test]
    fn custom_format() {
        let f = WireFormat {
            header_bytes: 4,
            crc_bytes: 2,
        };
        assert_eq!(f.on_wire(10, 2), 18);
    }
}
