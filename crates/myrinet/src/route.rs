//! Identifiers and source routes.
//!
//! Myrinet is source-routed: the sender knows the whole path and encodes it
//! as one byte per switch hop. We mirror that: a [`Route`] is the ordered
//! list of directed links a worm traverses, computed once at topology build
//! time by breadth-first search and then looked up O(1) per send.

use std::fmt;

/// Identifies a NIC attached to the fabric. NICs are numbered densely from
/// zero in attachment order; the GM layer maps them 1:1 to cluster nodes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NicId(pub usize);

/// Identifies a switch in the topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(pub usize);

/// Identifies a *directed* link. A physical cable is two directed links, one
/// per direction, so full-duplex traffic never self-contends.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub usize);

impl fmt::Debug for NicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nic{}", self.0)
    }
}
impl fmt::Debug for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}
impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// A vertex of the fabric graph: either an attached NIC or a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vertex {
    /// A host NIC (leaf).
    Nic(NicId),
    /// A switch (internal).
    Switch(SwitchId),
}

/// A precomputed source route: the directed links from source NIC to
/// destination NIC, in traversal order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    links: Box<[LinkId]>,
}

impl Route {
    /// Build from an ordered link list.
    pub fn new(links: Vec<LinkId>) -> Self {
        Route {
            links: links.into_boxed_slice(),
        }
    }

    /// The links in traversal order.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Number of links traversed (= switch hops + 1 for NIC→switch entry,
    /// or 0 for a self-send, which never touches the wire).
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True for the degenerate self-route.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Number of switches crossed: every internal vertex between the two
    /// NIC endpoints is a switch, so it is `links - 1` (0 links ⇒ 0).
    pub fn switch_hops(&self) -> usize {
        self.links.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_hop_accounting() {
        let r = Route::new(vec![LinkId(0), LinkId(5)]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.switch_hops(), 1);
        assert!(!r.is_empty());
        assert_eq!(r.links(), &[LinkId(0), LinkId(5)]);
    }

    #[test]
    fn self_route_is_empty() {
        let r = Route::new(vec![]);
        assert!(r.is_empty());
        assert_eq!(r.switch_hops(), 0);
    }

    #[test]
    fn id_debug_formats() {
        assert_eq!(format!("{:?}", NicId(3)), "nic3");
        assert_eq!(format!("{:?}", SwitchId(1)), "sw1");
        assert_eq!(format!("{:?}", LinkId(9)), "link9");
    }
}
