//! Property-based tests of the wormhole fabric timing model.

use gmsim_des::SimTime;
use gmsim_myrinet::{Fabric, NicId, TopologyBuilder};
use proptest::prelude::*;

proptest! {
    /// Physical sanity for arbitrary traffic on a crossbar: arrivals are
    /// after injection, tx_done is after injection, and both grow
    /// monotonically with payload size.
    #[test]
    fn deliveries_are_causal(
        sends in proptest::collection::vec((0usize..8, 0usize..8, 1usize..4096, 0u64..10_000), 1..100)
    ) {
        let mut f = Fabric::new(TopologyBuilder::single_switch(8));
        let mut now = SimTime::ZERO;
        for (src, dst, bytes, gap) in sends {
            if src == dst {
                continue;
            }
            now += SimTime::from_ns(gap);
            let d = f.send(NicId(src), NicId(dst), bytes, now);
            prop_assert!(d.arrival > now, "arrival not after injection");
            prop_assert!(d.tx_done > now);
            prop_assert!(d.arrival >= d.tx_done, "tail arrives after it left");
        }
    }

    /// Contention can only delay: a packet sent on a quiet fabric is a
    /// lower bound for the same packet sent behind arbitrary other traffic
    /// to the same destination.
    #[test]
    fn contention_is_monotone(
        noise in proptest::collection::vec((0usize..7, 1usize..2048), 0..30),
        probe_bytes in 1usize..2048,
    ) {
        let quiet = Fabric::new(TopologyBuilder::single_switch(8))
            .send(NicId(0), NicId(7), probe_bytes, SimTime::ZERO)
            .arrival;
        let mut busy = Fabric::new(TopologyBuilder::single_switch(8));
        for (src, bytes) in noise {
            // all noise targets NIC 7, sharing the probe's last link
            busy.send(NicId(src), NicId(7), bytes, SimTime::ZERO);
        }
        let contended = busy.send(NicId(0), NicId(7), probe_bytes, SimTime::ZERO).arrival;
        prop_assert!(contended >= quiet, "{contended:?} < {quiet:?}");
    }

    /// Chain topologies: latency grows (weakly) with hop distance for the
    /// same payload.
    #[test]
    fn farther_is_slower(switches in 2usize..6, bytes in 1usize..1024) {
        let topo = TopologyBuilder::switch_chain(switches, 1);
        let mut arrivals = Vec::new();
        for dst in 1..switches {
            let mut f = Fabric::new(topo.clone());
            arrivals.push(f.send(NicId(0), NicId(dst), bytes, SimTime::ZERO).arrival);
        }
        for w in arrivals.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// The stats ledger is conserved: sends == drops + corruptions +
    /// intact deliveries.
    #[test]
    fn stats_conserved(
        sends in proptest::collection::vec((0usize..4, 0usize..4, 1usize..512), 1..100),
        drop_p in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        use gmsim_myrinet::fault::Fate;
        use gmsim_myrinet::FaultPlan;
        let mut f = Fabric::new(TopologyBuilder::single_switch(4))
            .with_faults(FaultPlan { drop_probability: drop_p, corrupt_probability: 0.1 }, seed);
        let mut intact = 0u64;
        let mut attempted = 0u64;
        for (src, dst, bytes) in sends {
            if src == dst {
                continue;
            }
            attempted += 1;
            if f.send(NicId(src), NicId(dst), bytes, SimTime::ZERO).fate == Fate::Intact {
                intact += 1;
            }
        }
        let s = f.stats();
        prop_assert_eq!(s.sends, attempted);
        prop_assert_eq!(s.drops + s.corruptions + intact, attempted);
    }
}
