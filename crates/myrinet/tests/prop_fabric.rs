//! Randomized tests of the wormhole fabric timing model.

use gmsim_des::check::forall;
use gmsim_des::SimTime;
use gmsim_myrinet::{Fabric, NicId, TopologyBuilder};

/// Physical sanity for arbitrary traffic on a crossbar: arrivals are
/// after injection, tx_done is after injection, and both grow
/// monotonically with payload size.
#[test]
fn deliveries_are_causal() {
    forall(256, 0x3AB_0001, |g| {
        let sends = g.vec_of(1, 100, |g| {
            (
                g.usize_in(0, 7),
                g.usize_in(0, 7),
                g.usize_in(1, 4095),
                g.u64_in(0, 9_999),
            )
        });
        let mut f = Fabric::new(TopologyBuilder::single_switch(8));
        let mut now = SimTime::ZERO;
        for (src, dst, bytes, gap) in sends {
            if src == dst {
                continue;
            }
            now += SimTime::from_ns(gap);
            let d = f.send(NicId(src), NicId(dst), bytes, now);
            assert!(d.arrival > now, "arrival not after injection");
            assert!(d.tx_done > now);
            assert!(d.arrival >= d.tx_done, "tail arrives after it left");
        }
    });
}

/// Contention can only delay: a packet sent on a quiet fabric is a
/// lower bound for the same packet sent behind arbitrary other traffic
/// to the same destination.
#[test]
fn contention_is_monotone() {
    forall(256, 0x3AB_0002, |g| {
        let noise = g.vec_of(0, 30, |g| (g.usize_in(0, 6), g.usize_in(1, 2047)));
        let probe_bytes = g.usize_in(1, 2047);
        let quiet = Fabric::new(TopologyBuilder::single_switch(8))
            .send(NicId(0), NicId(7), probe_bytes, SimTime::ZERO)
            .arrival;
        let mut busy = Fabric::new(TopologyBuilder::single_switch(8));
        for (src, bytes) in noise {
            // all noise targets NIC 7, sharing the probe's last link
            busy.send(NicId(src), NicId(7), bytes, SimTime::ZERO);
        }
        let contended = busy
            .send(NicId(0), NicId(7), probe_bytes, SimTime::ZERO)
            .arrival;
        assert!(contended >= quiet, "{contended:?} < {quiet:?}");
    });
}

/// Chain topologies: latency grows (weakly) with hop distance for the
/// same payload.
#[test]
fn farther_is_slower() {
    forall(128, 0x3AB_0003, |g| {
        let switches = g.usize_in(2, 5);
        let bytes = g.usize_in(1, 1023);
        let topo = TopologyBuilder::switch_chain(switches, 1);
        let mut arrivals = Vec::new();
        for dst in 1..switches {
            let mut f = Fabric::new(topo.clone());
            arrivals.push(f.send(NicId(0), NicId(dst), bytes, SimTime::ZERO).arrival);
        }
        for w in arrivals.windows(2) {
            assert!(w[0] <= w[1]);
        }
    });
}

/// The stats ledger is conserved: sends == drops + corruptions +
/// intact deliveries.
#[test]
fn stats_conserved() {
    forall(256, 0x3AB_0004, |g| {
        use gmsim_myrinet::fault::Fate;
        use gmsim_myrinet::FaultPlan;
        let sends = g.vec_of(1, 100, |g| {
            (g.usize_in(0, 3), g.usize_in(0, 3), g.usize_in(1, 511))
        });
        let drop_p = g.f64_in(0.0, 1.0);
        let seed = g.any_u64();
        let mut f = Fabric::new(TopologyBuilder::single_switch(4)).with_faults(
            FaultPlan {
                drop_probability: drop_p,
                corrupt_probability: 0.1,
                ..FaultPlan::NONE
            },
            seed,
        );
        let mut intact = 0u64;
        let mut attempted = 0u64;
        for (src, dst, bytes) in sends {
            if src == dst {
                continue;
            }
            attempted += 1;
            if f.send(NicId(src), NicId(dst), bytes, SimTime::ZERO).fate == Fate::Intact {
                intact += 1;
            }
        }
        let s = f.stats();
        assert_eq!(s.sends, attempted);
        assert_eq!(s.drops + s.corruptions + intact, attempted);
    });
}
