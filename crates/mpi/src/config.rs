//! MPI layer configuration.

use gmsim_des::SimTime;
use nic_barrier::DescriptorError;

/// Which implementation `MpiOp::Barrier` binds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierBinding {
    /// The paper's contribution: one collective token, the NIC does the
    /// rest (PE algorithm).
    NicPe,
    /// NIC-based gather-broadcast with tree dimension `dim`.
    NicGb {
        /// Tree arity.
        dim: usize,
    },
    /// NIC-based k-ary dissemination with the given radix (radix 2 is the
    /// classic dissemination barrier).
    NicDissemination {
        /// Dissemination radix (≥ 2).
        radix: usize,
    },
    /// MPICH-over-GM style: host-based pairwise exchange, every message a
    /// full host→NIC→wire→NIC→host trip plus MPI overhead.
    HostPe,
}

impl BarrierBinding {
    /// Config-time validation: the fields are freely settable, so the
    /// parameterized bindings are checked against the same rules as the
    /// [`nic_barrier::Descriptor`] constructors before any schedule is
    /// compiled.
    pub fn validate(&self) -> Result<(), DescriptorError> {
        match *self {
            BarrierBinding::NicPe | BarrierBinding::HostPe => Ok(()),
            BarrierBinding::NicGb { dim } => nic_barrier::Descriptor::try_gb(dim).map(|_| ()),
            BarrierBinding::NicDissemination { radix } => {
                nic_barrier::Descriptor::try_dissemination(radix).map(|_| ())
            }
        }
    }
}

/// Per-call costs of the MPI layer.
///
/// §2.2: "as the host send overhead increases, say from the addition of
/// another programming layer such as MPI, the factor of improvement will
/// increase" — the layer taxes *every* host-level call, so the host-based
/// barrier pays it `log2 N` times per barrier and the NIC-based barrier
/// pays it once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpiConfig {
    /// Host time charged on entry to every MPI call (argument checking,
    /// request bookkeeping, datatype handling).
    pub call_overhead: SimTime,
    /// Extra host time charged per completed receive (message matching,
    /// status construction) on top of GM's HRecv.
    pub recv_overhead: SimTime,
    /// How `Barrier` is implemented.
    pub barrier: BarrierBinding,
}

impl MpiConfig {
    /// An MPICH-over-GM-like layer with host-based barriers.
    pub fn host_based() -> Self {
        MpiConfig {
            call_overhead: SimTime::from_us(3),
            recv_overhead: SimTime::from_us(2),
            barrier: BarrierBinding::HostPe,
        }
    }

    /// The same layer with `MPI_Barrier` bound to the NIC-based barrier.
    pub fn nic_based() -> Self {
        MpiConfig {
            barrier: BarrierBinding::NicPe,
            ..Self::host_based()
        }
    }

    /// The NIC-based layer with `MPI_Barrier` bound to k-ary
    /// dissemination at `radix`.
    ///
    /// # Errors
    /// [`DescriptorError::InvalidRadix`] if `radix < 2`.
    pub fn try_nic_dissemination(radix: usize) -> Result<Self, DescriptorError> {
        let binding = BarrierBinding::NicDissemination { radix };
        binding.validate()?;
        Ok(MpiConfig {
            barrier: binding,
            ..Self::host_based()
        })
    }

    /// Scale the layer overheads (heavier MPI implementations).
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor >= 0.0);
        self.call_overhead = SimTime::from_ns((self.call_overhead.as_ns() as f64 * factor) as u64);
        self.recv_overhead = SimTime::from_ns((self.recv_overhead.as_ns() as f64 * factor) as u64);
        self
    }
}

impl Default for MpiConfig {
    fn default() -> Self {
        Self::nic_based()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_only_in_binding() {
        let h = MpiConfig::host_based();
        let n = MpiConfig::nic_based();
        assert_eq!(h.call_overhead, n.call_overhead);
        assert_eq!(h.barrier, BarrierBinding::HostPe);
        assert_eq!(n.barrier, BarrierBinding::NicPe);
    }

    #[test]
    fn scaling_scales_both_overheads() {
        let c = MpiConfig::host_based().scaled(2.0);
        assert_eq!(c.call_overhead, SimTime::from_us(6));
        assert_eq!(c.recv_overhead, SimTime::from_us(4));
    }

    #[test]
    fn zero_scale_removes_the_layer() {
        let c = MpiConfig::nic_based().scaled(0.0);
        assert_eq!(c.call_overhead, SimTime::ZERO);
    }

    #[test]
    fn binding_validation_mirrors_descriptor_rules() {
        assert!(BarrierBinding::NicPe.validate().is_ok());
        assert!(BarrierBinding::HostPe.validate().is_ok());
        assert!(BarrierBinding::NicGb { dim: 1 }.validate().is_ok());
        assert_eq!(
            BarrierBinding::NicGb { dim: 0 }.validate(),
            Err(DescriptorError::ZeroDim)
        );
        assert!(BarrierBinding::NicDissemination { radix: 2 }
            .validate()
            .is_ok());
        for radix in [0, 1] {
            assert_eq!(
                BarrierBinding::NicDissemination { radix }.validate(),
                Err(DescriptorError::InvalidRadix { radix })
            );
        }
    }

    #[test]
    fn dissemination_preset_is_validated_at_config_time() {
        let c = MpiConfig::try_nic_dissemination(3).unwrap();
        assert_eq!(c.barrier, BarrierBinding::NicDissemination { radix: 3 });
        assert_eq!(
            MpiConfig::try_nic_dissemination(1),
            Err(DescriptorError::InvalidRadix { radix: 1 })
        );
    }
}
