//! An MPI-like programming layer over the GM model.
//!
//! The paper's future work (§8): "We intend to study the effects of our
//! NIC-based barrier operation on higher communication layers, such as MPI
//! ... We expect that our NIC-based barrier would show an even greater
//! improvement over host-based barrier with these layers because of the
//! additional latency to individual messages which is added by them." The
//! authors followed up with *Performance benefits of NIC-based barrier on
//! Myrinet/GM* (CAC '01). This crate reproduces that study's setting: a
//! message-passing layer that adds per-call host overhead on top of GM and
//! whose `Barrier` primitive can be bound either to the host-based PE
//! algorithm or to the NIC-based barrier.
//!
//! Programs are *scripts* ([`MpiOp`]) — sequences of blocking-style
//! operations (send/recv/barrier/collectives/compute with loops) — executed
//! by [`MpiProcess`], an event-driven interpreter implementing
//! [`gmsim_gm::HostProgram`]. Scripts read like straight-line MPI code
//! while running on the simulator's callback model:
//!
//! ```
//! use gmsim_mpi::{MpiOp, script};
//! // a BSP superstep loop: compute, exchange halos, synchronize
//! let me = 3usize; let right = 4usize; let left = 2usize;
//! let program = script()
//!     .repeat(100, |body| {
//!         body.compute_us(50)
//!             .send(right, 1024, 7)
//!             .send(left, 1024, 7)
//!             .recv(left, 7)
//!             .recv(right, 7)
//!             .barrier()
//!     })
//!     .build();
//! assert_eq!(program.len(), 1);
//! # let _ = (me, program);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod ops;

pub use config::{BarrierBinding, MpiConfig};
pub use engine::{MpiProcess, NOTE_MPI_DONE};
pub use ops::{script, Buf, Datatype, MpiOp, ScriptBuilder};
