//! The scripted operation set and its builder.

use gmsim_des::SimTime;
use nic_barrier::ReduceOp;
use std::sync::Arc;

/// One blocking-style MPI operation. Peers are *ranks* within the process
/// group (the engine maps ranks to endpoints).
#[derive(Debug, Clone)]
pub enum MpiOp {
    /// `MPI_Send`: fire-and-forget reliable message to `dst`.
    Send {
        /// Destination rank.
        dst: usize,
        /// Payload bytes.
        len: usize,
        /// Message tag.
        tag: u32,
    },
    /// `MPI_Recv`: block until a message from `src` with `tag` arrives.
    Recv {
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: u32,
    },
    /// `MPI_Barrier`, bound per [`crate::MpiConfig::barrier`].
    Barrier,
    /// `MPI_Bcast` of a u64 from `root` (NIC-based, tree dimension 2).
    Bcast {
        /// Root rank.
        root: usize,
        /// The value contributed at the root (ignored elsewhere).
        value: u64,
    },
    /// `MPI_Allreduce` of each rank's `value` (NIC-based).
    AllReduce {
        /// Combining operator.
        op: ReduceOp,
        /// This rank's contribution.
        value: u64,
    },
    /// `MPI_Scan`: inclusive prefix of each rank's `value` (NIC-based).
    Scan {
        /// Combining operator (must be commutative).
        op: ReduceOp,
        /// This rank's contribution.
        value: u64,
    },
    /// Local computation.
    Compute(SimTime),
    /// A counted loop over a sub-script.
    Repeat {
        /// Iteration count.
        n: u64,
        /// Loop body (shared so clones of the script are cheap).
        body: Arc<Vec<MpiOp>>,
    },
    /// `MPI_Comm_split`: partition the world by color and switch this
    /// process onto its sub-communicator. Ranks in subsequent ops are
    /// positions within the sub-communicator (world-rank order); the
    /// engine routes collectives through the resulting team handle, so
    /// overlapping communicators synchronize independently on the NIC.
    CommSplit {
        /// Base team id; color `c`'s communicator gets id `base + c`, so
        /// every color lands on a cluster-unique team. Must be ≥ 1 (0 is
        /// the world).
        base: u32,
        /// One color per world rank (every rank passes the same array —
        /// the deterministic stand-in for the MPI-internal exchange).
        colors: Arc<Vec<u32>>,
    },
    /// Return to the world communicator (`MPI_Comm_free` + world ops).
    CommWorld,
}

/// Fluent script construction.
#[derive(Debug, Default, Clone)]
pub struct ScriptBuilder {
    ops: Vec<MpiOp>,
}

/// Start a script.
pub fn script() -> ScriptBuilder {
    ScriptBuilder::default()
}

impl ScriptBuilder {
    /// Append `MPI_Send`.
    pub fn send(mut self, dst: usize, len: usize, tag: u32) -> Self {
        self.ops.push(MpiOp::Send { dst, len, tag });
        self
    }

    /// Append `MPI_Recv`.
    pub fn recv(mut self, src: usize, tag: u32) -> Self {
        self.ops.push(MpiOp::Recv { src, tag });
        self
    }

    /// Append `MPI_Barrier`.
    pub fn barrier(mut self) -> Self {
        self.ops.push(MpiOp::Barrier);
        self
    }

    /// Append `MPI_Bcast`.
    pub fn bcast(mut self, root: usize, value: u64) -> Self {
        self.ops.push(MpiOp::Bcast { root, value });
        self
    }

    /// Append `MPI_Allreduce`.
    pub fn allreduce(mut self, op: ReduceOp, value: u64) -> Self {
        self.ops.push(MpiOp::AllReduce { op, value });
        self
    }

    /// Append `MPI_Scan`.
    pub fn scan(mut self, op: ReduceOp, value: u64) -> Self {
        self.ops.push(MpiOp::Scan { op, value });
        self
    }

    /// Append local computation in microseconds.
    pub fn compute_us(mut self, us: u64) -> Self {
        self.ops.push(MpiOp::Compute(SimTime::from_us(us)));
        self
    }

    /// Append `MPI_Comm_split` with one color per world rank; subsequent
    /// ops run on the sub-communicator (ranks are sub-communicator
    /// positions) until [`Self::comm_world`].
    pub fn comm_split(mut self, base: u32, colors: Vec<u32>) -> Self {
        self.ops.push(MpiOp::CommSplit {
            base,
            colors: Arc::new(colors),
        });
        self
    }

    /// Append a switch back to the world communicator.
    pub fn comm_world(mut self) -> Self {
        self.ops.push(MpiOp::CommWorld);
        self
    }

    /// Append a counted loop; `f` builds the body.
    pub fn repeat<F>(mut self, n: u64, f: F) -> Self
    where
        F: FnOnce(ScriptBuilder) -> ScriptBuilder,
    {
        let body = f(ScriptBuilder::default()).ops;
        self.ops.push(MpiOp::Repeat {
            n,
            body: Arc::new(body),
        });
        self
    }

    /// Finish the script.
    pub fn build(self) -> Vec<MpiOp> {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_preserves_order() {
        let s = script()
            .compute_us(10)
            .send(1, 64, 5)
            .recv(1, 5)
            .barrier()
            .build();
        assert_eq!(s.len(), 4);
        assert!(matches!(s[0], MpiOp::Compute(_)));
        assert!(matches!(
            s[1],
            MpiOp::Send {
                dst: 1,
                len: 64,
                tag: 5
            }
        ));
        assert!(matches!(s[2], MpiOp::Recv { src: 1, tag: 5 }));
        assert!(matches!(s[3], MpiOp::Barrier));
    }

    #[test]
    fn repeat_nests() {
        let s = script()
            .repeat(3, |b| b.barrier().repeat(2, |inner| inner.compute_us(1)))
            .build();
        let MpiOp::Repeat { n, body } = &s[0] else {
            panic!("expected repeat");
        };
        assert_eq!(*n, 3);
        assert_eq!(body.len(), 2);
        assert!(matches!(&body[1], MpiOp::Repeat { n: 2, .. }));
    }

    #[test]
    fn scripts_clone_cheaply() {
        let s = script().repeat(1_000, |b| b.barrier()).build();
        let c = s.clone();
        if let (MpiOp::Repeat { body: a, .. }, MpiOp::Repeat { body: b, .. }) = (&s[0], &c[0]) {
            assert!(Arc::ptr_eq(a, b), "bodies are shared, not copied");
        } else {
            panic!();
        }
    }
}
