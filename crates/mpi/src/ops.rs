//! The scripted operation set and its builder.

use gmsim_des::SimTime;
use nic_barrier::ReduceOp;
use std::sync::Arc;

/// An MPI element datatype: fixes the byte width of a [`Buf`] element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Datatype {
    /// 1-byte elements (`MPI_BYTE`).
    U8,
    /// 4-byte elements (`MPI_UINT32_T`).
    U32,
    /// 8-byte elements (`MPI_UINT64_T`).
    U64,
}

impl Datatype {
    /// Bytes per element.
    pub fn bytes(self) -> usize {
        match self {
            Datatype::U8 => 1,
            Datatype::U32 => 4,
            Datatype::U64 => 8,
        }
    }
}

/// A typed message-buffer handle — the `(buf, count, datatype)` triple of
/// an MPI collective call. The simulator models data *movement*, not data:
/// `fill` is the representative operand word the NIC combines and the
/// completion event reports, standing in for the buffer contents.
///
/// This is the only way to issue a data-carrying collective; the byte size
/// (`count * datatype`) drives the eager/pipelined segmentation the
/// compiler picks via [`gmsim_gm::Payload::for_size`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Buf {
    /// Element count.
    pub count: usize,
    /// Element datatype.
    pub datatype: Datatype,
    /// Representative operand word (reduce contribution, broadcast value).
    pub fill: u64,
}

impl Buf {
    /// A buffer of `count` elements of `datatype`, zero-filled.
    pub fn new(count: usize, datatype: Datatype) -> Self {
        Buf {
            count,
            datatype,
            fill: 0,
        }
    }

    /// A buffer of `count` bytes.
    pub fn bytes_buf(count: usize) -> Self {
        Buf::new(count, Datatype::U8)
    }

    /// A buffer of `count` u64 elements.
    pub fn u64s(count: usize) -> Self {
        Buf::new(count, Datatype::U64)
    }

    /// Attach the representative operand word (builder style).
    pub fn with_fill(mut self, fill: u64) -> Self {
        self.fill = fill;
        self
    }

    /// Total buffer size in bytes.
    pub fn len_bytes(&self) -> u64 {
        (self.count * self.datatype.bytes()) as u64
    }
}

/// One blocking-style MPI operation. Peers are *ranks* within the process
/// group (the engine maps ranks to endpoints).
#[derive(Debug, Clone)]
pub enum MpiOp {
    /// `MPI_Send`: fire-and-forget reliable message to `dst`.
    Send {
        /// Destination rank.
        dst: usize,
        /// Payload bytes.
        len: usize,
        /// Message tag.
        tag: u32,
    },
    /// `MPI_Recv`: block until a message from `src` with `tag` arrives.
    Recv {
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: u32,
    },
    /// `MPI_Barrier`, bound per [`crate::MpiConfig::barrier`].
    Barrier,
    /// `MPI_Bcast` of `buf` from `root` (NIC-based, tree dimension 2).
    /// The buffer's byte size drives eager vs pipelined segmentation.
    Bcast {
        /// Root rank.
        root: usize,
        /// The broadcast buffer (`fill` is the root's value).
        buf: Buf,
    },
    /// `MPI_Allreduce` over each rank's `buf` (NIC-based).
    AllReduce {
        /// Combining operator.
        op: ReduceOp,
        /// This rank's contribution buffer.
        buf: Buf,
    },
    /// `MPI_Scan`: inclusive prefix over each rank's `buf` (NIC-based).
    Scan {
        /// Combining operator (must be commutative).
        op: ReduceOp,
        /// This rank's contribution buffer.
        buf: Buf,
    },
    /// Local computation.
    Compute(SimTime),
    /// A counted loop over a sub-script.
    Repeat {
        /// Iteration count.
        n: u64,
        /// Loop body (shared so clones of the script are cheap).
        body: Arc<Vec<MpiOp>>,
    },
    /// `MPI_Comm_split`: partition the world by color and switch this
    /// process onto its sub-communicator. Ranks in subsequent ops are
    /// positions within the sub-communicator (world-rank order); the
    /// engine routes collectives through the resulting team handle, so
    /// overlapping communicators synchronize independently on the NIC.
    CommSplit {
        /// Base team id; color `c`'s communicator gets id `base + c`, so
        /// every color lands on a cluster-unique team. Must be ≥ 1 (0 is
        /// the world).
        base: u32,
        /// One color per world rank (every rank passes the same array —
        /// the deterministic stand-in for the MPI-internal exchange).
        colors: Arc<Vec<u32>>,
    },
    /// Return to the world communicator (`MPI_Comm_free` + world ops).
    CommWorld,
}

/// Fluent script construction.
#[derive(Debug, Default, Clone)]
pub struct ScriptBuilder {
    ops: Vec<MpiOp>,
}

/// Start a script.
pub fn script() -> ScriptBuilder {
    ScriptBuilder::default()
}

impl ScriptBuilder {
    /// Append `MPI_Send`.
    pub fn send(mut self, dst: usize, len: usize, tag: u32) -> Self {
        self.ops.push(MpiOp::Send { dst, len, tag });
        self
    }

    /// Append `MPI_Recv`.
    pub fn recv(mut self, src: usize, tag: u32) -> Self {
        self.ops.push(MpiOp::Recv { src, tag });
        self
    }

    /// Append `MPI_Barrier`.
    pub fn barrier(mut self) -> Self {
        self.ops.push(MpiOp::Barrier);
        self
    }

    /// Append `MPI_Bcast` of `buf` rooted at `root`.
    pub fn bcast(mut self, root: usize, buf: Buf) -> Self {
        self.ops.push(MpiOp::Bcast { root, buf });
        self
    }

    /// Append `MPI_Allreduce` over `buf`.
    pub fn allreduce(mut self, op: ReduceOp, buf: Buf) -> Self {
        self.ops.push(MpiOp::AllReduce { op, buf });
        self
    }

    /// Append `MPI_Scan` over `buf`.
    pub fn scan(mut self, op: ReduceOp, buf: Buf) -> Self {
        self.ops.push(MpiOp::Scan { op, buf });
        self
    }

    /// Append local computation in microseconds.
    pub fn compute_us(mut self, us: u64) -> Self {
        self.ops.push(MpiOp::Compute(SimTime::from_us(us)));
        self
    }

    /// Append `MPI_Comm_split` with one color per world rank; subsequent
    /// ops run on the sub-communicator (ranks are sub-communicator
    /// positions) until [`Self::comm_world`].
    pub fn comm_split(mut self, base: u32, colors: Vec<u32>) -> Self {
        self.ops.push(MpiOp::CommSplit {
            base,
            colors: Arc::new(colors),
        });
        self
    }

    /// Append a switch back to the world communicator.
    pub fn comm_world(mut self) -> Self {
        self.ops.push(MpiOp::CommWorld);
        self
    }

    /// Append a counted loop; `f` builds the body.
    pub fn repeat<F>(mut self, n: u64, f: F) -> Self
    where
        F: FnOnce(ScriptBuilder) -> ScriptBuilder,
    {
        let body = f(ScriptBuilder::default()).ops;
        self.ops.push(MpiOp::Repeat {
            n,
            body: Arc::new(body),
        });
        self
    }

    /// Finish the script.
    pub fn build(self) -> Vec<MpiOp> {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_preserves_order() {
        let s = script()
            .compute_us(10)
            .send(1, 64, 5)
            .recv(1, 5)
            .barrier()
            .build();
        assert_eq!(s.len(), 4);
        assert!(matches!(s[0], MpiOp::Compute(_)));
        assert!(matches!(
            s[1],
            MpiOp::Send {
                dst: 1,
                len: 64,
                tag: 5
            }
        ));
        assert!(matches!(s[2], MpiOp::Recv { src: 1, tag: 5 }));
        assert!(matches!(s[3], MpiOp::Barrier));
    }

    #[test]
    fn repeat_nests() {
        let s = script()
            .repeat(3, |b| b.barrier().repeat(2, |inner| inner.compute_us(1)))
            .build();
        let MpiOp::Repeat { n, body } = &s[0] else {
            panic!("expected repeat");
        };
        assert_eq!(*n, 3);
        assert_eq!(body.len(), 2);
        assert!(matches!(&body[1], MpiOp::Repeat { n: 2, .. }));
    }

    #[test]
    fn scripts_clone_cheaply() {
        let s = script().repeat(1_000, |b| b.barrier()).build();
        let c = s.clone();
        if let (MpiOp::Repeat { body: a, .. }, MpiOp::Repeat { body: b, .. }) = (&s[0], &c[0]) {
            assert!(Arc::ptr_eq(a, b), "bodies are shared, not copied");
        } else {
            panic!();
        }
    }
}
