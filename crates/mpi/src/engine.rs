//! The script interpreter: [`MpiProcess`] executes an [`MpiOp`] script as
//! an event-driven [`HostProgram`].
//!
//! Blocking-style semantics on a callback model: `step` runs ops until one
//! must wait (an unmatched `Recv`, an in-flight barrier/collective), then
//! parks; GM events unpark it. Host time accumulates through
//! `HostCtx::compute`/`send`, so a script's timeline is exactly what the
//! equivalent hand-written state machine would produce, plus the MPI
//! layer's per-call overhead.

use crate::config::{BarrierBinding, MpiConfig};
use crate::ops::{Buf, MpiOp};
use gmsim_des::SimTime;
use gmsim_gm::{
    CollectiveSchedule, CollectiveToken, GlobalPort, GmEvent, HostCtx, HostProgram, Payload,
    ScheduleStep, TeamId,
};
use nic_barrier::{BarrierGroup, Descriptor, ReduceOp, Team};
use std::collections::HashMap;
use std::sync::Arc;

/// Note tag emitted when a script finishes (timestamped at the end of the
/// host's queued work, i.e. program completion).
pub const NOTE_MPI_DONE: u64 = 0x3D0E << 32;

/// GM tag namespace: user messages vs the layer's internal host-barrier
/// messages.
const USER_TAG: u64 = 1 << 40;
const HBAR_TAG: u64 = 1 << 41;

fn user_tag(tag: u32) -> u64 {
    USER_TAG | tag as u64
}

/// Internal host-barrier tag: team id in bits 48+, round number and the
/// schedule step's packet kind below, so cross-communicator, cross-round
/// and cross-phase messages never alias. World barriers ([`TeamId::GLOBAL`])
/// produce exactly the pre-team tags.
fn hbar_tag(team: TeamId, round: u64, kind: u8) -> u64 {
    debug_assert!(team.0 < 1 << 16, "team id too large for the tag encoding");
    HBAR_TAG | (u64::from(team.0) << 48) | (round << 8) | u64::from(kind)
}

/// The inbox key of a host-barrier tag: everything but the namespace bit —
/// team, round and kind all participate in matching.
fn hbar_key(tag: u64) -> u64 {
    tag & !HBAR_TAG
}

/// Host barrier payload size (matches the host baseline).
const HBAR_BYTES: usize = 8;
/// User message modelled payload is whatever the script says; receives
/// match on (src, tag) only, as in MPI.

#[derive(Debug)]
struct Frame {
    ops: Arc<Vec<MpiOp>>,
    idx: usize,
    iters_left: u64,
}

#[derive(Debug, PartialEq, Eq)]
enum Blocked {
    No,
    Recv { src: usize, tag: u32 },
    NicCollective,
    HostBarrier,
}

#[derive(Debug)]
struct HostBarrier {
    schedule: CollectiveSchedule,
    pc: usize,
    outstanding: Option<Vec<GlobalPort>>,
    round: u64,
    /// The communicator the barrier runs on; tags carry it so overlapping
    /// communicators' messages never satisfy each other.
    team: TeamId,
}

/// The active sub-communicator: a team handle plus this process's rank
/// within it. `None` means the world communicator.
#[derive(Debug)]
struct Comm {
    team: Team,
    rank: usize,
}

/// Layer statistics for one process.
#[derive(Debug, Clone, Copy, Default)]
pub struct MpiStats {
    /// Barriers completed.
    pub barriers: u64,
    /// Sends issued.
    pub sends: u64,
    /// Receives completed.
    pub recvs: u64,
    /// Value collectives completed.
    pub collectives: u64,
    /// Sub-communicators entered via `CommSplit`.
    pub comms_created: u64,
    /// The last collective's result value.
    pub last_value: u64,
    /// When the script finished (host-work end), if it has.
    pub finished_at: Option<SimTime>,
}

/// A scripted MPI process.
pub struct MpiProcess {
    group: BarrierGroup,
    rank: usize,
    config: MpiConfig,
    frames: Vec<Frame>,
    blocked: Blocked,
    /// Unexpected user messages: (src world rank, tag) → arrival count.
    inbox: HashMap<(usize, u32), u32>,
    /// Unexpected host-barrier messages: (src world rank, tag key) → seen.
    hbar_inbox: HashMap<(usize, u64), u32>,
    hbar: Option<HostBarrier>,
    /// Host-barrier round counters, one per communicator so rounds stay
    /// consecutive within each team.
    barrier_rounds: HashMap<TeamId, u64>,
    /// The active sub-communicator (`None` = world).
    comm: Option<Comm>,
    /// Counters.
    pub stats: MpiStats,
}

impl MpiProcess {
    /// A process executing `program` as `rank` of `group`.
    ///
    /// # Panics
    /// If `rank` is out of range for the group, or if the config's barrier
    /// binding is invalid ([`BarrierBinding::validate`]) — the check runs
    /// here, at the construction boundary, so a misconfigured binding can
    /// never reach schedule compilation mid-run.
    pub fn new(group: BarrierGroup, rank: usize, config: MpiConfig, program: Vec<MpiOp>) -> Self {
        assert!(rank < group.len());
        if let Err(e) = config.barrier.validate() {
            panic!("invalid MPI barrier binding: {e}");
        }
        MpiProcess {
            group,
            rank,
            config,
            frames: vec![Frame {
                ops: Arc::new(program),
                idx: 0,
                iters_left: 1,
            }],
            blocked: Blocked::No,
            inbox: HashMap::new(),
            hbar_inbox: HashMap::new(),
            hbar: None,
            barrier_rounds: HashMap::new(),
            comm: None,
            stats: MpiStats::default(),
        }
    }

    /// The communicator ops currently run on: the active split, or world.
    fn active_group(&self) -> &BarrierGroup {
        self.comm.as_ref().map_or(&self.group, |c| c.team.group())
    }

    /// This process's rank within the active communicator.
    fn active_rank(&self) -> usize {
        self.comm.as_ref().map_or(self.rank, |c| c.rank)
    }

    /// The team id the active communicator's collectives run under.
    fn active_team(&self) -> TeamId {
        self.comm.as_ref().map_or(TeamId::GLOBAL, |c| c.team.id())
    }

    /// Stamp a token with the active team (identity on the world, so the
    /// single-communicator path is byte-for-byte the pre-team one).
    fn stamp(&self, token: CollectiveToken) -> CollectiveToken {
        match &self.comm {
            Some(c) => token.with_team(c.team.id()),
            None => token,
        }
    }

    /// Map a rank in the active communicator to its world rank (the inbox
    /// key space — events arrive labelled by endpoint, i.e. world member).
    fn world_rank(&self, rank: usize) -> usize {
        match &self.comm {
            Some(c) => self
                .group
                .rank_of(c.team.member(rank))
                .expect("communicator member outside the world group"),
            None => rank,
        }
    }

    fn endpoint(&self, rank: usize) -> gmsim_gm::GlobalPort {
        self.active_group().member(rank)
    }

    fn take_inbox(&mut self, src: usize, tag: u32) -> bool {
        match self.inbox.get_mut(&(src, tag)) {
            Some(c) if *c > 0 => {
                *c -= 1;
                if *c == 0 {
                    self.inbox.remove(&(src, tag));
                }
                true
            }
            _ => false,
        }
    }

    /// Consume an unexpected host-barrier message from `src` with the
    /// given low-32 tag key, if one has arrived.
    fn take_hbar(&mut self, src: usize, key: u64) -> bool {
        match self.hbar_inbox.get_mut(&(src, key)) {
            Some(c) if *c > 0 => {
                *c -= 1;
                if *c == 0 {
                    self.hbar_inbox.remove(&(src, key));
                }
                true
            }
            _ => false,
        }
    }

    /// Drive the host-based barrier sub-machine; true when it completed.
    ///
    /// The internal point-to-point messages go through the MPI layer's own
    /// machinery (as in MPICH over GM), so each one pays the layer's
    /// per-call and per-receive overheads — this is precisely the §2.2
    /// mechanism by which "the addition of another programming layer such
    /// as MPI" widens the NIC barrier's advantage: the host-based barrier
    /// pays the layer `log2 N` times per barrier, the NIC-based one once.
    fn drive_hbar(&mut self, ctx: &mut HostCtx) -> bool {
        loop {
            let Some(hb) = &self.hbar else { return true };
            if hb.pc == hb.schedule.steps.len() {
                self.hbar = None;
                return true;
            }
            let round = hb.round;
            let team = hb.team;
            match hb.schedule.steps[hb.pc].clone() {
                ScheduleStep::SendTo { peers, kind, .. } => {
                    for peer in peers {
                        ctx.compute(self.config.call_overhead);
                        ctx.send(peer, HBAR_BYTES, hbar_tag(team, round, kind));
                    }
                    self.hbar.as_mut().unwrap().pc += 1;
                }
                ScheduleStep::RecvFrom { peers, kind, .. } => {
                    let key = hbar_key(hbar_tag(team, round, kind));
                    let pending = self
                        .hbar
                        .as_mut()
                        .unwrap()
                        .outstanding
                        .take()
                        .unwrap_or(peers);
                    let mut still_waiting = Vec::new();
                    for peer in pending {
                        let peer_rank = self
                            .group
                            .rank_of(peer)
                            .expect("barrier peer not in the world group");
                        if self.take_hbar(peer_rank, key) {
                            ctx.compute(self.config.recv_overhead);
                        } else {
                            still_waiting.push(peer);
                        }
                    }
                    let hb = self.hbar.as_mut().unwrap();
                    if still_waiting.is_empty() {
                        hb.pc += 1;
                    } else {
                        hb.outstanding = Some(still_waiting);
                        return false;
                    }
                }
                ScheduleStep::DeliverCompletion(_) => {
                    self.hbar.as_mut().unwrap().pc += 1;
                }
            }
        }
    }

    /// A `Bcast` tree rooted at an arbitrary rank: rotate ranks so the
    /// root is virtual rank 0, compute the dimension-2 heap tree there,
    /// and map back. The buffer's byte size picks eager vs pipelined
    /// segmentation.
    fn rotated_broadcast_token(&self, root: usize, buf: Buf) -> CollectiveToken {
        let group = self.active_group();
        let rank = self.active_rank();
        let n = group.len();
        let virt = (rank + n - root) % n;
        let rotated: Vec<GlobalPort> = (0..n).map(|v| group.member((v + root) % n)).collect();
        let desc = Descriptor::bcast(2).with_payload(Payload::for_size(buf.len_bytes()));
        let schedule = nic_barrier::compile(desc, virt, &rotated);
        let token =
            CollectiveToken::new(schedule).with_value(if rank == root { buf.fill } else { 0 });
        self.stamp(token)
    }

    /// Execute ops until the script blocks or finishes.
    fn step(&mut self, ctx: &mut HostCtx) {
        debug_assert_eq!(self.blocked, Blocked::No);
        loop {
            let Some(frame) = self.frames.last_mut() else {
                if self.stats.finished_at.is_none() {
                    self.stats.finished_at = Some(ctx.now);
                    ctx.note_after_work(NOTE_MPI_DONE);
                }
                return;
            };
            if frame.idx == frame.ops.len() {
                frame.iters_left -= 1;
                if frame.iters_left == 0 {
                    self.frames.pop();
                } else {
                    frame.idx = 0;
                }
                continue;
            }
            let op = frame.ops[frame.idx].clone();
            frame.idx += 1;
            match op {
                MpiOp::Compute(d) => {
                    ctx.compute(d);
                }
                MpiOp::Repeat { n, body } => {
                    if n > 0 && !body.is_empty() {
                        self.frames.push(Frame {
                            ops: body,
                            idx: 0,
                            iters_left: n,
                        });
                    }
                }
                MpiOp::Send { dst, len, tag } => {
                    ctx.compute(self.config.call_overhead);
                    self.stats.sends += 1;
                    ctx.send(self.endpoint(dst), len, user_tag(tag));
                }
                MpiOp::Recv { src, tag } => {
                    ctx.compute(self.config.call_overhead);
                    // Receives match on world ranks: events arrive labelled
                    // by endpoint, so a communicator-relative source is
                    // translated once here.
                    let src = self.world_rank(src);
                    if self.take_inbox(src, tag) {
                        ctx.compute(self.config.recv_overhead);
                        self.stats.recvs += 1;
                    } else {
                        self.blocked = Blocked::Recv { src, tag };
                        return;
                    }
                }
                MpiOp::Barrier => {
                    ctx.compute(self.config.call_overhead);
                    match self.config.barrier {
                        BarrierBinding::NicPe => {
                            let token =
                                self.stamp(self.active_group().pe_token(self.active_rank()));
                            ctx.start_collective(token);
                            self.blocked = Blocked::NicCollective;
                            return;
                        }
                        BarrierBinding::NicGb { dim } => {
                            let token =
                                self.stamp(self.active_group().gb_token(self.active_rank(), dim));
                            ctx.start_collective(token);
                            self.blocked = Blocked::NicCollective;
                            return;
                        }
                        BarrierBinding::NicDissemination { radix } => {
                            let token = self.stamp(
                                self.active_group()
                                    .dissemination_radix_token(self.active_rank(), radix),
                            );
                            ctx.start_collective(token);
                            self.blocked = Blocked::NicCollective;
                            return;
                        }
                        BarrierBinding::HostPe => {
                            let team = self.active_team();
                            let counter = self.barrier_rounds.entry(team).or_default();
                            let round = *counter;
                            *counter += 1;
                            self.hbar = Some(HostBarrier {
                                schedule: self
                                    .active_group()
                                    .compile(Descriptor::Pe, self.active_rank()),
                                pc: 0,
                                outstanding: None,
                                round,
                                team,
                            });
                            if self.drive_hbar(ctx) {
                                self.stats.barriers += 1;
                            } else {
                                self.blocked = Blocked::HostBarrier;
                                return;
                            }
                        }
                    }
                }
                MpiOp::Bcast { root, buf } => {
                    ctx.compute(self.config.call_overhead);
                    ctx.start_collective(self.rotated_broadcast_token(root, buf));
                    self.blocked = Blocked::NicCollective;
                    return;
                }
                MpiOp::AllReduce { op, buf } => {
                    ctx.compute(self.config.call_overhead);
                    ctx.start_collective(self.allreduce_token(op, buf));
                    self.blocked = Blocked::NicCollective;
                    return;
                }
                MpiOp::Scan { op, buf } => {
                    ctx.compute(self.config.call_overhead);
                    let desc =
                        Descriptor::scan(op).with_payload(Payload::for_size(buf.len_bytes()));
                    let schedule = self.active_group().compile(desc, self.active_rank());
                    let token = self.stamp(CollectiveToken::new(schedule).with_value(buf.fill));
                    ctx.start_collective(token);
                    self.blocked = Blocked::NicCollective;
                    return;
                }
                MpiOp::CommSplit { base, colors } => {
                    // Comm_split is collective, but with every rank handed
                    // the same color array the membership exchange is a
                    // no-op; only the call overhead is charged.
                    ctx.compute(self.config.call_overhead);
                    assert!(
                        base >= 1,
                        "team base 0 collides with the world communicator"
                    );
                    assert_eq!(
                        colors.len(),
                        self.group.len(),
                        "comm_split needs one color per world rank"
                    );
                    let color = colors[self.rank];
                    let members: Vec<usize> = (0..self.group.len())
                        .filter(|&r| colors[r] == color)
                        .collect();
                    let rank = members
                        .iter()
                        .position(|&r| r == self.rank)
                        .expect("own rank always shares its own color");
                    let team = Team::subset(TeamId(base + color), &self.group, &members);
                    self.stats.comms_created += 1;
                    self.comm = Some(Comm { team, rank });
                }
                MpiOp::CommWorld => {
                    ctx.compute(self.config.call_overhead);
                    self.comm = None;
                }
            }
        }
    }

    fn allreduce_token(&self, op: ReduceOp, buf: Buf) -> CollectiveToken {
        let desc = Descriptor::allreduce(op, 2).with_payload(Payload::for_size(buf.len_bytes()));
        let schedule = self.active_group().compile(desc, self.active_rank());
        self.stamp(CollectiveToken::new(schedule).with_value(buf.fill))
    }
}

impl HostProgram for MpiProcess {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        self.step(ctx);
    }

    fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
        match ev {
            GmEvent::Recv { src, tag, .. } => {
                ctx.provide_recv(1);
                let src_rank = self
                    .group
                    .rank_of(*src)
                    .expect("message from outside the group");
                if tag & HBAR_TAG != 0 {
                    let key = hbar_key(*tag);
                    *self.hbar_inbox.entry((src_rank, key)).or_default() += 1;
                    if self.blocked == Blocked::HostBarrier && self.drive_hbar(ctx) {
                        self.stats.barriers += 1;
                        self.blocked = Blocked::No;
                        self.step(ctx);
                    }
                } else {
                    let utag = (tag & 0xFFFF_FFFF) as u32;
                    *self.inbox.entry((src_rank, utag)).or_default() += 1;
                    if self.blocked
                        == (Blocked::Recv {
                            src: src_rank,
                            tag: utag,
                        })
                        && self.take_inbox(src_rank, utag)
                    {
                        ctx.compute(self.config.recv_overhead);
                        self.stats.recvs += 1;
                        self.blocked = Blocked::No;
                        self.step(ctx);
                    }
                }
            }
            GmEvent::BarrierComplete { .. } => {
                if self.blocked == Blocked::NicCollective {
                    self.stats.barriers += 1;
                    self.blocked = Blocked::No;
                    self.step(ctx);
                }
            }
            GmEvent::BroadcastComplete { value }
            | GmEvent::ReduceComplete { value }
            | GmEvent::ScanComplete { value } => {
                if self.blocked == Blocked::NicCollective {
                    self.stats.collectives += 1;
                    self.stats.last_value = *value;
                    self.blocked = Blocked::No;
                    self.step(ctx);
                }
            }
            GmEvent::Sent { .. } => {}
            // A dead peer means this process can never unblock; the testbed
            // surfaces it as a typed experiment error, not an MPI event.
            GmEvent::PeerUnreachable { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::script;

    #[test]
    fn frames_unwind_nested_repeats() {
        let program = script()
            .repeat(2, |b| b.compute_us(1).repeat(3, |i| i.compute_us(1)))
            .build();
        let group = BarrierGroup::one_per_node(1, 1);
        let mut p = MpiProcess::new(group, 0, MpiConfig::nic_based(), program);
        let mut ctx = HostCtx::new(SimTime::ZERO, gmsim_gm::NodeId(0), gmsim_gm::PortId(1));
        p.step(&mut ctx);
        assert!(p.stats.finished_at.is_some());
        // 2 * (1 + 3) = 8 compute actions + the completion note
        assert_eq!(ctx.into_actions().len(), 9);
    }

    #[test]
    fn recv_blocks_until_message() {
        let program = script().recv(1, 9).compute_us(5).build();
        let group = BarrierGroup::one_per_node(2, 1);
        let mut p = MpiProcess::new(group.clone(), 0, MpiConfig::nic_based(), program);
        let mut ctx = HostCtx::new(SimTime::ZERO, gmsim_gm::NodeId(0), gmsim_gm::PortId(1));
        p.step(&mut ctx);
        assert_eq!(p.blocked, Blocked::Recv { src: 1, tag: 9 });
        assert!(p.stats.finished_at.is_none());
        // the matching message unblocks and finishes the script
        let mut ctx = HostCtx::new(
            SimTime::from_us(50),
            gmsim_gm::NodeId(0),
            gmsim_gm::PortId(1),
        );
        p.on_event(
            &GmEvent::Recv {
                src: group.member(1),
                len: 8,
                tag: user_tag(9),
            },
            &mut ctx,
        );
        assert_eq!(p.blocked, Blocked::No);
        assert!(p.stats.finished_at.is_some());
        assert_eq!(p.stats.recvs, 1);
    }

    #[test]
    fn wrong_tag_does_not_unblock() {
        let program = script().recv(1, 9).build();
        let group = BarrierGroup::one_per_node(2, 1);
        let mut p = MpiProcess::new(group.clone(), 0, MpiConfig::nic_based(), program);
        let mut ctx = HostCtx::new(SimTime::ZERO, gmsim_gm::NodeId(0), gmsim_gm::PortId(1));
        p.step(&mut ctx);
        let mut ctx = HostCtx::new(
            SimTime::from_us(1),
            gmsim_gm::NodeId(0),
            gmsim_gm::PortId(1),
        );
        p.on_event(
            &GmEvent::Recv {
                src: group.member(1),
                len: 8,
                tag: user_tag(8), // different tag
            },
            &mut ctx,
        );
        assert_eq!(p.blocked, Blocked::Recv { src: 1, tag: 9 });
        // it is queued for a later recv, not lost
        assert_eq!(p.inbox.get(&(1, 8)), Some(&1));
    }

    #[test]
    fn tag_namespaces_do_not_collide() {
        assert_ne!(user_tag(0) & HBAR_TAG, HBAR_TAG);
        assert_ne!(hbar_tag(TeamId::GLOBAL, 0, 1) & USER_TAG, USER_TAG);
        assert_eq!(user_tag(7) & 0xFFFF_FFFF, 7);
        // round 3, packet kind 1 → (3 << 8) | 1
        assert_eq!(hbar_tag(TeamId::GLOBAL, 3, 1) & 0xFFFF_FFFF, 0x301);
        // the world key is exactly the pre-team key; team bits separate
        // overlapping communicators' otherwise-identical rounds
        assert_eq!(hbar_key(hbar_tag(TeamId::GLOBAL, 3, 1)), 0x301);
        assert_ne!(
            hbar_key(hbar_tag(TeamId(1), 3, 1)),
            hbar_key(hbar_tag(TeamId(2), 3, 1))
        );
    }

    #[test]
    fn dissemination_binding_posts_kary_token() {
        // 9 ranks at radix 3: rank 0's first round sends to ranks 1 and 2.
        let program = script().barrier().build();
        let group = BarrierGroup::one_per_node(9, 1);
        let config = MpiConfig::try_nic_dissemination(3).unwrap();
        let mut p = MpiProcess::new(group.clone(), 0, config, program);
        let mut ctx = HostCtx::new(SimTime::ZERO, gmsim_gm::NodeId(0), gmsim_gm::PortId(1));
        p.step(&mut ctx);
        assert_eq!(p.blocked, Blocked::NicCollective);
        let token = ctx
            .into_actions()
            .into_iter()
            .find_map(|a| match a {
                gmsim_gm::HostAction::Collective(t) => Some(t),
                _ => None,
            })
            .expect("barrier posts a collective token");
        let first_sends: Vec<GlobalPort> = token
            .schedule
            .steps
            .iter()
            .filter_map(|s| match s {
                ScheduleStep::SendTo { peers, .. } => Some(peers.clone()),
                _ => None,
            })
            .flatten()
            .take(2)
            .collect();
        assert_eq!(first_sends, vec![group.member(1), group.member(2)]);
    }

    #[test]
    #[should_panic(expected = "invalid MPI barrier binding")]
    fn invalid_binding_panics_at_process_construction() {
        let config = MpiConfig {
            barrier: BarrierBinding::NicDissemination { radix: 1 },
            ..MpiConfig::nic_based()
        };
        let _ = MpiProcess::new(
            BarrierGroup::one_per_node(2, 1),
            0,
            config,
            script().barrier().build(),
        );
    }

    #[test]
    fn comm_split_routes_collectives_through_team_handles() {
        // world of 4, split into odds and evens; world rank 3 is rank 1 of
        // the odd communicator (team 1 + color 1 = TeamId(2)).
        let program = script().comm_split(1, vec![0, 1, 0, 1]).barrier().build();
        let group = BarrierGroup::one_per_node(4, 1);
        let mut p = MpiProcess::new(group.clone(), 3, MpiConfig::nic_based(), program);
        let mut ctx = HostCtx::new(SimTime::ZERO, gmsim_gm::NodeId(3), gmsim_gm::PortId(1));
        p.step(&mut ctx);
        assert_eq!(p.stats.comms_created, 1);
        assert_eq!(p.blocked, Blocked::NicCollective);
        let token = ctx
            .into_actions()
            .into_iter()
            .find_map(|a| match a {
                gmsim_gm::HostAction::Collective(t) => Some(t),
                _ => None,
            })
            .expect("barrier posts a collective token");
        assert_eq!(token.team, TeamId(2));
        // the schedule is compiled for rank 1 of the 2-member odd group:
        // a pairwise exchange with world rank 1, not with any even rank.
        let peers: Vec<GlobalPort> = token
            .schedule
            .steps
            .iter()
            .filter_map(|s| match s {
                ScheduleStep::SendTo { peers, .. } => Some(peers.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(peers, vec![group.member(1)]);
    }

    #[test]
    fn comm_split_translates_p2p_ranks_and_comm_world_restores() {
        // odd communicator rank 0 = world rank 1; a recv from comm rank 1
        // must match a message from world rank 3's endpoint.
        let program = script()
            .comm_split(1, vec![0, 1, 0, 1])
            .recv(1, 7)
            .comm_world()
            .recv(0, 8)
            .build();
        let group = BarrierGroup::one_per_node(4, 1);
        let mut p = MpiProcess::new(group.clone(), 1, MpiConfig::nic_based(), program);
        let mut ctx = HostCtx::new(SimTime::ZERO, gmsim_gm::NodeId(1), gmsim_gm::PortId(1));
        p.step(&mut ctx);
        assert_eq!(p.blocked, Blocked::Recv { src: 3, tag: 7 });
        let mut ctx = HostCtx::new(
            SimTime::from_us(5),
            gmsim_gm::NodeId(1),
            gmsim_gm::PortId(1),
        );
        p.on_event(
            &GmEvent::Recv {
                src: group.member(3),
                len: 8,
                tag: user_tag(7),
            },
            &mut ctx,
        );
        // past comm_world, ranks are world ranks again
        assert_eq!(p.blocked, Blocked::Recv { src: 0, tag: 8 });
        let mut ctx = HostCtx::new(
            SimTime::from_us(9),
            gmsim_gm::NodeId(1),
            gmsim_gm::PortId(1),
        );
        p.on_event(
            &GmEvent::Recv {
                src: group.member(0),
                len: 8,
                tag: user_tag(8),
            },
            &mut ctx,
        );
        assert!(p.stats.finished_at.is_some());
        assert_eq!(p.stats.recvs, 2);
    }

    #[test]
    fn host_barriers_on_overlapping_comms_do_not_cross_satisfy() {
        // world rank 0 splits into the even communicator and runs a
        // host-level barrier with world rank 2. A team-0 (world) barrier
        // message for the same round/kind must NOT unblock it; the
        // team-stamped one must.
        let program = script().comm_split(1, vec![0, 1, 0, 1]).barrier().build();
        let group = BarrierGroup::one_per_node(4, 1);
        let mut p = MpiProcess::new(group.clone(), 0, MpiConfig::host_based(), program);
        let mut ctx = HostCtx::new(SimTime::ZERO, gmsim_gm::NodeId(0), gmsim_gm::PortId(1));
        p.step(&mut ctx);
        assert_eq!(p.blocked, Blocked::HostBarrier);
        let hb = p.hbar.as_ref().expect("host barrier in flight");
        assert_eq!(hb.team, TeamId(1));
        let (round, kind) = (hb.round, 1);
        // a stale world-communicator message: same round and kind, team 0
        let mut ctx = HostCtx::new(
            SimTime::from_us(3),
            gmsim_gm::NodeId(0),
            gmsim_gm::PortId(1),
        );
        p.on_event(
            &GmEvent::Recv {
                src: group.member(2),
                len: HBAR_BYTES,
                tag: hbar_tag(TeamId::GLOBAL, round, kind),
            },
            &mut ctx,
        );
        assert_eq!(p.blocked, Blocked::HostBarrier, "world tag must not match");
        // the real team-stamped message completes the barrier
        let mut ctx = HostCtx::new(
            SimTime::from_us(4),
            gmsim_gm::NodeId(0),
            gmsim_gm::PortId(1),
        );
        p.on_event(
            &GmEvent::Recv {
                src: group.member(2),
                len: HBAR_BYTES,
                tag: hbar_tag(TeamId(1), round, kind),
            },
            &mut ctx,
        );
        assert_eq!(p.blocked, Blocked::No);
        assert_eq!(p.stats.barriers, 1);
        assert!(p.stats.finished_at.is_some());
    }
}
