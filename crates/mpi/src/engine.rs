//! The script interpreter: [`MpiProcess`] executes an [`MpiOp`] script as
//! an event-driven [`HostProgram`].
//!
//! Blocking-style semantics on a callback model: `step` runs ops until one
//! must wait (an unmatched `Recv`, an in-flight barrier/collective), then
//! parks; GM events unpark it. Host time accumulates through
//! `HostCtx::compute`/`send`, so a script's timeline is exactly what the
//! equivalent hand-written state machine would produce, plus the MPI
//! layer's per-call overhead.

use crate::config::{BarrierBinding, MpiConfig};
use crate::ops::MpiOp;
use gmsim_des::SimTime;
use gmsim_gm::{CollectiveSchedule, GlobalPort, GmEvent, HostCtx, HostProgram, ScheduleStep};
use nic_barrier::{BarrierGroup, Descriptor, ReduceOp};
use std::collections::HashMap;
use std::sync::Arc;

/// Note tag emitted when a script finishes (timestamped at the end of the
/// host's queued work, i.e. program completion).
pub const NOTE_MPI_DONE: u64 = 0x3D0E << 32;

/// GM tag namespace: user messages vs the layer's internal host-barrier
/// messages.
const USER_TAG: u64 = 1 << 40;
const HBAR_TAG: u64 = 1 << 41;

fn user_tag(tag: u32) -> u64 {
    USER_TAG | tag as u64
}

/// Internal host-barrier tag: round number and the schedule step's packet
/// kind in the low 32 bits, so cross-round and cross-phase messages never
/// alias.
fn hbar_tag(round: u64, kind: u8) -> u64 {
    HBAR_TAG | (round << 8) | u64::from(kind)
}

/// Host barrier payload size (matches the host baseline).
const HBAR_BYTES: usize = 8;
/// User message modelled payload is whatever the script says; receives
/// match on (src, tag) only, as in MPI.

#[derive(Debug)]
struct Frame {
    ops: Arc<Vec<MpiOp>>,
    idx: usize,
    iters_left: u64,
}

#[derive(Debug, PartialEq, Eq)]
enum Blocked {
    No,
    Recv { src: usize, tag: u32 },
    NicCollective,
    HostBarrier,
}

#[derive(Debug)]
struct HostBarrier {
    schedule: CollectiveSchedule,
    pc: usize,
    outstanding: Option<Vec<GlobalPort>>,
    round: u64,
}

/// Layer statistics for one process.
#[derive(Debug, Clone, Copy, Default)]
pub struct MpiStats {
    /// Barriers completed.
    pub barriers: u64,
    /// Sends issued.
    pub sends: u64,
    /// Receives completed.
    pub recvs: u64,
    /// Value collectives completed.
    pub collectives: u64,
    /// The last collective's result value.
    pub last_value: u64,
    /// When the script finished (host-work end), if it has.
    pub finished_at: Option<SimTime>,
}

/// A scripted MPI process.
pub struct MpiProcess {
    group: BarrierGroup,
    rank: usize,
    config: MpiConfig,
    frames: Vec<Frame>,
    blocked: Blocked,
    /// Unexpected user messages: (src rank, tag) → arrival count.
    inbox: HashMap<(usize, u32), u32>,
    /// Unexpected host-barrier messages: (src rank, round) → seen.
    hbar_inbox: HashMap<(usize, u64), u32>,
    hbar: Option<HostBarrier>,
    barrier_round: u64,
    /// Counters.
    pub stats: MpiStats,
}

impl MpiProcess {
    /// A process executing `program` as `rank` of `group`.
    pub fn new(group: BarrierGroup, rank: usize, config: MpiConfig, program: Vec<MpiOp>) -> Self {
        assert!(rank < group.len());
        MpiProcess {
            group,
            rank,
            config,
            frames: vec![Frame {
                ops: Arc::new(program),
                idx: 0,
                iters_left: 1,
            }],
            blocked: Blocked::No,
            inbox: HashMap::new(),
            hbar_inbox: HashMap::new(),
            hbar: None,
            barrier_round: 0,
            stats: MpiStats::default(),
        }
    }

    fn endpoint(&self, rank: usize) -> gmsim_gm::GlobalPort {
        self.group.member(rank)
    }

    fn take_inbox(&mut self, src: usize, tag: u32) -> bool {
        match self.inbox.get_mut(&(src, tag)) {
            Some(c) if *c > 0 => {
                *c -= 1;
                if *c == 0 {
                    self.inbox.remove(&(src, tag));
                }
                true
            }
            _ => false,
        }
    }

    /// Consume an unexpected host-barrier message from `src` with the
    /// given low-32 tag key, if one has arrived.
    fn take_hbar(&mut self, src: usize, key: u64) -> bool {
        match self.hbar_inbox.get_mut(&(src, key)) {
            Some(c) if *c > 0 => {
                *c -= 1;
                if *c == 0 {
                    self.hbar_inbox.remove(&(src, key));
                }
                true
            }
            _ => false,
        }
    }

    /// Drive the host-based barrier sub-machine; true when it completed.
    ///
    /// The internal point-to-point messages go through the MPI layer's own
    /// machinery (as in MPICH over GM), so each one pays the layer's
    /// per-call and per-receive overheads — this is precisely the §2.2
    /// mechanism by which "the addition of another programming layer such
    /// as MPI" widens the NIC barrier's advantage: the host-based barrier
    /// pays the layer `log2 N` times per barrier, the NIC-based one once.
    fn drive_hbar(&mut self, ctx: &mut HostCtx) -> bool {
        loop {
            let Some(hb) = &self.hbar else { return true };
            if hb.pc == hb.schedule.steps.len() {
                self.hbar = None;
                return true;
            }
            let round = hb.round;
            match hb.schedule.steps[hb.pc].clone() {
                ScheduleStep::SendTo { peers, kind, .. } => {
                    for peer in peers {
                        ctx.compute(self.config.call_overhead);
                        ctx.send(peer, HBAR_BYTES, hbar_tag(round, kind));
                    }
                    self.hbar.as_mut().unwrap().pc += 1;
                }
                ScheduleStep::RecvFrom { peers, kind, .. } => {
                    let key = hbar_tag(round, kind) & 0xFFFF_FFFF;
                    let pending = self
                        .hbar
                        .as_mut()
                        .unwrap()
                        .outstanding
                        .take()
                        .unwrap_or(peers);
                    let mut still_waiting = Vec::new();
                    for peer in pending {
                        let peer_rank =
                            self.group.rank_of(peer).expect("barrier peer not in group");
                        if self.take_hbar(peer_rank, key) {
                            ctx.compute(self.config.recv_overhead);
                        } else {
                            still_waiting.push(peer);
                        }
                    }
                    let hb = self.hbar.as_mut().unwrap();
                    if still_waiting.is_empty() {
                        hb.pc += 1;
                    } else {
                        hb.outstanding = Some(still_waiting);
                        return false;
                    }
                }
                ScheduleStep::DeliverCompletion(_) => {
                    self.hbar.as_mut().unwrap().pc += 1;
                }
            }
        }
    }

    /// A `Bcast` tree rooted at an arbitrary rank: rotate ranks so the
    /// root is virtual rank 0, compute the dimension-2 heap tree there,
    /// and map back.
    fn rotated_broadcast_token(&self, root: usize, value: u64) -> gmsim_gm::CollectiveToken {
        let n = self.group.len();
        let virt = (self.rank + n - root) % n;
        let rotated: Vec<GlobalPort> = (0..n).map(|v| self.group.member((v + root) % n)).collect();
        let schedule = nic_barrier::compile(Descriptor::Bcast { dim: 2 }, virt, &rotated);
        gmsim_gm::CollectiveToken::new(schedule).with_value(if self.rank == root {
            value
        } else {
            0
        })
    }

    /// Execute ops until the script blocks or finishes.
    fn step(&mut self, ctx: &mut HostCtx) {
        debug_assert_eq!(self.blocked, Blocked::No);
        loop {
            let Some(frame) = self.frames.last_mut() else {
                if self.stats.finished_at.is_none() {
                    self.stats.finished_at = Some(ctx.now);
                    ctx.note_after_work(NOTE_MPI_DONE);
                }
                return;
            };
            if frame.idx == frame.ops.len() {
                frame.iters_left -= 1;
                if frame.iters_left == 0 {
                    self.frames.pop();
                } else {
                    frame.idx = 0;
                }
                continue;
            }
            let op = frame.ops[frame.idx].clone();
            frame.idx += 1;
            match op {
                MpiOp::Compute(d) => {
                    ctx.compute(d);
                }
                MpiOp::Repeat { n, body } => {
                    if n > 0 && !body.is_empty() {
                        self.frames.push(Frame {
                            ops: body,
                            idx: 0,
                            iters_left: n,
                        });
                    }
                }
                MpiOp::Send { dst, len, tag } => {
                    ctx.compute(self.config.call_overhead);
                    self.stats.sends += 1;
                    ctx.send(self.endpoint(dst), len, user_tag(tag));
                }
                MpiOp::Recv { src, tag } => {
                    ctx.compute(self.config.call_overhead);
                    if self.take_inbox(src, tag) {
                        ctx.compute(self.config.recv_overhead);
                        self.stats.recvs += 1;
                    } else {
                        self.blocked = Blocked::Recv { src, tag };
                        return;
                    }
                }
                MpiOp::Barrier => {
                    ctx.compute(self.config.call_overhead);
                    match self.config.barrier {
                        BarrierBinding::NicPe => {
                            ctx.start_collective(self.group.pe_token(self.rank));
                            self.blocked = Blocked::NicCollective;
                            return;
                        }
                        BarrierBinding::NicGb { dim } => {
                            ctx.start_collective(self.group.gb_token(self.rank, dim));
                            self.blocked = Blocked::NicCollective;
                            return;
                        }
                        BarrierBinding::HostPe => {
                            let round = self.barrier_round;
                            self.barrier_round += 1;
                            self.hbar = Some(HostBarrier {
                                schedule: self.group.compile(Descriptor::Pe, self.rank),
                                pc: 0,
                                outstanding: None,
                                round,
                            });
                            if self.drive_hbar(ctx) {
                                self.stats.barriers += 1;
                            } else {
                                self.blocked = Blocked::HostBarrier;
                                return;
                            }
                        }
                    }
                }
                MpiOp::Bcast { root, value } => {
                    ctx.compute(self.config.call_overhead);
                    ctx.start_collective(self.rotated_broadcast_token(root, value));
                    self.blocked = Blocked::NicCollective;
                    return;
                }
                MpiOp::AllReduce { op, value } => {
                    ctx.compute(self.config.call_overhead);
                    ctx.start_collective(self.allreduce_token(op, value));
                    self.blocked = Blocked::NicCollective;
                    return;
                }
                MpiOp::Scan { op, value } => {
                    ctx.compute(self.config.call_overhead);
                    ctx.start_collective(self.group.scan_token(op, self.rank, value));
                    self.blocked = Blocked::NicCollective;
                    return;
                }
            }
        }
    }

    fn allreduce_token(&self, op: ReduceOp, value: u64) -> gmsim_gm::CollectiveToken {
        self.group.allreduce_token(op, self.rank, 2, value)
    }
}

impl HostProgram for MpiProcess {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        self.step(ctx);
    }

    fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
        match ev {
            GmEvent::Recv { src, tag, .. } => {
                ctx.provide_recv(1);
                let src_rank = self
                    .group
                    .rank_of(*src)
                    .expect("message from outside the group");
                if tag & HBAR_TAG != 0 {
                    let key = tag & 0xFFFF_FFFF;
                    *self.hbar_inbox.entry((src_rank, key)).or_default() += 1;
                    if self.blocked == Blocked::HostBarrier && self.drive_hbar(ctx) {
                        self.stats.barriers += 1;
                        self.blocked = Blocked::No;
                        self.step(ctx);
                    }
                } else {
                    let utag = (tag & 0xFFFF_FFFF) as u32;
                    *self.inbox.entry((src_rank, utag)).or_default() += 1;
                    if self.blocked
                        == (Blocked::Recv {
                            src: src_rank,
                            tag: utag,
                        })
                        && self.take_inbox(src_rank, utag)
                    {
                        ctx.compute(self.config.recv_overhead);
                        self.stats.recvs += 1;
                        self.blocked = Blocked::No;
                        self.step(ctx);
                    }
                }
            }
            GmEvent::BarrierComplete => {
                if self.blocked == Blocked::NicCollective {
                    self.stats.barriers += 1;
                    self.blocked = Blocked::No;
                    self.step(ctx);
                }
            }
            GmEvent::BroadcastComplete { value }
            | GmEvent::ReduceComplete { value }
            | GmEvent::ScanComplete { value } => {
                if self.blocked == Blocked::NicCollective {
                    self.stats.collectives += 1;
                    self.stats.last_value = *value;
                    self.blocked = Blocked::No;
                    self.step(ctx);
                }
            }
            GmEvent::Sent { .. } => {}
            // A dead peer means this process can never unblock; the testbed
            // surfaces it as a typed experiment error, not an MPI event.
            GmEvent::PeerUnreachable { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::script;

    #[test]
    fn frames_unwind_nested_repeats() {
        let program = script()
            .repeat(2, |b| b.compute_us(1).repeat(3, |i| i.compute_us(1)))
            .build();
        let group = BarrierGroup::one_per_node(1, 1);
        let mut p = MpiProcess::new(group, 0, MpiConfig::nic_based(), program);
        let mut ctx = HostCtx::new(SimTime::ZERO, gmsim_gm::NodeId(0), gmsim_gm::PortId(1));
        p.step(&mut ctx);
        assert!(p.stats.finished_at.is_some());
        // 2 * (1 + 3) = 8 compute actions + the completion note
        assert_eq!(ctx.into_actions().len(), 9);
    }

    #[test]
    fn recv_blocks_until_message() {
        let program = script().recv(1, 9).compute_us(5).build();
        let group = BarrierGroup::one_per_node(2, 1);
        let mut p = MpiProcess::new(group.clone(), 0, MpiConfig::nic_based(), program);
        let mut ctx = HostCtx::new(SimTime::ZERO, gmsim_gm::NodeId(0), gmsim_gm::PortId(1));
        p.step(&mut ctx);
        assert_eq!(p.blocked, Blocked::Recv { src: 1, tag: 9 });
        assert!(p.stats.finished_at.is_none());
        // the matching message unblocks and finishes the script
        let mut ctx = HostCtx::new(
            SimTime::from_us(50),
            gmsim_gm::NodeId(0),
            gmsim_gm::PortId(1),
        );
        p.on_event(
            &GmEvent::Recv {
                src: group.member(1),
                len: 8,
                tag: user_tag(9),
            },
            &mut ctx,
        );
        assert_eq!(p.blocked, Blocked::No);
        assert!(p.stats.finished_at.is_some());
        assert_eq!(p.stats.recvs, 1);
    }

    #[test]
    fn wrong_tag_does_not_unblock() {
        let program = script().recv(1, 9).build();
        let group = BarrierGroup::one_per_node(2, 1);
        let mut p = MpiProcess::new(group.clone(), 0, MpiConfig::nic_based(), program);
        let mut ctx = HostCtx::new(SimTime::ZERO, gmsim_gm::NodeId(0), gmsim_gm::PortId(1));
        p.step(&mut ctx);
        let mut ctx = HostCtx::new(
            SimTime::from_us(1),
            gmsim_gm::NodeId(0),
            gmsim_gm::PortId(1),
        );
        p.on_event(
            &GmEvent::Recv {
                src: group.member(1),
                len: 8,
                tag: user_tag(8), // different tag
            },
            &mut ctx,
        );
        assert_eq!(p.blocked, Blocked::Recv { src: 1, tag: 9 });
        // it is queued for a later recv, not lost
        assert_eq!(p.inbox.get(&(1, 8)), Some(&1));
    }

    #[test]
    fn tag_namespaces_do_not_collide() {
        assert_ne!(user_tag(0) & HBAR_TAG, HBAR_TAG);
        assert_ne!(hbar_tag(0, 1) & USER_TAG, USER_TAG);
        assert_eq!(user_tag(7) & 0xFFFF_FFFF, 7);
        // round 3, packet kind 1 → (3 << 8) | 1
        assert_eq!(hbar_tag(3, 1) & 0xFFFF_FFFF, 0x301);
    }
}
