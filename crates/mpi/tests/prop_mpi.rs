//! Randomized tests of the MPI layer: randomly generated *deadlock-free*
//! programs (SPMD scripts where every send has a matching receive and
//! collectives are uniform) always run to completion on the full
//! simulated cluster, for any binding and any start skew.

use gmsim_des::check::{forall, Gen};
use gmsim_des::{RunOutcome, SimTime};
use gmsim_gm::cluster::ClusterBuilder;
use gmsim_gm::GmConfig;
use gmsim_lanai::NicModel;
use gmsim_mpi::{
    script, BarrierBinding, Buf, MpiConfig, MpiOp, MpiProcess, ScriptBuilder, NOTE_MPI_DONE,
};
use nic_barrier::{BarrierExtension, BarrierGroup, ReduceOp};

/// One SPMD "statement" that is deadlock-free by construction.
#[derive(Debug, Clone)]
enum Stmt {
    /// Ring shift: everyone sends right, receives from left.
    RingShift { len: usize, tag: u32 },
    /// Everyone computes.
    Compute { us: u64 },
    /// Global barrier.
    Barrier,
    /// Broadcast from a root.
    Bcast { root_sel: usize },
    /// Allreduce.
    AllReduce,
}

fn stmt(g: &mut Gen) -> Stmt {
    match g.usize_in(0, 4) {
        0 => Stmt::RingShift {
            len: g.usize_in(1, 2047),
            tag: g.u32_in(0, 7),
        },
        1 => Stmt::Compute {
            us: g.u64_in(0, 99),
        },
        2 => Stmt::Barrier,
        3 => Stmt::Bcast {
            root_sel: g.usize_in(0, 63),
        },
        _ => Stmt::AllReduce,
    }
}

fn build_script(stmts: &[Stmt], rank: usize, n: usize) -> Vec<MpiOp> {
    let mut b: ScriptBuilder = script();
    for s in stmts {
        b = match s {
            Stmt::RingShift { len, tag } => {
                let right = (rank + 1) % n;
                let left = (rank + n - 1) % n;
                b.send(right, *len, *tag).recv(left, *tag)
            }
            Stmt::Compute { us } => b.compute_us(*us),
            Stmt::Barrier => b.barrier(),
            Stmt::Bcast { root_sel } => b.bcast(root_sel % n, Buf::u64s(1).with_fill(42)),
            Stmt::AllReduce => b.allreduce(ReduceOp::Max, Buf::u64s(1).with_fill(rank as u64)),
        };
    }
    b.build()
}

fn run(n: usize, stmts: &[Stmt], binding: BarrierBinding, skews: &[u64]) {
    let group = BarrierGroup::one_per_node(n, 1);
    let config = MpiConfig {
        barrier: binding,
        ..MpiConfig::nic_based()
    };
    let mut b = ClusterBuilder::new(n)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .extension(BarrierExtension::factory());
    for rank in 0..n {
        b = b.program(
            group.member(rank),
            Box::new(MpiProcess::new(
                group.clone(),
                rank,
                config,
                build_script(stmts, rank, n),
            )),
            SimTime::from_us(skews.get(rank).copied().unwrap_or(0)),
        );
    }
    let mut sim = b.build();
    assert_eq!(sim.run(), RunOutcome::Quiescent, "hung: {stmts:?}");
    let done = sim
        .world()
        .notes
        .iter()
        .filter(|nt| nt.tag == NOTE_MPI_DONE)
        .count();
    assert_eq!(done, n, "{stmts:?}");
}

#[test]
fn random_spmd_programs_complete() {
    forall(32, 0x3321_0001, |g| {
        let n = g.usize_in(2, 8);
        let stmts = g.vec_of(1, 11, stmt);
        let binding = match g.usize_in(0, 4) {
            0 => BarrierBinding::NicPe,
            1 => BarrierBinding::NicGb { dim: 2 },
            2 => BarrierBinding::NicDissemination { radix: 2 },
            3 => BarrierBinding::NicDissemination { radix: 3 },
            _ => BarrierBinding::HostPe,
        };
        let skews: Vec<u64> = (0..8).map(|_| g.u64_in(0, 299)).collect();
        run(n, &stmts, binding, &skews);
    });
}

/// Regression corners: same-tag back-to-back ring shifts (matching relies
/// on counting, not sets) and collective-heavy programs.
#[test]
fn corner_programs_complete() {
    let corners: Vec<Vec<Stmt>> = vec![
        vec![
            Stmt::RingShift { len: 8, tag: 0 },
            Stmt::RingShift { len: 8, tag: 0 },
            Stmt::RingShift { len: 8, tag: 0 },
        ],
        vec![Stmt::Barrier, Stmt::Barrier, Stmt::Barrier, Stmt::Barrier],
        vec![
            Stmt::Bcast { root_sel: 3 },
            Stmt::AllReduce,
            Stmt::Bcast { root_sel: 1 },
            Stmt::Barrier,
        ],
    ];
    for stmts in &corners {
        run(5, stmts, BarrierBinding::NicPe, &[50, 0, 10, 200, 5]);
        run(5, stmts, BarrierBinding::HostPe, &[0, 0, 0, 0, 99]);
    }
}
