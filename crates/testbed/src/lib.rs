//! Measurement harness for the barrier reproduction.
//!
//! The paper's methodology (§6): "we ran 100,000 barriers consecutively and
//! took the average latency". This crate packages that methodology as a
//! declarative [`BarrierExperiment`]: pick an algorithm, a cluster size, a
//! NIC model, and a round count; get back a [`Measurement`] with the mean
//! steady-state barrier latency in microseconds.
//!
//! Simulated time is noise-free, so hundreds of rounds reach the same
//! steady state the paper needed 100 000 wall-clock runs for — a dedicated
//! test (`experiment::tests::round_count_insensitive`) verifies the
//! insensitivity.
//!
//! [`sweep`] fans independent experiments out across OS threads through
//! the work-stealing [`SweepEngine`]; every simulation is self-contained,
//! so the parallelism is embarrassing and data-race-free by construction,
//! and results are bit-identical to a serial run regardless of worker
//! count.

#![warn(missing_docs)]

pub mod diagram;
pub mod engine;
pub mod experiment;
pub mod fuzzy;
pub mod sweep;
pub mod table;

pub use diagram::Diagram;
pub use engine::{cell_seed, SweepEngine};
pub use experiment::{
    Algorithm, BarrierExperiment, ExperimentError, Measurement, MultiTenantExperiment,
    MultiTenantMeasurement, Placement, TeamPlacement,
};
pub use fuzzy::FuzzyExperiment;
pub use gmsim_myrinet::{FabricSpec, RoutePolicy};
pub use nic_barrier::{Descriptor, TeamId};
pub use sweep::{best_gb_dim, run_all, run_all_with};
pub use table::Table;

/// Everything a typical experiment script needs, in one import.
///
/// ```
/// use gmsim_testbed::prelude::*;
///
/// let m = BarrierExperiment::new(4, Algorithm::Nic(Descriptor::Pe))
///     .rounds(30, 5)
///     .run()
///     .unwrap();
/// assert!(m.mean_us > 0.0);
/// ```
pub mod prelude {
    pub use crate::engine::{cell_seed, SweepEngine};
    pub use crate::experiment::{
        Algorithm, BarrierExperiment, ExperimentError, Measurement, MultiTenantExperiment,
        MultiTenantMeasurement, Placement, TeamPlacement,
    };
    pub use crate::fuzzy::FuzzyExperiment;
    pub use gmsim_des::{Counter, MetricSet, TraceRecord};
    pub use gmsim_lanai::NicModel;
    pub use gmsim_myrinet::{FabricSpec, FaultPlan, RoutePolicy};
    pub use nic_barrier::{BarrierCosts, Descriptor, TeamId};
}
