//! Declarative barrier experiments.

use gmsim_des::{Histogram, MetricSet, RunOutcome, SimRng, SimTime, Summary, TraceRecord, Tracer};
use gmsim_gm::cluster::{Cluster, ClusterBuilder};
use gmsim_gm::config::CollectiveWireMode;
use gmsim_gm::{GlobalPort, GmConfig, GmEvent, HostCtx, HostProgram};
use gmsim_lanai::NicModel;
use gmsim_myrinet::{FabricSpec, FaultPlan, RoutePolicy};
use nic_barrier::nic::{TURNAROUND_BINS, TURNAROUND_BIN_US};
use nic_barrier::programs::{decode_note, decode_team_note, MultiTeamBarrierLoop, NicBarrierLoop};
use nic_barrier::{
    BarrierCosts, BarrierExtension, BarrierGroup, Descriptor, DescriptorError, HostBarrierLoop,
    Team, TeamId,
};
use std::fmt;

use gmsim_des::Counter;

/// Which barrier implementation to measure: a collective algorithm
/// [`Descriptor`], interpreted either by the NIC firmware extension (the
/// paper's contribution) or at host level over plain sends (the baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// NIC-interpreted: one collective token, the firmware runs the
    /// compiled schedule.
    Nic(Descriptor),
    /// Host-interpreted: the same compiled schedule over ordinary GM
    /// point-to-point messages.
    Host(Descriptor),
}

impl Algorithm {
    /// Short display name.
    pub fn name(&self) -> String {
        let (side, desc) = match self {
            Algorithm::Nic(d) => ("NIC", d),
            Algorithm::Host(d) => ("host", d),
        };
        let base = match desc {
            Descriptor::Pe => format!("{side}-PE"),
            Descriptor::Gb { dim, .. } => format!("{side}-GB(d={dim})"),
            Descriptor::Dissemination { radix: 2, .. } => format!("{side}-dissem"),
            Descriptor::Dissemination { radix, .. } => format!("{side}-dissem(r={radix})"),
            Descriptor::Bcast { dim, .. } => format!("{side}-bcast(d={dim})"),
            Descriptor::Reduce { dim, .. } => format!("{side}-reduce(d={dim})"),
            Descriptor::Allreduce { dim, .. } => format!("{side}-allreduce(d={dim})"),
            Descriptor::Scan { .. } => format!("{side}-scan"),
            _ => format!("{side}-collective"),
        };
        let payload = desc.payload();
        if payload.is_empty() {
            base
        } else {
            format!("{base}+{}B", payload.bytes.get())
        }
    }

    /// True for the NIC-based variants.
    pub fn is_nic(&self) -> bool {
        matches!(self, Algorithm::Nic(_))
    }

    /// The algorithm descriptor being run.
    pub fn descriptor(&self) -> Descriptor {
        match self {
            Algorithm::Nic(d) | Algorithm::Host(d) => *d,
        }
    }
}

/// How processes map onto nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// One process per node (the paper's testbed).
    OnePerNode,
    /// `procs_per_node` processes packed per node on consecutive ports —
    /// exercises multiple concurrent endpoints and the §3.4 same-NIC path.
    Packed {
        /// Processes on each node.
        procs_per_node: usize,
    },
}

/// Why an experiment could not produce a [`Measurement`].
///
/// Configuration errors are caught by validation before the simulation is
/// built; [`ExperimentError::Hung`] and [`ExperimentError::IncompleteRound`]
/// are runtime failures of the barrier protocol itself (a genuine bug, or a
/// fault plan harsh enough to defeat GM's retransmission).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExperimentError {
    /// `procs == 0`: an empty barrier group has no meaning.
    ZeroProcs,
    /// `rounds == 0`: nothing to measure.
    ZeroRounds,
    /// Warmup must leave at least one measured round.
    WarmupNotBelowRounds {
        /// Configured total rounds.
        rounds: u64,
        /// Configured warmup rounds (must be `< rounds`).
        warmup: u64,
    },
    /// A tree algorithm (`Gb`, `Bcast`, `Reduce`, `Allreduce`) with arity 0.
    ZeroDim,
    /// A dissemination barrier with radix below 2 (radix 0 and 1 schedules
    /// send nothing and can never synchronize).
    InvalidRadix {
        /// The offending radix.
        radix: usize,
    },
    /// A fault probability outside `[0, 1]` (or NaN).
    InvalidProbability {
        /// Which probability (`"drop"` or `"corrupt"`).
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A send-token pool override of zero: a port with no send tokens can
    /// never post a message, so the run would hang by construction.
    ZeroSendTokens,
    /// Packed placement with `procs_per_node` outside `1..=7` (GM exposes
    /// 8 ports per NIC and port 0 is reserved).
    InvalidPlacement {
        /// The offending processes-per-node count.
        procs_per_node: usize,
    },
    /// The simulation stopped without draining: the barrier hung.
    Hung {
        /// How the run loop stopped.
        outcome: RunOutcome,
    },
    /// A NIC exhausted its retransmit budget against an unresponsive peer
    /// and abandoned the connection (the fault plan severed the link for
    /// longer than GM's backoff schedule tolerates).
    PeerUnreachable {
        /// Node whose firmware gave up.
        node: u32,
        /// The peer it could not reach.
        peer: u32,
    },
    /// The team-attributed form of [`ExperimentError::PeerUnreachable`]: in
    /// a multi-tenant run the failed node is reported as a member of the
    /// first team it belongs to, so the caller knows which communicator's
    /// barrier can never complete.
    TeamPeerUnreachable {
        /// The affected team.
        team: TeamId,
        /// The failed member's rank within that team.
        rank: u32,
    },
    /// A multi-tenant run placed no teams, or sizes outside `2..=nodes`.
    InvalidTeamSizes {
        /// Requested minimum team size.
        min: usize,
        /// Requested maximum team size.
        max: usize,
        /// Available nodes.
        nodes: usize,
    },
    /// An explicit fabric too small for the cluster: the spec attaches
    /// fewer hosts than the experiment needs nodes.
    FabricTooSmall {
        /// Hosts the fabric can attach.
        capacity: usize,
        /// Nodes the experiment needs.
        nodes: usize,
    },
    /// A round completed on fewer processes than participate.
    IncompleteRound {
        /// The deficient round.
        round: u64,
        /// Completions observed.
        completed: u64,
        /// Completions expected (`procs`).
        expected: u64,
    },
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::ZeroProcs => write!(f, "experiment has zero processes"),
            ExperimentError::ZeroRounds => write!(f, "experiment has zero rounds"),
            ExperimentError::WarmupNotBelowRounds { rounds, warmup } => write!(
                f,
                "warmup ({warmup}) must be below rounds ({rounds}) to leave measured rounds"
            ),
            ExperimentError::ZeroDim => write!(f, "tree algorithm with arity 0"),
            ExperimentError::InvalidRadix { radix } => {
                write!(f, "dissemination barrier with radix {radix} (need >= 2)")
            }
            ExperimentError::InvalidProbability { what, value } => {
                write!(f, "{what} probability {value} outside [0, 1]")
            }
            ExperimentError::ZeroSendTokens => {
                write!(f, "send-token pool override of 0 (a port could never send)")
            }
            ExperimentError::InvalidPlacement { procs_per_node } => write!(
                f,
                "packed placement with {procs_per_node} procs/node (GM supports 1..=7)"
            ),
            ExperimentError::Hung { outcome } => {
                write!(f, "simulation did not drain: {outcome:?}")
            }
            ExperimentError::PeerUnreachable { node, peer } => write!(
                f,
                "node {node} exhausted its retransmit budget against node {peer}"
            ),
            ExperimentError::TeamPeerUnreachable { team, rank } => write!(
                f,
                "rank {rank} of team {team:?} became unreachable (retransmit budget exhausted)"
            ),
            ExperimentError::InvalidTeamSizes { min, max, nodes } => write!(
                f,
                "team sizes {min}..={max} invalid for {nodes} nodes (need 2 <= min <= max <= nodes)"
            ),
            ExperimentError::FabricTooSmall { capacity, nodes } => write!(
                f,
                "fabric attaches {capacity} hosts but the cluster needs {nodes}"
            ),
            ExperimentError::IncompleteRound {
                round,
                completed,
                expected,
            } => write!(
                f,
                "round {round} completed on {completed}/{expected} processes"
            ),
        }
    }
}

impl std::error::Error for ExperimentError {}

/// One barrier-latency experiment.
///
/// ```
/// use gmsim_testbed::prelude::*;
///
/// // The paper's headline cell: 16 nodes, NIC-based PE, LANai 4.3.
/// let m = BarrierExperiment::new(16, Algorithm::Nic(Descriptor::Pe))
///     .rounds(60, 10)
///     .run()
///     .unwrap();
/// assert!((m.mean_us - 102.14).abs() / 102.14 < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarrierExperiment {
    /// Number of participating processes.
    pub procs: usize,
    /// Implementation under test.
    pub algorithm: Algorithm,
    /// NIC hardware model.
    pub nic: NicModel,
    /// Process placement.
    pub placement: Placement,
    /// Consecutive barriers to run.
    pub rounds: u64,
    /// Leading rounds excluded from the mean (start-up transient).
    pub warmup: u64,
    /// Host-overhead multiplier modelling an extra software layer (§2.2's
    /// MPI prediction); 1.0 = raw GM.
    pub layer_factor: f64,
    /// Random start skew bound in µs (0 = synchronized start).
    pub max_skew_us: u64,
    /// RNG seed for skew (and fault injection, when enabled).
    pub seed: u64,
    /// How barrier packets travel (reliable stream vs the paper's
    /// unreliable prototype — the reliability-overhead ablation).
    pub wire: CollectiveWireMode,
    /// §3.4 same-NIC optimization (ablation knob).
    pub same_nic_opt: bool,
    /// Firmware extension cost table (ablation knob).
    pub costs: BarrierCosts,
    /// Wire fault injection ([`FaultPlan::NONE`] = perfect links).
    pub fault_plan: FaultPlan,
    /// Send-token pool each port opens with (`None` = GM's default of 16).
    /// Tokens only return when the data packet is ACKed, so a deep host
    /// schedule under drop faults can legitimately hold more than 16
    /// unacked sends while a stuck packet waits out its retransmit
    /// timeout; a real application facing that opens its port with a
    /// deeper pool, which is what this knob models.
    pub send_tokens: Option<u32>,
    /// Structured-trace ring capacity (`None` = tracing disabled).
    pub trace_capacity: Option<usize>,
    /// The team label the barrier runs under. [`TeamId::GLOBAL`] (the
    /// default) is the classic whole-cluster barrier; any other id runs the
    /// identical schedule as that team — in an otherwise idle cluster the
    /// latencies must be bit-identical (the refactor's safety property).
    pub team: TeamId,
    /// Worker threads for the conservative parallel engine; `<= 1` runs the
    /// classic serial scheduler. Any value produces bit-identical
    /// measurements (DESIGN.md §15) — this knob only trades wall-clock
    /// time, which is what makes 2048- and 4096-node runs practical.
    pub parallel: usize,
    /// The fabric the cluster is cabled into. [`FabricSpec::Auto`] (the
    /// default) scales with the node count exactly as before this knob
    /// existed: one crossbar ≤ 16 hosts, then a non-blocking Clos.
    pub fabric: FabricSpec,
    /// How worms are routed across the fabric's spines (DESIGN.md §18).
    pub routing: RoutePolicy,
}

impl BarrierExperiment {
    /// A default experiment: `procs` processes, one per node, on LANai 4.3.
    pub fn new(procs: usize, algorithm: Algorithm) -> Self {
        BarrierExperiment {
            procs,
            algorithm,
            nic: NicModel::LANAI_4_3,
            placement: Placement::OnePerNode,
            rounds: 220,
            warmup: 20,
            layer_factor: 1.0,
            max_skew_us: 0,
            seed: 42,
            wire: CollectiveWireMode::Reliable,
            same_nic_opt: true,
            costs: BarrierCosts::GM_1_2_3,
            fault_plan: FaultPlan::NONE,
            send_tokens: None,
            trace_capacity: None,
            team: TeamId::GLOBAL,
            parallel: 1,
            fabric: FabricSpec::Auto,
            routing: RoutePolicy::Dispersed,
        }
    }

    /// Cable the cluster into an explicit fabric with a routing policy
    /// (the default is the auto-scaled fabric with dispersed routes).
    #[must_use]
    pub fn fabric(mut self, fabric: FabricSpec, routing: RoutePolicy) -> Self {
        self.fabric = fabric;
        self.routing = routing;
        self
    }

    /// Run the simulation on `threads` worker threads (the conservative
    /// parallel engine); `<= 1` keeps the serial scheduler. Results are
    /// bit-identical either way.
    #[must_use]
    pub fn parallel(mut self, threads: usize) -> Self {
        self.parallel = threads;
        self
    }

    /// Run the barrier under a team label other than the global one.
    #[must_use]
    pub fn team(mut self, team: TeamId) -> Self {
        self.team = team;
        self
    }

    /// Override the collective wire mode.
    #[must_use]
    pub fn wire(mut self, wire: CollectiveWireMode) -> Self {
        self.wire = wire;
        self
    }

    /// Enable/disable the §3.4 same-NIC optimization.
    #[must_use]
    pub fn same_nic_opt(mut self, on: bool) -> Self {
        self.same_nic_opt = on;
        self
    }

    /// Override the firmware extension cost table.
    #[must_use]
    pub fn costs(mut self, costs: BarrierCosts) -> Self {
        self.costs = costs;
        self
    }

    /// Override the NIC model.
    #[must_use]
    pub fn nic(mut self, nic: NicModel) -> Self {
        self.nic = nic;
        self
    }

    /// Override rounds/warmup.
    #[must_use]
    pub fn rounds(mut self, rounds: u64, warmup: u64) -> Self {
        self.rounds = rounds;
        self.warmup = warmup;
        self
    }

    /// Override the placement.
    #[must_use]
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Model an additional host software layer.
    #[must_use]
    pub fn layer(mut self, factor: f64) -> Self {
        self.layer_factor = factor;
        self
    }

    /// Add random start skew.
    #[must_use]
    pub fn skew(mut self, max_us: u64, seed: u64) -> Self {
        self.max_skew_us = max_us;
        self.seed = seed;
        self
    }

    /// Inject wire faults. GM's go-back-N reliability layer must absorb
    /// them; the seeded fault stream keeps runs reproducible.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Open every port with `tokens` send tokens instead of GM's default.
    /// See the [`BarrierExperiment::send_tokens`] field for when a deeper
    /// pool is needed.
    #[must_use]
    pub fn send_token_pool(mut self, tokens: u32) -> Self {
        self.send_tokens = Some(tokens);
        self
    }

    /// Record a structured event trace, keeping the most recent `capacity`
    /// records. The trace rides back on [`Measurement::trace`].
    #[must_use]
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Check the configuration without running anything.
    pub fn validate(&self) -> Result<(), ExperimentError> {
        if self.procs == 0 {
            return Err(ExperimentError::ZeroProcs);
        }
        if self.rounds == 0 {
            return Err(ExperimentError::ZeroRounds);
        }
        if self.warmup + 1 >= self.rounds {
            return Err(ExperimentError::WarmupNotBelowRounds {
                rounds: self.rounds,
                warmup: self.warmup,
            });
        }
        // Descriptors built through the named constructors are always
        // valid; re-checking here is defense in depth for descriptors
        // deserialized or constructed inside the core crate.
        match self.algorithm.descriptor().validate() {
            Ok(()) => {}
            Err(DescriptorError::ZeroDim) => return Err(ExperimentError::ZeroDim),
            Err(DescriptorError::InvalidRadix { radix }) => {
                return Err(ExperimentError::InvalidRadix { radix })
            }
        }
        for (what, value) in [
            ("drop", self.fault_plan.drop_probability),
            ("corrupt", self.fault_plan.corrupt_probability),
            ("duplicate", self.fault_plan.duplicate_probability),
            ("reorder", self.fault_plan.reorder_probability),
        ] {
            if !(0.0..=1.0).contains(&value) {
                return Err(ExperimentError::InvalidProbability { what, value });
            }
        }
        if let Placement::Packed { procs_per_node } = self.placement {
            if !(1..=7).contains(&procs_per_node) {
                return Err(ExperimentError::InvalidPlacement { procs_per_node });
            }
        }
        if self.send_tokens == Some(0) {
            return Err(ExperimentError::ZeroSendTokens);
        }
        let nodes = self.node_count();
        if self.fabric.host_capacity(nodes) < nodes {
            return Err(ExperimentError::FabricTooSmall {
                capacity: self.fabric.host_capacity(nodes),
                nodes,
            });
        }
        Ok(())
    }

    /// The endpoint group this experiment synchronizes.
    pub fn group(&self) -> BarrierGroup {
        match self.placement {
            Placement::OnePerNode => BarrierGroup::one_per_node(self.procs, 1),
            Placement::Packed { procs_per_node } => {
                assert!((1..=7).contains(&procs_per_node));
                let members = (0..self.procs)
                    .map(|i| GlobalPort::new(i / procs_per_node, 1 + (i % procs_per_node) as u8))
                    .collect();
                BarrierGroup::new(members)
            }
        }
    }

    fn node_count(&self) -> usize {
        match self.placement {
            Placement::OnePerNode => self.procs,
            Placement::Packed { procs_per_node } => self.procs.div_ceil(procs_per_node),
        }
    }

    fn make_program(&self, group: &BarrierGroup, rank: usize) -> Box<dyn HostProgram> {
        let team = Team::new(self.team, group.clone());
        match self.algorithm {
            Algorithm::Nic(desc) => {
                Box::new(NicBarrierLoop::for_team(&team, rank, desc, self.rounds))
            }
            Algorithm::Host(desc) => {
                Box::new(HostBarrierLoop::for_team(&team, rank, desc, self.rounds))
            }
        }
    }

    /// Run the experiment to completion and aggregate the measurement.
    ///
    /// # Errors
    /// Configuration errors ([`BarrierExperiment::validate`]) are returned
    /// before anything runs; [`ExperimentError::Hung`] and
    /// [`ExperimentError::IncompleteRound`] report a simulation that
    /// failed to synchronize.
    pub fn run(&self) -> Result<Measurement, ExperimentError> {
        self.validate()?;
        let group = self.group();
        let mut config = GmConfig::paper_host(self.nic).with_layer_overhead(self.layer_factor);
        config.collective_wire = self.wire;
        config.same_nic_optimization = self.same_nic_opt;
        if let Some(tokens) = self.send_tokens {
            config.send_tokens_per_port = tokens;
        }
        let nodes = self.node_count();
        // Auto: one crossbar for paper-sized clusters, a two-level Clos
        // beyond 16 hosts — shared with the analytic model's fabric
        // assumptions. Explicit specs cable exactly what they say.
        let topology = self.fabric.build(nodes, self.routing);
        let mut builder = ClusterBuilder::new(nodes)
            .config(config)
            .topology(topology)
            .extension(BarrierExtension::factory_with_costs(self.costs));
        if !self.fault_plan.is_none() {
            builder = builder.faults(self.fault_plan, self.seed);
        }
        if let Some(capacity) = self.trace_capacity {
            builder = builder.tracer(Tracer::bounded(capacity));
        }
        let mut rng = SimRng::new(self.seed);
        for rank in 0..self.procs {
            let start = if self.max_skew_us == 0 {
                SimTime::ZERO
            } else {
                SimTime::from_us(rng.below(self.max_skew_us + 1))
            };
            builder = builder.program(group.member(rank), self.make_program(&group, rank), start);
        }
        let (outcome, events, cluster) = run_cluster(builder, self.parallel);
        if outcome != RunOutcome::Quiescent {
            return Err(ExperimentError::Hung { outcome });
        }

        // A dead connection is a stronger diagnosis than an incomplete
        // round: the firmware *reported* giving up, so surface that first.
        for (node, n) in cluster.nodes.iter().enumerate() {
            if let Some(conn) = n.mcp.core.connections().find(|c| c.is_dead()) {
                return Err(ExperimentError::PeerUnreachable {
                    node: node as u32,
                    peer: conn.peer().0 as u32,
                });
            }
        }

        // A round completes when its *last* participant's completion note
        // lands; consecutive-barrier latency is the gap between rounds.
        let mut round_done = vec![SimTime::ZERO; self.rounds as usize];
        let mut counts = vec![0u64; self.rounds as usize];
        for note in &cluster.notes {
            if let Some(round) = decode_note(note.tag) {
                let r = round as usize;
                round_done[r] = round_done[r].max(note.at);
                counts[r] += 1;
            }
        }
        for (r, &c) in counts.iter().enumerate() {
            if c != self.procs as u64 {
                return Err(ExperimentError::IncompleteRound {
                    round: r as u64,
                    completed: c,
                    expected: self.procs as u64,
                });
            }
        }
        let mut per_round = Summary::new();
        for r in (self.warmup as usize + 1)..self.rounds as usize {
            per_round.record((round_done[r] - round_done[r - 1]).as_us_f64());
        }
        let span = round_done[self.rounds as usize - 1] - round_done[self.warmup as usize];
        let measured_rounds = self.rounds - self.warmup - 1;
        let (metrics, nic_turnaround) = collect_metrics(&cluster);
        Ok(Measurement {
            mean_us: span.as_us_f64() / measured_rounds as f64,
            first_round_us: round_done[0].as_us_f64(),
            per_round,
            events,
            metrics,
            nic_turnaround,
            trace: cluster.tracer.snapshot(),
        })
    }
}

/// Build and run the assembled cluster on the requested engine: the serial
/// scheduler for `threads <= 1`, the conservative parallel engine
/// otherwise. Both return identical worlds — the choice is wall-clock only.
pub(crate) fn run_cluster(builder: ClusterBuilder, threads: usize) -> (RunOutcome, u64, Cluster) {
    if threads > 1 {
        let mut sim = builder.build_parallel(threads);
        let outcome = sim.run();
        (outcome, sim.events_fired(), sim.into_world())
    } else {
        let mut sim = builder.build();
        let outcome = sim.run();
        (outcome, sim.events_fired(), sim.into_world())
    }
}

/// Aggregate the cluster's per-component statistics into one [`MetricSet`]
/// plus the merged per-packet NIC-turnaround histogram. Purely post-run:
/// nothing here touches the simulation hot path.
pub(crate) fn collect_metrics(cluster: &Cluster) -> (MetricSet, Histogram) {
    let mut m = MetricSet::new();
    let fabric = cluster.fabric.stats();
    m.add(Counter::PacketsSent, fabric.sends);
    m.add(Counter::PacketsDropped, fabric.drops);
    m.add(Counter::PacketsCorrupted, fabric.corruptions);
    m.add(Counter::DupRx, fabric.duplicates);
    m.add(Counter::ReorderRx, fabric.reorders);
    let mut turnaround = Histogram::new(TURNAROUND_BIN_US, TURNAROUND_BINS);
    // Team counters aggregate differently from plain sums: the peak is a
    // max across NICs and the team count is the number of *distinct* ids.
    let mut concurrent_peak = 0u64;
    let mut teams: Vec<TeamId> = Vec::new();
    for node in &cluster.nodes {
        let stats = &node.mcp.core.stats;
        m.add(Counter::PacketsRetransmitted, stats.retx);
        m.add(Counter::AcksSent, stats.ack_tx);
        m.add(Counter::NacksSent, stats.nack_tx);
        m.add(Counter::CrcDrops, stats.crc_drops);
        m.add(Counter::DupDrops, stats.dup_drops);
        m.add(Counter::RtoBackoffs, stats.rto_backoffs);
        m.add(Counter::TimerCancels, stats.timer_cancels);
        m.add(Counter::GaveUp, stats.gave_up);
        m.add(Counter::CompletionDmas, stats.host_events);
        m.add(
            Counter::FirmwareCycles,
            node.mcp.core.hw.cpu.executed_cycles(),
        );
        m.add(Counter::SdmaBytes, node.mcp.core.hw.sdma.bytes());
        m.add(Counter::RdmaBytes, node.mcp.core.hw.rdma.bytes());
        m.add(Counter::HostSends, node.host.stats.sends);
        m.add(Counter::HostEvents, node.host.stats.events);
        if let Some(ext) = node.mcp.ext().as_any().downcast_ref::<BarrierExtension>() {
            let b = &ext.stats;
            m.add(Counter::LocalFlags, b.local_flags);
            m.add(Counter::BarrierCompletions, b.completions);
            m.add(Counter::RejectsSent, b.rejects_sent);
            m.add(Counter::BarrierResends, b.resends);
            m.add(Counter::CrossTeamRejects, b.cross_team_rejects);
            concurrent_peak = concurrent_peak.max(b.concurrent_peak);
            teams.extend_from_slice(ext.teams_seen());
            turnaround.merge(ext.turnaround());
        }
    }
    teams.sort_unstable();
    teams.dedup();
    m.add(Counter::TeamsCreated, teams.len() as u64);
    m.add(Counter::ConcurrentPeak, concurrent_peak);
    (m, turnaround)
}

/// The result of one experiment.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Mean steady-state barrier latency, µs (the paper's reported metric).
    pub mean_us: f64,
    /// Completion time of the very first barrier (one-shot latency from a
    /// synchronized cold start), µs.
    pub first_round_us: f64,
    /// Distribution of individual round gaps.
    pub per_round: Summary,
    /// Simulation events fired while the experiment ran.
    pub events: u64,
    /// Aggregated counters across the fabric, every NIC and every host.
    pub metrics: MetricSet,
    /// Per-packet NIC turnaround (wire arrival → firmware idle), µs,
    /// merged across all NICs. Empty for host-interpreted runs.
    pub nic_turnaround: Histogram,
    /// Structured event trace (empty unless
    /// [`BarrierExperiment::trace`] enabled it).
    pub trace: Vec<TraceRecord>,
}

/// Where one team landed: its id and the nodes hosting its members, in
/// team-rank order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TeamPlacement {
    /// The team's cluster-unique id.
    pub id: TeamId,
    /// Member nodes in rank order (one process per node, port 1).
    pub members: Vec<usize>,
}

/// Background point-to-point load: a fixed budget of messages to one peer,
/// paced by `Sent` completions so the NIC always has exactly one background
/// send in flight. Runs on its own port next to the barrier jobs.
struct BackgroundTraffic {
    peer: GlobalPort,
    remaining: u64,
    expected: u32,
    len: usize,
}

/// Tag background messages so they never collide with anything meaningful.
const BACKGROUND_TAG: u64 = 0xB0 << 32;

impl HostProgram for BackgroundTraffic {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        ctx.provide_recv(self.expected);
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_notify(self.peer, self.len, BACKGROUND_TAG);
        }
    }

    fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
        if matches!(ev, GmEvent::Sent { .. }) && self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_notify(self.peer, self.len, BACKGROUND_TAG);
        }
    }
}

/// A multi-job driver: places `teams` teams of mixed sizes across the
/// cluster and runs their barriers *concurrently*, optionally under
/// background point-to-point traffic — the multi-tenant workload the
/// per-team NIC state exists for. Teams overlap freely: one node typically
/// hosts several teams' members on the same port, so their runs interleave
/// inside one firmware extension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiTenantExperiment {
    /// Cluster size in nodes.
    pub nodes: usize,
    /// Number of concurrent teams.
    pub teams: usize,
    /// Smallest team size (inclusive).
    pub min_team: usize,
    /// Largest team size (inclusive).
    pub max_team: usize,
    /// Barrier rounds per team.
    pub rounds: u64,
    /// Leading rounds excluded from the statistics.
    pub warmup: u64,
    /// Seed for placement (and the skewless deterministic schedule).
    pub seed: u64,
    /// Run background point-to-point traffic on a second port per node.
    pub background: bool,
    /// Background messages each node sends to its ring neighbor.
    pub background_messages: u64,
    /// NIC hardware model.
    pub nic: NicModel,
    /// Firmware extension cost table.
    pub costs: BarrierCosts,
    /// Worker threads for the parallel engine (`<= 1` = serial).
    pub parallel: usize,
}

impl MultiTenantExperiment {
    /// `teams` teams of 2..=4 members over `nodes` nodes, LANai 4.3.
    pub fn new(nodes: usize, teams: usize) -> Self {
        MultiTenantExperiment {
            nodes,
            teams,
            min_team: 2,
            max_team: 4.min(nodes),
            rounds: 60,
            warmup: 10,
            seed: 42,
            background: false,
            background_messages: 200,
            nic: NicModel::LANAI_4_3,
            costs: BarrierCosts::GM_1_2_3,
            parallel: 1,
        }
    }

    /// Run on `threads` worker threads (bit-identical results; wall-clock
    /// only).
    #[must_use]
    pub fn parallel(mut self, threads: usize) -> Self {
        self.parallel = threads;
        self
    }

    /// Override the team-size range (inclusive).
    #[must_use]
    pub fn team_sizes(mut self, min: usize, max: usize) -> Self {
        self.min_team = min;
        self.max_team = max;
        self
    }

    /// Override rounds/warmup.
    #[must_use]
    pub fn rounds(mut self, rounds: u64, warmup: u64) -> Self {
        self.rounds = rounds;
        self.warmup = warmup;
        self
    }

    /// Override the placement seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable/disable background point-to-point traffic.
    #[must_use]
    pub fn background(mut self, on: bool) -> Self {
        self.background = on;
        self
    }

    /// Override the NIC model.
    #[must_use]
    pub fn nic(mut self, nic: NicModel) -> Self {
        self.nic = nic;
        self
    }

    /// Check the configuration without running anything.
    pub fn validate(&self) -> Result<(), ExperimentError> {
        if self.nodes == 0 || self.teams == 0 {
            return Err(ExperimentError::ZeroProcs);
        }
        if self.rounds == 0 {
            return Err(ExperimentError::ZeroRounds);
        }
        if self.warmup + 1 >= self.rounds {
            return Err(ExperimentError::WarmupNotBelowRounds {
                rounds: self.rounds,
                warmup: self.warmup,
            });
        }
        if self.min_team < 2 || self.min_team > self.max_team || self.max_team > self.nodes {
            return Err(ExperimentError::InvalidTeamSizes {
                min: self.min_team,
                max: self.max_team,
                nodes: self.nodes,
            });
        }
        Ok(())
    }

    /// The deterministic placement this experiment runs: team `i` gets id
    /// `TeamId(1 + i)` and a seeded random subset of nodes.
    pub fn placement(&self) -> Vec<TeamPlacement> {
        let mut rng = SimRng::new(self.seed ^ 0x7EA5);
        let mut scratch: Vec<usize> = (0..self.nodes).collect();
        let span = (self.max_team - self.min_team + 1) as u64;
        (0..self.teams)
            .map(|i| {
                let size = self.min_team + rng.below(span) as usize;
                // Partial Fisher–Yates: the first `size` entries become a
                // uniform random `size`-subset of the nodes.
                for k in 0..size {
                    let j = k + rng.below((self.nodes - k) as u64) as usize;
                    scratch.swap(k, j);
                }
                let mut members = scratch[..size].to_vec();
                members.sort_unstable();
                TeamPlacement {
                    id: TeamId(1 + i as u32),
                    members,
                }
            })
            .collect()
    }

    /// Run every team's barrier loop concurrently and aggregate per-team
    /// latencies.
    ///
    /// # Errors
    /// Configuration errors are returned before anything runs;
    /// [`ExperimentError::Hung`], [`ExperimentError::TeamPeerUnreachable`]
    /// and [`ExperimentError::IncompleteRound`] report runtime failures.
    pub fn run(&self) -> Result<MultiTenantMeasurement, ExperimentError> {
        self.validate()?;
        let placements = self.placement();
        let config = GmConfig::paper_host(self.nic);
        let topology = gmsim_myrinet::TopologyBuilder::for_cluster(self.nodes);
        let mut builder = ClusterBuilder::new(self.nodes)
            .config(config)
            .topology(topology)
            .extension(BarrierExtension::factory_with_costs(self.costs));

        // One MultiTeamBarrierLoop per node drives all of that node's team
        // memberships on port 1 — overlapping teams share the extension.
        let mut loops: Vec<MultiTeamBarrierLoop> = (0..self.nodes)
            .map(|_| MultiTeamBarrierLoop::new())
            .collect();
        for placement in &placements {
            let group = BarrierGroup::new(
                placement
                    .members
                    .iter()
                    .map(|&n| GlobalPort::new(n, 1))
                    .collect(),
            );
            let team = Team::new(placement.id, group);
            for (rank, &node) in placement.members.iter().enumerate() {
                loops[node].push(&team, rank, Descriptor::Pe, self.rounds);
            }
        }
        for (node, barrier_loop) in loops.into_iter().enumerate() {
            if !barrier_loop.is_empty() {
                builder = builder.program(
                    GlobalPort::new(node, 1),
                    Box::new(barrier_loop),
                    SimTime::ZERO,
                );
            }
        }
        if self.background && self.nodes > 1 {
            for node in 0..self.nodes {
                let traffic = BackgroundTraffic {
                    peer: GlobalPort::new((node + 1) % self.nodes, 2),
                    remaining: self.background_messages,
                    expected: self.background_messages as u32,
                    len: 512,
                };
                builder =
                    builder.program(GlobalPort::new(node, 2), Box::new(traffic), SimTime::ZERO);
            }
        }

        let (outcome, events, cluster) = run_cluster(builder, self.parallel);
        if outcome != RunOutcome::Quiescent {
            return Err(ExperimentError::Hung { outcome });
        }

        for (node, n) in cluster.nodes.iter().enumerate() {
            if let Some(conn) = n.mcp.core.connections().find(|c| c.is_dead()) {
                // Attribute the failure to the first team the node serves.
                for placement in &placements {
                    if let Some(rank) = placement.members.iter().position(|&m| m == node) {
                        return Err(ExperimentError::TeamPeerUnreachable {
                            team: placement.id,
                            rank: rank as u32,
                        });
                    }
                }
                return Err(ExperimentError::PeerUnreachable {
                    node: node as u32,
                    peer: conn.peer().0 as u32,
                });
            }
        }

        // Per-team round completion: a team's round is done when its last
        // member's note lands; the gap between rounds is that team's
        // consecutive-barrier latency under contention.
        let rounds = self.rounds as usize;
        let mut round_done = vec![vec![SimTime::ZERO; rounds]; self.teams];
        let mut counts = vec![vec![0u64; rounds]; self.teams];
        for note in &cluster.notes {
            if let Some((team, round)) = decode_team_note(note.tag) {
                let t = (team.0 - 1) as usize;
                let r = round as usize;
                round_done[t][r] = round_done[t][r].max(note.at);
                counts[t][r] += 1;
            }
        }
        let mut per_team_mean_us = Vec::with_capacity(self.teams);
        let mut gaps: Vec<f64> = Vec::new();
        for (t, placement) in placements.iter().enumerate() {
            let expected = placement.members.len() as u64;
            for (r, &c) in counts[t].iter().enumerate() {
                if c != expected {
                    return Err(ExperimentError::IncompleteRound {
                        round: r as u64,
                        completed: c,
                        expected,
                    });
                }
            }
            let mut team_sum = 0.0;
            let mut team_rounds = 0u64;
            for r in (self.warmup as usize + 1)..rounds {
                let gap = (round_done[t][r] - round_done[t][r - 1]).as_us_f64();
                gaps.push(gap);
                team_sum += gap;
                team_rounds += 1;
            }
            per_team_mean_us.push(team_sum / team_rounds as f64);
        }
        gaps.sort_unstable_by(|a, b| a.partial_cmp(b).expect("gap is never NaN"));
        let mean_us = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let p99_us = gaps[((gaps.len() - 1) as f64 * 0.99).ceil() as usize];
        let (metrics, _) = collect_metrics(&cluster);
        Ok(MultiTenantMeasurement {
            nodes: self.nodes,
            teams: self.teams,
            mean_us,
            p99_us,
            per_team_mean_us,
            events,
            metrics,
        })
    }
}

/// The result of one multi-tenant run.
#[derive(Debug, Clone)]
pub struct MultiTenantMeasurement {
    /// Cluster size in nodes.
    pub nodes: usize,
    /// Concurrent teams measured.
    pub teams: usize,
    /// Mean steady-state barrier latency across every team's rounds, µs.
    pub mean_us: f64,
    /// 99th-percentile round latency across every team's rounds, µs.
    pub p99_us: f64,
    /// Each team's own mean latency, µs (index = team id - 1).
    pub per_team_mean_us: Vec<f64>,
    /// Simulation events fired.
    pub events: u64,
    /// Aggregated cluster counters, including the team counters
    /// (`TeamsCreated`, `ConcurrentPeak`, `CrossTeamRejects`).
    pub metrics: MetricSet,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(procs: usize, algorithm: Algorithm) -> BarrierExperiment {
        BarrierExperiment::new(procs, algorithm).rounds(60, 10)
    }

    #[test]
    fn nic_pe_two_nodes_runs() {
        let m = quick(2, Algorithm::Nic(Descriptor::Pe)).run().unwrap();
        assert!(m.mean_us > 10.0 && m.mean_us < 200.0, "{}", m.mean_us);
    }

    #[test]
    fn send_token_pool_override_is_validated_and_benign() {
        assert_eq!(
            quick(4, Algorithm::Host(Descriptor::Pe))
                .send_token_pool(0)
                .validate(),
            Err(ExperimentError::ZeroSendTokens)
        );
        // A deeper pool must not change a fault-free measurement: tokens
        // only bound *outstanding* sends, and a clean run never backs up.
        let base = quick(8, Algorithm::Host(Descriptor::Pe)).run().unwrap();
        let deep = quick(8, Algorithm::Host(Descriptor::Pe))
            .send_token_pool(64)
            .run()
            .unwrap();
        assert_eq!(base.mean_us.to_bits(), deep.mean_us.to_bits());
    }

    #[test]
    fn nic_pe_beats_host_pe_at_16() {
        let nic = quick(16, Algorithm::Nic(Descriptor::Pe)).run().unwrap();
        let host = quick(16, Algorithm::Host(Descriptor::Pe)).run().unwrap();
        assert!(
            nic.mean_us < host.mean_us,
            "nic={} host={}",
            nic.mean_us,
            host.mean_us
        );
    }

    #[test]
    fn round_count_insensitive() {
        let short = quick(4, Algorithm::Nic(Descriptor::Pe))
            .rounds(60, 10)
            .run()
            .unwrap();
        let long = quick(4, Algorithm::Nic(Descriptor::Pe))
            .rounds(400, 10)
            .run()
            .unwrap();
        let rel = (short.mean_us - long.mean_us).abs() / long.mean_us;
        assert!(rel < 0.02, "short={} long={}", short.mean_us, long.mean_us);
    }

    #[test]
    fn steady_state_is_stable() {
        let m = quick(8, Algorithm::Nic(Descriptor::Pe)).run().unwrap();
        // After warmup the gaps should be nearly constant.
        assert!(
            m.per_round.stddev() < 0.05 * m.per_round.mean(),
            "stddev {} vs mean {}",
            m.per_round.stddev(),
            m.per_round.mean()
        );
    }

    #[test]
    fn skewed_start_reaches_same_steady_state() {
        let sync = quick(4, Algorithm::Nic(Descriptor::Pe)).run().unwrap();
        let skew = quick(4, Algorithm::Nic(Descriptor::Pe))
            .skew(500, 7)
            .run()
            .unwrap();
        let rel = (sync.mean_us - skew.mean_us).abs() / sync.mean_us;
        assert!(rel < 0.05, "sync={} skew={}", sync.mean_us, skew.mean_us);
    }

    #[test]
    fn gb_runs_for_all_algorithms() {
        for alg in [
            Algorithm::Nic(Descriptor::gb(2)),
            Algorithm::Host(Descriptor::gb(2)),
        ] {
            let m = quick(5, alg).run().unwrap();
            assert!(m.mean_us > 10.0, "{alg:?}: {}", m.mean_us);
        }
    }

    #[test]
    fn packed_placement_synchronizes_across_ports() {
        let m = quick(8, Algorithm::Nic(Descriptor::Pe))
            .placement(Placement::Packed { procs_per_node: 2 })
            .run()
            .unwrap();
        assert!(m.mean_us > 5.0);
    }

    #[test]
    fn dissemination_equals_pe_at_powers_of_two() {
        for n in [4usize, 8] {
            let pe = quick(n, Algorithm::Nic(Descriptor::Pe))
                .run()
                .unwrap()
                .mean_us;
            let di = quick(n, Algorithm::Nic(Descriptor::dissemination()))
                .run()
                .unwrap()
                .mean_us;
            assert!((pe - di).abs() < 0.5, "n={n}: pe={pe:.2} dissem={di:.2}");
        }
    }

    #[test]
    fn dissemination_beats_pe_off_powers_of_two() {
        for n in [3usize, 6, 12] {
            let pe = quick(n, Algorithm::Nic(Descriptor::Pe))
                .run()
                .unwrap()
                .mean_us;
            let di = quick(n, Algorithm::Nic(Descriptor::dissemination()))
                .run()
                .unwrap()
                .mean_us;
            assert!(di < pe, "n={n}: pe={pe:.2} dissem={di:.2}");
        }
    }

    #[test]
    fn layer_factor_slows_host_more_than_nic() {
        let host = quick(8, Algorithm::Host(Descriptor::Pe)).run().unwrap();
        let host_mpi = quick(8, Algorithm::Host(Descriptor::Pe))
            .layer(2.0)
            .run()
            .unwrap();
        let nic = quick(8, Algorithm::Nic(Descriptor::Pe)).run().unwrap();
        let nic_mpi = quick(8, Algorithm::Nic(Descriptor::Pe))
            .layer(2.0)
            .run()
            .unwrap();
        let host_slowdown = host_mpi.mean_us / host.mean_us;
        let nic_slowdown = nic_mpi.mean_us / nic.mean_us;
        assert!(
            host_slowdown > nic_slowdown,
            "host {host_slowdown} nic {nic_slowdown}"
        );
    }

    #[test]
    fn invalid_configs_are_rejected_before_running() {
        use ExperimentError as E;
        let base = |p| BarrierExperiment::new(p, Algorithm::Nic(Descriptor::Pe));
        assert_eq!(base(0).run().unwrap_err(), E::ZeroProcs);
        assert_eq!(base(4).rounds(0, 0).run().unwrap_err(), E::ZeroRounds);
        assert!(matches!(
            base(4).rounds(10, 10).run().unwrap_err(),
            E::WarmupNotBelowRounds { .. }
        ));
        assert_eq!(
            base(4)
                .rounds(10, 2)
                .placement(Placement::Packed { procs_per_node: 9 })
                .run()
                .unwrap_err(),
            E::InvalidPlacement { procs_per_node: 9 }
        );
        // gb(0) and dissemination radix < 2 can no longer reach run() at
        // all: the variants are #[non_exhaustive], so the named
        // constructors are the only way to build a descriptor here, and
        // they reject bad parameters at construction.
        assert_eq!(Descriptor::try_gb(0).unwrap_err(), DescriptorError::ZeroDim);
        assert_eq!(
            Descriptor::try_dissemination(0).unwrap_err(),
            DescriptorError::InvalidRadix { radix: 0 }
        );
        assert_eq!(
            Descriptor::try_dissemination(1).unwrap_err(),
            DescriptorError::InvalidRadix { radix: 1 }
        );
        assert!(std::panic::catch_unwind(|| Descriptor::gb(0)).is_err());
        assert!(std::panic::catch_unwind(|| Descriptor::dissemination_radix(1)).is_err());
        let bad = FaultPlan {
            drop_probability: 1.5,
            ..FaultPlan::NONE
        };
        assert!(matches!(
            base(4).faults(bad).run().unwrap_err(),
            E::InvalidProbability { what: "drop", .. }
        ));
    }

    #[test]
    fn degenerate_and_minimal_parameterizations_run() {
        // n = 1: every barrier degenerates to an immediate completion.
        // The NIC path still pays the token post + completion DMA each
        // round; the host path sends nothing and waits on nothing, so
        // its round-to-round gap is legitimately zero.
        for alg in [
            Algorithm::Nic(Descriptor::pe()),
            Algorithm::Nic(Descriptor::gb(1)),
            Algorithm::Nic(Descriptor::dissemination()),
            Algorithm::Nic(Descriptor::dissemination_radix(4)),
        ] {
            let m = quick(1, alg).run().unwrap();
            assert!(m.mean_us > 0.0, "{}", alg.name());
        }
        let m = quick(1, Algorithm::Host(Descriptor::pe())).run().unwrap();
        assert!(m.mean_us >= 0.0 && m.mean_us.is_finite());
        // dim = 1 (chain tree) is the smallest valid GB parameterization.
        quick(5, Algorithm::Nic(Descriptor::gb(1))).run().unwrap();
        // A k-ary radix runs on the same firmware path as radix 2.
        quick(9, Algorithm::Nic(Descriptor::dissemination_radix(3)))
            .run()
            .unwrap();
    }

    #[test]
    fn faulty_wire_still_synchronizes_and_counts_faults() {
        let m = quick(4, Algorithm::Nic(Descriptor::Pe))
            .faults(FaultPlan::drops(0.02))
            .run()
            .unwrap();
        assert!(m.metrics.get(Counter::PacketsDropped) > 0);
        assert!(m.metrics.get(Counter::PacketsRetransmitted) > 0);
        assert!(m.mean_us > 10.0);
    }

    #[test]
    fn metrics_and_turnaround_populated_for_nic_runs() {
        let m = quick(4, Algorithm::Nic(Descriptor::Pe)).run().unwrap();
        assert!(m.metrics.get(Counter::BarrierCompletions) >= 4 * 49);
        assert!(m.metrics.get(Counter::FirmwareCycles) > 0);
        assert!(m.metrics.get(Counter::PacketsSent) > 0);
        assert!(m.nic_turnaround.total() > 0);
        assert!(m.nic_turnaround.mean().unwrap() > 0.0);
        // Tracing was not requested: no trace rides back.
        assert!(m.trace.is_empty());
    }

    #[test]
    fn team_error_variants_display_their_context() {
        let e = ExperimentError::TeamPeerUnreachable {
            team: TeamId(7),
            rank: 3,
        };
        let s = e.to_string();
        assert!(s.contains("t7") && s.contains("rank 3"), "{s}");
        let e = ExperimentError::InvalidTeamSizes {
            min: 5,
            max: 3,
            nodes: 4,
        };
        assert!(e.to_string().contains("5..=3"), "{e}");
    }

    #[test]
    fn team_label_is_latency_invisible_in_idle_cluster() {
        // The refactor's safety property, in miniature: a team of size N in
        // an otherwise idle cluster behaves bit-identically to the global
        // barrier. (The exhaustive version lives in tests/team_equivalence.)
        for alg in [
            Algorithm::Nic(Descriptor::Pe),
            Algorithm::Host(Descriptor::Pe),
        ] {
            let global = quick(4, alg).run().unwrap();
            let team = quick(4, alg).team(TeamId(9)).run().unwrap();
            assert_eq!(global.mean_us, team.mean_us, "{alg:?}");
            assert_eq!(global.first_round_us, team.first_round_us, "{alg:?}");
            assert_eq!(global.events, team.events, "{alg:?}");
        }
    }

    #[test]
    fn multitenant_placement_is_deterministic_and_in_bounds() {
        let e = MultiTenantExperiment::new(16, 20).team_sizes(2, 5);
        let a = e.placement();
        let b = e.placement();
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        for (i, p) in a.iter().enumerate() {
            assert_eq!(p.id, TeamId(1 + i as u32));
            assert!((2..=5).contains(&p.members.len()));
            assert!(p.members.windows(2).all(|w| w[0] < w[1]), "{:?}", p.members);
            assert!(p.members.iter().all(|&n| n < 16));
        }
        // mixed sizes actually occur
        let sizes: Vec<usize> = a.iter().map(|p| p.members.len()).collect();
        assert!(sizes.iter().any(|&s| s != sizes[0]), "{sizes:?}");
    }

    #[test]
    fn multitenant_runs_overlapping_teams_concurrently() {
        let m = MultiTenantExperiment::new(8, 6)
            .team_sizes(2, 4)
            .rounds(30, 5)
            .background(true)
            .run()
            .unwrap();
        assert_eq!(m.per_team_mean_us.len(), 6);
        assert!(m.mean_us > 0.0 && m.p99_us >= m.mean_us, "{m:?}");
        assert_eq!(m.metrics.get(Counter::TeamsCreated), 6);
        // 6 teams of ≥2 members on 8 nodes must overlap somewhere.
        assert!(m.metrics.get(Counter::ConcurrentPeak) >= 2);
    }

    #[test]
    fn multitenant_invalid_configs_are_rejected() {
        use ExperimentError as E;
        assert_eq!(
            MultiTenantExperiment::new(8, 0).run().unwrap_err(),
            E::ZeroProcs
        );
        assert_eq!(
            MultiTenantExperiment::new(4, 2)
                .team_sizes(2, 9)
                .run()
                .unwrap_err(),
            E::InvalidTeamSizes {
                min: 2,
                max: 9,
                nodes: 4
            }
        );
    }

    #[test]
    fn trace_capacity_bounds_the_returned_trace() {
        let m = quick(2, Algorithm::Nic(Descriptor::Pe))
            .trace(64)
            .run()
            .unwrap();
        assert!(!m.trace.is_empty());
        assert!(m.trace.len() <= 64);
        // Every record names a component inside the 2-node cluster.
        assert!(m.trace.iter().all(|r| r.component.node < 2));
    }
}
