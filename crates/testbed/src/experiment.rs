//! Declarative barrier experiments.

use gmsim_des::{RunOutcome, SimRng, SimTime, Summary};
use gmsim_gm::cluster::ClusterBuilder;
use gmsim_gm::config::CollectiveWireMode;
use gmsim_gm::{GlobalPort, GmConfig, HostProgram};
use gmsim_lanai::NicModel;
use nic_barrier::programs::{decode_note, NicBarrierLoop};
use nic_barrier::{BarrierCosts, BarrierExtension, BarrierGroup, Descriptor, HostBarrierLoop};

/// Which barrier implementation to measure: a collective algorithm
/// [`Descriptor`], interpreted either by the NIC firmware extension (the
/// paper's contribution) or at host level over plain sends (the baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// NIC-interpreted: one collective token, the firmware runs the
    /// compiled schedule.
    Nic(Descriptor),
    /// Host-interpreted: the same compiled schedule over ordinary GM
    /// point-to-point messages.
    Host(Descriptor),
}

impl Algorithm {
    /// Short display name.
    pub fn name(&self) -> String {
        let (side, desc) = match self {
            Algorithm::Nic(d) => ("NIC", d),
            Algorithm::Host(d) => ("host", d),
        };
        match desc {
            Descriptor::Pe => format!("{side}-PE"),
            Descriptor::Gb { dim } => format!("{side}-GB(d={dim})"),
            Descriptor::Dissemination => format!("{side}-dissem"),
            Descriptor::Bcast { dim } => format!("{side}-bcast(d={dim})"),
            Descriptor::Reduce { dim, .. } => format!("{side}-reduce(d={dim})"),
            Descriptor::Allreduce { dim, .. } => format!("{side}-allreduce(d={dim})"),
            Descriptor::Scan { .. } => format!("{side}-scan"),
        }
    }

    /// True for the NIC-based variants.
    pub fn is_nic(&self) -> bool {
        matches!(self, Algorithm::Nic(_))
    }

    /// The algorithm descriptor being run.
    pub fn descriptor(&self) -> Descriptor {
        match self {
            Algorithm::Nic(d) | Algorithm::Host(d) => *d,
        }
    }
}

/// How processes map onto nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// One process per node (the paper's testbed).
    OnePerNode,
    /// `procs_per_node` processes packed per node on consecutive ports —
    /// exercises multiple concurrent endpoints and the §3.4 same-NIC path.
    Packed {
        /// Processes on each node.
        procs_per_node: usize,
    },
}

/// One barrier-latency experiment.
///
/// ```
/// use gmsim_testbed::{Algorithm, BarrierExperiment, Descriptor};
///
/// // The paper's headline cell: 16 nodes, NIC-based PE, LANai 4.3.
/// let m = BarrierExperiment::new(16, Algorithm::Nic(Descriptor::Pe)).rounds(60, 10).run();
/// assert!((m.mean_us - 102.14).abs() / 102.14 < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarrierExperiment {
    /// Number of participating processes.
    pub procs: usize,
    /// Implementation under test.
    pub algorithm: Algorithm,
    /// NIC hardware model.
    pub nic: NicModel,
    /// Process placement.
    pub placement: Placement,
    /// Consecutive barriers to run.
    pub rounds: u64,
    /// Leading rounds excluded from the mean (start-up transient).
    pub warmup: u64,
    /// Host-overhead multiplier modelling an extra software layer (§2.2's
    /// MPI prediction); 1.0 = raw GM.
    pub layer_factor: f64,
    /// Random start skew bound in µs (0 = synchronized start).
    pub max_skew_us: u64,
    /// RNG seed for skew.
    pub seed: u64,
    /// How barrier packets travel (reliable stream vs the paper's
    /// unreliable prototype — the reliability-overhead ablation).
    pub wire: CollectiveWireMode,
    /// §3.4 same-NIC optimization (ablation knob).
    pub same_nic_opt: bool,
    /// Firmware extension cost table (ablation knob).
    pub costs: BarrierCosts,
}

impl BarrierExperiment {
    /// A default experiment: `procs` processes, one per node, on LANai 4.3.
    pub fn new(procs: usize, algorithm: Algorithm) -> Self {
        BarrierExperiment {
            procs,
            algorithm,
            nic: NicModel::LANAI_4_3,
            placement: Placement::OnePerNode,
            rounds: 220,
            warmup: 20,
            layer_factor: 1.0,
            max_skew_us: 0,
            seed: 42,
            wire: CollectiveWireMode::Reliable,
            same_nic_opt: true,
            costs: BarrierCosts::GM_1_2_3,
        }
    }

    /// Override the collective wire mode.
    pub fn wire(mut self, wire: CollectiveWireMode) -> Self {
        self.wire = wire;
        self
    }

    /// Enable/disable the §3.4 same-NIC optimization.
    pub fn same_nic_opt(mut self, on: bool) -> Self {
        self.same_nic_opt = on;
        self
    }

    /// Override the firmware extension cost table.
    pub fn costs(mut self, costs: BarrierCosts) -> Self {
        self.costs = costs;
        self
    }

    /// Override the NIC model.
    pub fn nic(mut self, nic: NicModel) -> Self {
        self.nic = nic;
        self
    }

    /// Override rounds/warmup.
    pub fn rounds(mut self, rounds: u64, warmup: u64) -> Self {
        assert!(warmup < rounds);
        self.rounds = rounds;
        self.warmup = warmup;
        self
    }

    /// Override the placement.
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Model an additional host software layer.
    pub fn layer(mut self, factor: f64) -> Self {
        self.layer_factor = factor;
        self
    }

    /// Add random start skew.
    pub fn skew(mut self, max_us: u64, seed: u64) -> Self {
        self.max_skew_us = max_us;
        self.seed = seed;
        self
    }

    /// The endpoint group this experiment synchronizes.
    pub fn group(&self) -> BarrierGroup {
        match self.placement {
            Placement::OnePerNode => BarrierGroup::one_per_node(self.procs, 1),
            Placement::Packed { procs_per_node } => {
                assert!((1..=7).contains(&procs_per_node));
                let members = (0..self.procs)
                    .map(|i| GlobalPort::new(i / procs_per_node, 1 + (i % procs_per_node) as u8))
                    .collect();
                BarrierGroup::new(members)
            }
        }
    }

    fn node_count(&self) -> usize {
        match self.placement {
            Placement::OnePerNode => self.procs,
            Placement::Packed { procs_per_node } => self.procs.div_ceil(procs_per_node),
        }
    }

    fn make_program(&self, group: &BarrierGroup, rank: usize) -> Box<dyn HostProgram> {
        match self.algorithm {
            Algorithm::Nic(desc) => {
                Box::new(NicBarrierLoop::new(group.clone(), rank, desc, self.rounds))
            }
            Algorithm::Host(desc) => Box::new(HostBarrierLoop::new(group, rank, desc, self.rounds)),
        }
    }

    /// Run the experiment to completion and aggregate the measurement.
    ///
    /// # Panics
    /// Panics if the simulation fails to drain (a hung barrier) or any
    /// round is missing completions.
    pub fn run(&self) -> Measurement {
        let group = self.group();
        let mut config = GmConfig::paper_host(self.nic).with_layer_overhead(self.layer_factor);
        config.collective_wire = self.wire;
        config.same_nic_optimization = self.same_nic_opt;
        let nodes = self.node_count();
        // The paper's largest switch is 16-port; bigger clusters get a
        // non-blocking two-level Clos of 16-port crossbars (8 hosts + 8
        // uplinks per leaf), which is how real Myrinet installations
        // scaled.
        let topology = if nodes <= 16 {
            gmsim_myrinet::TopologyBuilder::single_switch(nodes)
        } else {
            gmsim_myrinet::TopologyBuilder::clos(nodes.div_ceil(8), 8, 8)
        };
        let mut builder = ClusterBuilder::new(nodes)
            .config(config)
            .topology(topology)
            .extension(BarrierExtension::factory_with_costs(self.costs));
        let mut rng = SimRng::new(self.seed);
        for rank in 0..self.procs {
            let start = if self.max_skew_us == 0 {
                SimTime::ZERO
            } else {
                SimTime::from_us(rng.below(self.max_skew_us + 1))
            };
            builder = builder.program(group.member(rank), self.make_program(&group, rank), start);
        }
        let mut sim = builder.build();
        let outcome = sim.run();
        assert_eq!(
            outcome,
            RunOutcome::Quiescent,
            "experiment did not drain: {self:?}"
        );
        let events = sim.events_fired();
        let cluster = sim.into_world();

        // A round completes when its *last* participant's completion note
        // lands; consecutive-barrier latency is the gap between rounds.
        let mut round_done = vec![SimTime::ZERO; self.rounds as usize];
        let mut counts = vec![0u64; self.rounds as usize];
        for note in &cluster.notes {
            if let Some(round) = decode_note(note.tag) {
                let r = round as usize;
                round_done[r] = round_done[r].max(note.at);
                counts[r] += 1;
            }
        }
        for (r, &c) in counts.iter().enumerate() {
            assert_eq!(
                c, self.procs as u64,
                "round {r} completed on {c}/{} processes",
                self.procs
            );
        }
        let mut per_round = Summary::new();
        for r in (self.warmup as usize + 1)..self.rounds as usize {
            per_round.record((round_done[r] - round_done[r - 1]).as_us_f64());
        }
        let span = round_done[self.rounds as usize - 1] - round_done[self.warmup as usize];
        let measured_rounds = self.rounds - self.warmup - 1;
        Measurement {
            mean_us: span.as_us_f64() / measured_rounds as f64,
            first_round_us: round_done[0].as_us_f64(),
            per_round,
            events,
        }
    }
}

/// The result of one experiment.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Mean steady-state barrier latency, µs (the paper's reported metric).
    pub mean_us: f64,
    /// Completion time of the very first barrier (one-shot latency from a
    /// synchronized cold start), µs.
    pub first_round_us: f64,
    /// Distribution of individual round gaps.
    pub per_round: Summary,
    /// Simulation events fired while the experiment ran.
    pub events: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(procs: usize, algorithm: Algorithm) -> BarrierExperiment {
        BarrierExperiment::new(procs, algorithm).rounds(60, 10)
    }

    #[test]
    fn nic_pe_two_nodes_runs() {
        let m = quick(2, Algorithm::Nic(Descriptor::Pe)).run();
        assert!(m.mean_us > 10.0 && m.mean_us < 200.0, "{}", m.mean_us);
    }

    #[test]
    fn nic_pe_beats_host_pe_at_16() {
        let nic = quick(16, Algorithm::Nic(Descriptor::Pe)).run();
        let host = quick(16, Algorithm::Host(Descriptor::Pe)).run();
        assert!(
            nic.mean_us < host.mean_us,
            "nic={} host={}",
            nic.mean_us,
            host.mean_us
        );
    }

    #[test]
    fn round_count_insensitive() {
        let short = quick(4, Algorithm::Nic(Descriptor::Pe))
            .rounds(60, 10)
            .run();
        let long = quick(4, Algorithm::Nic(Descriptor::Pe))
            .rounds(400, 10)
            .run();
        let rel = (short.mean_us - long.mean_us).abs() / long.mean_us;
        assert!(rel < 0.02, "short={} long={}", short.mean_us, long.mean_us);
    }

    #[test]
    fn steady_state_is_stable() {
        let m = quick(8, Algorithm::Nic(Descriptor::Pe)).run();
        // After warmup the gaps should be nearly constant.
        assert!(
            m.per_round.stddev() < 0.05 * m.per_round.mean(),
            "stddev {} vs mean {}",
            m.per_round.stddev(),
            m.per_round.mean()
        );
    }

    #[test]
    fn skewed_start_reaches_same_steady_state() {
        let sync = quick(4, Algorithm::Nic(Descriptor::Pe)).run();
        let skew = quick(4, Algorithm::Nic(Descriptor::Pe)).skew(500, 7).run();
        let rel = (sync.mean_us - skew.mean_us).abs() / sync.mean_us;
        assert!(rel < 0.05, "sync={} skew={}", sync.mean_us, skew.mean_us);
    }

    #[test]
    fn gb_runs_for_all_algorithms() {
        for alg in [
            Algorithm::Nic(Descriptor::Gb { dim: 2 }),
            Algorithm::Host(Descriptor::Gb { dim: 2 }),
        ] {
            let m = quick(5, alg).run();
            assert!(m.mean_us > 10.0, "{alg:?}: {}", m.mean_us);
        }
    }

    #[test]
    fn packed_placement_synchronizes_across_ports() {
        let m = quick(8, Algorithm::Nic(Descriptor::Pe))
            .placement(Placement::Packed { procs_per_node: 2 })
            .run();
        assert!(m.mean_us > 5.0);
    }

    #[test]
    fn dissemination_equals_pe_at_powers_of_two() {
        for n in [4usize, 8] {
            let pe = quick(n, Algorithm::Nic(Descriptor::Pe)).run().mean_us;
            let di = quick(n, Algorithm::Nic(Descriptor::Dissemination))
                .run()
                .mean_us;
            assert!((pe - di).abs() < 0.5, "n={n}: pe={pe:.2} dissem={di:.2}");
        }
    }

    #[test]
    fn dissemination_beats_pe_off_powers_of_two() {
        for n in [3usize, 6, 12] {
            let pe = quick(n, Algorithm::Nic(Descriptor::Pe)).run().mean_us;
            let di = quick(n, Algorithm::Nic(Descriptor::Dissemination))
                .run()
                .mean_us;
            assert!(di < pe, "n={n}: pe={pe:.2} dissem={di:.2}");
        }
    }

    #[test]
    fn layer_factor_slows_host_more_than_nic() {
        let host = quick(8, Algorithm::Host(Descriptor::Pe)).run();
        let host_mpi = quick(8, Algorithm::Host(Descriptor::Pe)).layer(2.0).run();
        let nic = quick(8, Algorithm::Nic(Descriptor::Pe)).run();
        let nic_mpi = quick(8, Algorithm::Nic(Descriptor::Pe)).layer(2.0).run();
        let host_slowdown = host_mpi.mean_us / host.mean_us;
        let nic_slowdown = nic_mpi.mean_us / nic.mean_us;
        assert!(
            host_slowdown > nic_slowdown,
            "host {host_slowdown} nic {nic_slowdown}"
        );
    }
}
