//! Fuzzy-barrier measurement (§2.1).
//!
//! "Because the barrier algorithm is performed at the NIC, the processor is
//! free to perform computation while polling for the barrier to complete.
//! This is known as a *fuzzy barrier*." The measurement here compares the
//! steady-state period of an iterate-compute-synchronize loop in two modes:
//!
//! * **overlap** — initiate the NIC barrier, then compute while it runs
//!   (the fuzzy barrier); the period approaches `max(compute, barrier)`,
//! * **blocking** — compute, then synchronize; the period approaches
//!   `compute + barrier`.

use crate::experiment::{collect_metrics, Measurement};
use gmsim_des::{RunOutcome, SimTime, Summary};
use gmsim_gm::cluster::ClusterBuilder;
use gmsim_gm::GmConfig;
use gmsim_lanai::NicModel;
use nic_barrier::programs::decode_note;
use nic_barrier::{BarrierExtension, BarrierGroup, FuzzyBarrierLoop};

/// Configuration of one fuzzy-barrier run.
#[derive(Debug, Clone, Copy)]
pub struct FuzzyExperiment {
    /// Participating processes (one per node).
    pub procs: usize,
    /// Per-round computation, µs.
    pub compute_us: u64,
    /// Overlap compute with the barrier (fuzzy) or block.
    pub overlap: bool,
    /// NIC model.
    pub nic: NicModel,
    /// Rounds to run.
    pub rounds: u64,
    /// Warmup rounds excluded from the mean.
    pub warmup: u64,
}

impl FuzzyExperiment {
    /// A default experiment on LANai 4.3.
    pub fn new(procs: usize, compute_us: u64, overlap: bool) -> Self {
        FuzzyExperiment {
            procs,
            compute_us,
            overlap,
            nic: NicModel::LANAI_4_3,
            rounds: 120,
            warmup: 20,
        }
    }

    /// Run and return the steady-state per-round period.
    pub fn run(&self) -> Measurement {
        let group = BarrierGroup::one_per_node(self.procs, 1);
        let mut builder = ClusterBuilder::new(self.procs)
            .config(GmConfig::paper_host(self.nic))
            .extension(BarrierExtension::factory());
        for rank in 0..self.procs {
            builder = builder.program(
                group.member(rank),
                Box::new(FuzzyBarrierLoop::new(
                    group.clone(),
                    rank,
                    self.rounds,
                    SimTime::from_us(self.compute_us),
                    self.overlap,
                )),
                SimTime::ZERO,
            );
        }
        let mut sim = builder.build();
        assert_eq!(sim.run(), RunOutcome::Quiescent, "fuzzy run hung: {self:?}");
        let cluster = sim.into_world();
        let mut round_done = vec![SimTime::ZERO; self.rounds as usize];
        for note in &cluster.notes {
            if let Some(round) = decode_note(note.tag) {
                let r = round as usize;
                round_done[r] = round_done[r].max(note.at);
            }
        }
        let mut per_round = Summary::new();
        for r in (self.warmup as usize + 1)..self.rounds as usize {
            per_round.record((round_done[r] - round_done[r - 1]).as_us_f64());
        }
        let span = round_done[self.rounds as usize - 1] - round_done[self.warmup as usize];
        let (metrics, nic_turnaround) = collect_metrics(&cluster);
        Measurement {
            mean_us: span.as_us_f64() / (self.rounds - self.warmup - 1) as f64,
            first_round_us: round_done[0].as_us_f64(),
            per_round,
            events: 0,
            metrics,
            nic_turnaround,
            trace: cluster.tracer.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_hides_compute_inside_barrier() {
        // Compute smaller than the barrier latency: the fuzzy period should
        // stay close to the pure barrier latency, while blocking pays
        // compute + barrier.
        let barrier_only = FuzzyExperiment::new(8, 0, true).run().mean_us;
        let fuzzy = FuzzyExperiment::new(8, 40, true).run().mean_us;
        let blocking = FuzzyExperiment::new(8, 40, false).run().mean_us;
        assert!(
            fuzzy < blocking,
            "fuzzy {fuzzy:.1} must beat blocking {blocking:.1}"
        );
        // Hiding is substantial: at least half the compute disappears.
        assert!(
            blocking - fuzzy > 20.0,
            "hidden time only {:.1}us",
            blocking - fuzzy
        );
        assert!(fuzzy >= barrier_only - 1.0);
    }

    #[test]
    fn big_compute_dominates_both_modes() {
        // Compute far larger than the barrier: both periods ≈ compute, and
        // overlap hides (almost) the whole barrier.
        let fuzzy = FuzzyExperiment::new(4, 1_000, true).run().mean_us;
        let blocking = FuzzyExperiment::new(4, 1_000, false).run().mean_us;
        assert!(fuzzy >= 1_000.0);
        assert!(blocking > fuzzy);
        assert!(
            fuzzy < 1_000.0 + 30.0,
            "fuzzy overhead too high: {fuzzy:.1}"
        );
    }

    #[test]
    fn zero_compute_modes_agree() {
        let a = FuzzyExperiment::new(4, 0, true).run().mean_us;
        let b = FuzzyExperiment::new(4, 0, false).run().mean_us;
        assert!((a - b).abs() < 1e-6);
    }
}
