//! Parallel experiment sweeps.
//!
//! Simulations are independent worlds, so a parameter sweep is
//! embarrassingly parallel. The heavy lifting — guided self-scheduling
//! over scoped threads, input-order results, the determinism argument —
//! lives in [`crate::engine::SweepEngine`]; this module keeps the
//! experiment-shaped conveniences on top of it.

use crate::engine::SweepEngine;
use crate::experiment::{Algorithm, BarrierExperiment, Measurement};
use nic_barrier::Descriptor;

/// Run every experiment, in parallel across available cores, preserving
/// input order in the result.
pub fn run_all(experiments: &[BarrierExperiment]) -> Vec<Measurement> {
    run_all_with(experiments, |e| {
        e.run().unwrap_or_else(|err| panic!("{err}: {e:?}"))
    })
}

/// Generalized parallel map over experiments (lets benches substitute
/// instrumented runners).
pub fn run_all_with<R, F>(experiments: &[BarrierExperiment], f: F) -> Vec<R>
where
    R: Send + Sync,
    F: Fn(&BarrierExperiment) -> R + Sync,
{
    SweepEngine::new().run(experiments, |_, e| f(e))
}

/// Find the best GB tree dimension for `base` (which must be a GB
/// algorithm), sweeping `d ∈ 1..procs` exactly as §6 describes: "we ran the
/// test for every dimension from 1 to N − 1 ... the latencies reported are
/// the minimum latencies over all dimensions." Returns `(dim, measurement)`.
pub fn best_gb_dim(base: BarrierExperiment) -> (usize, Measurement) {
    let nic_side = match base.algorithm {
        Algorithm::Nic(Descriptor::Gb { .. }) => true,
        Algorithm::Host(Descriptor::Gb { .. }) => false,
        other => panic!("best_gb_dim on non-GB algorithm {other:?}"),
    };
    assert!(base.procs >= 2);
    let candidates: Vec<BarrierExperiment> = (1..base.procs)
        .map(|dim| {
            let mut e = base;
            e.algorithm = if nic_side {
                Algorithm::Nic(Descriptor::gb(dim))
            } else {
                Algorithm::Host(Descriptor::gb(dim))
            };
            e
        })
        .collect();
    let results = run_all(&candidates);
    let (best_idx, best) = results
        .into_iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.mean_us.total_cmp(&b.mean_us))
        .expect("no candidates");
    (best_idx + 1, best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_results_match_serial() {
        let exps: Vec<BarrierExperiment> = [2usize, 4, 8]
            .iter()
            .map(|&n| BarrierExperiment::new(n, Algorithm::Nic(Descriptor::Pe)).rounds(40, 5))
            .collect();
        let parallel = run_all(&exps);
        let serial: Vec<Measurement> = exps.iter().map(|e| e.run().unwrap()).collect();
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.mean_us, s.mean_us, "simulations are deterministic");
        }
    }

    #[test]
    fn empty_sweep() {
        assert!(run_all(&[]).is_empty());
    }

    #[test]
    fn best_dim_is_found() {
        let base = BarrierExperiment::new(6, Algorithm::Nic(Descriptor::gb(1))).rounds(40, 5);
        let (dim, best) = best_gb_dim(base);
        assert!((1..6).contains(&dim));
        // The best must not lose to any individual dimension.
        for d in 1..6 {
            let m = BarrierExperiment::new(6, Algorithm::Nic(Descriptor::gb(d)))
                .rounds(40, 5)
                .run()
                .unwrap();
            assert!(best.mean_us <= m.mean_us + 1e-9, "dim {d} beat the best");
        }
    }

    #[test]
    #[should_panic(expected = "non-GB")]
    fn best_dim_rejects_pe() {
        best_gb_dim(BarrierExperiment::new(4, Algorithm::Nic(Descriptor::Pe)));
    }
}
