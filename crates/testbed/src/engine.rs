//! The parallel sweep engine.
//!
//! Large-N scaling studies run hundreds of independent simulations — a
//! 32…1024-node sweep over three algorithms, two interpretation sides and
//! two LANai clocks is ~70 cells, some of which take seconds each. Cells
//! are independent worlds (each builds its own `Simulation`, `Scheduler`
//! and RNG streams), so the engine's only jobs are **load balancing** and
//! **determinism**:
//!
//! * **Load balancing** — workers are scoped OS threads pulling *chunks*
//!   of indices from a shared atomic cursor (guided self-scheduling). The
//!   chunk size shrinks as the sweep drains, so early grabs amortize the
//!   atomic traffic while the tail stays evenly spread even when cell
//!   costs differ by orders of magnitude (N=1024 next to N=32).
//! * **Determinism** — a cell's result depends only on its input (and its
//!   [`cell_seed`]-derived RNG stream), never on which worker ran it or
//!   when. Results land in per-index `OnceLock` slots, so the output `Vec`
//!   is in input order and **bit-identical** to a serial run — the
//!   property tests in `tests/engine_determinism.rs` pin this for every
//!   seed.
//!
//! Aggregation across cells reuses the deterministic merge paths
//! (`Summary::merge`, `Histogram::merge`, `MetricSet::merge`): merging in
//! input order makes the aggregate independent of scheduling too.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Derive the RNG seed for sweep cell `index` from a sweep-level `base`
/// seed (SplitMix64 finalizer over the pair).
///
/// Serial and parallel runners must derive cell seeds the *same* way for
/// bit-identical results; routing both through this function makes that a
/// type-level fact rather than a convention. The mix also decorrelates
/// neighbouring cells: consecutive indices land in unrelated parts of the
/// stream space, so a cell never reuses a neighbour's fault/skew pattern.
pub fn cell_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A reusable parallel map over independent sweep cells.
#[derive(Debug, Clone, Copy)]
pub struct SweepEngine {
    /// Worker threads; `None` = one per available core.
    workers: Option<usize>,
}

impl Default for SweepEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepEngine {
    /// An engine sized to the machine: the `GMSIM_SWEEP_THREADS`
    /// environment variable if set to a positive integer, else one worker
    /// per available core.
    pub fn new() -> Self {
        SweepEngine { workers: None }
    }

    /// Pin the worker count (tests use this to force multi-threaded
    /// execution on single-core machines, or serial execution anywhere).
    /// Takes precedence over `GMSIM_SWEEP_THREADS`.
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n.max(1));
        self
    }

    /// The worker count requested via `GMSIM_SWEEP_THREADS`, if the
    /// variable is set to a positive integer.
    pub fn env_workers() -> Option<usize> {
        Self::parse_workers(std::env::var("GMSIM_SWEEP_THREADS").ok())
    }

    fn parse_workers(raw: Option<String>) -> Option<usize> {
        raw?.trim().parse::<usize>().ok().filter(|&n| n > 0)
    }

    /// The number of workers `run` will actually use for `n` cells:
    /// explicit [`SweepEngine::workers`], else `GMSIM_SWEEP_THREADS`, else
    /// one per available core — clamped to the cell count.
    pub fn effective_workers(&self, n: usize) -> usize {
        let hw = || {
            Self::env_workers().unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
        };
        self.workers.unwrap_or_else(hw).min(n.max(1))
    }

    /// Map `f` over `items` in parallel, returning results in input order.
    ///
    /// `f` receives `(index, item)`; the index is how a cell derives its
    /// [`cell_seed`]. The output is bit-identical to
    /// `items.iter().enumerate().map(...)` run serially, for any worker
    /// count — cells are pure functions of their input and results are
    /// stored by index, so thread interleaving cannot leak in.
    pub fn run<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send + Sync,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.effective_workers(n);
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<OnceLock<R>> = (0..n).map(|_| OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // Guided self-scheduling: claim half a fair share of
                    // the *remaining* cells, so grabs start big and shrink
                    // to 1 as the sweep drains. `fetch_add` may claim a
                    // stale-sized chunk after a race; that only changes
                    // who runs a cell, never its result.
                    let claimed = cursor.load(Ordering::Relaxed);
                    if claimed >= n {
                        break;
                    }
                    let chunk = ((n - claimed) / (2 * workers)).max(1);
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for i in start..(start + chunk).min(n) {
                        let r = f(i, &items[i]);
                        if slots[i].set(r).is_err() {
                            unreachable!("cell {i} handed out twice");
                        }
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("missing cell result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = SweepEngine::new()
            .workers(4)
            .run(&items, |i, &x| (i as u64) * 1_000 + x);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i as u64) * 1_000 + i as u64);
        }
    }

    #[test]
    fn worker_counts_agree() {
        let items: Vec<u64> = (0..100).collect();
        let serial = SweepEngine::new()
            .workers(1)
            .run(&items, |i, &x| cell_seed(42, i as u64).wrapping_add(x));
        for w in [2, 3, 8, 64] {
            let par = SweepEngine::new()
                .workers(w)
                .run(&items, |i, &x| cell_seed(42, i as u64).wrapping_add(x));
            assert_eq!(serial, par, "{w} workers diverged from serial");
        }
    }

    #[test]
    fn empty_and_singleton_sweeps() {
        let engine = SweepEngine::new().workers(4);
        assert!(engine.run(&[] as &[u32], |_, &x| x).is_empty());
        assert_eq!(engine.run(&[7u32], |i, &x| x + i as u32), vec![7]);
    }

    #[test]
    fn effective_workers_clamps_to_cells() {
        assert_eq!(SweepEngine::new().workers(8).effective_workers(3), 3);
        assert_eq!(SweepEngine::new().workers(8).effective_workers(100), 8);
        assert_eq!(SweepEngine::new().workers(0).effective_workers(5), 1);
    }

    #[test]
    fn sweep_threads_env_parsing() {
        let p = |s: &str| SweepEngine::parse_workers(Some(s.to_string()));
        assert_eq!(p("4"), Some(4));
        assert_eq!(p(" 16 "), Some(16));
        assert_eq!(p("0"), None, "zero workers is meaningless");
        assert_eq!(p("lots"), None);
        assert_eq!(p(""), None);
        assert_eq!(SweepEngine::parse_workers(None), None);
    }

    #[test]
    fn cell_seeds_are_distinct_and_stable() {
        // Stability matters: a changed derivation silently changes every
        // seeded experiment. Pin a few values.
        assert_eq!(cell_seed(42, 0), cell_seed(42, 0));
        let seeds: Vec<u64> = (0..1_000).map(|i| cell_seed(42, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "cell seeds collided");
        // Different bases give different streams.
        assert_ne!(cell_seed(1, 5), cell_seed(2, 5));
    }
}
