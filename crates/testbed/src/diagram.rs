//! ASCII rendering of the paper's Figure 2 timing diagrams.
//!
//! Figure 2 is an *analytic* diagram: the component-by-component breakdown
//! of one barrier at one node, assuming synchronized starts — 2(a) for the
//! host-based barrier, 2(b) for the NIC-based barrier. This module draws
//! the same diagrams from a [`CostModel`], so `repro fig2` shows the
//! figure the equations describe next to the simulated numbers.
//!
//! Lanes: `host` (Send / HRecv), `nic` (SDMA / Recv / step / RDMA) and
//! `wire` (Network). One message exchange per PE round.

use nic_barrier::CostModel;
use std::fmt::Write as _;

/// A labelled time segment on one lane.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Lane index (0 = host, 1 = nic, 2 = wire).
    pub lane: usize,
    /// Start, µs.
    pub start: f64,
    /// End, µs.
    pub end: f64,
    /// Single-character label.
    pub label: char,
}

/// A built diagram: segments plus the legend.
#[derive(Debug, Clone)]
pub struct Diagram {
    /// Human title.
    pub title: String,
    /// The segments, in chronological order of start.
    pub segments: Vec<Segment>,
    /// Total span, µs.
    pub total_us: f64,
}

const LANES: [&str; 3] = ["host", "nic ", "wire"];

impl Diagram {
    /// The Figure 2(a) host-based barrier timeline for `n` nodes.
    pub fn host_barrier(model: &CostModel, n: usize) -> Diagram {
        let rounds = CostModel::rounds(n);
        let mut segs = Vec::new();
        let mut t = 0.0;
        for _ in 0..rounds {
            let send_end = t + model.send_us;
            segs.push(Segment {
                lane: 0,
                start: t,
                end: send_end,
                label: 'S',
            });
            let sdma_end = send_end + model.sdma_us;
            segs.push(Segment {
                lane: 1,
                start: send_end,
                end: sdma_end,
                label: 'D',
            });
            let net_end = sdma_end + model.network_us;
            segs.push(Segment {
                lane: 2,
                start: sdma_end,
                end: net_end,
                label: 'N',
            });
            let recv_end = net_end + model.recv_us;
            segs.push(Segment {
                lane: 1,
                start: net_end,
                end: recv_end,
                label: 'R',
            });
            let rdma_end = recv_end + model.rdma_us;
            segs.push(Segment {
                lane: 1,
                start: recv_end,
                end: rdma_end,
                label: 'M',
            });
            let hrecv_end = rdma_end + model.hrecv_us;
            segs.push(Segment {
                lane: 0,
                start: rdma_end,
                end: hrecv_end,
                label: 'H',
            });
            t = hrecv_end;
        }
        Diagram {
            title: format!("host-based barrier, {n} nodes (Eq.1 = {:.2}us)", t),
            segments: segs,
            total_us: t,
        }
    }

    /// The Figure 2(b) NIC-based barrier timeline for `n` nodes.
    pub fn nic_barrier(model: &CostModel, n: usize) -> Diagram {
        let rounds = CostModel::rounds(n);
        let mut segs = Vec::new();
        let send_end = model.send_us;
        segs.push(Segment {
            lane: 0,
            start: 0.0,
            end: send_end,
            label: 'S',
        });
        let mut t = send_end;
        for _ in 0..rounds {
            let net_end = t + model.network_us;
            segs.push(Segment {
                lane: 2,
                start: t,
                end: net_end,
                label: 'N',
            });
            let recv_end = net_end + model.nic_recv_us;
            segs.push(Segment {
                lane: 1,
                start: net_end,
                end: recv_end,
                label: 'R',
            });
            let step_end = recv_end + model.nic_step_us;
            segs.push(Segment {
                lane: 1,
                start: recv_end,
                end: step_end,
                label: 'P',
            });
            t = step_end;
        }
        let rdma_end = t + model.rdma_us;
        segs.push(Segment {
            lane: 1,
            start: t,
            end: rdma_end,
            label: 'M',
        });
        let hrecv_end = rdma_end + model.hrecv_us;
        segs.push(Segment {
            lane: 0,
            start: rdma_end,
            end: hrecv_end,
            label: 'H',
        });
        Diagram {
            title: format!("NIC-based barrier, {n} nodes (Eq.2 = {:.2}us)", hrecv_end),
            segments: segs,
            total_us: hrecv_end,
        }
    }

    /// Segments are contiguous and non-overlapping across the whole
    /// timeline (the diagram is a single dependency chain).
    pub fn is_well_formed(&self) -> bool {
        let mut prev_end = 0.0;
        for s in &self.segments {
            if s.end < s.start || (s.start - prev_end).abs() > 1e-9 {
                return false;
            }
            prev_end = s.end;
        }
        (prev_end - self.total_us).abs() < 1e-9
    }

    /// Render at `width` characters for the full span.
    pub fn render(&self, width: usize) -> String {
        assert!(width >= 10);
        let scale = width as f64 / self.total_us.max(1e-9);
        let col = |us: f64| ((us * scale).round() as usize).min(width);
        let mut lanes = vec![vec![' '; width]; LANES.len()];
        for s in &self.segments {
            let (a, b) = (col(s.start), col(s.end));
            for c in lanes[s.lane].iter_mut().take(b.max(a + 1)).skip(a) {
                *c = s.label;
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        for (name, lane) in LANES.iter().zip(&lanes) {
            let _ = writeln!(out, "  {name} |{}|", lane.iter().collect::<String>());
        }
        let _ = writeln!(
            out,
            "       0{:>width$.1}us",
            self.total_us,
            width = width - 1
        );
        let _ = writeln!(
            out,
            "  S=Send D=SDMA N=Network R=Recv P=nic-step M=RDMA H=HRecv"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmsim_gm::GmConfig;
    use gmsim_lanai::NicModel;

    fn model() -> CostModel {
        CostModel::from_config(&GmConfig::paper_host(NicModel::LANAI_4_3))
    }

    #[test]
    fn host_diagram_matches_eq1() {
        let m = model();
        for n in [2usize, 8, 16] {
            let d = Diagram::host_barrier(&m, n);
            assert!(d.is_well_formed(), "n={n}");
            assert!((d.total_us - m.host_barrier_us(n)).abs() < 1e-9);
            assert_eq!(d.segments.len(), 6 * CostModel::rounds(n) as usize);
        }
    }

    #[test]
    fn nic_diagram_matches_eq2() {
        let m = model();
        for n in [2usize, 8, 16] {
            let d = Diagram::nic_barrier(&m, n);
            assert!(d.is_well_formed(), "n={n}");
            assert!((d.total_us - m.nic_barrier_us(n)).abs() < 1e-9);
        }
    }

    #[test]
    fn nic_timeline_is_shorter() {
        let m = model();
        let host = Diagram::host_barrier(&m, 8);
        let nic = Diagram::nic_barrier(&m, 8);
        assert!(nic.total_us < host.total_us);
    }

    #[test]
    fn render_contains_all_labels() {
        let m = model();
        let s = Diagram::host_barrier(&m, 8).render(100);
        for l in ['S', 'D', 'N', 'R', 'M', 'H'] {
            assert!(s.contains(l), "missing {l} in\n{s}");
        }
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn render_width_is_respected() {
        let m = model();
        let s = Diagram::nic_barrier(&m, 4).render(60);
        for line in s.lines().filter(|l| l.contains('|')) {
            let inner = line.split('|').nth(1).unwrap();
            assert_eq!(inner.chars().count(), 60);
        }
    }
}
