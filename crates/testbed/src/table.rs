//! Plain-text table formatting for the repro binary and EXPERIMENTS.md.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", c, width = widths[i]);
            }
            // trim trailing padding
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let rule: Vec<String> = (0..cols).map(|i| "-".repeat(widths[i])).collect();
        line(&mut out, &rule);
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Format a µs value the way the paper prints them (two decimals).
pub fn us(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a factor of improvement (two decimals, trailing ×).
pub fn factor(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["nodes", "latency"]);
        t.row(vec!["2", "33.10"]);
        t.row(vec!["16", "102.14"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("nodes"));
        assert!(lines[1].starts_with("-----"));
        assert!(lines[3].contains("102.14"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        Table::new(vec!["a", "b"]).row(vec!["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(us(102.1401), "102.14");
        assert_eq!(factor(1.7777), "1.78x");
    }
}
