//! Determinism gate for the parallel sweep engine: a sweep must produce
//! bit-identical measurements no matter how many workers execute it, for
//! every seed — the engine only partitions *which thread runs which
//! cell*, never what a cell computes. Also exercises the large-N
//! configurations the scaling study depends on.

use gmsim_des::check::forall;
use gmsim_gm::GmConfig;
use gmsim_testbed::prelude::*;
use nic_barrier::CostModel;

/// The observable surface of a [`Measurement`] that the scaling study
/// consumes, with floats compared by bit pattern.
fn fingerprint(m: &Measurement) -> (u64, u64, u64, u64, u64, u64) {
    (
        m.mean_us.to_bits(),
        m.first_round_us.to_bits(),
        m.events,
        m.per_round.count(),
        m.per_round.mean().to_bits(),
        m.nic_turnaround.total(),
    )
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial_for_every_seed() {
    forall(6, 0x5eed_5eed, |g| {
        let base = g.any_u64();
        let workers = g.usize_in(2, 8);
        let grid: Vec<BarrierExperiment> = [
            Algorithm::Nic(Descriptor::Pe),
            Algorithm::Host(Descriptor::Pe),
            Algorithm::Nic(Descriptor::gb(2)),
            Algorithm::Nic(Descriptor::dissemination()),
        ]
        .iter()
        .flat_map(|&alg| [3usize, 4, 6].map(|n| (n, alg)))
        .enumerate()
        .map(|(i, (n, alg))| {
            // Skew makes the per-cell seed observable in the latency.
            BarrierExperiment::new(n, alg)
                .rounds(10, 2)
                .skew(5, cell_seed(base, i as u64))
        })
        .collect();
        let serial = SweepEngine::new()
            .workers(1)
            .run(&grid, |_, e| fingerprint(&e.run().expect("serial cell")));
        let parallel = SweepEngine::new()
            .workers(workers)
            .run(&grid, |_, e| fingerprint(&e.run().expect("parallel cell")));
        assert_eq!(serial, parallel, "workers={workers} base={base:#x}");
    });
}

#[test]
fn cell_seeds_decorrelate_cells_with_identical_parameters() {
    // Two cells that differ only in sweep index must see different skew
    // streams — the whole point of the per-cell seed derivation. Skew
    // offsets the synchronized start, so it shows in the cold-start
    // latency (the steady-state mean is deliberately skew-invariant).
    let run = |idx: u64| {
        BarrierExperiment::new(4, Algorithm::Nic(Descriptor::Pe))
            .rounds(10, 2)
            .skew(5, cell_seed(7, idx))
            .run()
            .unwrap()
            .first_round_us
    };
    assert_ne!(run(0).to_bits(), run(1).to_bits());
    // And the same index must reproduce exactly.
    assert_eq!(run(3).to_bits(), run(3).to_bits());
}

#[test]
fn thousand_node_cluster_runs_and_matches_the_scaling_model() {
    let m = BarrierExperiment::new(1024, Algorithm::Nic(Descriptor::Pe))
        .rounds(3, 1)
        .run()
        .expect("1024-node run");
    let model = CostModel::from_config(&GmConfig::paper_host(NicModel::LANAI_4_3));
    let predicted = model.nic_pe_us(1024);
    let rel = (m.mean_us - predicted).abs() / m.mean_us;
    assert!(
        rel < nic_barrier::PE_MODEL_TOLERANCE,
        "1024-node NIC-PE {:.2}us vs model {predicted:.2}us (err {:.1}%)",
        m.mean_us,
        rel * 100.0
    );
}

#[test]
fn latency_grows_monotonically_with_cluster_size() {
    let mean = |n: usize| {
        BarrierExperiment::new(n, Algorithm::Nic(Descriptor::Pe))
            .rounds(3, 1)
            .run()
            .unwrap()
            .mean_us
    };
    let curve: Vec<f64> = [64usize, 128, 256, 512].iter().map(|&n| mean(n)).collect();
    for pair in curve.windows(2) {
        assert!(pair[0] < pair[1], "latency must grow with N: {curve:?}");
    }
}
