//! Steady-state allocation gate for the full barrier hot path.
//!
//! Runs the same NIC-based barrier experiment at two round counts under a
//! counting `#[global_allocator]` and pins the *marginal* allocations per
//! extra round. With the typed `ClusterEvent` scheduler, `Copy` packets, and
//! recycled MCP/host scratch buffers, an extra steady-state barrier round
//! costs no per-event heap allocations — the only allocator traffic left is
//! the amortized doubling of long-lived vectors (completion notes, result
//! aggregation), which grows logarithmically, not per round.
//!
//! Single test in this file on purpose: allocator counts are process-wide
//! and concurrent sibling tests would make the bound meaningless.

use gmsim_testbed::{Algorithm, BarrierExperiment, Descriptor};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates every operation to `System`; only adds a relaxed counter.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

/// Run the experiment and return `(allocations, events fired)`.
fn run_counted(rounds: u64) -> (u64, u64) {
    let e = BarrierExperiment::new(8, Algorithm::Nic(Descriptor::Pe)).rounds(rounds, 5);
    let before = ALLOCS.load(Ordering::Relaxed);
    let m = e.run().unwrap();
    let after = ALLOCS.load(Ordering::Relaxed);
    assert!(m.mean_us > 0.0);
    (after - before, m.events)
}

#[test]
fn steady_state_rounds_allocate_per_round_not_per_event() {
    // Warm the allocator's own structures (thread caches etc.) once.
    run_counted(20);
    let (a50, e50) = run_counted(50);
    let (a150, e150) = run_counted(150);
    let (a250, e250) = run_counted(250);

    // The marginal cost of 100 extra steady-state rounds. With the typed
    // slab scheduler, Copy packets, recycled MCP/host scratch, the shared
    // (`Arc`) collective schedule and the recycled receive-peer buffer,
    // this is zero up to amortized doubling of the long-lived completion
    // notes vector (measured: 2 then 0 at N=8). Signed: totals vary by a
    // couple of allocations run-to-run (hash-seeded container growth), so
    // a longer run can come in *below* a shorter one.
    let d1 = a150 as i64 - a50 as i64;
    let d2 = a250 as i64 - a150 as i64;
    let extra_events = e250 - e150;
    eprintln!("marginal allocations per 100 rounds: {d1} then {d2} ({extra_events} events)");
    assert!(
        extra_events > 5_000,
        "expected a busy fabric, got {extra_events} events"
    );
    for d in [d1, d2] {
        assert!(
            d <= 16,
            "steady-state rounds are allocating again: {d1} then {d2} \
             allocations per 100 rounds for {extra_events} events \
             (totals {a50}/{a150}/{a250}, events {e50}/{e150}/{e250})"
        );
    }
}
