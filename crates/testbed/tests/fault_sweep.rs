//! Testbed-level fault sweep: every barrier algorithm × collective wire
//! mode × a matrix of fault plans, plus a randomized tail. Each scenario
//! must end in a [`Measurement`] or a *typed* [`ExperimentError`] — never a
//! hang (the run loop not draining) and never a panic.

use gmsim_des::check::forall;
use gmsim_des::{Counter, SimTime};
use gmsim_gm::config::CollectiveWireMode;
use gmsim_myrinet::FaultPlan;
use gmsim_testbed::prelude::*;

fn algorithms() -> [Algorithm; 3] {
    [
        Algorithm::Nic(Descriptor::Pe),
        Algorithm::Nic(Descriptor::gb(2)),
        Algorithm::Nic(Descriptor::dissemination()),
    ]
}

fn wire_modes() -> [CollectiveWireMode; 2] {
    [CollectiveWireMode::Reliable, CollectiveWireMode::Unreliable]
}

/// The deterministic corner of the matrix, including both extremes: no
/// faults at all, and a fully severed fabric.
fn plans() -> [FaultPlan; 8] {
    [
        FaultPlan::NONE,
        FaultPlan::drops(0.1),
        FaultPlan::corrupts(0.15),
        FaultPlan::duplicates(0.2),
        FaultPlan::reorders(0.2, SimTime::from_us(30)),
        FaultPlan::drops(0.15).with_burst(3),
        FaultPlan {
            drop_probability: 0.1,
            corrupt_probability: 0.1,
            duplicate_probability: 0.1,
            reorder_probability: 0.1,
            reorder_delay: SimTime::from_us(10),
            ..FaultPlan::NONE
        },
        FaultPlan::drops(1.0),
    ]
}

/// Accept a measurement or a typed protocol failure; anything else (a hang
/// diagnosed as `Hung`, a config error) fails the sweep.
fn assert_clean(result: &Result<Measurement, ExperimentError>, ctx: &str) -> bool {
    match result {
        Ok(m) => {
            assert!(m.mean_us > 0.0, "{ctx}: nonsensical latency");
            true
        }
        Err(ExperimentError::PeerUnreachable { .. } | ExperimentError::IncompleteRound { .. }) => {
            false
        }
        Err(e) => panic!("{ctx}: untyped failure {e}"),
    }
}

#[test]
fn fault_matrix_always_terminates_cleanly() {
    for alg in algorithms() {
        for wire in wire_modes() {
            for (i, plan) in plans().into_iter().enumerate() {
                let ctx = format!("{} wire={wire:?} plan#{i}", alg.name());
                let result = BarrierExperiment::new(4, alg)
                    .rounds(6, 1)
                    .wire(wire)
                    .faults(plan)
                    .run();
                let ok = assert_clean(&result, &ctx);
                if plan.is_none() {
                    assert!(ok, "{ctx}: fault-free run must measure");
                }
                if (plan.drop_probability - 1.0).abs() < f64::EPSILON
                    && wire == CollectiveWireMode::Reliable
                {
                    // Total loss on the reliable stream must be diagnosed
                    // as the firmware giving up, not a generic bad round.
                    assert!(
                        matches!(result, Err(ExperimentError::PeerUnreachable { .. })),
                        "{ctx}: expected PeerUnreachable, got {result:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn randomized_fault_sweep_terminates_cleanly() {
    forall(384, 0x5EED_F417, |g| {
        let alg = algorithms()[g.usize_in(0, 2)];
        let wire = wire_modes()[g.usize_in(0, 1)];
        let procs = g.usize_in(2, 5);
        let plan = FaultPlan {
            drop_probability: g.f64_in(0.0, 0.3),
            corrupt_probability: g.f64_in(0.0, 0.2),
            duplicate_probability: g.f64_in(0.0, 0.2),
            reorder_probability: g.f64_in(0.0, 0.2),
            reorder_delay: SimTime::from_us(g.u64_in(1, 60)),
            burst_len: g.u32_in(1, 3),
            only_src: if g.chance(0.2) {
                Some(g.u32_in(0, (procs - 1) as u32))
            } else {
                None
            },
        };
        let seed = g.any_u64();
        let ctx = format!("{} wire={wire:?} procs={procs} seed={seed:#x}", alg.name());
        let result = BarrierExperiment::new(procs, alg)
            .rounds(5, 1)
            .wire(wire)
            .skew(0, seed)
            .faults(plan)
            .run();
        if assert_clean(&result, &ctx) {
            let m = result.unwrap();
            // The fault counters ride back through the registry: whatever
            // the fabric injected is visible to the experiment.
            let injected = m.metrics.get(Counter::PacketsDropped)
                + m.metrics.get(Counter::PacketsCorrupted)
                + m.metrics.get(Counter::DupRx)
                + m.metrics.get(Counter::ReorderRx);
            if plan.is_none() {
                assert_eq!(injected, 0, "{ctx}: faults without a plan");
            }
        }
    });
}

/// Fault-free measurements are bit-identical whether or not the (inactive)
/// fault machinery is compiled into the run: the golden latencies cannot
/// shift underneath the calibration gate.
#[test]
fn inactive_faults_leave_latency_untouched() {
    let base = BarrierExperiment::new(4, Algorithm::Nic(Descriptor::Pe)).rounds(8, 1);
    let plain = base.run().unwrap();
    let with_none = base.faults(FaultPlan::NONE).run().unwrap();
    assert_eq!(plain.mean_us, with_none.mean_us);
    assert_eq!(plain.events, with_none.events);
}

/// Duplicate and reorder injections are counted into the metric registry.
#[test]
fn duplicate_and_reorder_counters_populate() {
    let m = BarrierExperiment::new(4, Algorithm::Nic(Descriptor::Pe))
        .rounds(20, 2)
        .faults(FaultPlan {
            duplicate_probability: 0.3,
            reorder_probability: 0.3,
            reorder_delay: SimTime::from_us(5),
            ..FaultPlan::NONE
        })
        .run()
        .unwrap();
    assert!(m.metrics.get(Counter::DupRx) > 0, "no duplicates recorded");
    assert!(
        m.metrics.get(Counter::ReorderRx) > 0,
        "no reorders recorded"
    );
    // Duplicates arrive on live connections and are discarded by sequence:
    // the firmware's dup_drops must see at least some of them.
    assert!(m.metrics.get(Counter::DupDrops) > 0);
}
