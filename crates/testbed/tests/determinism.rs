//! Determinism gate for the observability layer: the same seed must
//! produce a bit-identical structured trace, identical counters, and an
//! identical latency — for both interpreters, with and without wire
//! faults. Tracing itself must not perturb the simulation either: a run
//! with the tracer on reports the same latency as a run with it off.

use gmsim_testbed::prelude::*;

fn base(alg: Algorithm, faults: FaultPlan) -> BarrierExperiment {
    BarrierExperiment::new(4, alg)
        .rounds(30, 5)
        .faults(faults)
        .trace(1 << 16)
}

#[test]
fn same_seed_is_bit_identical_across_interpreters_and_faults() {
    for alg in [
        Algorithm::Nic(Descriptor::Pe),
        Algorithm::Host(Descriptor::Pe),
    ] {
        for faults in [FaultPlan::NONE, FaultPlan::drops(0.02)] {
            let e = base(alg, faults);
            let a = e.run().unwrap();
            let b = e.run().unwrap();
            assert!(!a.trace.is_empty(), "{alg:?}: trace must be populated");
            assert_eq!(a.trace, b.trace, "{alg:?} faults={faults:?}: trace");
            assert_eq!(a.metrics, b.metrics, "{alg:?} faults={faults:?}: counters");
            assert_eq!(
                a.mean_us.to_bits(),
                b.mean_us.to_bits(),
                "{alg:?} faults={faults:?}: latency"
            );
        }
    }
}

#[test]
fn faults_change_the_trace_but_not_reproducibility() {
    let clean = base(Algorithm::Nic(Descriptor::Pe), FaultPlan::NONE)
        .run()
        .unwrap();
    let faulty = base(Algorithm::Nic(Descriptor::Pe), FaultPlan::drops(0.05))
        .run()
        .unwrap();
    assert_ne!(clean.trace, faulty.trace);
    assert_eq!(clean.metrics.get(Counter::PacketsDropped), 0);
    assert!(faulty.metrics.get(Counter::PacketsDropped) > 0);
    assert!(faulty.metrics.get(Counter::PacketsRetransmitted) > 0);
    assert!(faulty.mean_us > clean.mean_us);
}

#[test]
fn tracing_does_not_perturb_timing() {
    let traced = base(Algorithm::Nic(Descriptor::Pe), FaultPlan::NONE)
        .run()
        .unwrap();
    let silent = BarrierExperiment::new(4, Algorithm::Nic(Descriptor::Pe))
        .rounds(30, 5)
        .run()
        .unwrap();
    assert_eq!(traced.mean_us.to_bits(), silent.mean_us.to_bits());
    assert_eq!(traced.metrics, silent.metrics);
    assert!(silent.trace.is_empty());
}
