//! The NIC clock: firmware cycles ⇄ simulated time.

use gmsim_des::SimTime;

/// A fixed-frequency clock. LANai 4.3 runs at 33 MHz, LANai 7.2 at 66 MHz;
/// the paper attributes its improved 8-node factor (1.66 → 1.83) entirely to
/// this difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NicClock {
    mhz: u32,
}

impl NicClock {
    /// A clock at `mhz` megahertz.
    ///
    /// # Panics
    /// Panics at 0 MHz.
    pub const fn new(mhz: u32) -> Self {
        assert!(mhz > 0, "zero-frequency NIC clock");
        NicClock { mhz }
    }

    /// Frequency in MHz.
    pub const fn mhz(&self) -> u32 {
        self.mhz
    }

    /// Duration of `cycles` firmware cycles. Rounds up to whole nanoseconds
    /// so work is never free.
    pub fn cycles(&self, cycles: u64) -> SimTime {
        // cycles / (mhz * 1e6 Hz) seconds = cycles * 1000 / mhz ns
        SimTime::from_ns((cycles * 1_000).div_ceil(self.mhz as u64))
    }

    /// How many whole cycles fit in `t` (rounding down).
    pub fn cycles_in(&self, t: SimTime) -> u64 {
        t.as_ns() * self.mhz as u64 / 1_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_durations() {
        let c33 = NicClock::new(33);
        let c66 = NicClock::new(66);
        // 33 cycles at 33 MHz = 1 us
        assert_eq!(c33.cycles(33_000), SimTime::from_us(1_000));
        // the same work at 66 MHz takes half the time
        assert_eq!(c66.cycles(33_000), SimTime::from_us(500));
    }

    #[test]
    fn rounding_is_up_and_never_free() {
        let c = NicClock::new(33);
        assert_eq!(c.cycles(0), SimTime::ZERO);
        assert!(c.cycles(1) >= SimTime::from_ns(30));
        // 1 cycle at 33 MHz = 30.30ns, rounds to 31
        assert_eq!(c.cycles(1), SimTime::from_ns(31));
    }

    #[test]
    fn inverse_is_conservative() {
        let c = NicClock::new(66);
        for cycles in [1u64, 7, 100, 12345] {
            let t = c.cycles(cycles);
            assert!(c.cycles_in(t) >= cycles);
        }
    }

    #[test]
    #[should_panic]
    fn zero_mhz_panics() {
        let _ = NicClock::new(0);
    }
}
