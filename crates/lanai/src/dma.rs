//! DMA engine model.
//!
//! Each NIC has two independent DMA engines: SDMA moves send payloads from
//! pinned host memory into NIC transmit buffers, RDMA moves received data
//! (and host notifications) the other way. A transfer costs a fixed startup
//! (engine programming, bus arbitration — charged in NIC cycles so it scales
//! with the card) plus a per-byte term, and each engine performs one
//! transfer at a time.

use crate::clock::NicClock;
use gmsim_des::SimTime;

/// One DMA engine (SDMA or RDMA direction).
#[derive(Debug, Clone)]
pub struct DmaEngine {
    clock: NicClock,
    startup_cycles: u64,
    /// Sustained copy bandwidth over the I/O bus, bytes per nanosecond.
    bytes_per_ns: f64,
    busy_until: SimTime,
    /// Total transfers performed.
    transfers: u64,
    /// Total bytes moved.
    bytes: u64,
}

impl DmaEngine {
    /// A new idle engine.
    pub fn new(clock: NicClock, startup_cycles: u64, bytes_per_ns: f64) -> Self {
        assert!(bytes_per_ns > 0.0);
        DmaEngine {
            clock,
            startup_cycles,
            bytes_per_ns,
            busy_until: SimTime::ZERO,
            transfers: 0,
            bytes: 0,
        }
    }

    /// Pure cost of one transfer of `bytes` (startup + copy), independent of
    /// queueing.
    pub fn transfer_cost(&self, bytes: usize) -> SimTime {
        self.clock.cycles(self.startup_cycles)
            + SimTime::from_ns((bytes as f64 / self.bytes_per_ns).ceil() as u64)
    }

    /// Begin a transfer of `bytes` no earlier than `earliest`; returns the
    /// completion time. The engine is busy until then.
    pub fn begin(&mut self, bytes: usize, earliest: SimTime) -> SimTime {
        let start = self.busy_until.max(earliest);
        let done = start + self.transfer_cost(bytes);
        self.busy_until = done;
        self.transfers += 1;
        self.bytes += bytes as u64;
        done
    }

    /// When the engine next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Transfers performed so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Bytes moved so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> DmaEngine {
        // 33 MHz, 330-cycle startup (10us), 0.128 B/ns (~128 MB/s PCI)
        DmaEngine::new(NicClock::new(33), 330, 0.128)
    }

    #[test]
    fn cost_is_startup_plus_per_byte() {
        let e = engine();
        let zero = e.transfer_cost(0);
        assert_eq!(zero, SimTime::from_ns(10_000));
        // 128 bytes at 0.128 B/ns = 1000 ns
        assert_eq!(e.transfer_cost(128), zero + SimTime::from_ns(1_000));
    }

    #[test]
    fn transfers_serialize() {
        let mut e = engine();
        let d1 = e.begin(128, SimTime::ZERO);
        let d2 = e.begin(128, SimTime::ZERO);
        assert_eq!(d2 - d1, d1 - SimTime::ZERO);
        assert_eq!(e.transfers(), 2);
        assert_eq!(e.bytes(), 256);
    }

    #[test]
    fn earliest_respected_when_idle() {
        let mut e = engine();
        let done = e.begin(0, SimTime::from_us(50));
        assert_eq!(done, SimTime::from_us(60));
        assert_eq!(e.busy_until(), done);
    }

    #[test]
    fn faster_clock_cuts_startup_only() {
        let slow = DmaEngine::new(NicClock::new(33), 330, 0.128);
        let fast = DmaEngine::new(NicClock::new(66), 330, 0.128);
        let diff = slow.transfer_cost(0) - fast.transfer_cost(0);
        assert_eq!(diff, SimTime::from_ns(5_000));
        // per-byte part identical
        assert_eq!(
            slow.transfer_cost(1000) - slow.transfer_cost(0),
            fast.transfer_cost(1000) - fast.transfer_cost(0)
        );
    }
}
