//! LANai NIC hardware model.
//!
//! The paper's whole point is that Myrinet NICs carry a *programmable
//! processor* (the LANai) running firmware (the MCP), plus DMA engines to
//! and from host memory and independent transmit/receive wire channels. The
//! NIC-based barrier lives in that firmware, so its cost structure — and the
//! difference between the 33 MHz LANai 4.3 and the 66 MHz LANai 7.2 — is
//! what this crate models:
//!
//! * [`NicClock`] converts firmware work measured in *cycles* into simulated
//!   time. Expressing firmware costs in cycles (not seconds) is what makes
//!   the 4.3 → 7.2 comparison a one-parameter change, exactly like swapping
//!   the card in the testbed.
//! * [`NicProcessor`] is the serial execution resource: MCP handlers run to
//!   completion, one at a time. Contention on it (e.g. a GB tree root
//!   absorbing several gather packets back to back) emerges naturally.
//! * [`DmaEngine`] models the SDMA (host→NIC) and RDMA (NIC→host) engines
//!   with a startup cost plus per-byte transfer time and busy-until
//!   serialization.
//! * [`NicModel`] bundles a clock rate and [`FirmwareCosts`] under the names
//!   of real cards: `LANAI_4_3`, `LANAI_7_2`, and an extrapolated `LANAI_9`.

#![warn(missing_docs)]

pub mod clock;
pub mod dma;
pub mod model;
pub mod nic;

pub use clock::NicClock;
pub use dma::DmaEngine;
pub use model::{FirmwareCosts, NicModel};
pub use nic::{NicHardware, NicProcessor};
