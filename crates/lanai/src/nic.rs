//! The assembled NIC: processor + DMA engines.
//!
//! [`NicProcessor`] is the key serial resource: the LANai runs one MCP
//! handler at a time, so concurrent work (a send token arriving while a
//! packet is being received) queues up and the queueing delay appears in
//! measured latency. [`NicHardware`] wires a processor to its SDMA and RDMA
//! engines under a chosen [`NicModel`].

use crate::clock::NicClock;
use crate::dma::DmaEngine;
use crate::model::NicModel;
use gmsim_des::SimTime;

/// The LANai firmware processor: a run-to-completion serial executor.
#[derive(Debug, Clone)]
pub struct NicProcessor {
    clock: NicClock,
    busy_until: SimTime,
    executed_cycles: u64,
}

impl NicProcessor {
    /// An idle processor on `clock`.
    pub fn new(clock: NicClock) -> Self {
        NicProcessor {
            clock,
            busy_until: SimTime::ZERO,
            executed_cycles: 0,
        }
    }

    /// The processor's clock.
    pub fn clock(&self) -> NicClock {
        self.clock
    }

    /// Execute a handler of `cycles` cycles, starting no earlier than
    /// `earliest` and no earlier than the end of the previous handler.
    /// Returns `(start, done)`.
    pub fn run(&mut self, cycles: u64, earliest: SimTime) -> (SimTime, SimTime) {
        let start = self.busy_until.max(earliest);
        let done = start + self.clock.cycles(cycles);
        self.busy_until = done;
        self.executed_cycles += cycles;
        (start, done)
    }

    /// When the processor next goes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total cycles executed (utilization accounting).
    pub fn executed_cycles(&self) -> u64 {
        self.executed_cycles
    }
}

/// One NIC's hardware resources.
#[derive(Debug, Clone)]
pub struct NicHardware {
    model: NicModel,
    /// The firmware processor.
    pub cpu: NicProcessor,
    /// Host→NIC DMA engine.
    pub sdma: DmaEngine,
    /// NIC→host DMA engine.
    pub rdma: DmaEngine,
}

impl NicHardware {
    /// Build the hardware for `model`. DMA startup is charged by the MCP
    /// handler cycles (the cost table), so the engines carry per-byte cost
    /// only.
    pub fn new(model: NicModel) -> Self {
        NicHardware {
            model,
            cpu: NicProcessor::new(model.clock),
            sdma: DmaEngine::new(model.clock, 0, model.dma_bytes_per_ns),
            rdma: DmaEngine::new(model.clock, 0, model.dma_bytes_per_ns),
        }
    }

    /// The model this NIC was built from.
    pub fn model(&self) -> &NicModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_serializes_handlers() {
        let mut p = NicProcessor::new(NicClock::new(33));
        let (s1, d1) = p.run(33, SimTime::ZERO); // 1us
        let (s2, d2) = p.run(33, SimTime::ZERO);
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(d1, SimTime::from_us(1));
        assert_eq!(s2, d1, "second handler waits for the first");
        assert_eq!(d2, SimTime::from_us(2));
        assert_eq!(p.executed_cycles(), 66);
    }

    #[test]
    fn idle_gap_is_respected() {
        let mut p = NicProcessor::new(NicClock::new(33));
        let (_, d1) = p.run(33, SimTime::ZERO);
        let (s2, _) = p.run(33, d1 + SimTime::from_us(5));
        assert_eq!(s2, d1 + SimTime::from_us(5));
    }

    #[test]
    fn zero_cycle_handler_is_instant() {
        let mut p = NicProcessor::new(NicClock::new(66));
        let (s, d) = p.run(0, SimTime::from_us(3));
        assert_eq!(s, d);
    }

    #[test]
    fn hardware_engines_are_independent() {
        let mut h = NicHardware::new(NicModel::LANAI_4_3);
        let a = h.sdma.begin(1280, SimTime::ZERO); // 10us at 0.128B/ns
        let b = h.rdma.begin(1280, SimTime::ZERO);
        assert_eq!(a, b, "SDMA and RDMA do not contend");
        assert_eq!(a, SimTime::from_us(10));
    }

    #[test]
    fn model_accessible() {
        let h = NicHardware::new(NicModel::LANAI_7_2);
        assert_eq!(h.model().name, "LANai 7.2");
        assert_eq!(h.cpu.clock().mhz(), 66);
    }
}
