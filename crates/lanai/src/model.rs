//! Named NIC models and firmware cost tables.
//!
//! Firmware costs are *cycle* counts — properties of the MCP code paths —
//! so a model is (clock rate, cost table, DMA bandwidth). The two cards the
//! paper measures differ only in clock rate, which is exactly how the paper
//! explains its LANai 4.3 → 7.2 improvement.
//!
//! The cycle values were calibrated against the paper's published latencies
//! (see DESIGN.md §9): with these numbers the simulated host-based PE step
//! is ≈45.5 µs on LANai 4.3, giving the paper's 181.8 µs 16-node host
//! barrier and 102 µs NIC barrier.

use crate::clock::NicClock;

/// Per-handler firmware costs, in NIC processor cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FirmwareCosts {
    /// SDMA state machine: pick up a host send token, program the DMA,
    /// prepare the packet for transmission (paper's *SDMA* term; the DMA
    /// engine adds per-byte time on top).
    pub sdma_cycles: u64,
    /// SEND state machine: dispatch one prepared packet to the wire.
    pub send_cycles: u64,
    /// RECV state machine: receive and classify one data packet (paper's
    /// *Recv* term).
    pub recv_cycles: u64,
    /// RECV state machine: receive one NIC-terminated extension packet.
    /// Cheaper than the data path — no receive-token lookup, no RDMA
    /// staging; the packet dies in the firmware.
    pub ext_recv_cycles: u64,
    /// RECV state machine: absorb one acknowledgment.
    pub ack_rx_cycles: u64,
    /// RDMA state machine: prepare an acknowledgment packet.
    pub ack_tx_cycles: u64,
    /// RDMA state machine: program a DMA of data/notification to the host
    /// (paper's *RDMA* term; per-byte time on top).
    pub rdma_cycles: u64,
}

impl FirmwareCosts {
    /// GM 1.2.3 MCP costs (calibrated, DESIGN.md §9).
    pub const GM_1_2_3: FirmwareCosts = FirmwareCosts {
        sdma_cycles: 362,
        send_cycles: 8,
        recv_cycles: 340,
        ext_recv_cycles: 150,
        ack_rx_cycles: 12,
        ack_tx_cycles: 10,
        rdma_cycles: 246,
        // Calibration notes: sdma+send ≈ the paper's SDMA term, recv+ack
        // overhead ≈ Recv, rdma ≈ RDMA. Values tuned so the end-to-end
        // simulated figures land on the published ones.
    };
}

/// A complete NIC hardware description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NicModel {
    /// Marketing/board name, e.g. `"LANai 4.3"`.
    pub name: &'static str,
    /// Firmware processor clock.
    pub clock: NicClock,
    /// Firmware handler cost table.
    pub costs: FirmwareCosts,
    /// Host I/O bus DMA bandwidth, bytes per nanosecond (both engines).
    pub dma_bytes_per_ns: f64,
}

impl NicModel {
    /// The paper's 16-node cluster card: 33 MHz LANai 4.3.
    pub const LANAI_4_3: NicModel = NicModel {
        name: "LANai 4.3",
        clock: NicClock::new(33),
        costs: FirmwareCosts::GM_1_2_3,
        dma_bytes_per_ns: 0.128,
    };

    /// The paper's 8-node cluster card: 66 MHz LANai 7.2.
    pub const LANAI_7_2: NicModel = NicModel {
        name: "LANai 7.2",
        clock: NicClock::new(66),
        costs: FirmwareCosts::GM_1_2_3,
        dma_bytes_per_ns: 0.128,
    };

    /// Extrapolated next-generation card (132 MHz LANai 9 class), used by
    /// the scaling study of §2.2's "factor of improvement will increase ...
    /// as the network performance increases" claim.
    pub const LANAI_9: NicModel = NicModel {
        name: "LANai 9",
        clock: NicClock::new(132),
        costs: FirmwareCosts::GM_1_2_3,
        dma_bytes_per_ns: 0.256,
    };

    /// All the built-in models, slowest first.
    pub const ALL: [NicModel; 3] = [Self::LANAI_4_3, Self::LANAI_7_2, Self::LANAI_9];
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmsim_des::SimTime;

    #[test]
    fn models_differ_only_where_expected() {
        let a = NicModel::LANAI_4_3;
        let b = NicModel::LANAI_7_2;
        assert_eq!(a.costs, b.costs);
        assert_eq!(b.clock.mhz(), 2 * a.clock.mhz());
    }

    #[test]
    fn calibrated_terms_match_design_doc() {
        // DESIGN.md §9: on LANai 4.3 the SDMA term ≈ 11.45 us, Recv ≈ 11 us,
        // RDMA ≈ 7.7 us (to within handler-granularity rounding).
        let m = NicModel::LANAI_4_3;
        let us = |cy: u64| m.clock.cycles(cy).as_us_f64();
        let sdma = us(m.costs.sdma_cycles + m.costs.send_cycles);
        assert!((10.5..12.5).contains(&sdma), "sdma={sdma}");
        let recv = us(m.costs.recv_cycles + m.costs.ack_tx_cycles);
        assert!((10.0..11.5).contains(&recv), "recv={recv}");
        let rdma = us(m.costs.rdma_cycles);
        assert!((7.0..8.0).contains(&rdma), "rdma={rdma}");
    }

    #[test]
    fn faster_card_halves_firmware_time() {
        let cy = FirmwareCosts::GM_1_2_3.recv_cycles;
        let slow = NicModel::LANAI_4_3.clock.cycles(cy);
        let fast = NicModel::LANAI_7_2.clock.cycles(cy);
        let ratio = slow.as_ns() as f64 / fast.as_ns() as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio={ratio}");
    }

    #[test]
    fn all_models_ordered_by_clock() {
        let clocks: Vec<u32> = NicModel::ALL.iter().map(|m| m.clock.mhz()).collect();
        assert!(clocks.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn firmware_cost_is_nonzero_time() {
        let m = NicModel::LANAI_4_3;
        assert!(m.clock.cycles(m.costs.send_cycles) > SimTime::ZERO);
    }
}
