//! The NIC-based barrier firmware extension (§4–5 of the paper).
//!
//! This is the paper's contribution: collective logic executing inside the
//! MCP. The host posts a single collective send token
//! ([`gmsim_gm::CollectiveToken`]) carrying a compiled
//! [`CollectiveSchedule`]; from then on "as soon as a NIC receives a
//! barrier message, the message to the next process can be sent directly"
//! (§2.1) — no host round trips until the final completion RDMA.
//!
//! The extension is a *schedule interpreter*: it walks the token's IR
//! program — send steps, receive steps, a completion delivery — charging
//! LANai cycles per step from the calibrated [`BarrierCosts`] table. Which
//! algorithm the program encodes (PE, GB, dissemination, a reduction, a
//! scan) is invisible here; the compiler in [`crate::schedule`] decided
//! that on the host, exactly as §5.1 argues.
//!
//! Design choices mapped to the paper:
//!
//! * **State in the send token, pointer in the port** (§4.2): each port
//!   slot holds at most one `Run` — the paper's "send token pointer in
//!   the port data structure", and what makes *multiple concurrent
//!   collectives* (one per port) work.
//! * **Unexpected messages** (§3.1/4.3): every arriving collective packet
//!   is first recorded in the per-(port, endpoint) bit array, then the
//!   addressed port's interpreter is *poked* and consumes the record if it
//!   is one it is waiting for. Recording-then-poking makes early, late and
//!   out-of-order arrivals all take the same code path.
//! * **Closed ports** (§3.2): packets for closed ports are recorded; when
//!   the port opens, every record is *rejected* back to its sender, which
//!   resends iff its own port epoch still matches ("but only if the
//!   endpoint that initiated the barrier has not closed since the message
//!   was sent").
//! * **Same-NIC optimization** (§3.4): when the peer endpoint lives on this
//!   NIC, "a barrier message need not actually be sent, but rather just
//!   have a flag set". Local deliveries go through a work queue drained at
//!   the end of each firmware entry point, so co-located endpoints chain
//!   without unbounded recursion.
//! * **Completion order** (§5.2): the compiler places the completion step
//!   *before* any trailing broadcast forwarding, so the completion is
//!   DMAed to the host first, exactly as the paper describes for both the
//!   root and interior GB nodes.

use crate::unexpected::{RecordMeta, UnexpectedRecord};
use gmsim_des::trace::{TracePayload, Unit};
use gmsim_des::{Histogram, SimTime};
use gmsim_gm::{
    Charge, CollectiveSchedule, CollectiveToken, CompletionKind, ExtPacket, GlobalPort, GmConfig,
    GmEvent, McpCore, McpExtension, McpOutput, NodeId, PortId, ScheduleStep, TeamId, TokenCharge,
    GM_NUM_PORTS,
};
use std::any::Any;
use std::collections::VecDeque;

pub use crate::schedule::pkt;

/// Firmware cycle costs of the barrier extension handlers, resolved
/// against the symbolic [`Charge`] annotations of compiled schedules.
///
/// PE costs are calibrated so the simulated latencies land on the paper's
/// published numbers; GB costs reflect the heavier per-hop tree bookkeeping
/// the paper blames for GB's worse two-node latency (§6: "because of the
/// overhead of processing the barrier algorithm at the NIC").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierCosts {
    /// PE-style (`TokenCharge::Light`) collective-token pickup.
    pub pe_token_cycles: u64,
    /// PE send half-step: prepare the packet for the current destination
    /// and queue the token (§5.2's SDMA-side work).
    pub pe_send_cycles: u64,
    /// PE match half-step: clear the bit, bump the node index, write the
    /// next destination, re-queue (§5.2's RDMA-side five-step update).
    pub pe_match_cycles: u64,
    /// Tree (`TokenCharge::Tree`) collective-token pickup.
    pub gb_token_cycles: u64,
    /// Consuming one gather message (tree walk + combine).
    pub gb_gather_cycles: u64,
    /// Re-queueing the token for one broadcast child.
    pub gb_child_cycles: u64,
    /// Recording an unexpected message (bit set).
    pub record_cycles: u64,
    /// Same-NIC optimization: setting the local flag instead of sending.
    pub local_flag_cycles: u64,
}

impl BarrierCosts {
    /// Calibrated against the paper's LANai 4.3 / 7.2 measurements
    /// (DESIGN.md §9 and EXPERIMENTS.md).
    pub const GM_1_2_3: BarrierCosts = BarrierCosts {
        pe_token_cycles: 40,
        pe_send_cycles: 215,
        pe_match_cycles: 205,
        // GB's token is far heavier than PE's: the firmware must parse the
        // parent/children neighbourhood and set up tree state, and the
        // LANai is slow — this is the §6 "overhead of processing the
        // barrier algorithm at the NIC" that makes NIC-GB lose to host-GB
        // at two nodes. Per-hop costs are PE-like.
        gb_token_cycles: 1420,
        gb_gather_cycles: 60,
        gb_child_cycles: 70,
        record_cycles: 30,
        local_flag_cycles: 60,
    };

    /// Cycles charged for a step with the given symbolic cost.
    pub fn step_cycles(&self, charge: Charge) -> u64 {
        match charge {
            Charge::ExchangeSend => self.pe_send_cycles,
            Charge::ExchangeMatch => self.pe_match_cycles,
            Charge::Gather => self.gb_gather_cycles,
            Charge::ChildSend => self.gb_child_cycles,
            Charge::Free => 0,
        }
    }

    /// Cycles charged for picking up a collective token.
    pub fn token_cycles(&self, charge: TokenCharge) -> u64 {
        match charge {
            TokenCharge::Light => self.pe_token_cycles,
            TokenCharge::Tree => self.gb_token_cycles,
        }
    }
}

/// Bin width, in microseconds, of the per-packet NIC turnaround histogram
/// kept by [`BarrierExtension`]. Shared with the testbed's aggregation so
/// per-node histograms merge without rebinning.
pub const TURNAROUND_BIN_US: f64 = 0.25;
/// Bin count of the per-packet NIC turnaround histogram (covers 0–64 µs).
pub const TURNAROUND_BINS: usize = 256;

/// Extension counters (per NIC).
#[derive(Debug, Clone, Copy, Default)]
pub struct BarrierStats {
    /// Collectives completed on this NIC (events delivered to hosts).
    pub completions: u64,
    /// PE packets handled (sent or locally flagged).
    pub pe_msgs: u64,
    /// Gather packets handled.
    pub gather_msgs: u64,
    /// Broadcast packets handled.
    pub bcast_msgs: u64,
    /// Scan packets handled.
    pub scan_msgs: u64,
    /// Same-NIC short-circuits taken (§3.4 optimization).
    pub local_flags: u64,
    /// §3.2 rejections sent on port open.
    pub rejects_sent: u64,
    /// §3.2 rejections received.
    pub rejects_received: u64,
    /// Messages resent in response to a rejection.
    pub resends: u64,
    /// Rejections ignored as stale (sender's port closed/reopened since).
    pub stale_rejects: u64,
    /// Collectives aborted by a port close.
    pub aborted: u64,
    /// Packets whose team had no active run on an open port while *other*
    /// teams' collectives were in flight there — each one is a
    /// cross-delivery the per-team state machine refused to consume.
    /// Always zero on single-team traffic.
    pub cross_team_rejects: u64,
    /// High-water mark of collectives simultaneously in flight on this
    /// NIC across all (port, team) slots.
    pub concurrent_peak: u64,
}

/// An in-flight interpreted collective on one (port, team) — the paper's
/// "send token pointer", generalized to one pointer per communicator. The
/// schedule is the program (shared with the token that posted it — no
/// copy); `pc` the current step; `outstanding` the peers of the current
/// receive step still owing a packet (meaningful only while `parked`);
/// `acc` the value accumulator (operand in, result out).
#[derive(Debug, Clone)]
struct Run {
    team: TeamId,
    schedule: std::sync::Arc<CollectiveSchedule>,
    pc: usize,
    outstanding: Vec<GlobalPort>,
    parked: bool,
    acc: u64,
    /// Per-segment accumulators for pipelined payloads (empty when the
    /// schedule has at most one segment — the barrier/eager fast path,
    /// which stays allocation-free). Each segment is an independent
    /// combine lane, so segmented reductions are combine-order-identical
    /// to the unsegmented oracle lane by lane.
    seg_accs: Vec<u64>,
    /// True once this rank's payload is staged in NIC SRAM — either
    /// fetched over SDMA for a first send, or landed from the wire — so
    /// tree forwarding and later scan rounds never re-fetch from host
    /// memory (the NIC-offload win: interior nodes forward from SRAM).
    payload_staged: bool,
}

/// The last collective message sent to a peer from a port. Kept (bounded:
/// one entry per (port, peer, kind)) *beyond* the collective's completion
/// so the §3.2 reject/resend protocol also works for messages whose sender
/// has no in-flight state left — a GB broadcast after the root exited, or
/// a reduce contribution after the leaf completed locally. Cleared when
/// the port closes, which is exactly the paper's "but only if the endpoint
/// that initiated the barrier has not closed since the message was sent".
#[derive(Debug, Clone, Copy)]
struct SentRecord {
    kind: u8,
    epoch: u32,
    value: u64,
    seg: u32,
    len: u32,
}

/// A locally-delivered packet awaiting processing (same-NIC optimization).
struct LocalDelivery {
    src: GlobalPort,
    dst: GlobalPort,
    ext_type: u8,
    team: TeamId,
    epoch: u32,
    value: u64,
    seg: u32,
    at: SimTime,
}

/// The barrier/collective firmware extension: the NIC-side interpreter of
/// compiled [`CollectiveSchedule`] programs.
pub struct BarrierExtension {
    costs: BarrierCosts,
    /// Per-port run lists: one [`Run`] per team concurrently active on the
    /// port. Single-team traffic keeps each list at length ≤ 1, which is
    /// exactly the paper's one-pointer-per-port layout.
    slots: Vec<Vec<Run>>,
    /// The §3.1 unexpected-message record.
    pub record: UnexpectedRecord,
    /// Counters.
    pub stats: BarrierStats,
    local_queue: VecDeque<LocalDelivery>,
    /// Last message sent per (port, team, peer, packet kind, segment) —
    /// kind-keyed so a lost BCAST and a lost PE to the same peer are both
    /// resendable, team-keyed so overlapping teams never resend each
    /// other's flags, and segment-keyed so a rejected pipelined stream
    /// re-sends every rejected segment rather than `segs` copies of the
    /// last one (which would starve the other combine lanes of that
    /// peer's contribution).
    sent_cache: std::collections::HashMap<(u8, TeamId, GlobalPort, u8, u32), SentRecord>,
    /// Every team that has posted a collective on this NIC, in first-seen
    /// order.
    teams_seen: Vec<TeamId>,
    /// Retired `Run::outstanding` buffers, recycled into the next
    /// collective so steady-state rounds never allocate fresh peer lists.
    spare_outstanding: Vec<Vec<GlobalPort>>,
    /// Retired `Run::seg_accs` buffers, recycled so steady-state pipelined
    /// collectives never allocate fresh lane vectors. Barriers and eager
    /// payloads never touch this (their `seg_accs` stays empty).
    spare_seg_accs: Vec<Vec<u64>>,
    /// Per-packet NIC turnaround: wire arrival of a collective packet to the
    /// firmware being done with it (the paper's per-round NIC cost). Fixed
    /// bins allocated at construction, so recording never allocates.
    turnaround: Histogram,
}

impl BarrierExtension {
    /// An extension for a cluster of `nodes` nodes with calibrated costs.
    pub fn new(nodes: usize) -> Self {
        Self::with_costs(nodes, BarrierCosts::GM_1_2_3)
    }

    /// An extension with explicit costs (for ablations).
    pub fn with_costs(nodes: usize, costs: BarrierCosts) -> Self {
        BarrierExtension {
            costs,
            slots: (0..GM_NUM_PORTS).map(|_| Vec::new()).collect(),
            record: UnexpectedRecord::new(nodes),
            stats: BarrierStats::default(),
            local_queue: VecDeque::new(),
            sent_cache: std::collections::HashMap::new(),
            teams_seen: Vec::new(),
            spare_outstanding: Vec::new(),
            spare_seg_accs: Vec::new(),
            turnaround: Histogram::new(TURNAROUND_BIN_US, TURNAROUND_BINS),
        }
    }

    /// Per-packet NIC turnaround histogram (µs).
    pub fn turnaround(&self) -> &Histogram {
        &self.turnaround
    }

    /// A factory for [`gmsim_gm::cluster::ClusterBuilder::extension`].
    pub fn factory() -> impl Fn(NodeId, usize, &GmConfig) -> Box<dyn McpExtension> {
        |_, size, _| Box::new(BarrierExtension::new(size))
    }

    /// A factory with explicit costs.
    pub fn factory_with_costs(
        costs: BarrierCosts,
    ) -> impl Fn(NodeId, usize, &GmConfig) -> Box<dyn McpExtension> {
        move |_, size, _| Box::new(BarrierExtension::with_costs(size, costs))
    }

    /// Is any collective currently active on `port`?
    pub fn is_active(&self, port: PortId) -> bool {
        !self.slots[port.idx()].is_empty()
    }

    /// Is `team`'s collective currently active on `port`?
    pub fn is_active_team(&self, port: PortId, team: TeamId) -> bool {
        self.slots[port.idx()].iter().any(|r| r.team == team)
    }

    /// Every team that has posted a collective on this NIC, in first-seen
    /// order.
    pub fn teams_seen(&self) -> &[TeamId] {
        &self.teams_seen
    }

    // ---- packet egress ---------------------------------------------------

    /// Send (or locally flag) one collective packet from `port` to `dst`
    /// on behalf of `team`. On the wire the team id rides the high half of
    /// the packet's `a` word, above the epoch — zero for [`TeamId::GLOBAL`],
    /// so single-team traffic is bit-identical to the pre-team encoding.
    /// Data-carrying collectives pass the segment index and its byte count;
    /// barriers pass `(0, 0)` and put exactly the classic 17 bytes on the
    /// wire.
    #[allow(clippy::too_many_arguments)] // firmware handler plumbing
    fn emit(
        &mut self,
        core: &mut McpCore,
        port: PortId,
        team: TeamId,
        dst: GlobalPort,
        ext_type: u8,
        value: u64,
        seg: u32,
        seg_len: u32,
        ready: SimTime,
        out: &mut Vec<McpOutput>,
    ) {
        match ext_type {
            pkt::PE => self.stats.pe_msgs += 1,
            pkt::GATHER => self.stats.gather_msgs += 1,
            pkt::BCAST => self.stats.bcast_msgs += 1,
            pkt::SCAN => self.stats.scan_msgs += 1,
            _ => {}
        }
        let epoch = core.port(port).epoch();
        self.sent_cache.insert(
            (port.0, team, dst, ext_type, seg),
            SentRecord {
                kind: ext_type,
                epoch,
                value,
                seg,
                len: seg_len,
            },
        );
        if dst.node == core.node() && core.config().same_nic_optimization {
            // §3.4: co-located peer — set the flag, skip the wire.
            let t = core.exec(self.costs.local_flag_cycles, ready);
            self.stats.local_flags += 1;
            core.trace(
                t,
                Unit::Ext,
                TracePayload::BarrierSend {
                    peer: dst.node.0 as u32,
                    kind: ext_type,
                    local: true,
                },
            );
            self.local_queue.push_back(LocalDelivery {
                src: GlobalPort {
                    node: core.node(),
                    port,
                },
                dst,
                ext_type,
                team,
                epoch,
                value,
                seg,
                at: t,
            });
        } else {
            core.trace(
                ready,
                Unit::Ext,
                TracePayload::BarrierSend {
                    peer: dst.node.0 as u32,
                    kind: ext_type,
                    local: false,
                },
            );
            core.send_ext(
                port,
                dst,
                ExtPacket::new(ext_type, Self::pack_a(team, epoch), value)
                    .with_segment(seg, seg_len),
                ready,
                out,
            );
        }
    }

    /// Pack the wire `a` word: team id in the high 32 bits, port epoch in
    /// the low 32. [`TeamId::GLOBAL`] packs to the bare epoch.
    fn pack_a(team: TeamId, epoch: u32) -> u64 {
        ((team.0 as u64) << 32) | epoch as u64
    }

    /// Drain locally-flagged deliveries (run at the end of every entry
    /// point; items may enqueue further items).
    fn drain_local(&mut self, core: &mut McpCore, out: &mut Vec<McpOutput>) {
        while let Some(d) = self.local_queue.pop_front() {
            self.accept(
                core, d.src, d.dst, d.ext_type, d.team, d.epoch, d.value, d.seg, d.at, out,
            );
        }
    }

    // ---- packet ingress --------------------------------------------------

    /// Shared ingress for wire and local packets: record, then poke the
    /// addressed port's interpreter. No collective-specific logic lives
    /// here — what the packet *means* is decided by the schedule step that
    /// eventually consumes its record.
    #[allow(clippy::too_many_arguments)]
    fn accept(
        &mut self,
        core: &mut McpCore,
        src: GlobalPort,
        dst: GlobalPort,
        ext_type: u8,
        team: TeamId,
        epoch: u32,
        value: u64,
        seg: u32,
        now: SimTime,
        out: &mut Vec<McpOutput>,
    ) {
        if ext_type == pkt::REJECT {
            // A REJECT's value word names the kind of the rejected message;
            // its segment word names the rejected segment.
            self.handle_reject(core, src, dst.port, team, epoch, value as u8, seg, now, out);
            return;
        }
        let t = core.exec(self.costs.record_cycles, now);
        core.trace(
            t,
            Unit::Ext,
            TracePayload::BarrierRecv {
                peer: src.node.0 as u32,
                kind: ext_type,
            },
        );
        self.record.set(
            dst.port,
            src,
            RecordMeta {
                team,
                kind: ext_type,
                epoch,
                value,
                seg,
            },
        );
        // A closed port keeps the record until it opens (§3.2).
        if core.port(dst.port).is_open() {
            self.interpret(core, dst.port, team, t, out);
        }
    }

    // ---- the schedule interpreter ----------------------------------------

    /// Advance `team`'s program on `port` as far as the unexpected record
    /// allows: emit send steps, consume available receive records, deliver
    /// completions, and park on a receive still owed packets. Other teams'
    /// runs on the same port are untouched — a poke for a team with no run
    /// while others are active is counted as a cross-team reject.
    ///
    /// The [`Run`] is taken out of the slot for the duration (nothing called
    /// from here re-reads the slot), so steps are matched by reference —
    /// no per-step clone of the schedule's peer lists.
    fn interpret(
        &mut self,
        core: &mut McpCore,
        port: PortId,
        team: TeamId,
        now: SimTime,
        out: &mut Vec<McpOutput>,
    ) {
        let mut t = now;
        let Some(pos) = self.slots[port.idx()].iter().position(|r| r.team == team) else {
            if !self.slots[port.idx()].is_empty() {
                // The packet's flag stays recorded for its own team; the
                // active teams on this port refused to consume it.
                self.stats.cross_team_rejects += 1;
            }
            return;
        };
        let mut run = self.slots[port.idx()].swap_remove(pos);
        loop {
            if run.pc == run.schedule.steps.len() {
                // Program exhausted: drop the token pointer (§4.2 "sets the
                // send token pointer in the port data structure to zero"),
                // keeping its outstanding buffer for the next collective.
                run.outstanding.clear();
                self.spare_outstanding
                    .push(std::mem::take(&mut run.outstanding));
                if !run.seg_accs.is_empty() {
                    run.seg_accs.clear();
                    self.spare_seg_accs.push(std::mem::take(&mut run.seg_accs));
                }
                return;
            }
            match &run.schedule.steps[run.pc] {
                ScheduleStep::SendTo {
                    peers,
                    kind,
                    charge,
                } => {
                    let (kind, charge) = (*kind, *charge);
                    let payload = run.schedule.payload;
                    let segs = payload.segments().get();
                    // Segment-major pipelining: segment 0 goes to every peer
                    // before segment 1 is touched, so a downstream node can
                    // start forwarding segment 0 while we still fetch later
                    // segments — the eager/pipelined crossover the payload
                    // study measures. Barriers and eager payloads take this
                    // loop with `segs == 1` and are step-identical to the
                    // classic path.
                    for seg in 0..segs {
                        let seg_len = payload.seg_len(seg).get() as u32;
                        if seg_len > 0 && !run.payload_staged {
                            // Payload not yet in NIC SRAM: fetch this
                            // segment from host memory over the SDMA engine
                            // before anything can go on the wire.
                            t = core.hw.sdma.begin(seg_len as usize, t);
                        }
                        let value = if run.seg_accs.is_empty() {
                            run.acc
                        } else {
                            run.seg_accs[seg as usize]
                        };
                        for &peer in peers.iter() {
                            let cycles = self.costs.step_cycles(charge);
                            if cycles > 0 {
                                t = core.exec(cycles, t);
                            }
                            self.emit(core, port, team, peer, kind, value, seg, seg_len, t, out);
                        }
                    }
                    if !payload.is_empty() {
                        run.payload_staged = true;
                    }
                    run.pc += 1;
                }
                ScheduleStep::RecvFrom {
                    peers,
                    kind,
                    combine,
                    charge,
                } => {
                    let (kind, combine, charge) = (*kind, *combine, *charge);
                    let payload = run.schedule.payload;
                    let segs = payload.segments().get();
                    // The peer list is copied into the run's reusable
                    // buffer on the step's first visit; parked state keeps
                    // whatever is still outstanding in place. A pipelined
                    // payload arrives as `segs` packets per peer, each
                    // consuming one entry — the wire is reliable and
                    // ordered, so per-peer segments drain FIFO.
                    if !run.parked {
                        run.outstanding.clear();
                        for _ in 0..segs {
                            run.outstanding.extend_from_slice(peers);
                        }
                    }
                    // Consume every peer whose packet is already recorded;
                    // re-scan until a full pass makes no progress.
                    let mut staged = false;
                    loop {
                        let mut consumed_any = false;
                        let record = &mut self.record;
                        let costs = &self.costs;
                        let acc = &mut run.acc;
                        let seg_accs = &mut run.seg_accs;
                        run.outstanding.retain(|peer| {
                            match record.check_clear(port, team, *peer, kind) {
                                Some(meta) => {
                                    let cycles = costs.step_cycles(charge);
                                    if cycles > 0 {
                                        t = core.exec(cycles, t);
                                    }
                                    // Each segment is an independent combine
                                    // lane, so segmented reductions apply
                                    // operands in the same per-lane order as
                                    // the unsegmented oracle.
                                    let lane = if seg_accs.is_empty() {
                                        &mut *acc
                                    } else {
                                        &mut seg_accs[meta.seg as usize]
                                    };
                                    *lane = match combine {
                                        Some(op) => op.combine(*lane, meta.value),
                                        None => meta.value,
                                    };
                                    let seg_len = payload.seg_len(meta.seg).as_usize();
                                    if seg_len > 0 {
                                        // The landed segment crosses to host
                                        // memory over RDMA. The engine's busy
                                        // window serializes the completion DMA
                                        // behind the data, but forwarding runs
                                        // from NIC SRAM and need not wait — so
                                        // `t` does not advance here.
                                        let _ = core.hw.rdma.begin(seg_len, t);
                                        staged = true;
                                    }
                                    consumed_any = true;
                                    false
                                }
                                None => true,
                            }
                        });
                        if run.outstanding.is_empty() || !consumed_any {
                            break;
                        }
                    }
                    if staged {
                        // Wire data is now resident in NIC SRAM: later
                        // SendTo steps (tree forwarding, scan rounds)
                        // re-send it without another host fetch.
                        run.payload_staged = true;
                    }
                    if run.outstanding.is_empty() {
                        run.parked = false;
                        run.pc += 1;
                    } else {
                        // Park until more packets arrive and poke us.
                        run.parked = true;
                        self.slots[port.idx()].push(run);
                        return;
                    }
                }
                ScheduleStep::DeliverCompletion(kind) => {
                    // Segmented runs report lane 0 — the oracle's value for
                    // the first segment, which the property tests check
                    // against the unsegmented run.
                    let acc = if run.seg_accs.is_empty() {
                        run.acc
                    } else {
                        run.seg_accs[0]
                    };
                    let ev = match kind {
                        CompletionKind::Barrier => GmEvent::BarrierComplete { team },
                        CompletionKind::Broadcast => GmEvent::BroadcastComplete { value: acc },
                        CompletionKind::Reduce => GmEvent::ReduceComplete { value: acc },
                        CompletionKind::Scan => GmEvent::ScanComplete { value: acc },
                    };
                    // §5.2 completion sequence: consume the barrier buffer
                    // the host provided (`gm_provide_barrier_buffer`),
                    // return the send token, DMA the completion event. Any
                    // trailing forwarding steps run after this.
                    core.port_mut(port).take_barrier_buffer();
                    core.port_mut(port).return_send_token();
                    self.stats.completions += 1;
                    core.complete_to_host(port, ev, t, out);
                    run.pc += 1;
                }
            }
        }
    }

    // ---- §3.2 rejection protocol ------------------------------------------

    /// A REJECT arrived: the endpoint `rejecter` had recorded our message
    /// while its port was closed, and has now flushed it. Resend iff we are
    /// still the same process (`epoch` matches) and the collective is still
    /// in flight.
    #[allow(clippy::too_many_arguments)]
    fn handle_reject(
        &mut self,
        core: &mut McpCore,
        rejecter: GlobalPort,
        port: PortId,
        team: TeamId,
        epoch: u32,
        kind: u8,
        seg: u32,
        now: SimTime,
        out: &mut Vec<McpOutput>,
    ) {
        self.stats.rejects_received += 1;
        let t = core.exec(self.costs.record_cycles, now);
        if !core.port(port).is_open() || core.port(port).epoch() != epoch {
            self.stats.stale_rejects += 1;
            return;
        }
        // The sent cache remembers the last message of each (kind, segment)
        // this (still-alive) process sent to the rejecter, whether or not
        // the collective that produced it is still in flight.
        match self
            .sent_cache
            .get(&(port.0, team, rejecter, kind, seg))
            .copied()
        {
            Some(rec) if rec.epoch == epoch => {
                self.stats.resends += 1;
                self.emit(
                    core, port, team, rejecter, rec.kind, rec.value, rec.seg, rec.len, t, out,
                );
            }
            _ => self.stats.stale_rejects += 1,
        }
    }
}

impl McpExtension for BarrierExtension {
    fn on_collective_token(
        &mut self,
        core: &mut McpCore,
        port: PortId,
        token: CollectiveToken,
        now: SimTime,
        out: &mut Vec<McpOutput>,
    ) {
        let team = token.team;
        assert!(
            !self.is_active_team(port, team),
            "port {port:?} already has an active collective for team {team:?}"
        );
        let t = core.exec(self.costs.token_cycles(token.schedule.token_charge), now);
        if !self.teams_seen.contains(&team) {
            self.teams_seen.push(team);
        }
        let segs = token.schedule.payload.segments().get();
        let seg_accs = if segs > 1 {
            // One combine lane per segment, each seeded with this rank's
            // operand — exactly what `acc` holds for the unsegmented case.
            let mut lanes = self.spare_seg_accs.pop().unwrap_or_default();
            lanes.clear();
            lanes.resize(segs as usize, token.value);
            lanes
        } else {
            Vec::new()
        };
        self.slots[port.idx()].push(Run {
            team,
            schedule: token.schedule,
            pc: 0,
            outstanding: self.spare_outstanding.pop().unwrap_or_default(),
            parked: false,
            acc: token.value,
            seg_accs,
            payload_staged: false,
        });
        let active: usize = self.slots.iter().map(Vec::len).sum();
        self.stats.concurrent_peak = self.stats.concurrent_peak.max(active as u64);
        self.interpret(core, port, team, t, out);
        self.drain_local(core, out);
    }

    fn on_ext_packet(
        &mut self,
        core: &mut McpCore,
        src: GlobalPort,
        dst: GlobalPort,
        body: ExtPacket,
        now: SimTime,
        out: &mut Vec<McpOutput>,
    ) {
        self.accept(
            core,
            src,
            dst,
            body.ext_type,
            TeamId((body.a >> 32) as u32),
            body.a as u32,
            body.b,
            body.seg,
            now,
            out,
        );
        self.drain_local(core, out);
        // Per-round NIC turnaround: packet arrival to the firmware having
        // finished everything this packet triggered (record, interpreter
        // steps, forwarded sends). This is the paper's per-round NIC cost.
        let done = core.hw.cpu.busy_until();
        self.turnaround.record(done.saturating_sub(now).as_us_f64());
    }

    fn on_port_open(
        &mut self,
        core: &mut McpCore,
        port: PortId,
        now: SimTime,
        out: &mut Vec<McpOutput>,
    ) {
        // §3.2: flush every message recorded while the port was closed back
        // to its sender.
        let mut t = now;
        for (from, meta) in self.record.drain_port(port) {
            t = core.exec(self.costs.record_cycles, t);
            self.stats.rejects_sent += 1;
            core.send_ext(
                port,
                from,
                ExtPacket::new(
                    pkt::REJECT,
                    Self::pack_a(meta.team, meta.epoch),
                    meta.kind as u64,
                )
                .with_segment(meta.seg, 0),
                t,
                out,
            );
        }
        self.drain_local(core, out);
    }

    fn on_port_close(
        &mut self,
        _core: &mut McpCore,
        port: PortId,
        _now: SimTime,
        _out: &mut Vec<McpOutput>,
    ) {
        for mut run in self.slots[port.idx()].drain(..) {
            self.stats.aborted += 1;
            run.outstanding.clear();
            self.spare_outstanding
                .push(std::mem::take(&mut run.outstanding));
            if !run.seg_accs.is_empty() {
                run.seg_accs.clear();
                self.spare_seg_accs.push(std::mem::take(&mut run.seg_accs));
            }
        }
        self.sent_cache.retain(|(p, _, _, _, _), _| *p != port.0);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Convenience: the unexpected-record stats on `node` of a cluster.
pub fn record_stats_of(cluster: &gmsim_gm::Cluster, node: usize) -> crate::unexpected::RecordStats {
    cluster.nodes[node]
        .mcp
        .ext()
        .as_any()
        .downcast_ref::<BarrierExtension>()
        .expect("BarrierExtension not installed")
        .record
        .stats
}

/// Convenience: the extension's stats on `node` of a cluster.
pub fn stats_of(cluster: &gmsim_gm::Cluster, node: usize) -> BarrierStats {
    cluster.nodes[node]
        .mcp
        .ext()
        .as_any()
        .downcast_ref::<BarrierExtension>()
        .expect("BarrierExtension not installed")
        .stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::BarrierGroup;
    use gmsim_gm::{GmConfig, Mcp, SendToken};

    /// Drive two MCPs by hand (no cluster): node 0 and node 1 both run a
    /// 2-party PE barrier; we shuttle packets between them manually.
    #[test]
    fn two_party_pe_by_hand() {
        let cfg = GmConfig::default();
        let group = BarrierGroup::one_per_node(2, 1);
        let mut mcps: Vec<Mcp> = (0..2)
            .map(|i| {
                let mut m = Mcp::new(
                    McpCore::new(NodeId(i), 2, cfg),
                    Box::new(BarrierExtension::new(2)),
                );
                m.open_port(PortId(1), SimTime::ZERO);
                for _ in 0..4 {
                    m.core.port_mut(PortId(1)).provide_barrier_buffer();
                }
                m
            })
            .collect();
        // Post the collective tokens on both nodes.
        let mut outs0 = mcps[0].handle_send_token(
            SendToken::Collective {
                src_port: PortId(1),
                token: group.pe_token(0),
            },
            SimTime::ZERO,
        );
        let outs1 = mcps[1].handle_send_token(
            SendToken::Collective {
                src_port: PortId(1),
                token: group.pe_token(1),
            },
            SimTime::ZERO,
        );
        // Each emitted exactly one PE transmit (plus its RTO timer).
        let take_pkt = |outs: &mut Vec<McpOutput>| -> gmsim_gm::Packet {
            let pos = outs
                .iter()
                .position(|o| matches!(o, McpOutput::Transmit { .. }))
                .expect("no transmit");
            match outs.remove(pos) {
                McpOutput::Transmit { pkt, .. } => pkt,
                _ => unreachable!(),
            }
        };
        let mut outs1 = outs1;
        let p0 = take_pkt(&mut outs0);
        let p1 = take_pkt(&mut outs1);
        // Cross-deliver.
        let done1 = mcps[1].handle_wire_packet(p0, false, SimTime::from_us(5));
        let done0 = mcps[0].handle_wire_packet(p1, false, SimTime::from_us(5));
        let completed = |outs: &[McpOutput]| {
            outs.iter().any(|o| {
                matches!(
                    o,
                    McpOutput::HostEvent {
                        ev: GmEvent::BarrierComplete { .. },
                        ..
                    }
                )
            })
        };
        assert!(completed(&done0), "node 0 completed");
        assert!(completed(&done1), "node 1 completed");
    }

    #[test]
    fn early_arrival_is_recorded_then_consumed() {
        let cfg = GmConfig::default();
        let group = BarrierGroup::one_per_node(2, 1);
        let mut m = Mcp::new(
            McpCore::new(NodeId(0), 2, cfg),
            Box::new(BarrierExtension::new(2)),
        );
        m.open_port(PortId(1), SimTime::ZERO);
        for _ in 0..4 {
            m.core.port_mut(PortId(1)).provide_barrier_buffer();
        }
        // Peer's barrier message arrives before our host even initiated.
        let early = gmsim_gm::Packet {
            src: GlobalPort::new(1, 1),
            dst: GlobalPort::new(0, 1),
            kind: gmsim_gm::PacketKind::Ext {
                seq: Some(0),
                body: ExtPacket::new(pkt::PE, 1, 0),
            },
        };
        let outs = m.handle_wire_packet(early, false, SimTime::ZERO);
        assert!(
            !outs
                .iter()
                .any(|o| matches!(o, McpOutput::HostEvent { .. })),
            "nothing completes yet"
        );
        // Now the host initiates: the recorded message satisfies the step
        // immediately and the barrier completes without waiting.
        let outs = m.handle_send_token(
            SendToken::Collective {
                src_port: PortId(1),
                token: group.pe_token(0),
            },
            SimTime::from_us(50),
        );
        assert!(outs.iter().any(|o| matches!(
            o,
            McpOutput::HostEvent {
                ev: GmEvent::BarrierComplete { .. },
                ..
            }
        )));
        let ext = m.ext().as_any().downcast_ref::<BarrierExtension>().unwrap();
        assert_eq!(ext.record.stats.recorded, 1);
        assert_eq!(ext.record.stats.consumed, 1);
    }

    #[test]
    fn closed_port_records_and_rejects_on_open() {
        let cfg = GmConfig::default();
        let mut m = Mcp::new(
            McpCore::new(NodeId(0), 2, cfg),
            Box::new(BarrierExtension::new(2)),
        );
        // Message arrives for port 1, which is closed.
        let early = gmsim_gm::Packet {
            src: GlobalPort::new(1, 1),
            dst: GlobalPort::new(0, 1),
            kind: gmsim_gm::PacketKind::Ext {
                seq: Some(0),
                body: ExtPacket::new(pkt::PE, 3, 0), // a = sender epoch
            },
        };
        m.handle_wire_packet(early, false, SimTime::ZERO);
        {
            let ext = m.ext().as_any().downcast_ref::<BarrierExtension>().unwrap();
            assert_eq!(ext.record.outstanding(), 1);
        }
        // Opening the port flushes a REJECT back to the sender carrying
        // the sender's original epoch.
        let outs = m.open_port(PortId(1), SimTime::from_us(10));
        let reject = outs
            .iter()
            .find_map(|o| match o {
                McpOutput::Transmit { pkt, .. } => match &pkt.kind {
                    gmsim_gm::PacketKind::Ext { body, .. } if body.ext_type == pkt::REJECT => {
                        Some((pkt.dst, body.a))
                    }
                    _ => None,
                },
                _ => None,
            })
            .expect("no REJECT sent");
        assert_eq!(reject.0, GlobalPort::new(1, 1));
        assert_eq!(reject.1, 3);
        let ext = m.ext().as_any().downcast_ref::<BarrierExtension>().unwrap();
        assert_eq!(ext.stats.rejects_sent, 1);
        assert_eq!(ext.record.outstanding(), 0);
    }

    #[test]
    fn reject_triggers_resend_when_same_epoch() {
        let cfg = GmConfig::default();
        let group = BarrierGroup::one_per_node(2, 1);
        let mut m = Mcp::new(
            McpCore::new(NodeId(0), 2, cfg),
            Box::new(BarrierExtension::new(2)),
        );
        m.open_port(PortId(1), SimTime::ZERO);
        for _ in 0..4 {
            m.core.port_mut(PortId(1)).provide_barrier_buffer();
        } // epoch 1
        m.handle_send_token(
            SendToken::Collective {
                src_port: PortId(1),
                token: group.pe_token(0),
            },
            SimTime::ZERO,
        );
        // The peer rejects our message (it was recorded against its closed
        // port). Our epoch is 1 and the barrier is still active → resend.
        let reject = gmsim_gm::Packet {
            src: GlobalPort::new(1, 1),
            dst: GlobalPort::new(0, 1),
            kind: gmsim_gm::PacketKind::Ext {
                seq: Some(0),
                body: ExtPacket::new(pkt::REJECT, 1, pkt::PE as u64),
            },
        };
        let outs = m.handle_wire_packet(reject, false, SimTime::from_us(100));
        let resent = outs.iter().any(|o| match o {
            McpOutput::Transmit { pkt, .. } => matches!(
                &pkt.kind,
                gmsim_gm::PacketKind::Ext { body, .. } if body.ext_type == pkt::PE
            ),
            _ => false,
        });
        assert!(resent, "PE message must be resent");
        let ext = m.ext().as_any().downcast_ref::<BarrierExtension>().unwrap();
        assert_eq!(ext.stats.resends, 1);
    }

    #[test]
    fn reject_with_stale_epoch_is_ignored() {
        let cfg = GmConfig::default();
        let mut m = Mcp::new(
            McpCore::new(NodeId(0), 2, cfg),
            Box::new(BarrierExtension::new(2)),
        );
        m.open_port(PortId(1), SimTime::ZERO); // epoch 1
        let reject = gmsim_gm::Packet {
            src: GlobalPort::new(1, 1),
            dst: GlobalPort::new(0, 1),
            kind: gmsim_gm::PacketKind::Ext {
                seq: Some(0),
                body: ExtPacket::new(pkt::REJECT, 99, pkt::PE as u64), // a = long-gone epoch
            },
        };
        let outs = m.handle_wire_packet(reject, false, SimTime::from_us(1));
        let resent = outs.iter().any(|o| match o {
            McpOutput::Transmit { pkt, .. } => {
                matches!(&pkt.kind, gmsim_gm::PacketKind::Ext { body, .. } if body.ext_type != 0)
            }
            _ => false,
        });
        assert!(!resent);
        let ext = m.ext().as_any().downcast_ref::<BarrierExtension>().unwrap();
        assert_eq!(ext.stats.stale_rejects, 1);
    }

    #[test]
    fn port_close_aborts_active_collective() {
        let cfg = GmConfig::default();
        let group = BarrierGroup::one_per_node(2, 1);
        let mut m = Mcp::new(
            McpCore::new(NodeId(0), 2, cfg),
            Box::new(BarrierExtension::new(2)),
        );
        m.open_port(PortId(1), SimTime::ZERO);
        for _ in 0..4 {
            m.core.port_mut(PortId(1)).provide_barrier_buffer();
        }
        m.handle_send_token(
            SendToken::Collective {
                src_port: PortId(1),
                token: group.pe_token(0),
            },
            SimTime::ZERO,
        );
        {
            let ext = m.ext().as_any().downcast_ref::<BarrierExtension>().unwrap();
            assert!(ext.is_active(PortId(1)));
        }
        m.close_port(PortId(1), SimTime::from_us(1));
        let ext = m.ext().as_any().downcast_ref::<BarrierExtension>().unwrap();
        assert!(!ext.is_active(PortId(1)));
        assert_eq!(ext.stats.aborted, 1);
    }

    #[test]
    fn two_teams_share_one_port_concurrently() {
        use crate::group::Team;
        use gmsim_gm::TeamId;
        let cfg = GmConfig::default();
        let world = BarrierGroup::one_per_node(2, 1);
        let a = Team::new(TeamId(1), world.clone());
        let b = Team::new(TeamId(2), world);
        let mut m = Mcp::new(
            McpCore::new(NodeId(0), 2, cfg),
            Box::new(BarrierExtension::new(2)),
        );
        m.open_port(PortId(1), SimTime::ZERO);
        for _ in 0..4 {
            m.core.port_mut(PortId(1)).provide_barrier_buffer();
        }
        // Both teams post on the same port; neither can complete yet.
        m.handle_send_token(
            SendToken::Collective {
                src_port: PortId(1),
                token: a.pe_token(0),
            },
            SimTime::ZERO,
        );
        m.handle_send_token(
            SendToken::Collective {
                src_port: PortId(1),
                token: b.pe_token(0),
            },
            SimTime::ZERO,
        );
        {
            let ext = m.ext().as_any().downcast_ref::<BarrierExtension>().unwrap();
            assert!(ext.is_active_team(PortId(1), TeamId(1)));
            assert!(ext.is_active_team(PortId(1), TeamId(2)));
            assert_eq!(ext.stats.concurrent_peak, 2);
            assert_eq!(ext.teams_seen(), &[TeamId(1), TeamId(2)]);
        }
        // Team B's peer flag arrives first: only B may complete. (Seq
        // numbers are per-connection, so the second packet needs seq 1.)
        let pkt_for = |team: u32, seq: u64| gmsim_gm::Packet {
            src: GlobalPort::new(1, 1),
            dst: GlobalPort::new(0, 1),
            kind: gmsim_gm::PacketKind::Ext {
                seq: Some(seq),
                body: ExtPacket::new(pkt::PE, ((team as u64) << 32) | 1, 0),
            },
        };
        let outs = m.handle_wire_packet(pkt_for(2, 0), false, SimTime::from_us(5));
        let completions = |outs: &[McpOutput]| -> Vec<TeamId> {
            outs.iter()
                .filter_map(|o| match o {
                    McpOutput::HostEvent {
                        ev: GmEvent::BarrierComplete { team },
                        ..
                    } => Some(*team),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(completions(&outs), vec![TeamId(2)]);
        {
            let ext = m.ext().as_any().downcast_ref::<BarrierExtension>().unwrap();
            assert!(ext.is_active_team(PortId(1), TeamId(1)), "A still parked");
            assert!(!ext.is_active_team(PortId(1), TeamId(2)));
        }
        let outs = m.handle_wire_packet(pkt_for(1, 1), false, SimTime::from_us(9));
        assert_eq!(completions(&outs), vec![TeamId(1)]);
        let ext = m.ext().as_any().downcast_ref::<BarrierExtension>().unwrap();
        assert!(!ext.is_active(PortId(1)));
        assert_eq!(ext.stats.completions, 2);
    }

    #[test]
    fn cross_team_packet_does_not_poke_other_teams_run() {
        use crate::group::Team;
        use gmsim_gm::TeamId;
        let cfg = GmConfig::default();
        let world = BarrierGroup::one_per_node(2, 1);
        let a = Team::new(TeamId(1), world);
        let mut m = Mcp::new(
            McpCore::new(NodeId(0), 2, cfg),
            Box::new(BarrierExtension::new(2)),
        );
        m.open_port(PortId(1), SimTime::ZERO);
        for _ in 0..4 {
            m.core.port_mut(PortId(1)).provide_barrier_buffer();
        }
        m.handle_send_token(
            SendToken::Collective {
                src_port: PortId(1),
                token: a.pe_token(0),
            },
            SimTime::ZERO,
        );
        // A packet for team 9 (no run here) arrives while team 1 is parked:
        // it must be recorded for team 9, not consumed by team 1.
        let stray = gmsim_gm::Packet {
            src: GlobalPort::new(1, 1),
            dst: GlobalPort::new(0, 1),
            kind: gmsim_gm::PacketKind::Ext {
                seq: Some(0),
                body: ExtPacket::new(pkt::PE, (9u64 << 32) | 1, 0),
            },
        };
        let outs = m.handle_wire_packet(stray, false, SimTime::from_us(5));
        assert!(
            !outs
                .iter()
                .any(|o| matches!(o, McpOutput::HostEvent { .. })),
            "team 1 must not complete off team 9's flag"
        );
        let ext = m.ext().as_any().downcast_ref::<BarrierExtension>().unwrap();
        assert!(ext.is_active_team(PortId(1), TeamId(1)));
        assert_eq!(ext.stats.cross_team_rejects, 1);
        assert_eq!(ext.record.outstanding(), 1, "team 9's flag stays recorded");
    }

    #[test]
    #[should_panic(expected = "already has an active collective")]
    fn concurrent_collective_on_same_port_panics() {
        let cfg = GmConfig::default();
        let group = BarrierGroup::one_per_node(2, 1);
        let mut m = Mcp::new(
            McpCore::new(NodeId(0), 2, cfg),
            Box::new(BarrierExtension::new(2)),
        );
        m.open_port(PortId(1), SimTime::ZERO);
        for _ in 0..4 {
            m.core.port_mut(PortId(1)).provide_barrier_buffer();
        }
        for _ in 0..2 {
            m.handle_send_token(
                SendToken::Collective {
                    src_port: PortId(1),
                    token: group.pe_token(0),
                },
                SimTime::ZERO,
            );
        }
    }
}
