//! Pure schedule construction for the two barrier algorithms.
//!
//! Both schedules are computed **on the host**: "the tree construction is a
//! relatively computationally intensive task which can easily be computed
//! at the host. The host at a particular node needs to inform the NIC only
//! of the children and parent of the node" (§5.1) — likewise the PE pairing
//! list. These functions are therefore ordinary host-side code, shared by
//! the NIC-based and host-based implementations so both run *the same
//! algorithm*, as in the paper's evaluation.

pub mod gb {
    //! Gather-and-broadcast trees of fixed dimension (arity) `d` ≥ 1.
    //!
    //! Ranks form a d-ary heap-shaped tree: rank 0 is the root, the
    //! children of rank `i` are `i*d + 1 ..= i*d + d` (those `< n`). "We
    //! would expect that the dimension of the tree would impact the
    //! performance of the barrier" (§5.1); the evaluation sweeps `d` from 1
    //! to N−1 and reports the best.

    /// Parent rank of `rank` in a `dim`-ary tree, `None` at the root.
    pub fn parent(rank: usize, dim: usize) -> Option<usize> {
        assert!(dim >= 1, "tree dimension must be at least 1");
        if rank == 0 {
            None
        } else {
            Some((rank - 1) / dim)
        }
    }

    /// Children of `rank` in a `dim`-ary tree over `n` ranks.
    pub fn children(rank: usize, dim: usize, n: usize) -> Vec<usize> {
        assert!(dim >= 1, "tree dimension must be at least 1");
        let first = rank
            .checked_mul(dim)
            .and_then(|x| x.checked_add(1))
            .unwrap_or(n);
        (first..n.min(first.saturating_add(dim))).collect()
    }

    /// Depth of the deepest rank (root = 0).
    pub fn depth(n: usize, dim: usize) -> usize {
        assert!(n >= 1);
        let mut deepest = 0;
        let mut rank = n - 1;
        while let Some(p) = parent(rank, dim) {
            deepest += 1;
            rank = p;
        }
        deepest
    }
}

pub mod pe {
    //! Pairwise exchange, "a pairwise exchange algorithm (PE) that is used
    //! in MPICH" (§5): recursively pair nodes, then pair groups. Each rank
    //! performs `log2 N` send/receive exchanges, with peer `rank XOR 2^k`
    //! at step `k`.
    //!
    //! For group sizes that are not powers of two we use the standard
    //! MPICH-style fold: with `p` the largest power of two ≤ N and
    //! `r = N − p` extras, rank `p+i` first *folds into* rank `i`
    //! (send-only), the low `p` ranks run the power-of-two exchange, and
    //! rank `i` finally *releases* rank `p+i` (send-only again). The paper
    //! evaluates powers of two only; the fold steps generalize it without
    //! changing the power-of-two schedules.

    /// One step of a PE schedule, as (peer rank, step kind).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Step {
        /// Exchange: send to the peer, then wait for its message.
        Exchange(usize),
        /// Fold/release transmission: send and advance.
        SendTo(usize),
        /// Fold/release reception: wait without sending.
        RecvFrom(usize),
    }

    /// Largest power of two ≤ `n`.
    pub fn pow2_floor(n: usize) -> usize {
        assert!(n >= 1);
        1usize << (usize::BITS - 1 - n.leading_zeros())
    }

    /// The PE schedule for `rank` out of `n` ranks.
    pub fn schedule(rank: usize, n: usize) -> Vec<Step> {
        assert!(n >= 1 && rank < n, "rank {rank} out of range for n={n}");
        let p = pow2_floor(n);
        let r = n - p;
        let mut steps = Vec::new();
        if rank >= p {
            // Extra rank: fold into the low group, then await release.
            steps.push(Step::SendTo(rank - p));
            steps.push(Step::RecvFrom(rank - p));
            return steps;
        }
        if rank < r {
            // Absorb the extra rank before exchanging.
            steps.push(Step::RecvFrom(p + rank));
        }
        let mut dist = 1;
        while dist < p {
            steps.push(Step::Exchange(rank ^ dist));
            dist <<= 1;
        }
        if rank < r {
            // Release the extra rank.
            steps.push(Step::SendTo(p + rank));
        }
        steps
    }
}

pub mod dissemination {
    //! Dissemination barrier (Hensgen/Finkel/Manber) — **an extension
    //! beyond the paper**, included because it expresses naturally in the
    //! same step machinery: at round `k`, rank `i` *sends* to
    //! `(i + 2^k) mod n` and *waits for* `(i − 2^k) mod n`, for
    //! `ceil(log2 n)` rounds. Unlike PE it needs no power-of-two fold and
    //! the send/receive of a round involve different peers.

    use super::pe::Step;

    /// The dissemination schedule for `rank` of `n`, as the same step kind
    /// the PE machinery executes (send-only then receive-only per round).
    pub fn schedule(rank: usize, n: usize) -> Vec<Step> {
        assert!(n >= 1 && rank < n, "rank {rank} out of range for n={n}");
        let mut steps = Vec::new();
        let mut dist = 1;
        while dist < n {
            steps.push(Step::SendTo((rank + dist) % n));
            steps.push(Step::RecvFrom((rank + n - dist) % n));
            dist <<= 1;
        }
        steps
    }

    /// Number of rounds: `ceil(log2 n)`.
    pub fn rounds(n: usize) -> usize {
        assert!(n >= 1);
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::dissemination;
    use super::gb;
    use super::pe::{self, Step};

    #[test]
    fn pow2_floor_values() {
        assert_eq!(pe::pow2_floor(1), 1);
        assert_eq!(pe::pow2_floor(2), 2);
        assert_eq!(pe::pow2_floor(3), 2);
        assert_eq!(pe::pow2_floor(16), 16);
        assert_eq!(pe::pow2_floor(17), 16);
    }

    #[test]
    fn pe_power_of_two_is_pure_exchange() {
        for n in [2usize, 4, 8, 16] {
            for rank in 0..n {
                let steps = pe::schedule(rank, n);
                assert_eq!(steps.len(), n.trailing_zeros() as usize);
                for (k, s) in steps.iter().enumerate() {
                    assert_eq!(*s, Step::Exchange(rank ^ (1 << k)));
                }
            }
        }
    }

    #[test]
    fn pe_exchange_relation_is_symmetric() {
        for n in [2usize, 4, 8, 16, 32] {
            for rank in 0..n {
                for (k, s) in pe::schedule(rank, n).iter().enumerate() {
                    if let Step::Exchange(peer) = s {
                        assert_eq!(pe::schedule(*peer, n)[k], Step::Exchange(rank));
                    }
                }
            }
        }
    }

    #[test]
    fn pe_non_power_of_two_folds() {
        // n=3: p=2, r=1
        assert_eq!(
            pe::schedule(2, 3),
            vec![Step::SendTo(0), Step::RecvFrom(0)]
        );
        assert_eq!(
            pe::schedule(0, 3),
            vec![Step::RecvFrom(2), Step::Exchange(1), Step::SendTo(2)]
        );
        assert_eq!(pe::schedule(1, 3), vec![Step::Exchange(0)]);
    }

    #[test]
    fn pe_sends_match_recvs_globally() {
        // Every send in some rank's schedule must have exactly one matching
        // receive in the peer's schedule, and vice versa.
        for n in 2..=17usize {
            let mut sends = Vec::new();
            let mut recvs = Vec::new();
            for rank in 0..n {
                for s in pe::schedule(rank, n) {
                    match s {
                        Step::Exchange(p) => {
                            sends.push((rank, p));
                            recvs.push((p, rank));
                        }
                        Step::SendTo(p) => sends.push((rank, p)),
                        Step::RecvFrom(p) => recvs.push((p, rank)),
                    }
                }
            }
            sends.sort_unstable();
            recvs.sort_unstable();
            assert_eq!(sends, recvs, "n={n}");
        }
    }

    #[test]
    fn pe_single_rank_is_empty() {
        assert!(pe::schedule(0, 1).is_empty());
    }

    #[test]
    fn gb_parent_child_inverse() {
        for n in [1usize, 2, 5, 16, 33] {
            for dim in 1..=4usize {
                for rank in 0..n {
                    for c in gb::children(rank, dim, n) {
                        assert_eq!(gb::parent(c, dim), Some(rank));
                    }
                    if let Some(p) = gb::parent(rank, dim) {
                        assert!(gb::children(p, dim, n).contains(&rank));
                    }
                }
            }
        }
    }

    #[test]
    fn gb_is_spanning_tree() {
        for n in [2usize, 7, 16] {
            for dim in 1..n {
                // every rank reaches the root
                for rank in 0..n {
                    let mut r = rank;
                    let mut hops = 0;
                    while let Some(p) = gb::parent(r, dim) {
                        r = p;
                        hops += 1;
                        assert!(hops <= n, "cycle detected");
                    }
                    assert_eq!(r, 0);
                }
                // child counts sum to n-1
                let total: usize = (0..n).map(|r| gb::children(r, dim, n).len()).sum();
                assert_eq!(total, n - 1);
            }
        }
    }

    #[test]
    fn gb_dimension_one_is_a_chain() {
        let n = 5;
        for rank in 0..n {
            let kids = gb::children(rank, 1, n);
            if rank + 1 < n {
                assert_eq!(kids, vec![rank + 1]);
            } else {
                assert!(kids.is_empty());
            }
        }
        assert_eq!(gb::depth(n, 1), n - 1);
    }

    #[test]
    fn gb_wide_tree_is_flat() {
        let n = 8;
        assert_eq!(gb::children(0, n - 1, n), (1..n).collect::<Vec<_>>());
        assert_eq!(gb::depth(n, n - 1), 1);
    }

    #[test]
    fn gb_depth_binary() {
        assert_eq!(gb::depth(1, 2), 0);
        assert_eq!(gb::depth(2, 2), 1);
        assert_eq!(gb::depth(7, 2), 2);
        assert_eq!(gb::depth(8, 2), 3);
    }

    #[test]
    fn gb_children_no_overflow_at_huge_rank() {
        assert!(gb::children(usize::MAX / 2, 3, 10).is_empty());
    }

    #[test]
    fn dissemination_rounds_count() {
        assert_eq!(dissemination::rounds(1), 0);
        assert_eq!(dissemination::rounds(2), 1);
        assert_eq!(dissemination::rounds(5), 3);
        assert_eq!(dissemination::rounds(8), 3);
        assert_eq!(dissemination::rounds(9), 4);
    }

    #[test]
    fn dissemination_sends_match_recvs() {
        for n in 1..=20usize {
            let mut sends = Vec::new();
            let mut recvs = Vec::new();
            for rank in 0..n {
                for s in dissemination::schedule(rank, n) {
                    match s {
                        Step::SendTo(p) => sends.push((rank, p)),
                        Step::RecvFrom(p) => recvs.push((p, rank)),
                        Step::Exchange(_) => panic!("dissemination has no exchanges"),
                    }
                }
            }
            sends.sort_unstable();
            recvs.sort_unstable();
            assert_eq!(sends, recvs, "n={n}");
        }
    }

    #[test]
    fn dissemination_peers_distinct_per_rank() {
        // Within one barrier, a rank never receives twice from the same
        // endpoint (the record would have to queue otherwise).
        for n in 2..=33usize {
            for rank in 0..n {
                let mut recv_peers: Vec<usize> = dissemination::schedule(rank, n)
                    .into_iter()
                    .filter_map(|s| match s {
                        Step::RecvFrom(p) => Some(p),
                        _ => None,
                    })
                    .collect();
                let before = recv_peers.len();
                recv_peers.sort_unstable();
                recv_peers.dedup();
                assert_eq!(recv_peers.len(), before, "n={n} rank={rank}");
            }
        }
    }

    #[test]
    fn dissemination_schedule_alternates_send_recv() {
        let steps = dissemination::schedule(0, 8);
        assert_eq!(steps.len(), 6);
        for (i, s) in steps.iter().enumerate() {
            if i % 2 == 0 {
                assert!(matches!(s, Step::SendTo(_)));
            } else {
                assert!(matches!(s, Step::RecvFrom(_)));
            }
        }
        // round peers: send +1,+2,+4; recv -1,-2,-4
        assert_eq!(steps[0], Step::SendTo(1));
        assert_eq!(steps[1], Step::RecvFrom(7));
        assert_eq!(steps[4], Step::SendTo(4));
        assert_eq!(steps[5], Step::RecvFrom(4));
    }
}
