//! Schedule construction and the collective compiler.
//!
//! All schedules are computed **on the host**: "the tree construction is a
//! relatively computationally intensive task which can easily be computed
//! at the host. The host at a particular node needs to inform the NIC only
//! of the children and parent of the node" (§5.1) — likewise the PE pairing
//! list. The pure rank-level schedules live in the [`pe`], [`gb`],
//! [`dissemination`] and [`scan`] modules; [`compile`] lowers an algorithm
//! [`Descriptor`] into the endpoint-level [`CollectiveSchedule`] IR that
//! both the NIC firmware extension and the host-based baselines interpret,
//! so the NIC and host runs of an algorithm execute *the same program*, as
//! in the paper's evaluation.

use gmsim_gm::{
    Charge, CollectiveSchedule, CompletionKind, GlobalPort, Payload, ReduceOp, ScheduleStep,
    TokenCharge,
};

pub mod gb {
    //! Gather-and-broadcast trees of fixed dimension (arity) `d` ≥ 1.
    //!
    //! Ranks form a d-ary heap-shaped tree: rank 0 is the root, the
    //! children of rank `i` are `i*d + 1 ..= i*d + d` (those `< n`). "We
    //! would expect that the dimension of the tree would impact the
    //! performance of the barrier" (§5.1); the evaluation sweeps `d` from 1
    //! to N−1 and reports the best.

    /// Parent rank of `rank` in a `dim`-ary tree, `None` at the root.
    pub fn parent(rank: usize, dim: usize) -> Option<usize> {
        assert!(dim >= 1, "tree dimension must be at least 1");
        if rank == 0 {
            None
        } else {
            Some((rank - 1) / dim)
        }
    }

    /// Children of `rank` in a `dim`-ary tree over `n` ranks.
    pub fn children(rank: usize, dim: usize, n: usize) -> Vec<usize> {
        assert!(dim >= 1, "tree dimension must be at least 1");
        let first = rank
            .checked_mul(dim)
            .and_then(|x| x.checked_add(1))
            .unwrap_or(n);
        (first..n.min(first.saturating_add(dim))).collect()
    }

    /// Depth of the deepest rank (root = 0).
    pub fn depth(n: usize, dim: usize) -> usize {
        assert!(n >= 1);
        let mut deepest = 0;
        let mut rank = n - 1;
        while let Some(p) = parent(rank, dim) {
            deepest += 1;
            rank = p;
        }
        deepest
    }
}

pub mod pe {
    //! Pairwise exchange, "a pairwise exchange algorithm (PE) that is used
    //! in MPICH" (§5): recursively pair nodes, then pair groups. Each rank
    //! performs `log2 N` send/receive exchanges, with peer `rank XOR 2^k`
    //! at step `k`.
    //!
    //! For group sizes that are not powers of two we use the standard
    //! MPICH-style fold: with `p` the largest power of two ≤ N and
    //! `r = N − p` extras, rank `p+i` first *folds into* rank `i`
    //! (send-only), the low `p` ranks run the power-of-two exchange, and
    //! rank `i` finally *releases* rank `p+i` (send-only again). The paper
    //! evaluates powers of two only; the fold steps generalize it without
    //! changing the power-of-two schedules.

    /// One step of a PE schedule, as (peer rank, step kind).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Step {
        /// Exchange: send to the peer, then wait for its message.
        Exchange(usize),
        /// Fold/release transmission: send and advance.
        SendTo(usize),
        /// Fold/release reception: wait without sending.
        RecvFrom(usize),
    }

    /// Largest power of two ≤ `n`.
    pub fn pow2_floor(n: usize) -> usize {
        assert!(n >= 1);
        1usize << (usize::BITS - 1 - n.leading_zeros())
    }

    /// The PE schedule for `rank` out of `n` ranks.
    pub fn schedule(rank: usize, n: usize) -> Vec<Step> {
        assert!(n >= 1 && rank < n, "rank {rank} out of range for n={n}");
        let p = pow2_floor(n);
        let r = n - p;
        let mut steps = Vec::new();
        if rank >= p {
            // Extra rank: fold into the low group, then await release.
            steps.push(Step::SendTo(rank - p));
            steps.push(Step::RecvFrom(rank - p));
            return steps;
        }
        if rank < r {
            // Absorb the extra rank before exchanging.
            steps.push(Step::RecvFrom(p + rank));
        }
        let mut dist = 1;
        while dist < p {
            steps.push(Step::Exchange(rank ^ dist));
            dist <<= 1;
        }
        if rank < r {
            // Release the extra rank.
            steps.push(Step::SendTo(p + rank));
        }
        steps
    }
}

pub mod dissemination {
    //! Dissemination barrier (Hensgen/Finkel/Manber), generalized to radix
    //! `r` ≥ 2 — **an extension beyond the paper**, included because it
    //! expresses naturally in the same step machinery: at round `k`, rank
    //! `i` *sends* to `(i + j·r^k) mod n` and *waits for*
    //! `(i − j·r^k) mod n` for each `j ∈ 1..r`, over `ceil(log_r n)`
    //! rounds. Radix 2 is the classic dissemination barrier; higher radixes
    //! trade more messages per round for fewer rounds, which pays off when
    //! per-round latency (hops, NIC turnaround) dominates per-message cost.
    //! Unlike PE it needs no power-of-two fold and the send/receive of a
    //! round involve different peers.

    use super::pe::Step;

    /// The radix-`radix` dissemination schedule for `rank` of `n`, as the
    /// same step kind the PE machinery executes (send-only then
    /// receive-only per (round, offset) pair). Distances `j·radix^k ≥ n`
    /// are skipped: every distance `d < n` has a unique base-`radix`
    /// expansion with a single nonzero digit among the `(k, j)` pairs, so
    /// information from all `n` ranks still reaches every rank.
    ///
    /// At `radix == 2` this emits exactly one `SendTo`/`RecvFrom` pair per
    /// round with distances 1, 2, 4, …, byte-identical to the historical
    /// fixed-radix schedule.
    pub fn schedule(rank: usize, n: usize, radix: usize) -> Vec<Step> {
        assert!(n >= 1 && rank < n, "rank {rank} out of range for n={n}");
        assert!(radix >= 2, "dissemination radix must be at least 2");
        let mut steps = Vec::new();
        let mut stride = 1usize; // radix^k for the current round
        while stride < n {
            for j in 1..radix {
                let dist = match j.checked_mul(stride) {
                    Some(d) if d < n => d,
                    _ => break, // larger j only grows the distance
                };
                steps.push(Step::SendTo((rank + dist) % n));
                steps.push(Step::RecvFrom((rank + n - dist) % n));
            }
            stride = match stride.checked_mul(radix) {
                Some(s) => s,
                None => break, // next stride exceeds usize::MAX ≥ n
            };
        }
        steps
    }

    /// Number of rounds: `ceil(log_radix n)`, computed by integer
    /// arithmetic (no floating-point log).
    pub fn rounds(n: usize, radix: usize) -> usize {
        assert!(n >= 1);
        assert!(radix >= 2, "dissemination radix must be at least 2");
        let mut r = 0;
        let mut span = 1usize;
        while span < n {
            span = span.saturating_mul(radix);
            r += 1;
        }
        r
    }
}

pub mod scan {
    //! Inclusive prefix scan (Hillis–Steele) — **an extension beyond the
    //! paper**, in the spirit of its §8 future work on other collectives.
    //! At round `k`, rank `i` sends its running prefix to `i + 2^k` (if it
    //! exists) and folds in the prefix arriving from `i − 2^k` (if it
    //! exists); after `ceil(log2 n)` rounds rank `i` holds the inclusive
    //! prefix over ranks `0..=i`. Like dissemination it is asymmetric
    //! (different send and receive peers per round) and needs no
    //! power-of-two fold, so it expresses naturally in the same step
    //! machinery.

    use super::pe::Step;

    /// The scan schedule for `rank` of `n`: per round, a send (if the
    /// upstream partner exists) then a combining receive (if the
    /// downstream partner exists).
    pub fn schedule(rank: usize, n: usize) -> Vec<Step> {
        assert!(n >= 1 && rank < n, "rank {rank} out of range for n={n}");
        let mut steps = Vec::new();
        let mut dist = 1;
        while dist < n {
            if rank + dist < n {
                steps.push(Step::SendTo(rank + dist));
            }
            if rank >= dist {
                steps.push(Step::RecvFrom(rank - dist));
            }
            dist <<= 1;
        }
        steps
    }
}

/// A rejected [`Descriptor`] parameterization, reported at construction
/// time by the `try_*` constructors (and re-checkable via
/// [`Descriptor::validate`]) so that no misparameterized collective can
/// reach a mid-compile `assert!`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DescriptorError {
    /// A tree collective was given dimension 0; `dim`-ary trees need
    /// `dim` ≥ 1.
    ZeroDim,
    /// A dissemination barrier was given a radix below 2; at each round
    /// every rank sends to `radix − 1` peers, so radix 0 and 1 make no
    /// progress.
    InvalidRadix {
        /// The rejected radix.
        radix: usize,
    },
}

impl std::fmt::Display for DescriptorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DescriptorError::ZeroDim => write!(f, "tree dimension must be at least 1"),
            DescriptorError::InvalidRadix { radix } => {
                write!(f, "dissemination radix must be at least 2, got {radix}")
            }
        }
    }
}

impl std::error::Error for DescriptorError {}

/// Which collective algorithm a rank participates in. A descriptor plus a
/// rank and a member list is everything [`compile`] needs to produce the
/// rank's [`CollectiveSchedule`].
///
/// Construct descriptors through the named constructors ([`Descriptor::pe`],
/// [`Descriptor::bcast`], ...) and attach message data with
/// [`Descriptor::with_payload`]; the enum and its data-carrying variants are
/// `#[non_exhaustive]`, so bare-field construction does not compile outside
/// this crate and there is exactly one way to issue each collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Descriptor {
    /// Pairwise-exchange barrier (§5, PE; MPICH-style fold for
    /// non-power-of-two groups).
    Pe,
    /// Gather-and-broadcast barrier over a `dim`-ary tree (§5, GB).
    #[non_exhaustive]
    Gb {
        /// Tree arity.
        dim: usize,
    },
    /// Dissemination barrier of radix `radix` ≥ 2 (extension beyond the
    /// paper; runs on the same firmware path as PE).
    #[non_exhaustive]
    Dissemination {
        /// Send fan-out per round (classic dissemination is radix 2).
        radix: usize,
    },
    /// Binomial-tree broadcast of the root's value (§8 future work).
    #[non_exhaustive]
    Bcast {
        /// Tree arity.
        dim: usize,
        /// Message data each tree edge carries.
        payload: Payload,
    },
    /// Reduction to rank 0 (§8 future work); only the root sees the
    /// global value.
    #[non_exhaustive]
    Reduce {
        /// Combining operator.
        op: ReduceOp,
        /// Tree arity.
        dim: usize,
        /// Message data each contribution carries.
        payload: Payload,
    },
    /// Allreduce: reduce up the tree, broadcast the result back down.
    #[non_exhaustive]
    Allreduce {
        /// Combining operator.
        op: ReduceOp,
        /// Tree arity.
        dim: usize,
        /// Message data each contribution (and the hand-down) carries.
        payload: Payload,
    },
    /// Inclusive prefix scan (Hillis–Steele; extension beyond the paper).
    #[non_exhaustive]
    Scan {
        /// Combining operator.
        op: ReduceOp,
        /// Message data each running prefix carries.
        payload: Payload,
    },
}

impl Descriptor {
    /// Pairwise-exchange barrier.
    pub fn pe() -> Self {
        Descriptor::Pe
    }

    /// Gather-and-broadcast barrier over a `dim`-ary tree.
    ///
    /// # Panics
    /// If `dim == 0`; use [`Descriptor::try_gb`] to handle that as a value.
    pub fn gb(dim: usize) -> Self {
        Self::try_gb(dim).unwrap()
    }

    /// Gather-and-broadcast barrier over a `dim`-ary tree, rejecting
    /// `dim == 0` at construction.
    pub fn try_gb(dim: usize) -> Result<Self, DescriptorError> {
        if dim == 0 {
            return Err(DescriptorError::ZeroDim);
        }
        Ok(Descriptor::Gb { dim })
    }

    /// Classic radix-2 dissemination barrier.
    pub fn dissemination() -> Self {
        Descriptor::Dissemination { radix: 2 }
    }

    /// Radix-`radix` dissemination barrier.
    ///
    /// # Panics
    /// If `radix < 2`; use [`Descriptor::try_dissemination`] to handle
    /// that as a value.
    pub fn dissemination_radix(radix: usize) -> Self {
        Self::try_dissemination(radix).unwrap()
    }

    /// Radix-`radix` dissemination barrier, rejecting `radix < 2` at
    /// construction.
    pub fn try_dissemination(radix: usize) -> Result<Self, DescriptorError> {
        if radix < 2 {
            return Err(DescriptorError::InvalidRadix { radix });
        }
        Ok(Descriptor::Dissemination { radix })
    }

    /// Tree broadcast (zero payload until [`Descriptor::with_payload`]).
    ///
    /// # Panics
    /// If `dim == 0`; use [`Descriptor::try_bcast`] to handle that as a
    /// value.
    pub fn bcast(dim: usize) -> Self {
        Self::try_bcast(dim).unwrap()
    }

    /// Tree broadcast, rejecting `dim == 0` at construction.
    pub fn try_bcast(dim: usize) -> Result<Self, DescriptorError> {
        if dim == 0 {
            return Err(DescriptorError::ZeroDim);
        }
        Ok(Descriptor::Bcast {
            dim,
            payload: Payload::EMPTY,
        })
    }

    /// Tree reduction to rank 0.
    ///
    /// # Panics
    /// If `dim == 0`; use [`Descriptor::try_reduce`] to handle that as a
    /// value.
    pub fn reduce(op: ReduceOp, dim: usize) -> Self {
        Self::try_reduce(op, dim).unwrap()
    }

    /// Tree reduction to rank 0, rejecting `dim == 0` at construction.
    pub fn try_reduce(op: ReduceOp, dim: usize) -> Result<Self, DescriptorError> {
        if dim == 0 {
            return Err(DescriptorError::ZeroDim);
        }
        Ok(Descriptor::Reduce {
            op,
            dim,
            payload: Payload::EMPTY,
        })
    }

    /// Allreduce over a `dim`-ary tree.
    ///
    /// # Panics
    /// If `dim == 0`; use [`Descriptor::try_allreduce`] to handle that as
    /// a value.
    pub fn allreduce(op: ReduceOp, dim: usize) -> Self {
        Self::try_allreduce(op, dim).unwrap()
    }

    /// Allreduce over a `dim`-ary tree, rejecting `dim == 0` at
    /// construction.
    pub fn try_allreduce(op: ReduceOp, dim: usize) -> Result<Self, DescriptorError> {
        if dim == 0 {
            return Err(DescriptorError::ZeroDim);
        }
        Ok(Descriptor::Allreduce {
            op,
            dim,
            payload: Payload::EMPTY,
        })
    }

    /// Inclusive prefix scan.
    pub fn scan(op: ReduceOp) -> Self {
        Descriptor::Scan {
            op,
            payload: Payload::EMPTY,
        }
    }

    /// Re-check this descriptor's parameterization. Descriptors built
    /// through the named constructors are always valid (the enum is
    /// `#[non_exhaustive]`, so those constructors are the only way to get
    /// one outside this crate); experiment and configuration layers call
    /// this to surface their own typed errors instead of trusting the
    /// caller.
    pub fn validate(&self) -> Result<(), DescriptorError> {
        match *self {
            Descriptor::Pe | Descriptor::Scan { .. } => Ok(()),
            Descriptor::Dissemination { radix } => {
                if radix < 2 {
                    Err(DescriptorError::InvalidRadix { radix })
                } else {
                    Ok(())
                }
            }
            Descriptor::Gb { dim }
            | Descriptor::Bcast { dim, .. }
            | Descriptor::Reduce { dim, .. }
            | Descriptor::Allreduce { dim, .. } => {
                if dim == 0 {
                    Err(DescriptorError::ZeroDim)
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Attach message data (builder style).
    ///
    /// # Panics
    /// On the barrier descriptors (`Pe`, `Gb`, `Dissemination`), which by
    /// definition carry no data.
    #[must_use]
    pub fn with_payload(mut self, p: Payload) -> Self {
        match &mut self {
            Descriptor::Bcast { payload, .. }
            | Descriptor::Reduce { payload, .. }
            | Descriptor::Allreduce { payload, .. }
            | Descriptor::Scan { payload, .. } => *payload = p,
            Descriptor::Pe | Descriptor::Gb { .. } | Descriptor::Dissemination { .. } => {
                panic!("barriers carry no payload")
            }
        }
        self
    }

    /// The message data this collective carries ([`Payload::EMPTY`] for
    /// barriers).
    pub fn payload(&self) -> Payload {
        match self {
            Descriptor::Bcast { payload, .. }
            | Descriptor::Reduce { payload, .. }
            | Descriptor::Allreduce { payload, .. }
            | Descriptor::Scan { payload, .. } => *payload,
            Descriptor::Pe | Descriptor::Gb { .. } | Descriptor::Dissemination { .. } => {
                Payload::EMPTY
            }
        }
    }
}

/// Wire packet kinds for the compiled programs (§5.2: "There is a separate
/// packet type for each phase"). `REJECT` is reserved by the firmware's
/// §3.2 rejection protocol and never appears in a compiled schedule.
pub mod pkt {
    /// Pairwise-exchange-style message (PE, dissemination).
    pub const PE: u8 = 1;
    /// Tree gather-phase message (child → parent, may carry a value).
    pub const GATHER: u8 = 2;
    /// Tree broadcast-phase message (parent → child).
    pub const BCAST: u8 = 3;
    /// §3.2 rejection of a message that arrived for a closed port.
    pub const REJECT: u8 = 4;
    /// Prefix-scan message (carries a running prefix).
    pub const SCAN: u8 = 5;
}

/// Map a list of rank-level steps onto endpoint-level IR steps for an
/// exchange-style program (PE / dissemination / scan).
fn lower_steps(
    members: &[GlobalPort],
    steps: Vec<pe::Step>,
    kind: u8,
    combine: Option<ReduceOp>,
) -> Vec<ScheduleStep> {
    let mut out = Vec::new();
    for s in steps {
        match s {
            pe::Step::Exchange(p) => {
                out.push(ScheduleStep::SendTo {
                    peers: vec![members[p]],
                    kind,
                    charge: Charge::ExchangeSend,
                });
                out.push(ScheduleStep::RecvFrom {
                    peers: vec![members[p]],
                    kind,
                    combine,
                    charge: Charge::ExchangeMatch,
                });
            }
            pe::Step::SendTo(p) => out.push(ScheduleStep::SendTo {
                peers: vec![members[p]],
                kind,
                charge: Charge::ExchangeSend,
            }),
            pe::Step::RecvFrom(p) => out.push(ScheduleStep::RecvFrom {
                peers: vec![members[p]],
                kind,
                combine,
                charge: Charge::ExchangeMatch,
            }),
        }
    }
    out
}

/// Compile `desc` for `rank` of `members` into the IR program both
/// interpreters execute. Steps with no peers are omitted, so leaves carry
/// no empty receives and the root no empty upward send.
pub fn compile(desc: Descriptor, rank: usize, members: &[GlobalPort]) -> CollectiveSchedule {
    let n = members.len();
    assert!(rank < n, "rank {rank} out of range for n={n}");
    let tree = |dim: usize| -> (Option<GlobalPort>, Vec<GlobalPort>) {
        (
            gb::parent(rank, dim).map(|p| members[p]),
            gb::children(rank, dim, n)
                .into_iter()
                .map(|c| members[c])
                .collect(),
        )
    };
    let mut steps = Vec::new();
    let token_charge = match desc {
        Descriptor::Pe => {
            steps = lower_steps(members, pe::schedule(rank, n), pkt::PE, None);
            steps.push(ScheduleStep::DeliverCompletion(CompletionKind::Barrier));
            TokenCharge::Light
        }
        Descriptor::Dissemination { radix } => {
            steps = lower_steps(
                members,
                dissemination::schedule(rank, n, radix),
                pkt::PE,
                None,
            );
            steps.push(ScheduleStep::DeliverCompletion(CompletionKind::Barrier));
            TokenCharge::Light
        }
        Descriptor::Scan { op, .. } => {
            steps = lower_steps(members, scan::schedule(rank, n), pkt::SCAN, Some(op));
            steps.push(ScheduleStep::DeliverCompletion(CompletionKind::Scan));
            TokenCharge::Light
        }
        Descriptor::Gb { dim } | Descriptor::Allreduce { dim, .. } => {
            let (combine, completion) = match desc {
                Descriptor::Allreduce { op, .. } => (Some(op), CompletionKind::Reduce),
                _ => (None, CompletionKind::Barrier),
            };
            let (parent, children) = tree(dim);
            if !children.is_empty() {
                steps.push(ScheduleStep::RecvFrom {
                    peers: children.clone(),
                    kind: pkt::GATHER,
                    combine,
                    charge: Charge::Gather,
                });
            }
            if let Some(parent) = parent {
                // The gather-up send piggybacks on the state update that
                // absorbed the last child, hence no separate charge.
                steps.push(ScheduleStep::SendTo {
                    peers: vec![parent],
                    kind: pkt::GATHER,
                    charge: Charge::Free,
                });
                steps.push(ScheduleStep::RecvFrom {
                    peers: vec![parent],
                    kind: pkt::BCAST,
                    combine: None,
                    charge: Charge::Gather,
                });
            }
            // §5.2 order: completion is DMAed to the host *before* the
            // broadcast is forwarded, at the root and interior nodes alike.
            steps.push(ScheduleStep::DeliverCompletion(completion));
            if !children.is_empty() {
                steps.push(ScheduleStep::SendTo {
                    peers: children,
                    kind: pkt::BCAST,
                    charge: Charge::ChildSend,
                });
            }
            TokenCharge::Tree
        }
        Descriptor::Reduce { op, dim, .. } => {
            let (parent, children) = tree(dim);
            if !children.is_empty() {
                steps.push(ScheduleStep::RecvFrom {
                    peers: children,
                    kind: pkt::GATHER,
                    combine: Some(op),
                    charge: Charge::Gather,
                });
            }
            if let Some(parent) = parent {
                steps.push(ScheduleStep::SendTo {
                    peers: vec![parent],
                    kind: pkt::GATHER,
                    charge: Charge::Free,
                });
            }
            // No broadcast phase: the global value exists only at the root;
            // a non-root's completion carries its subtree value.
            steps.push(ScheduleStep::DeliverCompletion(CompletionKind::Reduce));
            TokenCharge::Tree
        }
        Descriptor::Bcast { dim, .. } => {
            let (parent, children) = tree(dim);
            if let Some(parent) = parent {
                steps.push(ScheduleStep::RecvFrom {
                    peers: vec![parent],
                    kind: pkt::BCAST,
                    combine: None,
                    charge: Charge::Gather,
                });
            }
            steps.push(ScheduleStep::DeliverCompletion(CompletionKind::Broadcast));
            if !children.is_empty() {
                steps.push(ScheduleStep::SendTo {
                    peers: children,
                    kind: pkt::BCAST,
                    charge: Charge::ChildSend,
                });
            }
            TokenCharge::Tree
        }
    };
    CollectiveSchedule::new(steps, token_charge).with_payload(desc.payload())
}

#[cfg(test)]
mod tests {
    use super::dissemination;
    use super::gb;
    use super::pe::{self, Step};
    use super::{compile, pkt, scan, Descriptor, DescriptorError};
    use gmsim_gm::{Charge, CompletionKind, GlobalPort, ReduceOp, ScheduleStep, TokenCharge};

    #[test]
    fn pow2_floor_values() {
        assert_eq!(pe::pow2_floor(1), 1);
        assert_eq!(pe::pow2_floor(2), 2);
        assert_eq!(pe::pow2_floor(3), 2);
        assert_eq!(pe::pow2_floor(16), 16);
        assert_eq!(pe::pow2_floor(17), 16);
    }

    #[test]
    fn pe_power_of_two_is_pure_exchange() {
        for n in [2usize, 4, 8, 16] {
            for rank in 0..n {
                let steps = pe::schedule(rank, n);
                assert_eq!(steps.len(), n.trailing_zeros() as usize);
                for (k, s) in steps.iter().enumerate() {
                    assert_eq!(*s, Step::Exchange(rank ^ (1 << k)));
                }
            }
        }
    }

    #[test]
    fn pe_exchange_relation_is_symmetric() {
        for n in [2usize, 4, 8, 16, 32] {
            for rank in 0..n {
                for (k, s) in pe::schedule(rank, n).iter().enumerate() {
                    if let Step::Exchange(peer) = s {
                        assert_eq!(pe::schedule(*peer, n)[k], Step::Exchange(rank));
                    }
                }
            }
        }
    }

    #[test]
    fn pe_non_power_of_two_folds() {
        // n=3: p=2, r=1
        assert_eq!(pe::schedule(2, 3), vec![Step::SendTo(0), Step::RecvFrom(0)]);
        assert_eq!(
            pe::schedule(0, 3),
            vec![Step::RecvFrom(2), Step::Exchange(1), Step::SendTo(2)]
        );
        assert_eq!(pe::schedule(1, 3), vec![Step::Exchange(0)]);
    }

    #[test]
    fn pe_sends_match_recvs_globally() {
        // Every send in some rank's schedule must have exactly one matching
        // receive in the peer's schedule, and vice versa.
        for n in 2..=17usize {
            let mut sends = Vec::new();
            let mut recvs = Vec::new();
            for rank in 0..n {
                for s in pe::schedule(rank, n) {
                    match s {
                        Step::Exchange(p) => {
                            sends.push((rank, p));
                            recvs.push((p, rank));
                        }
                        Step::SendTo(p) => sends.push((rank, p)),
                        Step::RecvFrom(p) => recvs.push((p, rank)),
                    }
                }
            }
            sends.sort_unstable();
            recvs.sort_unstable();
            assert_eq!(sends, recvs, "n={n}");
        }
    }

    #[test]
    fn pe_single_rank_is_empty() {
        assert!(pe::schedule(0, 1).is_empty());
    }

    #[test]
    fn gb_parent_child_inverse() {
        for n in [1usize, 2, 5, 16, 33] {
            for dim in 1..=4usize {
                for rank in 0..n {
                    for c in gb::children(rank, dim, n) {
                        assert_eq!(gb::parent(c, dim), Some(rank));
                    }
                    if let Some(p) = gb::parent(rank, dim) {
                        assert!(gb::children(p, dim, n).contains(&rank));
                    }
                }
            }
        }
    }

    #[test]
    fn gb_is_spanning_tree() {
        for n in [2usize, 7, 16] {
            for dim in 1..n {
                // every rank reaches the root
                for rank in 0..n {
                    let mut r = rank;
                    let mut hops = 0;
                    while let Some(p) = gb::parent(r, dim) {
                        r = p;
                        hops += 1;
                        assert!(hops <= n, "cycle detected");
                    }
                    assert_eq!(r, 0);
                }
                // child counts sum to n-1
                let total: usize = (0..n).map(|r| gb::children(r, dim, n).len()).sum();
                assert_eq!(total, n - 1);
            }
        }
    }

    #[test]
    fn gb_dimension_one_is_a_chain() {
        let n = 5;
        for rank in 0..n {
            let kids = gb::children(rank, 1, n);
            if rank + 1 < n {
                assert_eq!(kids, vec![rank + 1]);
            } else {
                assert!(kids.is_empty());
            }
        }
        assert_eq!(gb::depth(n, 1), n - 1);
    }

    #[test]
    fn gb_wide_tree_is_flat() {
        let n = 8;
        assert_eq!(gb::children(0, n - 1, n), (1..n).collect::<Vec<_>>());
        assert_eq!(gb::depth(n, n - 1), 1);
    }

    #[test]
    fn gb_depth_binary() {
        assert_eq!(gb::depth(1, 2), 0);
        assert_eq!(gb::depth(2, 2), 1);
        assert_eq!(gb::depth(7, 2), 2);
        assert_eq!(gb::depth(8, 2), 3);
    }

    #[test]
    fn gb_children_no_overflow_at_huge_rank() {
        assert!(gb::children(usize::MAX / 2, 3, 10).is_empty());
    }

    #[test]
    fn dissemination_rounds_count() {
        assert_eq!(dissemination::rounds(1, 2), 0);
        assert_eq!(dissemination::rounds(2, 2), 1);
        assert_eq!(dissemination::rounds(5, 2), 3);
        assert_eq!(dissemination::rounds(8, 2), 3);
        assert_eq!(dissemination::rounds(9, 2), 4);
        // k-ary: ceil(log_3 9) = 2, ceil(log_3 10) = 3, ceil(log_4 64) = 3
        assert_eq!(dissemination::rounds(9, 3), 2);
        assert_eq!(dissemination::rounds(10, 3), 3);
        assert_eq!(dissemination::rounds(64, 4), 3);
        assert_eq!(dissemination::rounds(1, 7), 0);
    }

    #[test]
    fn dissemination_sends_match_recvs() {
        for radix in 2..=5usize {
            for n in 1..=20usize {
                let mut sends = Vec::new();
                let mut recvs = Vec::new();
                for rank in 0..n {
                    for s in dissemination::schedule(rank, n, radix) {
                        match s {
                            Step::SendTo(p) => sends.push((rank, p)),
                            Step::RecvFrom(p) => recvs.push((p, rank)),
                            Step::Exchange(_) => panic!("dissemination has no exchanges"),
                        }
                    }
                }
                sends.sort_unstable();
                recvs.sort_unstable();
                assert_eq!(sends, recvs, "n={n} radix={radix}");
            }
        }
    }

    #[test]
    fn dissemination_peers_distinct_per_rank() {
        // Within one barrier, a rank never receives twice from the same
        // endpoint (the record would have to queue otherwise). Holds for
        // every radix: each distance j·radix^k < n has a single nonzero
        // base-radix digit, so all distances — hence all peers — differ.
        for radix in 2..=5usize {
            for n in 2..=33usize {
                for rank in 0..n {
                    let mut recv_peers: Vec<usize> = dissemination::schedule(rank, n, radix)
                        .into_iter()
                        .filter_map(|s| match s {
                            Step::RecvFrom(p) => Some(p),
                            _ => None,
                        })
                        .collect();
                    let before = recv_peers.len();
                    recv_peers.sort_unstable();
                    recv_peers.dedup();
                    assert_eq!(recv_peers.len(), before, "n={n} rank={rank} radix={radix}");
                }
            }
        }
    }

    #[test]
    fn dissemination_schedule_alternates_send_recv() {
        let steps = dissemination::schedule(0, 8, 2);
        assert_eq!(steps.len(), 6);
        for (i, s) in steps.iter().enumerate() {
            if i % 2 == 0 {
                assert!(matches!(s, Step::SendTo(_)));
            } else {
                assert!(matches!(s, Step::RecvFrom(_)));
            }
        }
        // round peers: send +1,+2,+4; recv -1,-2,-4
        assert_eq!(steps[0], Step::SendTo(1));
        assert_eq!(steps[1], Step::RecvFrom(7));
        assert_eq!(steps[4], Step::SendTo(4));
        assert_eq!(steps[5], Step::RecvFrom(4));
    }

    /// Reference replica of the pre-generalization fixed-radix loop, kept
    /// verbatim so the radix-2 path of the k-ary generator is pinned
    /// byte-identical to the historical schedules.
    fn legacy_radix2_schedule(rank: usize, n: usize) -> Vec<Step> {
        let mut steps = Vec::new();
        let mut dist = 1;
        while dist < n {
            steps.push(Step::SendTo((rank + dist) % n));
            steps.push(Step::RecvFrom((rank + n - dist) % n));
            dist <<= 1;
        }
        steps
    }

    #[test]
    fn dissemination_radix2_is_byte_identical_to_legacy() {
        for n in 1..=33usize {
            for rank in 0..n {
                assert_eq!(
                    dissemination::schedule(rank, n, 2),
                    legacy_radix2_schedule(rank, n),
                    "n={n} rank={rank}"
                );
            }
        }
    }

    #[test]
    fn dissemination_kary_distances_cover_every_rank() {
        // The union of received distances must let information from all
        // n−1 other ranks reach each rank: the distances per rank are
        // exactly the single-digit base-radix values below n, whose
        // partial sums (greedy base-radix decomposition) reach every
        // 1..n offset transitively. Spot-check the direct guarantee:
        // distance multiset = all j·radix^k < n, each exactly once.
        for radix in 2..=4usize {
            for n in 2..=40usize {
                let mut dists: Vec<usize> = dissemination::schedule(0, n, radix)
                    .into_iter()
                    .filter_map(|s| match s {
                        Step::SendTo(p) => Some(p),
                        _ => None,
                    })
                    .collect();
                dists.sort_unstable();
                let mut expect = Vec::new();
                let mut stride = 1usize;
                while stride < n {
                    for j in 1..radix {
                        if j * stride < n {
                            expect.push(j * stride);
                        }
                    }
                    stride *= radix;
                }
                expect.sort_unstable();
                assert_eq!(dists, expect, "n={n} radix={radix}");
            }
        }
    }

    #[test]
    fn dissemination_single_rank_is_empty() {
        for radix in 2..=5usize {
            assert!(dissemination::schedule(0, 1, radix).is_empty());
        }
    }

    #[test]
    fn scan_sends_match_recvs() {
        for n in 1..=20usize {
            let mut sends = Vec::new();
            let mut recvs = Vec::new();
            for rank in 0..n {
                for s in scan::schedule(rank, n) {
                    match s {
                        Step::SendTo(p) => sends.push((rank, p)),
                        Step::RecvFrom(p) => recvs.push((p, rank)),
                        Step::Exchange(_) => panic!("scan has no exchanges"),
                    }
                }
            }
            sends.sort_unstable();
            recvs.sort_unstable();
            assert_eq!(sends, recvs, "n={n}");
        }
    }

    #[test]
    fn scan_recv_peers_distinct_per_rank() {
        // Within one scan a rank receives from 2^k-shifted peers, all
        // distinct — required by the FIFO unexpected record.
        for n in 2..=33usize {
            for rank in 0..n {
                let mut peers: Vec<usize> = scan::schedule(rank, n)
                    .into_iter()
                    .filter_map(|s| match s {
                        Step::RecvFrom(p) => Some(p),
                        _ => None,
                    })
                    .collect();
                let before = peers.len();
                peers.sort_unstable();
                peers.dedup();
                assert_eq!(peers.len(), before, "n={n} rank={rank}");
            }
        }
    }

    #[test]
    fn scan_simulated_computes_prefix_sums() {
        // Execute the schedules in lock-step rounds against a value array.
        for n in 1..=17usize {
            let mut vals: Vec<u64> = (0..n as u64).map(|i| i * i + 1).collect();
            let expect: Vec<u64> = (0..n).map(|i| vals[..=i].iter().sum::<u64>()).collect();
            let mut dist = 1;
            while dist < n {
                let snapshot = vals.clone();
                for (i, v) in vals.iter_mut().enumerate() {
                    if i >= dist {
                        *v += snapshot[i - dist];
                    }
                }
                dist <<= 1;
            }
            assert_eq!(vals, expect, "n={n}");
        }
    }

    fn gp(ranks: usize) -> Vec<GlobalPort> {
        (0..ranks).map(|i| GlobalPort::new(i, 1)).collect()
    }

    #[test]
    fn compile_pe_is_exchange_pairs_plus_completion() {
        let m = gp(8);
        let prog = compile(Descriptor::Pe, 3, &m);
        assert_eq!(prog.token_charge, TokenCharge::Light);
        assert_eq!(prog.steps.len(), 7, "3 exchanges = 6 steps + completion");
        for ex in 0..3 {
            let peer = m[3 ^ (1 << ex)];
            assert_eq!(
                prog.steps[2 * ex],
                ScheduleStep::SendTo {
                    peers: vec![peer],
                    kind: pkt::PE,
                    charge: Charge::ExchangeSend,
                }
            );
            assert_eq!(
                prog.steps[2 * ex + 1],
                ScheduleStep::RecvFrom {
                    peers: vec![peer],
                    kind: pkt::PE,
                    combine: None,
                    charge: Charge::ExchangeMatch,
                }
            );
        }
        assert_eq!(
            prog.steps[6],
            ScheduleStep::DeliverCompletion(CompletionKind::Barrier)
        );
    }

    #[test]
    fn compile_gb_interior_orders_completion_before_forward() {
        let m = gp(7);
        let prog = compile(Descriptor::Gb { dim: 2 }, 1, &m);
        assert_eq!(prog.token_charge, TokenCharge::Tree);
        let shape: Vec<&ScheduleStep> = prog.steps.iter().collect();
        match shape.as_slice() {
            [ScheduleStep::RecvFrom {
                peers: kids,
                kind: pkt::GATHER,
                combine: None,
                charge: Charge::Gather,
            }, ScheduleStep::SendTo {
                peers: up,
                kind: pkt::GATHER,
                charge: Charge::Free,
            }, ScheduleStep::RecvFrom {
                peers: down,
                kind: pkt::BCAST,
                ..
            }, ScheduleStep::DeliverCompletion(CompletionKind::Barrier), ScheduleStep::SendTo {
                kind: pkt::BCAST,
                charge: Charge::ChildSend,
                ..
            }] => {
                assert_eq!(kids, &vec![m[3], m[4]]);
                assert_eq!(up, &vec![m[0]]);
                assert_eq!(down, &vec![m[0]]);
            }
            other => panic!("unexpected interior GB shape: {other:?}"),
        }
    }

    #[test]
    fn compile_gb_root_and_leaf_omit_empty_steps() {
        let m = gp(7);
        let root = compile(Descriptor::Gb { dim: 2 }, 0, &m);
        assert!(matches!(
            root.steps.as_slice(),
            [
                ScheduleStep::RecvFrom { .. },
                ScheduleStep::DeliverCompletion(CompletionKind::Barrier),
                ScheduleStep::SendTo { .. },
            ]
        ));
        let leaf = compile(Descriptor::Gb { dim: 2 }, 6, &m);
        assert!(matches!(
            leaf.steps.as_slice(),
            [
                ScheduleStep::SendTo { .. },
                ScheduleStep::RecvFrom { .. },
                ScheduleStep::DeliverCompletion(CompletionKind::Barrier),
            ]
        ));
    }

    #[test]
    fn compile_reduce_has_no_broadcast_phase() {
        let m = gp(5);
        for rank in 0..5 {
            let prog = compile(Descriptor::reduce(ReduceOp::Sum, 2), rank, &m);
            assert!(
                prog.steps.iter().all(|s| !matches!(
                    s,
                    ScheduleStep::RecvFrom {
                        kind: pkt::BCAST,
                        ..
                    }
                )),
                "rank {rank} waits for a broadcast"
            );
            assert_eq!(
                prog.steps.last(),
                Some(&ScheduleStep::DeliverCompletion(CompletionKind::Reduce)),
                "rank {rank}"
            );
        }
    }

    #[test]
    fn compile_allreduce_combines_on_gather_only() {
        let m = gp(4);
        let prog = compile(Descriptor::allreduce(ReduceOp::Max, 2), 1, &m);
        for s in &prog.steps {
            if let ScheduleStep::RecvFrom { kind, combine, .. } = s {
                match *kind {
                    pkt::GATHER => assert_eq!(*combine, Some(ReduceOp::Max)),
                    pkt::BCAST => assert_eq!(*combine, None, "hand-down overwrites"),
                    k => panic!("unexpected kind {k}"),
                }
            }
        }
    }

    #[test]
    fn compile_scan_rank0_has_no_receives() {
        let m = gp(8);
        let prog = compile(Descriptor::scan(ReduceOp::Sum), 0, &m);
        assert!(prog
            .steps
            .iter()
            .all(|s| !matches!(s, ScheduleStep::RecvFrom { .. })));
        assert_eq!(
            prog.steps.last(),
            Some(&ScheduleStep::DeliverCompletion(CompletionKind::Scan))
        );
    }

    #[test]
    fn compile_non_power_of_two_pe_folds() {
        let m = gp(3);
        // Rank 2 folds into rank 0 and awaits release: send, recv, done.
        let prog = compile(Descriptor::Pe, 2, &m);
        assert!(matches!(
            prog.steps.as_slice(),
            [
                ScheduleStep::SendTo { .. },
                ScheduleStep::RecvFrom { .. },
                ScheduleStep::DeliverCompletion(CompletionKind::Barrier),
            ]
        ));
        // Rank 0 absorbs, exchanges with rank 1, releases.
        let prog = compile(Descriptor::Pe, 0, &m);
        let peers: Vec<&GlobalPort> = prog
            .steps
            .iter()
            .filter_map(|s| match s {
                ScheduleStep::SendTo { peers, .. } | ScheduleStep::RecvFrom { peers, .. } => {
                    Some(&peers[0])
                }
                _ => None,
            })
            .collect();
        assert_eq!(peers, vec![&m[2], &m[1], &m[1], &m[2]]);
    }

    #[test]
    fn compile_kary_dissemination_runs_on_pe_path() {
        let m = gp(9);
        let prog = compile(Descriptor::dissemination_radix(3), 0, &m);
        assert_eq!(prog.token_charge, TokenCharge::Light);
        // ceil(log_3 9) = 2 rounds × 2 offsets × (send + recv) + completion
        assert_eq!(prog.steps.len(), 9);
        match &prog.steps[0] {
            ScheduleStep::SendTo { peers, kind, .. } => {
                assert_eq!(peers, &vec![m[1]]);
                assert_eq!(*kind, pkt::PE);
            }
            other => panic!("unexpected first step {other:?}"),
        }
        assert_eq!(
            prog.steps.last(),
            Some(&ScheduleStep::DeliverCompletion(CompletionKind::Barrier))
        );
    }

    // ---- construction-boundary validation (regression: gb(0) used to
    // panic deep inside gb::parent mid-compile) ----

    #[test]
    fn try_constructors_reject_bad_parameters_as_values() {
        assert_eq!(Descriptor::try_gb(0), Err(DescriptorError::ZeroDim));
        assert_eq!(Descriptor::try_bcast(0), Err(DescriptorError::ZeroDim));
        assert_eq!(
            Descriptor::try_reduce(ReduceOp::Sum, 0),
            Err(DescriptorError::ZeroDim)
        );
        assert_eq!(
            Descriptor::try_allreduce(ReduceOp::Max, 0),
            Err(DescriptorError::ZeroDim)
        );
        assert_eq!(
            Descriptor::try_dissemination(0),
            Err(DescriptorError::InvalidRadix { radix: 0 })
        );
        assert_eq!(
            Descriptor::try_dissemination(1),
            Err(DescriptorError::InvalidRadix { radix: 1 })
        );
    }

    #[test]
    fn try_constructors_accept_minimal_valid_parameters() {
        // dim=1 (chain tree) and radix=2 are the smallest valid settings.
        assert!(Descriptor::try_gb(1).is_ok());
        assert!(Descriptor::try_bcast(1).is_ok());
        assert!(Descriptor::try_reduce(ReduceOp::Sum, 1).is_ok());
        assert!(Descriptor::try_allreduce(ReduceOp::Min, 1).is_ok());
        assert!(Descriptor::try_dissemination(2).is_ok());
        for d in [
            Descriptor::gb(1),
            Descriptor::dissemination(),
            Descriptor::dissemination_radix(4),
            Descriptor::pe(),
            Descriptor::scan(ReduceOp::Sum),
        ] {
            assert_eq!(d.validate(), Ok(()));
        }
    }

    #[test]
    #[should_panic(expected = "ZeroDim")]
    fn gb_zero_dim_panics_at_construction_not_in_compile() {
        let _ = Descriptor::gb(0);
    }

    #[test]
    #[should_panic(expected = "InvalidRadix")]
    fn dissemination_radix_one_panics_at_construction() {
        let _ = Descriptor::dissemination_radix(1);
    }

    #[test]
    fn degenerate_single_rank_groups_compile_to_bare_completion() {
        let m = gp(1);
        for d in [
            Descriptor::pe(),
            Descriptor::gb(1),
            Descriptor::gb(3),
            Descriptor::dissemination(),
            Descriptor::dissemination_radix(4),
        ] {
            let prog = compile(d, 0, &m);
            assert_eq!(
                prog.steps,
                vec![ScheduleStep::DeliverCompletion(CompletionKind::Barrier)],
                "{d:?}"
            );
        }
    }
}
