//! Schedule construction and the collective compiler.
//!
//! All schedules are computed **on the host**: "the tree construction is a
//! relatively computationally intensive task which can easily be computed
//! at the host. The host at a particular node needs to inform the NIC only
//! of the children and parent of the node" (§5.1) — likewise the PE pairing
//! list. The pure rank-level schedules live in the [`pe`], [`gb`],
//! [`dissemination`] and [`scan`] modules; [`compile`] lowers an algorithm
//! [`Descriptor`] into the endpoint-level [`CollectiveSchedule`] IR that
//! both the NIC firmware extension and the host-based baselines interpret,
//! so the NIC and host runs of an algorithm execute *the same program*, as
//! in the paper's evaluation.

use gmsim_gm::{
    Charge, CollectiveSchedule, CompletionKind, GlobalPort, Payload, ReduceOp, ScheduleStep,
    TokenCharge,
};

pub mod gb {
    //! Gather-and-broadcast trees of fixed dimension (arity) `d` ≥ 1.
    //!
    //! Ranks form a d-ary heap-shaped tree: rank 0 is the root, the
    //! children of rank `i` are `i*d + 1 ..= i*d + d` (those `< n`). "We
    //! would expect that the dimension of the tree would impact the
    //! performance of the barrier" (§5.1); the evaluation sweeps `d` from 1
    //! to N−1 and reports the best.

    /// Parent rank of `rank` in a `dim`-ary tree, `None` at the root.
    pub fn parent(rank: usize, dim: usize) -> Option<usize> {
        assert!(dim >= 1, "tree dimension must be at least 1");
        if rank == 0 {
            None
        } else {
            Some((rank - 1) / dim)
        }
    }

    /// Children of `rank` in a `dim`-ary tree over `n` ranks.
    pub fn children(rank: usize, dim: usize, n: usize) -> Vec<usize> {
        assert!(dim >= 1, "tree dimension must be at least 1");
        let first = rank
            .checked_mul(dim)
            .and_then(|x| x.checked_add(1))
            .unwrap_or(n);
        (first..n.min(first.saturating_add(dim))).collect()
    }

    /// Depth of the deepest rank (root = 0).
    pub fn depth(n: usize, dim: usize) -> usize {
        assert!(n >= 1);
        let mut deepest = 0;
        let mut rank = n - 1;
        while let Some(p) = parent(rank, dim) {
            deepest += 1;
            rank = p;
        }
        deepest
    }
}

pub mod pe {
    //! Pairwise exchange, "a pairwise exchange algorithm (PE) that is used
    //! in MPICH" (§5): recursively pair nodes, then pair groups. Each rank
    //! performs `log2 N` send/receive exchanges, with peer `rank XOR 2^k`
    //! at step `k`.
    //!
    //! For group sizes that are not powers of two we use the standard
    //! MPICH-style fold: with `p` the largest power of two ≤ N and
    //! `r = N − p` extras, rank `p+i` first *folds into* rank `i`
    //! (send-only), the low `p` ranks run the power-of-two exchange, and
    //! rank `i` finally *releases* rank `p+i` (send-only again). The paper
    //! evaluates powers of two only; the fold steps generalize it without
    //! changing the power-of-two schedules.

    /// One step of a PE schedule, as (peer rank, step kind).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Step {
        /// Exchange: send to the peer, then wait for its message.
        Exchange(usize),
        /// Fold/release transmission: send and advance.
        SendTo(usize),
        /// Fold/release reception: wait without sending.
        RecvFrom(usize),
    }

    /// Largest power of two ≤ `n`.
    pub fn pow2_floor(n: usize) -> usize {
        assert!(n >= 1);
        1usize << (usize::BITS - 1 - n.leading_zeros())
    }

    /// The PE schedule for `rank` out of `n` ranks.
    pub fn schedule(rank: usize, n: usize) -> Vec<Step> {
        assert!(n >= 1 && rank < n, "rank {rank} out of range for n={n}");
        let p = pow2_floor(n);
        let r = n - p;
        let mut steps = Vec::new();
        if rank >= p {
            // Extra rank: fold into the low group, then await release.
            steps.push(Step::SendTo(rank - p));
            steps.push(Step::RecvFrom(rank - p));
            return steps;
        }
        if rank < r {
            // Absorb the extra rank before exchanging.
            steps.push(Step::RecvFrom(p + rank));
        }
        let mut dist = 1;
        while dist < p {
            steps.push(Step::Exchange(rank ^ dist));
            dist <<= 1;
        }
        if rank < r {
            // Release the extra rank.
            steps.push(Step::SendTo(p + rank));
        }
        steps
    }
}

pub mod dissemination {
    //! Dissemination barrier (Hensgen/Finkel/Manber) — **an extension
    //! beyond the paper**, included because it expresses naturally in the
    //! same step machinery: at round `k`, rank `i` *sends* to
    //! `(i + 2^k) mod n` and *waits for* `(i − 2^k) mod n`, for
    //! `ceil(log2 n)` rounds. Unlike PE it needs no power-of-two fold and
    //! the send/receive of a round involve different peers.

    use super::pe::Step;

    /// The dissemination schedule for `rank` of `n`, as the same step kind
    /// the PE machinery executes (send-only then receive-only per round).
    pub fn schedule(rank: usize, n: usize) -> Vec<Step> {
        assert!(n >= 1 && rank < n, "rank {rank} out of range for n={n}");
        let mut steps = Vec::new();
        let mut dist = 1;
        while dist < n {
            steps.push(Step::SendTo((rank + dist) % n));
            steps.push(Step::RecvFrom((rank + n - dist) % n));
            dist <<= 1;
        }
        steps
    }

    /// Number of rounds: `ceil(log2 n)`.
    pub fn rounds(n: usize) -> usize {
        assert!(n >= 1);
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

pub mod scan {
    //! Inclusive prefix scan (Hillis–Steele) — **an extension beyond the
    //! paper**, in the spirit of its §8 future work on other collectives.
    //! At round `k`, rank `i` sends its running prefix to `i + 2^k` (if it
    //! exists) and folds in the prefix arriving from `i − 2^k` (if it
    //! exists); after `ceil(log2 n)` rounds rank `i` holds the inclusive
    //! prefix over ranks `0..=i`. Like dissemination it is asymmetric
    //! (different send and receive peers per round) and needs no
    //! power-of-two fold, so it expresses naturally in the same step
    //! machinery.

    use super::pe::Step;

    /// The scan schedule for `rank` of `n`: per round, a send (if the
    /// upstream partner exists) then a combining receive (if the
    /// downstream partner exists).
    pub fn schedule(rank: usize, n: usize) -> Vec<Step> {
        assert!(n >= 1 && rank < n, "rank {rank} out of range for n={n}");
        let mut steps = Vec::new();
        let mut dist = 1;
        while dist < n {
            if rank + dist < n {
                steps.push(Step::SendTo(rank + dist));
            }
            if rank >= dist {
                steps.push(Step::RecvFrom(rank - dist));
            }
            dist <<= 1;
        }
        steps
    }
}

/// Which collective algorithm a rank participates in. A descriptor plus a
/// rank and a member list is everything [`compile`] needs to produce the
/// rank's [`CollectiveSchedule`].
///
/// Construct descriptors through the named constructors ([`Descriptor::pe`],
/// [`Descriptor::bcast`], ...) and attach message data with
/// [`Descriptor::with_payload`]; the enum and its data-carrying variants are
/// `#[non_exhaustive]`, so bare-field construction does not compile outside
/// this crate and there is exactly one way to issue each collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Descriptor {
    /// Pairwise-exchange barrier (§5, PE; MPICH-style fold for
    /// non-power-of-two groups).
    Pe,
    /// Gather-and-broadcast barrier over a `dim`-ary tree (§5, GB).
    #[non_exhaustive]
    Gb {
        /// Tree arity.
        dim: usize,
    },
    /// Dissemination barrier (extension beyond the paper; runs on the same
    /// firmware path as PE).
    Dissemination,
    /// Binomial-tree broadcast of the root's value (§8 future work).
    #[non_exhaustive]
    Bcast {
        /// Tree arity.
        dim: usize,
        /// Message data each tree edge carries.
        payload: Payload,
    },
    /// Reduction to rank 0 (§8 future work); only the root sees the
    /// global value.
    #[non_exhaustive]
    Reduce {
        /// Combining operator.
        op: ReduceOp,
        /// Tree arity.
        dim: usize,
        /// Message data each contribution carries.
        payload: Payload,
    },
    /// Allreduce: reduce up the tree, broadcast the result back down.
    #[non_exhaustive]
    Allreduce {
        /// Combining operator.
        op: ReduceOp,
        /// Tree arity.
        dim: usize,
        /// Message data each contribution (and the hand-down) carries.
        payload: Payload,
    },
    /// Inclusive prefix scan (Hillis–Steele; extension beyond the paper).
    #[non_exhaustive]
    Scan {
        /// Combining operator.
        op: ReduceOp,
        /// Message data each running prefix carries.
        payload: Payload,
    },
}

impl Descriptor {
    /// Pairwise-exchange barrier.
    pub fn pe() -> Self {
        Descriptor::Pe
    }

    /// Gather-and-broadcast barrier over a `dim`-ary tree.
    pub fn gb(dim: usize) -> Self {
        Descriptor::Gb { dim }
    }

    /// Dissemination barrier.
    pub fn dissemination() -> Self {
        Descriptor::Dissemination
    }

    /// Tree broadcast (zero payload until [`Descriptor::with_payload`]).
    pub fn bcast(dim: usize) -> Self {
        Descriptor::Bcast {
            dim,
            payload: Payload::EMPTY,
        }
    }

    /// Tree reduction to rank 0.
    pub fn reduce(op: ReduceOp, dim: usize) -> Self {
        Descriptor::Reduce {
            op,
            dim,
            payload: Payload::EMPTY,
        }
    }

    /// Allreduce over a `dim`-ary tree.
    pub fn allreduce(op: ReduceOp, dim: usize) -> Self {
        Descriptor::Allreduce {
            op,
            dim,
            payload: Payload::EMPTY,
        }
    }

    /// Inclusive prefix scan.
    pub fn scan(op: ReduceOp) -> Self {
        Descriptor::Scan {
            op,
            payload: Payload::EMPTY,
        }
    }

    /// Attach message data (builder style).
    ///
    /// # Panics
    /// On the barrier descriptors (`Pe`, `Gb`, `Dissemination`), which by
    /// definition carry no data.
    #[must_use]
    pub fn with_payload(mut self, p: Payload) -> Self {
        match &mut self {
            Descriptor::Bcast { payload, .. }
            | Descriptor::Reduce { payload, .. }
            | Descriptor::Allreduce { payload, .. }
            | Descriptor::Scan { payload, .. } => *payload = p,
            Descriptor::Pe | Descriptor::Gb { .. } | Descriptor::Dissemination => {
                panic!("barriers carry no payload")
            }
        }
        self
    }

    /// The message data this collective carries ([`Payload::EMPTY`] for
    /// barriers).
    pub fn payload(&self) -> Payload {
        match self {
            Descriptor::Bcast { payload, .. }
            | Descriptor::Reduce { payload, .. }
            | Descriptor::Allreduce { payload, .. }
            | Descriptor::Scan { payload, .. } => *payload,
            Descriptor::Pe | Descriptor::Gb { .. } | Descriptor::Dissemination => Payload::EMPTY,
        }
    }
}

/// Wire packet kinds for the compiled programs (§5.2: "There is a separate
/// packet type for each phase"). `REJECT` is reserved by the firmware's
/// §3.2 rejection protocol and never appears in a compiled schedule.
pub mod pkt {
    /// Pairwise-exchange-style message (PE, dissemination).
    pub const PE: u8 = 1;
    /// Tree gather-phase message (child → parent, may carry a value).
    pub const GATHER: u8 = 2;
    /// Tree broadcast-phase message (parent → child).
    pub const BCAST: u8 = 3;
    /// §3.2 rejection of a message that arrived for a closed port.
    pub const REJECT: u8 = 4;
    /// Prefix-scan message (carries a running prefix).
    pub const SCAN: u8 = 5;
}

/// Map a list of rank-level steps onto endpoint-level IR steps for an
/// exchange-style program (PE / dissemination / scan).
fn lower_steps(
    members: &[GlobalPort],
    steps: Vec<pe::Step>,
    kind: u8,
    combine: Option<ReduceOp>,
) -> Vec<ScheduleStep> {
    let mut out = Vec::new();
    for s in steps {
        match s {
            pe::Step::Exchange(p) => {
                out.push(ScheduleStep::SendTo {
                    peers: vec![members[p]],
                    kind,
                    charge: Charge::ExchangeSend,
                });
                out.push(ScheduleStep::RecvFrom {
                    peers: vec![members[p]],
                    kind,
                    combine,
                    charge: Charge::ExchangeMatch,
                });
            }
            pe::Step::SendTo(p) => out.push(ScheduleStep::SendTo {
                peers: vec![members[p]],
                kind,
                charge: Charge::ExchangeSend,
            }),
            pe::Step::RecvFrom(p) => out.push(ScheduleStep::RecvFrom {
                peers: vec![members[p]],
                kind,
                combine,
                charge: Charge::ExchangeMatch,
            }),
        }
    }
    out
}

/// Compile `desc` for `rank` of `members` into the IR program both
/// interpreters execute. Steps with no peers are omitted, so leaves carry
/// no empty receives and the root no empty upward send.
pub fn compile(desc: Descriptor, rank: usize, members: &[GlobalPort]) -> CollectiveSchedule {
    let n = members.len();
    assert!(rank < n, "rank {rank} out of range for n={n}");
    let tree = |dim: usize| -> (Option<GlobalPort>, Vec<GlobalPort>) {
        (
            gb::parent(rank, dim).map(|p| members[p]),
            gb::children(rank, dim, n)
                .into_iter()
                .map(|c| members[c])
                .collect(),
        )
    };
    let mut steps = Vec::new();
    let token_charge = match desc {
        Descriptor::Pe => {
            steps = lower_steps(members, pe::schedule(rank, n), pkt::PE, None);
            steps.push(ScheduleStep::DeliverCompletion(CompletionKind::Barrier));
            TokenCharge::Light
        }
        Descriptor::Dissemination => {
            steps = lower_steps(members, dissemination::schedule(rank, n), pkt::PE, None);
            steps.push(ScheduleStep::DeliverCompletion(CompletionKind::Barrier));
            TokenCharge::Light
        }
        Descriptor::Scan { op, .. } => {
            steps = lower_steps(members, scan::schedule(rank, n), pkt::SCAN, Some(op));
            steps.push(ScheduleStep::DeliverCompletion(CompletionKind::Scan));
            TokenCharge::Light
        }
        Descriptor::Gb { dim } | Descriptor::Allreduce { dim, .. } => {
            let (combine, completion) = match desc {
                Descriptor::Allreduce { op, .. } => (Some(op), CompletionKind::Reduce),
                _ => (None, CompletionKind::Barrier),
            };
            let (parent, children) = tree(dim);
            if !children.is_empty() {
                steps.push(ScheduleStep::RecvFrom {
                    peers: children.clone(),
                    kind: pkt::GATHER,
                    combine,
                    charge: Charge::Gather,
                });
            }
            if let Some(parent) = parent {
                // The gather-up send piggybacks on the state update that
                // absorbed the last child, hence no separate charge.
                steps.push(ScheduleStep::SendTo {
                    peers: vec![parent],
                    kind: pkt::GATHER,
                    charge: Charge::Free,
                });
                steps.push(ScheduleStep::RecvFrom {
                    peers: vec![parent],
                    kind: pkt::BCAST,
                    combine: None,
                    charge: Charge::Gather,
                });
            }
            // §5.2 order: completion is DMAed to the host *before* the
            // broadcast is forwarded, at the root and interior nodes alike.
            steps.push(ScheduleStep::DeliverCompletion(completion));
            if !children.is_empty() {
                steps.push(ScheduleStep::SendTo {
                    peers: children,
                    kind: pkt::BCAST,
                    charge: Charge::ChildSend,
                });
            }
            TokenCharge::Tree
        }
        Descriptor::Reduce { op, dim, .. } => {
            let (parent, children) = tree(dim);
            if !children.is_empty() {
                steps.push(ScheduleStep::RecvFrom {
                    peers: children,
                    kind: pkt::GATHER,
                    combine: Some(op),
                    charge: Charge::Gather,
                });
            }
            if let Some(parent) = parent {
                steps.push(ScheduleStep::SendTo {
                    peers: vec![parent],
                    kind: pkt::GATHER,
                    charge: Charge::Free,
                });
            }
            // No broadcast phase: the global value exists only at the root;
            // a non-root's completion carries its subtree value.
            steps.push(ScheduleStep::DeliverCompletion(CompletionKind::Reduce));
            TokenCharge::Tree
        }
        Descriptor::Bcast { dim, .. } => {
            let (parent, children) = tree(dim);
            if let Some(parent) = parent {
                steps.push(ScheduleStep::RecvFrom {
                    peers: vec![parent],
                    kind: pkt::BCAST,
                    combine: None,
                    charge: Charge::Gather,
                });
            }
            steps.push(ScheduleStep::DeliverCompletion(CompletionKind::Broadcast));
            if !children.is_empty() {
                steps.push(ScheduleStep::SendTo {
                    peers: children,
                    kind: pkt::BCAST,
                    charge: Charge::ChildSend,
                });
            }
            TokenCharge::Tree
        }
    };
    CollectiveSchedule::new(steps, token_charge).with_payload(desc.payload())
}

#[cfg(test)]
mod tests {
    use super::dissemination;
    use super::gb;
    use super::pe::{self, Step};
    use super::{compile, pkt, scan, Descriptor};
    use gmsim_gm::{Charge, CompletionKind, GlobalPort, ReduceOp, ScheduleStep, TokenCharge};

    #[test]
    fn pow2_floor_values() {
        assert_eq!(pe::pow2_floor(1), 1);
        assert_eq!(pe::pow2_floor(2), 2);
        assert_eq!(pe::pow2_floor(3), 2);
        assert_eq!(pe::pow2_floor(16), 16);
        assert_eq!(pe::pow2_floor(17), 16);
    }

    #[test]
    fn pe_power_of_two_is_pure_exchange() {
        for n in [2usize, 4, 8, 16] {
            for rank in 0..n {
                let steps = pe::schedule(rank, n);
                assert_eq!(steps.len(), n.trailing_zeros() as usize);
                for (k, s) in steps.iter().enumerate() {
                    assert_eq!(*s, Step::Exchange(rank ^ (1 << k)));
                }
            }
        }
    }

    #[test]
    fn pe_exchange_relation_is_symmetric() {
        for n in [2usize, 4, 8, 16, 32] {
            for rank in 0..n {
                for (k, s) in pe::schedule(rank, n).iter().enumerate() {
                    if let Step::Exchange(peer) = s {
                        assert_eq!(pe::schedule(*peer, n)[k], Step::Exchange(rank));
                    }
                }
            }
        }
    }

    #[test]
    fn pe_non_power_of_two_folds() {
        // n=3: p=2, r=1
        assert_eq!(pe::schedule(2, 3), vec![Step::SendTo(0), Step::RecvFrom(0)]);
        assert_eq!(
            pe::schedule(0, 3),
            vec![Step::RecvFrom(2), Step::Exchange(1), Step::SendTo(2)]
        );
        assert_eq!(pe::schedule(1, 3), vec![Step::Exchange(0)]);
    }

    #[test]
    fn pe_sends_match_recvs_globally() {
        // Every send in some rank's schedule must have exactly one matching
        // receive in the peer's schedule, and vice versa.
        for n in 2..=17usize {
            let mut sends = Vec::new();
            let mut recvs = Vec::new();
            for rank in 0..n {
                for s in pe::schedule(rank, n) {
                    match s {
                        Step::Exchange(p) => {
                            sends.push((rank, p));
                            recvs.push((p, rank));
                        }
                        Step::SendTo(p) => sends.push((rank, p)),
                        Step::RecvFrom(p) => recvs.push((p, rank)),
                    }
                }
            }
            sends.sort_unstable();
            recvs.sort_unstable();
            assert_eq!(sends, recvs, "n={n}");
        }
    }

    #[test]
    fn pe_single_rank_is_empty() {
        assert!(pe::schedule(0, 1).is_empty());
    }

    #[test]
    fn gb_parent_child_inverse() {
        for n in [1usize, 2, 5, 16, 33] {
            for dim in 1..=4usize {
                for rank in 0..n {
                    for c in gb::children(rank, dim, n) {
                        assert_eq!(gb::parent(c, dim), Some(rank));
                    }
                    if let Some(p) = gb::parent(rank, dim) {
                        assert!(gb::children(p, dim, n).contains(&rank));
                    }
                }
            }
        }
    }

    #[test]
    fn gb_is_spanning_tree() {
        for n in [2usize, 7, 16] {
            for dim in 1..n {
                // every rank reaches the root
                for rank in 0..n {
                    let mut r = rank;
                    let mut hops = 0;
                    while let Some(p) = gb::parent(r, dim) {
                        r = p;
                        hops += 1;
                        assert!(hops <= n, "cycle detected");
                    }
                    assert_eq!(r, 0);
                }
                // child counts sum to n-1
                let total: usize = (0..n).map(|r| gb::children(r, dim, n).len()).sum();
                assert_eq!(total, n - 1);
            }
        }
    }

    #[test]
    fn gb_dimension_one_is_a_chain() {
        let n = 5;
        for rank in 0..n {
            let kids = gb::children(rank, 1, n);
            if rank + 1 < n {
                assert_eq!(kids, vec![rank + 1]);
            } else {
                assert!(kids.is_empty());
            }
        }
        assert_eq!(gb::depth(n, 1), n - 1);
    }

    #[test]
    fn gb_wide_tree_is_flat() {
        let n = 8;
        assert_eq!(gb::children(0, n - 1, n), (1..n).collect::<Vec<_>>());
        assert_eq!(gb::depth(n, n - 1), 1);
    }

    #[test]
    fn gb_depth_binary() {
        assert_eq!(gb::depth(1, 2), 0);
        assert_eq!(gb::depth(2, 2), 1);
        assert_eq!(gb::depth(7, 2), 2);
        assert_eq!(gb::depth(8, 2), 3);
    }

    #[test]
    fn gb_children_no_overflow_at_huge_rank() {
        assert!(gb::children(usize::MAX / 2, 3, 10).is_empty());
    }

    #[test]
    fn dissemination_rounds_count() {
        assert_eq!(dissemination::rounds(1), 0);
        assert_eq!(dissemination::rounds(2), 1);
        assert_eq!(dissemination::rounds(5), 3);
        assert_eq!(dissemination::rounds(8), 3);
        assert_eq!(dissemination::rounds(9), 4);
    }

    #[test]
    fn dissemination_sends_match_recvs() {
        for n in 1..=20usize {
            let mut sends = Vec::new();
            let mut recvs = Vec::new();
            for rank in 0..n {
                for s in dissemination::schedule(rank, n) {
                    match s {
                        Step::SendTo(p) => sends.push((rank, p)),
                        Step::RecvFrom(p) => recvs.push((p, rank)),
                        Step::Exchange(_) => panic!("dissemination has no exchanges"),
                    }
                }
            }
            sends.sort_unstable();
            recvs.sort_unstable();
            assert_eq!(sends, recvs, "n={n}");
        }
    }

    #[test]
    fn dissemination_peers_distinct_per_rank() {
        // Within one barrier, a rank never receives twice from the same
        // endpoint (the record would have to queue otherwise).
        for n in 2..=33usize {
            for rank in 0..n {
                let mut recv_peers: Vec<usize> = dissemination::schedule(rank, n)
                    .into_iter()
                    .filter_map(|s| match s {
                        Step::RecvFrom(p) => Some(p),
                        _ => None,
                    })
                    .collect();
                let before = recv_peers.len();
                recv_peers.sort_unstable();
                recv_peers.dedup();
                assert_eq!(recv_peers.len(), before, "n={n} rank={rank}");
            }
        }
    }

    #[test]
    fn dissemination_schedule_alternates_send_recv() {
        let steps = dissemination::schedule(0, 8);
        assert_eq!(steps.len(), 6);
        for (i, s) in steps.iter().enumerate() {
            if i % 2 == 0 {
                assert!(matches!(s, Step::SendTo(_)));
            } else {
                assert!(matches!(s, Step::RecvFrom(_)));
            }
        }
        // round peers: send +1,+2,+4; recv -1,-2,-4
        assert_eq!(steps[0], Step::SendTo(1));
        assert_eq!(steps[1], Step::RecvFrom(7));
        assert_eq!(steps[4], Step::SendTo(4));
        assert_eq!(steps[5], Step::RecvFrom(4));
    }

    #[test]
    fn scan_sends_match_recvs() {
        for n in 1..=20usize {
            let mut sends = Vec::new();
            let mut recvs = Vec::new();
            for rank in 0..n {
                for s in scan::schedule(rank, n) {
                    match s {
                        Step::SendTo(p) => sends.push((rank, p)),
                        Step::RecvFrom(p) => recvs.push((p, rank)),
                        Step::Exchange(_) => panic!("scan has no exchanges"),
                    }
                }
            }
            sends.sort_unstable();
            recvs.sort_unstable();
            assert_eq!(sends, recvs, "n={n}");
        }
    }

    #[test]
    fn scan_recv_peers_distinct_per_rank() {
        // Within one scan a rank receives from 2^k-shifted peers, all
        // distinct — required by the FIFO unexpected record.
        for n in 2..=33usize {
            for rank in 0..n {
                let mut peers: Vec<usize> = scan::schedule(rank, n)
                    .into_iter()
                    .filter_map(|s| match s {
                        Step::RecvFrom(p) => Some(p),
                        _ => None,
                    })
                    .collect();
                let before = peers.len();
                peers.sort_unstable();
                peers.dedup();
                assert_eq!(peers.len(), before, "n={n} rank={rank}");
            }
        }
    }

    #[test]
    fn scan_simulated_computes_prefix_sums() {
        // Execute the schedules in lock-step rounds against a value array.
        for n in 1..=17usize {
            let mut vals: Vec<u64> = (0..n as u64).map(|i| i * i + 1).collect();
            let expect: Vec<u64> = (0..n).map(|i| vals[..=i].iter().sum::<u64>()).collect();
            let mut dist = 1;
            while dist < n {
                let snapshot = vals.clone();
                for (i, v) in vals.iter_mut().enumerate() {
                    if i >= dist {
                        *v += snapshot[i - dist];
                    }
                }
                dist <<= 1;
            }
            assert_eq!(vals, expect, "n={n}");
        }
    }

    fn gp(ranks: usize) -> Vec<GlobalPort> {
        (0..ranks).map(|i| GlobalPort::new(i, 1)).collect()
    }

    #[test]
    fn compile_pe_is_exchange_pairs_plus_completion() {
        let m = gp(8);
        let prog = compile(Descriptor::Pe, 3, &m);
        assert_eq!(prog.token_charge, TokenCharge::Light);
        assert_eq!(prog.steps.len(), 7, "3 exchanges = 6 steps + completion");
        for ex in 0..3 {
            let peer = m[3 ^ (1 << ex)];
            assert_eq!(
                prog.steps[2 * ex],
                ScheduleStep::SendTo {
                    peers: vec![peer],
                    kind: pkt::PE,
                    charge: Charge::ExchangeSend,
                }
            );
            assert_eq!(
                prog.steps[2 * ex + 1],
                ScheduleStep::RecvFrom {
                    peers: vec![peer],
                    kind: pkt::PE,
                    combine: None,
                    charge: Charge::ExchangeMatch,
                }
            );
        }
        assert_eq!(
            prog.steps[6],
            ScheduleStep::DeliverCompletion(CompletionKind::Barrier)
        );
    }

    #[test]
    fn compile_gb_interior_orders_completion_before_forward() {
        let m = gp(7);
        let prog = compile(Descriptor::Gb { dim: 2 }, 1, &m);
        assert_eq!(prog.token_charge, TokenCharge::Tree);
        let shape: Vec<&ScheduleStep> = prog.steps.iter().collect();
        match shape.as_slice() {
            [ScheduleStep::RecvFrom {
                peers: kids,
                kind: pkt::GATHER,
                combine: None,
                charge: Charge::Gather,
            }, ScheduleStep::SendTo {
                peers: up,
                kind: pkt::GATHER,
                charge: Charge::Free,
            }, ScheduleStep::RecvFrom {
                peers: down,
                kind: pkt::BCAST,
                ..
            }, ScheduleStep::DeliverCompletion(CompletionKind::Barrier), ScheduleStep::SendTo {
                kind: pkt::BCAST,
                charge: Charge::ChildSend,
                ..
            }] => {
                assert_eq!(kids, &vec![m[3], m[4]]);
                assert_eq!(up, &vec![m[0]]);
                assert_eq!(down, &vec![m[0]]);
            }
            other => panic!("unexpected interior GB shape: {other:?}"),
        }
    }

    #[test]
    fn compile_gb_root_and_leaf_omit_empty_steps() {
        let m = gp(7);
        let root = compile(Descriptor::Gb { dim: 2 }, 0, &m);
        assert!(matches!(
            root.steps.as_slice(),
            [
                ScheduleStep::RecvFrom { .. },
                ScheduleStep::DeliverCompletion(CompletionKind::Barrier),
                ScheduleStep::SendTo { .. },
            ]
        ));
        let leaf = compile(Descriptor::Gb { dim: 2 }, 6, &m);
        assert!(matches!(
            leaf.steps.as_slice(),
            [
                ScheduleStep::SendTo { .. },
                ScheduleStep::RecvFrom { .. },
                ScheduleStep::DeliverCompletion(CompletionKind::Barrier),
            ]
        ));
    }

    #[test]
    fn compile_reduce_has_no_broadcast_phase() {
        let m = gp(5);
        for rank in 0..5 {
            let prog = compile(Descriptor::reduce(ReduceOp::Sum, 2), rank, &m);
            assert!(
                prog.steps.iter().all(|s| !matches!(
                    s,
                    ScheduleStep::RecvFrom {
                        kind: pkt::BCAST,
                        ..
                    }
                )),
                "rank {rank} waits for a broadcast"
            );
            assert_eq!(
                prog.steps.last(),
                Some(&ScheduleStep::DeliverCompletion(CompletionKind::Reduce)),
                "rank {rank}"
            );
        }
    }

    #[test]
    fn compile_allreduce_combines_on_gather_only() {
        let m = gp(4);
        let prog = compile(Descriptor::allreduce(ReduceOp::Max, 2), 1, &m);
        for s in &prog.steps {
            if let ScheduleStep::RecvFrom { kind, combine, .. } = s {
                match *kind {
                    pkt::GATHER => assert_eq!(*combine, Some(ReduceOp::Max)),
                    pkt::BCAST => assert_eq!(*combine, None, "hand-down overwrites"),
                    k => panic!("unexpected kind {k}"),
                }
            }
        }
    }

    #[test]
    fn compile_scan_rank0_has_no_receives() {
        let m = gp(8);
        let prog = compile(Descriptor::scan(ReduceOp::Sum), 0, &m);
        assert!(prog
            .steps
            .iter()
            .all(|s| !matches!(s, ScheduleStep::RecvFrom { .. })));
        assert_eq!(
            prog.steps.last(),
            Some(&ScheduleStep::DeliverCompletion(CompletionKind::Scan))
        );
    }

    #[test]
    fn compile_non_power_of_two_pe_folds() {
        let m = gp(3);
        // Rank 2 folds into rank 0 and awaits release: send, recv, done.
        let prog = compile(Descriptor::Pe, 2, &m);
        assert!(matches!(
            prog.steps.as_slice(),
            [
                ScheduleStep::SendTo { .. },
                ScheduleStep::RecvFrom { .. },
                ScheduleStep::DeliverCompletion(CompletionKind::Barrier),
            ]
        ));
        // Rank 0 absorbs, exchanges with rank 1, releases.
        let prog = compile(Descriptor::Pe, 0, &m);
        let peers: Vec<&GlobalPort> = prog
            .steps
            .iter()
            .filter_map(|s| match s {
                ScheduleStep::SendTo { peers, .. } | ScheduleStep::RecvFrom { peers, .. } => {
                    Some(&peers[0])
                }
                _ => None,
            })
            .collect();
        assert_eq!(peers, vec![&m[2], &m[1], &m[1], &m[2]]);
    }
}
