//! Barrier groups: ordered endpoint lists and their collective tokens.
//!
//! "A barrier operation synchronizes the processes which are attached to
//! the specified endpoints" (§3, system model). A [`BarrierGroup`] is that
//! endpoint list; each member builds its own collective token from its rank
//! — the PE step list, or its GB parent/children neighbourhood (§5.1: only
//! the neighbourhood crosses the host/NIC boundary, never the full list).

use crate::collectives::{CollectiveOp, ReduceOp};
use crate::schedule::{dissemination, gb, pe};
use gmsim_gm::{CollectiveStep, CollectiveToken, GlobalPort, StepKind};

fn map_steps(members: &[GlobalPort], steps: Vec<pe::Step>) -> Vec<CollectiveStep> {
    steps
        .into_iter()
        .map(|s| match s {
            pe::Step::Exchange(p) => CollectiveStep {
                peer: members[p],
                kind: StepKind::SendRecv,
            },
            pe::Step::SendTo(p) => CollectiveStep {
                peer: members[p],
                kind: StepKind::SendOnly,
            },
            pe::Step::RecvFrom(p) => CollectiveStep {
                peer: members[p],
                kind: StepKind::RecvOnly,
            },
        })
        .collect()
}

/// An ordered set of endpoints participating in collectives together.
///
/// ```
/// use nic_barrier::BarrierGroup;
///
/// // Port 1 on each of 8 nodes.
/// let group = BarrierGroup::one_per_node(8, 1);
/// assert_eq!(group.len(), 8);
///
/// // Rank 3's PE schedule: 3 exchanges, peers 3^1, 3^2, 3^4.
/// let steps = group.pe_steps(3);
/// assert_eq!(steps.len(), 3);
///
/// // Its GB neighbourhood in a binary tree: parent rank 1, child rank 7.
/// let token = group.gb_token(3, 2);
/// assert_eq!(token.parent, Some(group.member(1)));
/// assert_eq!(token.children, vec![group.member(7)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierGroup {
    members: Vec<GlobalPort>,
}

impl BarrierGroup {
    /// Build from an explicit member list.
    ///
    /// # Panics
    /// Panics on duplicates — an endpoint can appear in a group once.
    pub fn new(members: Vec<GlobalPort>) -> Self {
        let mut seen = members.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), members.len(), "duplicate endpoint in group");
        assert!(!members.is_empty(), "empty group");
        BarrierGroup { members }
    }

    /// The common case: one process per node, nodes `0..n`, all on `port`.
    pub fn one_per_node(n: usize, port: u8) -> Self {
        BarrierGroup::new((0..n).map(|i| GlobalPort::new(i, port)).collect())
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True for a singleton group.
    pub fn is_empty(&self) -> bool {
        false // an invariant: groups are never empty
    }

    /// The members in rank order.
    pub fn members(&self) -> &[GlobalPort] {
        &self.members
    }

    /// The endpoint at `rank`.
    pub fn member(&self, rank: usize) -> GlobalPort {
        self.members[rank]
    }

    /// The rank of `ep`, if a member.
    pub fn rank_of(&self, ep: GlobalPort) -> Option<usize> {
        self.members.iter().position(|m| *m == ep)
    }

    /// The PE schedule for `rank`, as endpoint-level steps.
    pub fn pe_steps(&self, rank: usize) -> Vec<CollectiveStep> {
        map_steps(&self.members, pe::schedule(rank, self.len()))
    }

    /// The dissemination-barrier schedule for `rank` (extension beyond the
    /// paper; runs on the same firmware path as PE).
    pub fn dissemination_steps(&self, rank: usize) -> Vec<CollectiveStep> {
        map_steps(&self.members, dissemination::schedule(rank, self.len()))
    }

    /// GB parent of `rank` as an endpoint.
    pub fn gb_parent(&self, rank: usize, dim: usize) -> Option<GlobalPort> {
        gb::parent(rank, dim).map(|p| self.members[p])
    }

    /// GB children of `rank` as endpoints.
    pub fn gb_children(&self, rank: usize, dim: usize) -> Vec<GlobalPort> {
        gb::children(rank, dim, self.len())
            .into_iter()
            .map(|c| self.members[c])
            .collect()
    }

    /// The PE barrier token for `rank` (`gm_barrier_send_with_callback`).
    pub fn pe_token(&self, rank: usize) -> CollectiveToken {
        CollectiveToken::pairwise(CollectiveOp::BarrierPe.encode(), self.pe_steps(rank))
    }

    /// The dissemination barrier token for `rank`.
    pub fn dissemination_token(&self, rank: usize) -> CollectiveToken {
        CollectiveToken::pairwise(
            CollectiveOp::BarrierPe.encode(),
            self.dissemination_steps(rank),
        )
    }

    /// The GB barrier token for `rank` with tree dimension `dim`.
    pub fn gb_token(&self, rank: usize, dim: usize) -> CollectiveToken {
        CollectiveToken::tree(
            CollectiveOp::BarrierGb.encode(),
            self.gb_parent(rank, dim),
            self.gb_children(rank, dim),
        )
    }

    /// A NIC-broadcast token; `value` matters only at the root (rank 0).
    pub fn broadcast_token(&self, rank: usize, dim: usize, value: u64) -> CollectiveToken {
        CollectiveToken::tree(
            CollectiveOp::Broadcast.encode(),
            self.gb_parent(rank, dim),
            self.gb_children(rank, dim),
        )
        .with_value(value)
    }

    /// A NIC-reduce token contributing `value`; the result lands at rank 0.
    pub fn reduce_token(
        &self,
        op: ReduceOp,
        rank: usize,
        dim: usize,
        value: u64,
    ) -> CollectiveToken {
        CollectiveToken::tree(
            CollectiveOp::Reduce(op).encode(),
            self.gb_parent(rank, dim),
            self.gb_children(rank, dim),
        )
        .with_value(value)
    }

    /// A NIC-allreduce token contributing `value`; every member receives
    /// the result.
    pub fn allreduce_token(
        &self,
        op: ReduceOp,
        rank: usize,
        dim: usize,
        value: u64,
    ) -> CollectiveToken {
        CollectiveToken::tree(
            CollectiveOp::AllReduce(op).encode(),
            self.gb_parent(rank, dim),
            self.gb_children(rank, dim),
        )
        .with_value(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_per_node_ranks() {
        let g = BarrierGroup::one_per_node(4, 1);
        assert_eq!(g.len(), 4);
        assert_eq!(g.member(2), GlobalPort::new(2, 1));
        assert_eq!(g.rank_of(GlobalPort::new(3, 1)), Some(3));
        assert_eq!(g.rank_of(GlobalPort::new(3, 2)), None);
    }

    #[test]
    #[should_panic(expected = "duplicate endpoint")]
    fn duplicates_rejected() {
        BarrierGroup::new(vec![GlobalPort::new(0, 1), GlobalPort::new(0, 1)]);
    }

    #[test]
    fn pe_token_has_log2_steps() {
        let g = BarrierGroup::one_per_node(8, 1);
        let t = g.pe_token(3);
        assert_eq!(t.steps.len(), 3);
        assert!(t.steps.iter().all(|s| s.kind == StepKind::SendRecv));
        // step peers are rank XOR 2^k
        assert_eq!(t.steps[0].peer, GlobalPort::new(2, 1));
        assert_eq!(t.steps[1].peer, GlobalPort::new(1, 1));
        assert_eq!(t.steps[2].peer, GlobalPort::new(7, 1));
    }

    #[test]
    fn gb_token_neighbourhood_only() {
        let g = BarrierGroup::one_per_node(7, 1);
        let root = g.gb_token(0, 2);
        assert!(root.is_root());
        assert_eq!(root.children.len(), 2);
        let mid = g.gb_token(1, 2);
        assert_eq!(mid.parent, Some(GlobalPort::new(0, 1)));
        assert_eq!(
            mid.children,
            vec![GlobalPort::new(3, 1), GlobalPort::new(4, 1)]
        );
        let leaf = g.gb_token(5, 2);
        assert!(leaf.children.is_empty());
    }

    #[test]
    fn value_tokens_carry_operands() {
        let g = BarrierGroup::one_per_node(4, 1);
        assert_eq!(g.broadcast_token(0, 2, 42).value, 42);
        let r = g.reduce_token(ReduceOp::Min, 3, 2, 9);
        assert_eq!(r.value, 9);
        assert_eq!(
            CollectiveOp::decode(r.op),
            Some(CollectiveOp::Reduce(ReduceOp::Min))
        );
        let a = g.allreduce_token(ReduceOp::Sum, 1, 3, 5);
        assert_eq!(
            CollectiveOp::decode(a.op),
            Some(CollectiveOp::AllReduce(ReduceOp::Sum))
        );
    }

    #[test]
    fn dissemination_steps_alternate() {
        let g = BarrierGroup::one_per_node(6, 1);
        let steps = g.dissemination_steps(2);
        // rounds for 6: ceil(log2 6) = 3, two steps each
        assert_eq!(steps.len(), 6);
        for (i, s) in steps.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(s.kind, StepKind::SendOnly);
            } else {
                assert_eq!(s.kind, StepKind::RecvOnly);
            }
        }
        // round 0: send to rank 3, recv from rank 1
        assert_eq!(steps[0].peer, GlobalPort::new(3, 1));
        assert_eq!(steps[1].peer, GlobalPort::new(1, 1));
    }

    #[test]
    fn dissemination_token_reuses_pe_opcode() {
        let g = BarrierGroup::one_per_node(4, 1);
        let t = g.dissemination_token(0);
        assert_eq!(
            CollectiveOp::decode(t.op),
            Some(CollectiveOp::BarrierPe),
            "dissemination runs on the PE firmware path"
        );
        assert!(!t.steps.is_empty());
    }

    #[test]
    fn multi_port_groups_supported() {
        // Two processes on node 0, one on node 1 — §3.4's concurrency case.
        let g = BarrierGroup::new(vec![
            GlobalPort::new(0, 1),
            GlobalPort::new(0, 2),
            GlobalPort::new(1, 1),
        ]);
        assert_eq!(g.len(), 3);
        let steps = g.pe_steps(0);
        assert!(!steps.is_empty());
    }
}
