//! Barrier groups: ordered endpoint lists and their collective tokens.
//!
//! "A barrier operation synchronizes the processes which are attached to
//! the specified endpoints" (§3, system model). A [`BarrierGroup`] is that
//! endpoint list; each member compiles its own per-rank schedule from an
//! algorithm [`Descriptor`] — only that rank's program (its PE exchange
//! list, or its GB parent/children neighbourhood) crosses the host/NIC
//! boundary, never the full member list (§5.1).

use crate::schedule::{self, Descriptor};
use gmsim_gm::{CollectiveSchedule, CollectiveToken, GlobalPort, ReduceOp, TeamId};

/// An ordered set of endpoints participating in collectives together.
///
/// ```
/// use nic_barrier::{BarrierGroup, Descriptor};
/// use gmsim_gm::ScheduleStep;
///
/// // Port 1 on each of 8 nodes.
/// let group = BarrierGroup::one_per_node(8, 1);
/// assert_eq!(group.len(), 8);
///
/// // Rank 3's PE program: 3 exchanges (send+recv pairs) + completion.
/// let prog = group.compile(Descriptor::Pe, 3);
/// assert_eq!(prog.steps.len(), 7);
///
/// // Its GB program in a binary tree talks to parent rank 1 and child
/// // rank 7 only.
/// let gb = group.compile(Descriptor::gb(2), 3);
/// let first_gather = gb.steps.iter().find_map(|s| match s {
///     ScheduleStep::RecvFrom { peers, .. } => Some(peers.clone()),
///     _ => None,
/// });
/// assert_eq!(first_gather, Some(vec![group.member(7)]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierGroup {
    members: Vec<GlobalPort>,
}

impl BarrierGroup {
    /// Build from an explicit member list.
    ///
    /// # Panics
    /// Panics on duplicates — an endpoint can appear in a group once.
    pub fn new(members: Vec<GlobalPort>) -> Self {
        let mut seen = members.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), members.len(), "duplicate endpoint in group");
        assert!(!members.is_empty(), "empty group");
        BarrierGroup { members }
    }

    /// The common case: one process per node, nodes `0..n`, all on `port`.
    pub fn one_per_node(n: usize, port: u8) -> Self {
        BarrierGroup::new((0..n).map(|i| GlobalPort::new(i, port)).collect())
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True for a singleton group.
    pub fn is_empty(&self) -> bool {
        false // an invariant: groups are never empty
    }

    /// The members in rank order.
    pub fn members(&self) -> &[GlobalPort] {
        &self.members
    }

    /// The endpoint at `rank`.
    pub fn member(&self, rank: usize) -> GlobalPort {
        self.members[rank]
    }

    /// The rank of `ep`, if a member.
    pub fn rank_of(&self, ep: GlobalPort) -> Option<usize> {
        self.members.iter().position(|m| *m == ep)
    }

    /// Compile `desc` into `rank`'s schedule over this group's members.
    pub fn compile(&self, desc: Descriptor, rank: usize) -> CollectiveSchedule {
        schedule::compile(desc, rank, &self.members)
    }

    /// The collective send token for `rank` running `desc`
    /// (`gm_barrier_send_with_callback` and its value-carrying cousins).
    pub fn token(&self, desc: Descriptor, rank: usize) -> CollectiveToken {
        CollectiveToken::new(self.compile(desc, rank))
    }

    /// The PE barrier token for `rank`.
    pub fn pe_token(&self, rank: usize) -> CollectiveToken {
        self.token(Descriptor::Pe, rank)
    }

    /// The classic radix-2 dissemination barrier token for `rank`.
    pub fn dissemination_token(&self, rank: usize) -> CollectiveToken {
        self.token(Descriptor::dissemination(), rank)
    }

    /// The radix-`radix` dissemination barrier token for `rank`.
    ///
    /// # Panics
    /// If `radix < 2` (via [`Descriptor::dissemination_radix`]); validate
    /// with [`Descriptor::try_dissemination`] first when the radix is
    /// user-supplied.
    pub fn dissemination_radix_token(&self, rank: usize, radix: usize) -> CollectiveToken {
        self.token(Descriptor::dissemination_radix(radix), rank)
    }

    /// The GB barrier token for `rank` with tree dimension `dim`.
    pub fn gb_token(&self, rank: usize, dim: usize) -> CollectiveToken {
        self.token(Descriptor::gb(dim), rank)
    }

    /// A NIC-broadcast token; `value` matters only at the root (rank 0).
    pub fn broadcast_token(&self, rank: usize, dim: usize, value: u64) -> CollectiveToken {
        self.token(Descriptor::bcast(dim), rank).with_value(value)
    }

    /// A NIC-reduce token contributing `value`; the result lands at rank 0.
    pub fn reduce_token(
        &self,
        op: ReduceOp,
        rank: usize,
        dim: usize,
        value: u64,
    ) -> CollectiveToken {
        self.token(Descriptor::reduce(op, dim), rank)
            .with_value(value)
    }

    /// A NIC-allreduce token contributing `value`; every member receives
    /// the result.
    pub fn allreduce_token(
        &self,
        op: ReduceOp,
        rank: usize,
        dim: usize,
        value: u64,
    ) -> CollectiveToken {
        self.token(Descriptor::allreduce(op, dim), rank)
            .with_value(value)
    }

    /// A NIC-scan token contributing `value`; each member receives its
    /// inclusive prefix under `op`.
    pub fn scan_token(&self, op: ReduceOp, rank: usize, value: u64) -> CollectiveToken {
        self.token(Descriptor::scan(op), rank).with_value(value)
    }
}

/// A first-class communicator: a [`TeamId`] bound to an ordered member
/// list. Ranks are positions *within the team* — the rank-translation
/// layer between a job's local numbering and global endpoints — and every
/// token built here is stamped with the team id, so the NIC keeps this
/// team's barrier state separate from every overlapping team's.
///
/// [`Team::global`] wraps a group under [`TeamId::GLOBAL`]; its tokens are
/// bit-identical to the group's own, which is what keeps the single-team
/// path exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Team {
    id: TeamId,
    group: BarrierGroup,
}

impl Team {
    /// Bind `group` to communicator `id`.
    pub fn new(id: TeamId, group: BarrierGroup) -> Self {
        Team { id, group }
    }

    /// The implicit whole-cluster communicator over `group`.
    pub fn global(group: BarrierGroup) -> Self {
        Team::new(TeamId::GLOBAL, group)
    }

    /// Build a sub-team from `parent` by selecting parent ranks — the
    /// rank-translation step of a `comm_split`: member `i` of the new team
    /// is `parent_ranks[i]` of the parent group.
    ///
    /// # Panics
    /// Panics if a selected rank is out of range or selected twice
    /// (via [`BarrierGroup::new`]'s duplicate check).
    pub fn subset(id: TeamId, parent: &BarrierGroup, parent_ranks: &[usize]) -> Self {
        let members = parent_ranks.iter().map(|&r| parent.member(r)).collect();
        Team::new(id, BarrierGroup::new(members))
    }

    /// The communicator id.
    pub fn id(&self) -> TeamId {
        self.id
    }

    /// The underlying endpoint list.
    pub fn group(&self) -> &BarrierGroup {
        &self.group
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.group.len()
    }

    /// True for a singleton team (never: teams are non-empty).
    pub fn is_empty(&self) -> bool {
        self.group.is_empty()
    }

    /// The endpoint at team rank `rank`.
    pub fn member(&self, rank: usize) -> GlobalPort {
        self.group.member(rank)
    }

    /// The team rank of `ep`, if a member.
    pub fn rank_of(&self, ep: GlobalPort) -> Option<usize> {
        self.group.rank_of(ep)
    }

    /// Compile `desc` into team rank `rank`'s schedule.
    pub fn compile(&self, desc: Descriptor, rank: usize) -> CollectiveSchedule {
        self.group.compile(desc, rank)
    }

    /// The collective send token for team rank `rank` running `desc`,
    /// stamped with this team's id.
    pub fn token(&self, desc: Descriptor, rank: usize) -> CollectiveToken {
        self.group.token(desc, rank).with_team(self.id)
    }

    /// The PE barrier token for team rank `rank`.
    pub fn pe_token(&self, rank: usize) -> CollectiveToken {
        self.token(Descriptor::Pe, rank)
    }

    /// The GB barrier token for team rank `rank` with tree dimension `dim`.
    pub fn gb_token(&self, rank: usize, dim: usize) -> CollectiveToken {
        self.token(Descriptor::gb(dim), rank)
    }

    /// The radix-`radix` dissemination barrier token for team rank `rank`.
    ///
    /// # Panics
    /// If `radix < 2` (via [`Descriptor::dissemination_radix`]).
    pub fn dissemination_token(&self, rank: usize, radix: usize) -> CollectiveToken {
        self.token(Descriptor::dissemination_radix(radix), rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmsim_gm::{CompletionKind, ScheduleStep, TokenCharge};

    #[test]
    fn one_per_node_ranks() {
        let g = BarrierGroup::one_per_node(4, 1);
        assert_eq!(g.len(), 4);
        assert_eq!(g.member(2), GlobalPort::new(2, 1));
        assert_eq!(g.rank_of(GlobalPort::new(3, 1)), Some(3));
        assert_eq!(g.rank_of(GlobalPort::new(3, 2)), None);
    }

    #[test]
    #[should_panic(expected = "duplicate endpoint")]
    fn duplicates_rejected() {
        BarrierGroup::new(vec![GlobalPort::new(0, 1), GlobalPort::new(0, 1)]);
    }

    #[test]
    fn pe_token_has_log2_exchange_pairs() {
        let g = BarrierGroup::one_per_node(8, 1);
        let t = g.pe_token(3);
        assert_eq!(t.schedule.token_charge, TokenCharge::Light);
        // 3 exchanges, each a SendTo + RecvFrom, plus the completion.
        assert_eq!(t.schedule.steps.len(), 7);
        // Exchange peers are rank XOR 2^k.
        let sends: Vec<GlobalPort> = t
            .schedule
            .steps
            .iter()
            .filter_map(|s| match s {
                ScheduleStep::SendTo { peers, .. } => Some(peers[0]),
                _ => None,
            })
            .collect();
        assert_eq!(
            sends,
            vec![
                GlobalPort::new(2, 1),
                GlobalPort::new(1, 1),
                GlobalPort::new(7, 1)
            ]
        );
    }

    #[test]
    fn gb_token_neighbourhood_only() {
        let g = BarrierGroup::one_per_node(7, 1);
        let peers_of = |t: &CollectiveToken| -> Vec<GlobalPort> {
            let mut peers = Vec::new();
            for s in &t.schedule.steps {
                match s {
                    ScheduleStep::SendTo { peers: p, .. }
                    | ScheduleStep::RecvFrom { peers: p, .. } => peers.extend(p.iter().copied()),
                    ScheduleStep::DeliverCompletion(_) => {}
                }
            }
            peers.sort_unstable();
            peers.dedup();
            peers
        };
        let root = g.gb_token(0, 2);
        assert_eq!(root.schedule.token_charge, TokenCharge::Tree);
        assert_eq!(
            peers_of(&root),
            vec![GlobalPort::new(1, 1), GlobalPort::new(2, 1)]
        );
        let mid = g.gb_token(1, 2);
        assert_eq!(
            peers_of(&mid),
            vec![
                GlobalPort::new(0, 1),
                GlobalPort::new(3, 1),
                GlobalPort::new(4, 1)
            ]
        );
        let leaf = g.gb_token(5, 2);
        assert_eq!(peers_of(&leaf), vec![GlobalPort::new(2, 1)]);
    }

    #[test]
    fn value_tokens_carry_operands() {
        let g = BarrierGroup::one_per_node(4, 1);
        assert_eq!(g.broadcast_token(0, 2, 42).value, 42);
        let r = g.reduce_token(ReduceOp::Min, 3, 2, 9);
        assert_eq!(r.value, 9);
        let a = g.allreduce_token(ReduceOp::Sum, 1, 3, 5);
        assert_eq!(a.value, 5);
        let s = g.scan_token(ReduceOp::Sum, 2, 7);
        assert_eq!(s.value, 7);
        assert!(s
            .schedule
            .steps
            .iter()
            .any(|st| matches!(st, ScheduleStep::DeliverCompletion(CompletionKind::Scan))));
    }

    #[test]
    fn dissemination_token_runs_on_the_pe_path() {
        let g = BarrierGroup::one_per_node(6, 1);
        let t = g.dissemination_token(2);
        assert_eq!(
            t.schedule.token_charge,
            TokenCharge::Light,
            "dissemination runs on the PE firmware path"
        );
        // ceil(log2 6) = 3 rounds of send+recv, plus the completion.
        assert_eq!(t.schedule.steps.len(), 7);
        // Round 0: send to rank+1, recv from rank-1.
        assert_eq!(
            t.schedule.steps[0],
            ScheduleStep::SendTo {
                peers: vec![GlobalPort::new(3, 1)],
                kind: crate::schedule::pkt::PE,
                charge: gmsim_gm::Charge::ExchangeSend,
            }
        );
        match &t.schedule.steps[1] {
            ScheduleStep::RecvFrom { peers, .. } => {
                assert_eq!(peers, &vec![GlobalPort::new(1, 1)]);
            }
            other => panic!("expected RecvFrom, got {other:?}"),
        }
    }

    #[test]
    fn kary_dissemination_token_shrinks_rounds() {
        let g = BarrierGroup::one_per_node(9, 1);
        // radix 3 over 9 ranks: 2 rounds × 2 offsets × (send+recv) + done.
        let t = g.dissemination_radix_token(0, 3);
        assert_eq!(t.schedule.token_charge, TokenCharge::Light);
        assert_eq!(t.schedule.steps.len(), 9);
        // The radix-2 form of the same group needs 4 rounds (16 wire steps
        // minus skipped distances ≥ 9: dists 1,2,4,8 all < 9 → 8 + done).
        let t2 = g.dissemination_token(0);
        assert_eq!(t2.schedule.steps.len(), 9);
        // Same total here, but the radix-3 schedule has 2 dependent rounds
        // vs 4: check first-round fan-out instead.
        let first_sends: Vec<GlobalPort> = t
            .schedule
            .steps
            .iter()
            .take(4)
            .filter_map(|s| match s {
                ScheduleStep::SendTo { peers, .. } => Some(peers[0]),
                _ => None,
            })
            .collect();
        assert_eq!(
            first_sends,
            vec![GlobalPort::new(1, 1), GlobalPort::new(2, 1)]
        );
    }

    #[test]
    fn team_tokens_are_stamped_and_rank_translated() {
        let world = BarrierGroup::one_per_node(8, 1);
        // Sub-team of the odd nodes: team rank i ↔ world rank 2i+1.
        let team = Team::subset(TeamId(3), &world, &[1, 3, 5, 7]);
        assert_eq!(team.len(), 4);
        assert_eq!(team.member(2), GlobalPort::new(5, 1));
        assert_eq!(team.rank_of(GlobalPort::new(7, 1)), Some(3));
        assert_eq!(team.rank_of(GlobalPort::new(2, 1)), None);
        let t = team.pe_token(0);
        assert_eq!(t.team, TeamId(3));
        // Rank 0's first PE exchange partner is team rank 1 = node 3.
        let first_send = t
            .schedule
            .steps
            .iter()
            .find_map(|s| match s {
                ScheduleStep::SendTo { peers, .. } => Some(peers[0]),
                _ => None,
            })
            .unwrap();
        assert_eq!(first_send, GlobalPort::new(3, 1));
    }

    #[test]
    fn global_team_tokens_match_group_tokens() {
        let group = BarrierGroup::one_per_node(4, 1);
        let team = Team::global(group.clone());
        for rank in 0..4 {
            assert_eq!(team.pe_token(rank), group.pe_token(rank));
        }
    }

    #[test]
    fn multi_port_groups_supported() {
        // Two processes on node 0, one on node 1 — §3.4's concurrency case.
        let g = BarrierGroup::new(vec![
            GlobalPort::new(0, 1),
            GlobalPort::new(0, 2),
            GlobalPort::new(1, 1),
        ]);
        assert_eq!(g.len(), 3);
        let prog = g.compile(Descriptor::Pe, 0);
        assert!(!prog.steps.is_empty());
    }
}
