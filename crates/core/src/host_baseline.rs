//! Host-based barrier baselines (the paper's comparator).
//!
//! "Most current clusters use software barriers based on *host-based*
//! point-to-point communication" (§1). [`HostBarrierLoop`] interprets the
//! *same* compiled [`CollectiveSchedule`] programs the NIC extension runs —
//! one compiler, two interpreters — but every message is an ordinary GM
//! send: host → NIC → wire → NIC → host at every hop. The evaluation's
//! factor of improvement is NIC-based latency versus this.
//!
//! The program runs `rounds` consecutive barriers back to back (the paper
//! averages 100 000) and emits a [`note`](gmsim_gm::HostCtx::note) at every
//! completion step; the testbed turns those notes into mean latency.
//!
//! Message tags encode `(round, packet kind)` so that messages from a peer
//! that has already raced ahead into the next barrier are parked in a
//! host-side unexpected set — the same §3.1 problem, solved at host level.

use crate::group::{BarrierGroup, Team};
use crate::programs::note_team_tag;
use crate::schedule::Descriptor;
use gmsim_des::trace::TracePayload;
use gmsim_gm::{
    CollectiveSchedule, GlobalPort, GmEvent, HostCtx, HostProgram, ScheduleStep, TeamId,
};
use std::collections::HashSet;

/// Barrier payload size used by the host baselines (bytes).
pub const HOST_BARRIER_MSG_BYTES: usize = 8;

/// The point-to-point tag of a barrier message: team id (bits 48+), round
/// number (bits 24–47), pipeline segment (bits 8–23) and the schedule's
/// packet kind (low byte), so cross-team, cross-round, cross-segment and
/// cross-phase messages never alias. Zero-payload schedules always tag
/// segment 0 and put exactly [`HOST_BARRIER_MSG_BYTES`] on the wire, as
/// before the payload redesign.
fn step_tag(team: TeamId, round: u64, seg: u32, kind: u8) -> u64 {
    ((team.0 as u64) << 48) | (round << 24) | (u64::from(seg) << 8) | u64::from(kind)
}

/// Host-based barrier loop: interprets a compiled collective schedule with
/// ordinary sends, `rounds` consecutive times.
pub struct HostBarrierLoop {
    schedule: CollectiveSchedule,
    team: TeamId,
    rounds: u64,
    round: u64,
    pc: usize,
    outstanding: Option<Vec<(GlobalPort, u64)>>,
    unexpected: HashSet<(GlobalPort, u64)>,
    /// For recv-free schedules (a scan's rank 0 only ever sends): the pc of
    /// the last send step, which is issued with a completion notify so the
    /// next round can wait for it instead of flooding the send-token pool.
    pace_on_send_pc: Option<usize>,
    await_sent: bool,
}

impl HostBarrierLoop {
    /// The program for `rank` of `group` running the algorithm `desc`.
    pub fn new(group: &BarrierGroup, rank: usize, desc: Descriptor, rounds: u64) -> Self {
        Self::with_schedule(group.compile(desc, rank), rounds)
    }

    /// The program for team rank `rank` of `team`: tags and notes carry
    /// the team id, so concurrent host-level teams never alias.
    pub fn for_team(team: &Team, rank: usize, desc: Descriptor, rounds: u64) -> Self {
        let mut this = Self::with_schedule(team.compile(desc, rank), rounds);
        this.team = team.id();
        this
    }

    /// Run an arbitrary compiled schedule as a host-based barrier loop.
    pub fn with_schedule(schedule: CollectiveSchedule, rounds: u64) -> Self {
        let has_recv = schedule
            .steps
            .iter()
            .any(|s| matches!(s, ScheduleStep::RecvFrom { .. }));
        let pace_on_send_pc = if has_recv {
            None
        } else {
            schedule
                .steps
                .iter()
                .rposition(|s| matches!(s, ScheduleStep::SendTo { .. }))
        };
        HostBarrierLoop {
            schedule,
            team: TeamId::GLOBAL,
            rounds,
            round: 0,
            pc: 0,
            outstanding: None,
            unexpected: HashSet::new(),
            pace_on_send_pc,
            await_sent: false,
        }
    }

    fn advance(&mut self, ctx: &mut HostCtx) {
        while self.round < self.rounds {
            if self.pc == self.schedule.steps.len() {
                if self.await_sent {
                    return; // next round starts when the notify lands
                }
                self.round += 1;
                self.pc = 0;
                continue;
            }
            match &self.schedule.steps[self.pc] {
                ScheduleStep::SendTo { peers, kind, .. } => {
                    // Data-carrying collectives send one ordinary GM message
                    // per pipeline segment (header + segment bytes); the
                    // host/NIC send path charges every hop per message, which
                    // is exactly what the NIC offload amortizes. Barriers
                    // take this loop with one zero-payload segment.
                    let payload = self.schedule.payload;
                    let segs = payload.segments().get();
                    let notify_here = self.pace_on_send_pc == Some(self.pc);
                    for seg in 0..segs {
                        let tag = step_tag(self.team, self.round, seg, *kind);
                        let len = HOST_BARRIER_MSG_BYTES + payload.seg_len(seg).as_usize();
                        for (i, peer) in peers.iter().enumerate() {
                            ctx.trace(TracePayload::BarrierSend {
                                peer: peer.node.0 as u32,
                                kind: *kind,
                                local: false,
                            });
                            if notify_here && seg + 1 == segs && i + 1 == peers.len() {
                                ctx.send_notify(*peer, len, tag);
                                self.await_sent = true;
                            } else {
                                ctx.send(*peer, len, tag);
                            }
                        }
                    }
                    self.pc += 1;
                }
                ScheduleStep::RecvFrom { peers, kind, .. } => {
                    let payload = self.schedule.payload;
                    let segs = payload.segments().get();
                    let mut outstanding = self.outstanding.take().unwrap_or_else(|| {
                        let mut waits = Vec::with_capacity(peers.len() * segs as usize);
                        for seg in 0..segs {
                            let tag = step_tag(self.team, self.round, seg, *kind);
                            waits.extend(peers.iter().map(|p| (*p, tag)));
                        }
                        waits
                    });
                    outstanding.retain(|(p, tag)| !self.unexpected.remove(&(*p, *tag)));
                    if outstanding.is_empty() {
                        self.pc += 1;
                    } else {
                        self.outstanding = Some(outstanding);
                        return;
                    }
                }
                ScheduleStep::DeliverCompletion(_) => {
                    // The host-level analogue of the completion event. Any
                    // trailing forwarding steps (GB broadcast hand-down)
                    // run after, exactly like the NIC interpreter (§5.2).
                    ctx.note(note_team_tag(self.team, self.round));
                    self.pc += 1;
                }
            }
        }
    }
}

impl HostProgram for HostBarrierLoop {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        self.advance(ctx);
    }

    fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
        match ev {
            GmEvent::Recv { src, tag, .. } => {
                ctx.provide_recv(1);
                ctx.trace(TracePayload::BarrierRecv {
                    peer: src.node.0 as u32,
                    kind: (*tag & 0xff) as u8,
                });
                let fresh = self.unexpected.insert((*src, *tag));
                debug_assert!(fresh, "duplicate barrier message {src:?}/{tag}");
                self.advance(ctx);
            }
            GmEvent::Sent { .. } => {
                // Only recv-free schedules ask for send notifies.
                self.await_sent = false;
                self.advance(ctx);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::decode_note;
    use gmsim_des::{RunOutcome, SimTime};
    use gmsim_gm::cluster::ClusterBuilder;

    fn run_host_pe(n: usize, rounds: u64) -> Vec<(u64, SimTime)> {
        let group = BarrierGroup::one_per_node(n, 1);
        let mut b = ClusterBuilder::new(n);
        for rank in 0..n {
            b = b.program(
                group.member(rank),
                Box::new(HostBarrierLoop::new(&group, rank, Descriptor::Pe, rounds)),
                SimTime::ZERO,
            );
        }
        let mut sim = b.build();
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        sim.into_world()
            .notes
            .iter()
            .filter_map(|r| decode_note(r.tag).map(|round| (round, r.at)))
            .collect()
    }

    #[test]
    fn pe_completes_on_every_node_every_round() {
        for n in [2usize, 4, 8] {
            let notes = run_host_pe(n, 3);
            assert_eq!(notes.len(), n * 3, "n={n}");
            for round in 0..3u64 {
                assert_eq!(
                    notes.iter().filter(|(r, _)| *r == round).count(),
                    n,
                    "round {round}"
                );
            }
        }
    }

    #[test]
    fn pe_rounds_complete_in_order() {
        let notes = run_host_pe(4, 4);
        // No node can finish round r+1 before every node finished... not
        // true in general, but a node's own rounds must be ordered.
        let mut by_round: Vec<SimTime> = Vec::new();
        for round in 0..4u64 {
            let latest = notes
                .iter()
                .filter(|(r, _)| *r == round)
                .map(|(_, t)| *t)
                .max()
                .unwrap();
            by_round.push(latest);
        }
        assert!(by_round.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn pe_barrier_synchronizes() {
        // Barrier invariant: no node completes round r before every node
        // has *started* round r (= completed r-1).
        let notes = run_host_pe(8, 3);
        for round in 1..3u64 {
            let earliest_done_r = notes
                .iter()
                .filter(|(r, _)| *r == round)
                .map(|(_, t)| *t)
                .min()
                .unwrap();
            let latest_done_prev = notes
                .iter()
                .filter(|(r, _)| *r + 1 == round)
                .map(|(_, t)| *t)
                .max()
                .unwrap();
            assert!(
                earliest_done_r > latest_done_prev,
                "round {round} overlapped its predecessor"
            );
        }
    }

    #[test]
    fn gb_completes_for_all_dimensions() {
        let n = 6;
        for dim in 1..n {
            let group = BarrierGroup::one_per_node(n, 1);
            let mut b = ClusterBuilder::new(n);
            for rank in 0..n {
                b = b.program(
                    group.member(rank),
                    Box::new(HostBarrierLoop::new(&group, rank, Descriptor::gb(dim), 2)),
                    SimTime::ZERO,
                );
            }
            let mut sim = b.build();
            assert_eq!(sim.run(), RunOutcome::Quiescent, "dim={dim}");
            let done = sim
                .world()
                .notes
                .iter()
                .filter(|r| decode_note(r.tag).is_some())
                .count();
            assert_eq!(done, n * 2, "dim={dim}");
        }
    }

    #[test]
    fn skewed_starts_still_synchronize() {
        let n = 4;
        let group = BarrierGroup::one_per_node(n, 1);
        let mut b = ClusterBuilder::new(n);
        for rank in 0..n {
            b = b.program(
                group.member(rank),
                Box::new(HostBarrierLoop::new(&group, rank, Descriptor::Pe, 2)),
                SimTime::from_us(rank as u64 * 37),
            );
        }
        let mut sim = b.build();
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        // The slowest starter gates everyone: nobody completes round 0
        // before the last start (node 3 at 111us).
        let first_done = sim
            .world()
            .notes
            .iter()
            .filter(|r| decode_note(r.tag) == Some(0))
            .map(|r| r.at)
            .min()
            .unwrap();
        assert!(first_done > SimTime::from_us(111));
    }
}
