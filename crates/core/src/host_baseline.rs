//! Host-based barrier baselines (the paper's comparator).
//!
//! "Most current clusters use software barriers based on *host-based*
//! point-to-point communication" (§1). These programs run the same PE and
//! GB algorithms as the NIC extension, but every message is an ordinary GM
//! send: host → NIC → wire → NIC → host at every hop. The evaluation's
//! factor of improvement is NIC-based latency versus these.
//!
//! Each program runs `rounds` consecutive barriers back to back (the paper
//! averages 100 000) and emits a [`note`](gmsim_gm::HostCtx::note) at every
//! completion; the testbed turns those notes into mean latency.
//!
//! Message tags encode `(round, phase)` so that messages from a peer that
//! has already raced ahead into the next barrier are parked in a host-side
//! unexpected set — the same §3.1 problem, solved at host level.

use crate::group::BarrierGroup;
use crate::programs::note_tag;
use gmsim_gm::{GlobalPort, GmEvent, HostCtx, HostProgram, StepKind};
use std::collections::HashSet;

/// Barrier payload size used by the host baselines (bytes).
pub const HOST_BARRIER_MSG_BYTES: usize = 8;

fn pe_tag(round: u64) -> u64 {
    round
}

/// Host-based pairwise-exchange barrier, `rounds` consecutive times.
pub struct HostPeBarrier {
    steps: Vec<gmsim_gm::CollectiveStep>,
    rounds: u64,
    round: u64,
    idx: usize,
    sent_current: bool,
    unexpected: HashSet<(GlobalPort, u64)>,
}

impl HostPeBarrier {
    /// The program for `rank` of `group`.
    pub fn new(group: &BarrierGroup, rank: usize, rounds: u64) -> Self {
        Self::with_steps(group.pe_steps(rank), rounds)
    }

    /// A host-based *dissemination* barrier (extension beyond the paper):
    /// the same engine over the dissemination schedule.
    pub fn dissemination(group: &BarrierGroup, rank: usize, rounds: u64) -> Self {
        Self::with_steps(group.dissemination_steps(rank), rounds)
    }

    /// Run an arbitrary step schedule as a host-based barrier loop.
    pub fn with_steps(steps: Vec<gmsim_gm::CollectiveStep>, rounds: u64) -> Self {
        HostPeBarrier {
            steps,
            rounds,
            round: 0,
            idx: 0,
            sent_current: false,
            unexpected: HashSet::new(),
        }
    }

    fn advance(&mut self, ctx: &mut HostCtx) {
        while self.round < self.rounds {
            if self.idx == self.steps.len() {
                ctx.note(note_tag(self.round));
                self.round += 1;
                self.idx = 0;
                self.sent_current = false;
                continue;
            }
            let step = self.steps[self.idx];
            let key = (step.peer, pe_tag(self.round));
            match step.kind {
                StepKind::SendOnly => {
                    ctx.send(step.peer, HOST_BARRIER_MSG_BYTES, pe_tag(self.round));
                    self.idx += 1;
                }
                StepKind::SendRecv => {
                    if !self.sent_current {
                        ctx.send(step.peer, HOST_BARRIER_MSG_BYTES, pe_tag(self.round));
                        self.sent_current = true;
                    }
                    if self.unexpected.remove(&key) {
                        self.idx += 1;
                        self.sent_current = false;
                    } else {
                        return;
                    }
                }
                StepKind::RecvOnly => {
                    if self.unexpected.remove(&key) {
                        self.idx += 1;
                    } else {
                        return;
                    }
                }
            }
        }
    }
}

impl HostProgram for HostPeBarrier {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        self.advance(ctx);
    }

    fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
        if let GmEvent::Recv { src, tag, .. } = ev {
            ctx.provide_recv(1);
            let fresh = self.unexpected.insert((*src, *tag));
            debug_assert!(fresh, "duplicate barrier message {src:?}/{tag}");
            self.advance(ctx);
        }
    }
}

/// Tag encoding for the GB phases.
fn gb_tag(round: u64, bcast: bool) -> u64 {
    (round << 1) | u64::from(bcast)
}

/// Host-based gather-broadcast barrier over a `dim`-ary tree, `rounds`
/// consecutive times.
pub struct HostGbBarrier {
    parent: Option<GlobalPort>,
    children: Vec<GlobalPort>,
    rounds: u64,
    round: u64,
    gathers_left: Vec<GlobalPort>,
    gather_sent: bool,
    unexpected: HashSet<(GlobalPort, u64)>,
}

impl HostGbBarrier {
    /// The program for `rank` of `group` with tree dimension `dim`.
    pub fn new(group: &BarrierGroup, rank: usize, dim: usize, rounds: u64) -> Self {
        HostGbBarrier {
            parent: group.gb_parent(rank, dim),
            children: group.gb_children(rank, dim),
            rounds,
            round: 0,
            gathers_left: group.gb_children(rank, dim),
            gather_sent: false,
            unexpected: HashSet::new(),
        }
    }

    fn advance(&mut self, ctx: &mut HostCtx) {
        while self.round < self.rounds {
            // Gather phase: absorb children.
            self.gathers_left
                .retain(|c| !self.unexpected.remove(&(*c, gb_tag(self.round, false))));
            if !self.gathers_left.is_empty() {
                return;
            }
            match self.parent {
                None => {
                    // Root: all gathered — broadcast to every child and
                    // exit the barrier. The sends are pipelined: the host
                    // posts them back to back and the NIC overlaps their
                    // processing (the effect §6 credits for host-GB's
                    // relative strength).
                    for c in &self.children {
                        ctx.send(*c, HOST_BARRIER_MSG_BYTES, gb_tag(self.round, true));
                    }
                    self.finish_round(ctx);
                }
                Some(parent) => {
                    if !self.gather_sent {
                        ctx.send(parent, HOST_BARRIER_MSG_BYTES, gb_tag(self.round, false));
                        self.gather_sent = true;
                    }
                    if self.unexpected.remove(&(parent, gb_tag(self.round, true))) {
                        for c in &self.children {
                            ctx.send(*c, HOST_BARRIER_MSG_BYTES, gb_tag(self.round, true));
                        }
                        self.finish_round(ctx);
                    } else {
                        return;
                    }
                }
            }
        }
    }

    fn finish_round(&mut self, ctx: &mut HostCtx) {
        ctx.note(note_tag(self.round));
        self.round += 1;
        self.gathers_left = self.children.clone();
        self.gather_sent = false;
    }
}

impl HostProgram for HostGbBarrier {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        self.advance(ctx);
    }

    fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
        if let GmEvent::Recv { src, tag, .. } = ev {
            ctx.provide_recv(1);
            let fresh = self.unexpected.insert((*src, *tag));
            debug_assert!(fresh, "duplicate barrier message {src:?}/{tag}");
            self.advance(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::decode_note;
    use gmsim_des::{RunOutcome, SimTime};
    use gmsim_gm::cluster::ClusterBuilder;

    fn run_host_pe(n: usize, rounds: u64) -> Vec<(u64, SimTime)> {
        let group = BarrierGroup::one_per_node(n, 1);
        let mut b = ClusterBuilder::new(n);
        for rank in 0..n {
            b = b.program(
                group.member(rank),
                Box::new(HostPeBarrier::new(&group, rank, rounds)),
                SimTime::ZERO,
            );
        }
        let mut sim = b.build();
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        sim.into_world()
            .notes
            .iter()
            .filter_map(|r| decode_note(r.tag).map(|round| (round, r.at)))
            .collect()
    }

    #[test]
    fn pe_completes_on_every_node_every_round() {
        for n in [2usize, 4, 8] {
            let notes = run_host_pe(n, 3);
            assert_eq!(notes.len(), n * 3, "n={n}");
            for round in 0..3u64 {
                assert_eq!(
                    notes.iter().filter(|(r, _)| *r == round).count(),
                    n,
                    "round {round}"
                );
            }
        }
    }

    #[test]
    fn pe_rounds_complete_in_order() {
        let notes = run_host_pe(4, 4);
        // No node can finish round r+1 before every node finished... not
        // true in general, but a node's own rounds must be ordered.
        let mut by_round: Vec<SimTime> = Vec::new();
        for round in 0..4u64 {
            let latest = notes
                .iter()
                .filter(|(r, _)| *r == round)
                .map(|(_, t)| *t)
                .max()
                .unwrap();
            by_round.push(latest);
        }
        assert!(by_round.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn pe_barrier_synchronizes() {
        // Barrier invariant: no node completes round r before every node
        // has *started* round r (= completed r-1).
        let notes = run_host_pe(8, 3);
        for round in 1..3u64 {
            let earliest_done_r = notes
                .iter()
                .filter(|(r, _)| *r == round)
                .map(|(_, t)| *t)
                .min()
                .unwrap();
            let latest_done_prev = notes
                .iter()
                .filter(|(r, _)| *r + 1 == round)
                .map(|(_, t)| *t)
                .max()
                .unwrap();
            assert!(
                earliest_done_r > latest_done_prev,
                "round {round} overlapped its predecessor"
            );
        }
    }

    #[test]
    fn gb_completes_for_all_dimensions() {
        let n = 6;
        for dim in 1..n {
            let group = BarrierGroup::one_per_node(n, 1);
            let mut b = ClusterBuilder::new(n);
            for rank in 0..n {
                b = b.program(
                    group.member(rank),
                    Box::new(HostGbBarrier::new(&group, rank, dim, 2)),
                    SimTime::ZERO,
                );
            }
            let mut sim = b.build();
            assert_eq!(sim.run(), RunOutcome::Quiescent, "dim={dim}");
            let done = sim
                .world()
                .notes
                .iter()
                .filter(|r| decode_note(r.tag).is_some())
                .count();
            assert_eq!(done, n * 2, "dim={dim}");
        }
    }

    #[test]
    fn skewed_starts_still_synchronize() {
        let n = 4;
        let group = BarrierGroup::one_per_node(n, 1);
        let mut b = ClusterBuilder::new(n);
        for rank in 0..n {
            b = b.program(
                group.member(rank),
                Box::new(HostPeBarrier::new(&group, rank, 2)),
                SimTime::from_us(rank as u64 * 37),
            );
        }
        let mut sim = b.build();
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        // The slowest starter gates everyone: nobody completes round 0
        // before the last start (node 3 at 111us).
        let first_done = sim
            .world()
            .notes
            .iter()
            .filter(|r| decode_note(r.tag) == Some(0))
            .map(|r| r.at)
            .min()
            .unwrap();
        assert!(first_done > SimTime::from_us(111));
    }
}
