//! **NIC-based barrier over Myrinet/GM** — the primary contribution of
//! Buntinas, Panda & Sadayappan (IPPS 2001), reproduced over the simulated
//! GM stack in [`gmsim_gm`].
//!
//! The idea (§2.1 of the paper): instead of every barrier message making the
//! full host→NIC→wire→NIC→host round trip, the host posts *one* collective
//! send token; the NIC firmware then runs the whole barrier — the reception
//! of one barrier packet directly triggers the transmission of the next —
//! and finally DMAs a single `GM_BARRIER_COMPLETED_EVENT` to the host.
//!
//! What this crate provides:
//!
//! * [`schedule`] — **the collective compiler**: algorithm
//!   [`Descriptor`]s (pairwise-exchange, gather-broadcast trees,
//!   dissemination, binomial broadcast/reduce/allreduce, prefix scan) are
//!   lowered to per-rank [`gmsim_gm::CollectiveSchedule`] programs of
//!   explicit send/receive/complete steps, computed **on the host**
//!   exactly as §5.1 argues.
//! * [`group`] — a barrier group (ordered endpoint list) that compiles the
//!   per-rank collective tokens.
//! * [`unexpected`] — the §3.1 unexpected-barrier-message record: a bit
//!   array per (local port, remote endpoint) with epoch/value side data.
//! * [`nic`] — **the firmware extension**: a NIC-side interpreter of
//!   compiled schedules, with multiple concurrent collectives (one per
//!   port), the §3.4 same-NIC optimization, and the §3.2
//!   record-then-reject-on-open handling of stale messages.
//! * [`host_baseline`] — the comparator: the *same* compiled schedules
//!   interpreted at host level over plain GM sends/receives.
//! * [`programs`] — ready-made [`gmsim_gm::HostProgram`]s that run streams
//!   of consecutive barriers for measurement, including the fuzzy-barrier
//!   variant (§2.1) that overlaps computation with synchronization.
//! * [`analytic`] — Equations (1)–(3): predicted latencies and the factor
//!   of improvement, derived from the same configuration the simulator
//!   uses.

#![warn(missing_docs)]

pub mod analytic;
pub mod group;
pub mod host_baseline;
pub mod nic;
pub mod programs;
pub mod schedule;
pub mod unexpected;

pub use analytic::{
    advisor, CostModel, FabricModel, ADVISOR_REGRET_TOLERANCE, FABRIC_MODEL_TOLERANCE,
    GB_MODEL_TOLERANCE, PAYLOAD_MODEL_TOLERANCE, PE_MODEL_TOLERANCE,
};
pub use gmsim_gm::{ReduceOp, TeamId};
pub use group::{BarrierGroup, Team};
pub use host_baseline::HostBarrierLoop;
pub use nic::{BarrierCosts, BarrierExtension, BarrierStats};
pub use programs::{FuzzyBarrierLoop, MultiTeamBarrierLoop, NicBarrierLoop, NOTE_BARRIER_DONE};
pub use schedule::{compile, Descriptor, DescriptorError};
pub use unexpected::UnexpectedRecord;
