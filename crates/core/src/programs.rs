//! Ready-made measurement programs for the NIC-based collectives.
//!
//! These are the host-side halves of the paper's benchmark: each program
//! initiates `rounds` consecutive NIC barriers ("we ran 100,000 barriers
//! consecutively and took the average latency", §6), marking every
//! completion with a timestamped note the testbed aggregates.

use crate::group::{BarrierGroup, Team};
use crate::schedule::Descriptor;
use gmsim_des::SimTime;
use gmsim_gm::{CollectiveToken, GmEvent, HostCtx, HostProgram, TeamId};

/// Note-tag marker for a completed barrier round (high 32 bits).
pub const NOTE_BARRIER_DONE: u64 = 0xBA51 << 32;

/// Encode a completed round as a note tag.
pub fn note_tag(round: u64) -> u64 {
    debug_assert!(round < u32::MAX as u64);
    NOTE_BARRIER_DONE | round
}

/// Decode a note tag back to its round, if it is a barrier-done note.
/// Team-stamped tags (bits 48+) decode the same way — the team bits sit
/// above the marker and the round sits below it.
pub fn decode_note(tag: u64) -> Option<u64> {
    (tag & NOTE_BARRIER_DONE == NOTE_BARRIER_DONE).then_some(tag & 0xFFFF_FFFF)
}

/// Encode a completed round of `team` as a note tag: team id in bits 48+,
/// marker in bits 32–47, round below. [`TeamId::GLOBAL`] encodes exactly
/// as [`note_tag`].
pub fn note_team_tag(team: TeamId, round: u64) -> u64 {
    debug_assert!(team.0 < 1 << 16, "team id too large for the note encoding");
    ((team.0 as u64) << 48) | note_tag(round)
}

/// Decode a note tag to `(team, round)`, if it is a barrier-done note.
pub fn decode_team_note(tag: u64) -> Option<(TeamId, u64)> {
    decode_note(tag).map(|round| (TeamId((tag >> 48) as u32), round))
}

/// Runs `rounds` consecutive NIC-based collectives of any [`Descriptor`].
pub struct NicBarrierLoop {
    /// The schedule is identical every round, so it is compiled once here
    /// and the token cloned per round — an `Arc` bump, not a program copy.
    token: CollectiveToken,
    rounds: u64,
    round: u64,
}

impl NicBarrierLoop {
    /// The loop for `rank` of `group`.
    pub fn new(group: BarrierGroup, rank: usize, desc: Descriptor, rounds: u64) -> Self {
        NicBarrierLoop {
            token: group.token(desc, rank),
            rounds,
            round: 0,
        }
    }

    /// The loop for team rank `rank` of `team`: the posted token is
    /// team-stamped and completions are noted under the team id.
    pub fn for_team(team: &Team, rank: usize, desc: Descriptor, rounds: u64) -> Self {
        NicBarrierLoop {
            token: team.token(desc, rank),
            rounds,
            round: 0,
        }
    }

    fn token(&self) -> CollectiveToken {
        self.token.clone()
    }
}

impl HostProgram for NicBarrierLoop {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        if self.rounds > 0 {
            ctx.start_collective(self.token());
        }
    }

    fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
        if matches!(
            ev,
            GmEvent::BarrierComplete { .. }
                | GmEvent::BroadcastComplete { .. }
                | GmEvent::ReduceComplete { .. }
                | GmEvent::ScanComplete { .. }
        ) {
            ctx.note(note_team_tag(self.token.team, self.round));
            self.round += 1;
            if self.round < self.rounds {
                ctx.start_collective(self.token());
            }
        }
    }
}

/// A fuzzy-barrier loop (§2.1): "because the barrier algorithm is performed
/// at the NIC, the processor is free to perform computation while polling
/// for the barrier to complete".
///
/// With `overlap = true` the program initiates the barrier, then computes
/// for `compute` while the NIC synchronizes (the fuzzy barrier). With
/// `overlap = false` it computes first and only then initiates — the
/// blocking baseline. Comparing total runtimes shows the hidden time.
pub struct FuzzyBarrierLoop {
    /// Compiled once; cloned (cheaply) per round.
    token: CollectiveToken,
    rounds: u64,
    round: u64,
    compute: SimTime,
    overlap: bool,
}

impl FuzzyBarrierLoop {
    /// The loop for `rank` of `group`, with per-round `compute` work.
    pub fn new(
        group: BarrierGroup,
        rank: usize,
        rounds: u64,
        compute: SimTime,
        overlap: bool,
    ) -> Self {
        FuzzyBarrierLoop {
            token: group.pe_token(rank),
            rounds,
            round: 0,
            compute,
            overlap,
        }
    }

    fn begin_round(&self, ctx: &mut HostCtx) {
        if self.overlap {
            // Fuzzy: initiate, then compute while the NIC runs the barrier.
            ctx.start_collective(self.token.clone());
            ctx.compute(self.compute);
        } else {
            // Blocking: compute, then synchronize.
            ctx.compute(self.compute);
            ctx.start_collective(self.token.clone());
        }
    }
}

impl HostProgram for FuzzyBarrierLoop {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        if self.rounds > 0 {
            self.begin_round(ctx);
        }
    }

    fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
        if matches!(ev, GmEvent::BarrierComplete { .. }) {
            ctx.note(note_tag(self.round));
            self.round += 1;
            if self.round < self.rounds {
                self.begin_round(ctx);
            }
        }
    }
}

/// Runs one NIC collective (broadcast / reduce / allreduce) and records the
/// completion value in a note: `value` for `ReduceComplete`/
/// `BroadcastComplete`. Used by tests and the collectives example.
pub struct OneShotCollective {
    token: Option<CollectiveToken>,
    /// The completion value, once received.
    pub result: Option<u64>,
}

impl OneShotCollective {
    /// A program that posts `token` at start.
    pub fn new(token: CollectiveToken) -> Self {
        OneShotCollective {
            token: Some(token),
            result: None,
        }
    }
}

/// Note marker for a collective completion value.
pub const NOTE_COLLECTIVE_VALUE: u64 = 0xC011 << 32;

impl HostProgram for OneShotCollective {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        let token = self.token.take().expect("started twice");
        ctx.start_collective(token);
    }

    fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
        let value = match ev {
            GmEvent::BarrierComplete { .. } => 0,
            GmEvent::BroadcastComplete { value }
            | GmEvent::ReduceComplete { value }
            | GmEvent::ScanComplete { value } => *value,
            _ => return,
        };
        self.result = Some(value);
        debug_assert!(value < (1 << 32), "note encoding truncates the value");
        ctx.note(NOTE_COLLECTIVE_VALUE | value);
    }
}

/// Drives several teams' barrier loops concurrently on *one* port — the
/// host side of a multi-tenant node. Each job posts its own team-stamped
/// token; completions carry the team id, so each job restarts and notes
/// independently of the others. Every note is tagged with
/// [`note_team_tag`] so the driver can attribute rounds to jobs.
#[derive(Default)]
pub struct MultiTeamBarrierLoop {
    jobs: Vec<TeamJob>,
}

struct TeamJob {
    team: TeamId,
    token: CollectiveToken,
    rounds: u64,
    round: u64,
}

impl MultiTeamBarrierLoop {
    /// An empty driver; add jobs with [`Self::push`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `rounds` consecutive `desc` collectives for team rank `rank`
    /// of `team`.
    pub fn push(&mut self, team: &Team, rank: usize, desc: Descriptor, rounds: u64) {
        self.jobs.push(TeamJob {
            team: team.id(),
            token: team.token(desc, rank),
            rounds,
            round: 0,
        });
    }

    /// Number of jobs registered.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no jobs are registered.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

impl HostProgram for MultiTeamBarrierLoop {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        for job in &self.jobs {
            if job.rounds > 0 {
                ctx.start_collective(job.token.clone());
            }
        }
    }

    fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
        let GmEvent::BarrierComplete { team } = ev else {
            return;
        };
        let job = self
            .jobs
            .iter_mut()
            .find(|j| j.team == *team)
            .expect("completion for a team this port never posted");
        ctx.note(note_team_tag(job.team, job.round));
        job.round += 1;
        if job.round < job.rounds {
            ctx.start_collective(job.token.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_tag_roundtrip() {
        for round in [0u64, 1, 99_999] {
            assert_eq!(decode_note(note_tag(round)), Some(round));
        }
        assert_eq!(decode_note(12345), None);
        assert_eq!(decode_note(NOTE_COLLECTIVE_VALUE | 7), None);
    }

    #[test]
    fn team_note_roundtrip() {
        assert_eq!(note_team_tag(TeamId::GLOBAL, 5), note_tag(5));
        for (team, round) in [(TeamId(1), 0u64), (TeamId(513), 42), (TeamId(65535), 7)] {
            let tag = note_team_tag(team, round);
            assert_eq!(decode_team_note(tag), Some((team, round)));
            assert_eq!(decode_note(tag), Some(round));
        }
        assert_eq!(decode_team_note(12345), None);
    }
}
