//! The unexpected-barrier-message record (§3.1).
//!
//! "The NIC must be prepared to receive a barrier message from any process
//! on any node in any order at any time. However, once a process initiates
//! a barrier operation and is waiting for it to complete, it will not
//! initiate another one until that barrier completes. So the NIC can
//! receive at most one unexpected message from every other process on every
//! node." The paper records these in a bit array per connection (one bit
//! per remote port).
//!
//! We keep the bit array as the paper's constant-time fast path —
//! `bits[local_port][remote_node]` is a byte, one bit per remote port,
//! meaning *something* is recorded — backed by small FIFO queues keyed by
//! `(local port, sender endpoint, packet kind)`. The queues exist because
//! the §8 value collectives break the paper's one-outstanding invariant:
//! a broadcast root completes immediately and can race a second collective
//! ahead, so a slow receiver may legitimately hold a BCAST *and* a PE
//! message (or two BCASTs) from the same endpoint at once. For pure
//! barrier traffic every queue stays at depth ≤ 1, preserving the paper's
//! argument (the `queued_extra` counter proves it in tests).
//!
//! Entries also carry the sender's port *epoch* (for the §3.2
//! record-then-reject-on-open protocol) and an operand *value* (for
//! reductions/broadcasts).

use gmsim_gm::{GlobalPort, PortId, TeamId, GM_NUM_PORTS};
use std::collections::{HashMap, VecDeque};

/// Data stored with one recorded message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordMeta {
    /// The communicator the message belongs to — consumption is
    /// team-keyed so an overlapping team's flag can never satisfy this
    /// team's step (teams sharing a NIC stay isolated).
    pub team: TeamId,
    /// Packet type (PE / gather / broadcast) — consumption is type-keyed
    /// so a gather for a future GB barrier can never satisfy a PE step.
    pub kind: u8,
    /// The sender port's epoch when the message was sent (§3.2 staleness).
    pub epoch: u32,
    /// Operand carried by the packet (reduce partials, broadcast values).
    pub value: u64,
    /// Pipeline segment index for data-carrying collectives (0 for
    /// barriers and eager payloads).
    pub seg: u32,
}

/// Counters for the record (exposed for the ablation benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecordStats {
    /// Messages recorded as unexpected.
    pub recorded: u64,
    /// Recorded messages later consumed by a collective step.
    pub consumed: u64,
    /// Records queued behind an existing record from the same endpoint —
    /// zero for pure barrier streams (the paper's §3.1 invariant), nonzero
    /// only when §8 value collectives race ahead.
    pub queued_extra: u64,
    /// Records superseded across an endpoint epoch change (§3.2 endpoint
    /// reuse: the dead process's message is discarded).
    pub superseded: u64,
}

/// The per-NIC unexpected-message record.
#[derive(Debug, Clone)]
pub struct UnexpectedRecord {
    nodes: usize,
    /// `bits[local_port][remote_node]`: bit `p` set ⇔ something from
    /// `(remote_node, p)` awaits `local_port` (the paper's byte per
    /// connection).
    bits: Vec<Vec<u8>>,
    queues: HashMap<(u8, TeamId, GlobalPort, u8), VecDeque<RecordMeta>>,
    /// Counters.
    pub stats: RecordStats,
}

impl UnexpectedRecord {
    /// A record for a cluster of `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        UnexpectedRecord {
            nodes,
            bits: (0..GM_NUM_PORTS).map(|_| vec![0u8; nodes]).collect(),
            queues: HashMap::new(),
            stats: RecordStats::default(),
        }
    }

    fn mask(from: GlobalPort) -> u8 {
        1u8 << from.port.0
    }

    fn any_queued(&self, local: PortId, from: GlobalPort) -> bool {
        self.queues
            .iter()
            .any(|((p, _, f, _), q)| *p == local.0 && *f == from && !q.is_empty())
    }

    /// Record an unexpected message from `from` addressed to `local`.
    /// Returns `false` if something was already recorded from that
    /// endpoint. A queued record from an *older* epoch of the same
    /// endpoint and kind is discarded first (its sender is dead, §3.2).
    pub fn set(&mut self, local: PortId, from: GlobalPort, meta: RecordMeta) -> bool {
        debug_assert!(from.node.0 < self.nodes);
        let fresh = !self.any_queued(local, from);
        let q = self
            .queues
            .entry((local.0, meta.team, from, meta.kind))
            .or_default();
        // Epoch change supersedes everything the dead process left behind.
        let before = q.len();
        q.retain(|m| m.epoch == meta.epoch);
        self.stats.superseded += (before - q.len()) as u64;
        if !q.is_empty() {
            self.stats.queued_extra += 1;
        }
        q.push_back(meta);
        self.bits[local.idx()][from.node.0] |= Self::mask(from);
        self.stats.recorded += 1;
        fresh
    }

    /// Non-destructive test: has `from` already sent something to `local`?
    pub fn peek(&self, local: PortId, from: GlobalPort) -> bool {
        self.bits[local.idx()][from.node.0] & Self::mask(from) != 0
    }

    /// "After a bit is checked, the bit is cleared" (§4.3): consume the
    /// oldest record of `expect_kind` on `team` from `from`, if any. The
    /// bit array is shared across teams (it means "something from this
    /// endpoint"), so the queue lookup — keyed by team — is what keeps
    /// overlapping teams from consuming each other's flags.
    pub fn check_clear(
        &mut self,
        local: PortId,
        team: TeamId,
        from: GlobalPort,
        expect_kind: u8,
    ) -> Option<RecordMeta> {
        if self.bits[local.idx()][from.node.0] & Self::mask(from) == 0 {
            return None;
        }
        let meta = self
            .queues
            .get_mut(&(local.0, team, from, expect_kind))
            .and_then(|q| q.pop_front())?;
        self.stats.consumed += 1;
        if !self.any_queued(local, from) {
            self.bits[local.idx()][from.node.0] &= !Self::mask(from);
        }
        Some(meta)
    }

    /// Drain every record addressed to `local` (port-open rejection, §3.2),
    /// oldest first per (team, endpoint, kind).
    pub fn drain_port(&mut self, local: PortId) -> Vec<(GlobalPort, RecordMeta)> {
        let mut out = Vec::new();
        let keys: Vec<(u8, TeamId, GlobalPort, u8)> = self
            .queues
            .keys()
            .filter(|(p, _, _, _)| *p == local.0)
            .copied()
            .collect();
        for key in keys {
            if let Some(q) = self.queues.remove(&key) {
                for meta in q {
                    out.push((key.2, meta));
                }
            }
        }
        out.sort_by_key(|(g, m)| (g.node, g.port, m.team, m.kind));
        for cell in self.bits[local.idx()].iter_mut() {
            *cell = 0;
        }
        out
    }

    /// Total records currently held (diagnostics).
    pub fn outstanding(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gp(n: usize, p: u8) -> GlobalPort {
        GlobalPort::new(n, p)
    }

    const META: RecordMeta = RecordMeta {
        team: TeamId::GLOBAL,
        kind: 1,
        epoch: 1,
        value: 0,
        seg: 0,
    };

    #[test]
    fn set_then_check_clear_roundtrip() {
        let mut r = UnexpectedRecord::new(4);
        let meta = RecordMeta {
            team: TeamId::GLOBAL,
            kind: 2,
            epoch: 7,
            value: 99,
            seg: 0,
        };
        assert!(r.set(PortId(1), gp(2, 3), meta));
        assert!(r.peek(PortId(1), gp(2, 3)));
        assert_eq!(
            r.check_clear(PortId(1), TeamId::GLOBAL, gp(2, 3), 2),
            Some(meta)
        );
        assert!(!r.peek(PortId(1), gp(2, 3)));
        assert!(r
            .check_clear(PortId(1), TeamId::GLOBAL, gp(2, 3), 2)
            .is_none());
        assert_eq!(r.stats.consumed, 1);
    }

    #[test]
    fn records_are_per_local_port() {
        let mut r = UnexpectedRecord::new(2);
        r.set(PortId(1), gp(1, 1), META);
        assert!(!r.peek(PortId(2), gp(1, 1)));
        assert!(r
            .check_clear(PortId(2), TeamId::GLOBAL, gp(1, 1), 1)
            .is_none());
        assert!(r.peek(PortId(1), gp(1, 1)));
    }

    #[test]
    fn records_are_per_source_port() {
        let mut r = UnexpectedRecord::new(2);
        r.set(PortId(1), gp(1, 1), META);
        let meta2 = RecordMeta {
            team: TeamId::GLOBAL,
            kind: 1,
            epoch: 2,
            value: 5,
            seg: 0,
        };
        r.set(PortId(1), gp(1, 2), meta2);
        assert_eq!(r.outstanding(), 2);
        assert_eq!(
            r.check_clear(PortId(1), TeamId::GLOBAL, gp(1, 2), 1),
            Some(meta2)
        );
        assert!(r.peek(PortId(1), gp(1, 1)));
    }

    #[test]
    fn wrong_kind_is_not_consumed() {
        let mut r = UnexpectedRecord::new(2);
        r.set(PortId(1), gp(1, 1), META); // kind 1
        assert!(r
            .check_clear(PortId(1), TeamId::GLOBAL, gp(1, 1), 3)
            .is_none());
        assert!(r.peek(PortId(1), gp(1, 1)), "record stays in place");
    }

    #[test]
    fn different_kinds_coexist_from_one_endpoint() {
        // The broadcast-races-ahead case: BCAST then PE from one endpoint.
        let mut r = UnexpectedRecord::new(2);
        let bcast = RecordMeta {
            team: TeamId::GLOBAL,
            kind: 3,
            epoch: 1,
            value: 42,
            seg: 0,
        };
        let pe = RecordMeta {
            team: TeamId::GLOBAL,
            kind: 1,
            epoch: 1,
            value: 0,
            seg: 0,
        };
        r.set(PortId(1), gp(1, 1), bcast);
        r.set(PortId(1), gp(1, 1), pe);
        assert_eq!(r.outstanding(), 2);
        assert_eq!(
            r.check_clear(PortId(1), TeamId::GLOBAL, gp(1, 1), 1),
            Some(pe)
        );
        assert!(r.peek(PortId(1), gp(1, 1)), "bcast still recorded");
        assert_eq!(
            r.check_clear(PortId(1), TeamId::GLOBAL, gp(1, 1), 3),
            Some(bcast)
        );
        assert!(!r.peek(PortId(1), gp(1, 1)));
    }

    #[test]
    fn same_kind_queues_fifo() {
        let mut r = UnexpectedRecord::new(2);
        let v1 = RecordMeta {
            team: TeamId::GLOBAL,
            kind: 3,
            epoch: 1,
            value: 1,
            seg: 0,
        };
        let v2 = RecordMeta {
            team: TeamId::GLOBAL,
            kind: 3,
            epoch: 1,
            value: 2,
            seg: 0,
        };
        r.set(PortId(1), gp(1, 1), v1);
        r.set(PortId(1), gp(1, 1), v2);
        assert_eq!(r.stats.queued_extra, 1);
        assert_eq!(
            r.check_clear(PortId(1), TeamId::GLOBAL, gp(1, 1), 3),
            Some(v1)
        );
        assert_eq!(
            r.check_clear(PortId(1), TeamId::GLOBAL, gp(1, 1), 3),
            Some(v2)
        );
    }

    #[test]
    fn epoch_change_supersedes_old_records() {
        let mut r = UnexpectedRecord::new(2);
        r.set(PortId(1), gp(1, 1), META); // epoch 1
        let newer = RecordMeta {
            team: TeamId::GLOBAL,
            kind: 1,
            epoch: 2,
            value: 9,
            seg: 0,
        };
        r.set(PortId(1), gp(1, 1), newer);
        assert_eq!(r.stats.superseded, 1);
        assert_eq!(
            r.check_clear(PortId(1), TeamId::GLOBAL, gp(1, 1), 1),
            Some(newer)
        );
        assert!(r
            .check_clear(PortId(1), TeamId::GLOBAL, gp(1, 1), 1)
            .is_none());
    }

    #[test]
    fn drain_port_returns_everything_for_that_port() {
        let mut r = UnexpectedRecord::new(3);
        r.set(PortId(1), gp(0, 2), META);
        r.set(
            PortId(1),
            gp(2, 5),
            RecordMeta {
                team: TeamId::GLOBAL,
                kind: 1,
                epoch: 3,
                value: 1,
                seg: 0,
            },
        );
        r.set(PortId(4), gp(2, 5), META);
        let drained = r.drain_port(PortId(1));
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].0, gp(0, 2));
        assert_eq!(drained[1].0, gp(2, 5));
        assert_eq!(drained[1].1.epoch, 3);
        assert_eq!(r.outstanding(), 1, "other port untouched");
        assert!(r.peek(PortId(4), gp(2, 5)));
    }

    #[test]
    fn drain_empty_port_is_empty() {
        let mut r = UnexpectedRecord::new(2);
        assert!(r.drain_port(PortId(3)).is_empty());
    }

    #[test]
    fn teams_do_not_cross_consume() {
        // Two teams sharing one (local port, sender endpoint): team 2's
        // recorded flag must not satisfy team 1's check, and vice versa.
        let mut r = UnexpectedRecord::new(2);
        let t1 = RecordMeta {
            team: TeamId(1),
            kind: 1,
            epoch: 1,
            value: 10,
            seg: 0,
        };
        let t2 = RecordMeta {
            team: TeamId(2),
            kind: 1,
            epoch: 1,
            value: 20,
            seg: 0,
        };
        r.set(PortId(1), gp(1, 1), t2);
        assert!(
            r.check_clear(PortId(1), TeamId(1), gp(1, 1), 1).is_none(),
            "team 1 must not consume team 2's record"
        );
        r.set(PortId(1), gp(1, 1), t1);
        assert_eq!(r.check_clear(PortId(1), TeamId(1), gp(1, 1), 1), Some(t1));
        assert!(r.peek(PortId(1), gp(1, 1)), "team 2's record survives");
        assert_eq!(r.check_clear(PortId(1), TeamId(2), gp(1, 1), 1), Some(t2));
        assert!(!r.peek(PortId(1), gp(1, 1)));
    }

    #[test]
    fn outstanding_counts_records() {
        let mut r = UnexpectedRecord::new(4);
        assert_eq!(r.outstanding(), 0);
        for p in 0..4u8 {
            r.set(PortId(1), gp(3, p), META);
        }
        assert_eq!(r.outstanding(), 4);
    }
}
