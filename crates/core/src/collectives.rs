//! Collective operation descriptors.
//!
//! The barrier is the paper's contribution; §8 names reductions and
//! broadcast as future work ("we intend to investigate whether other
//! collective communication operations, such as reductions or all-to-all
//! broadcast could benefit from similar NIC-level implementations"). We
//! implement them on the same firmware machinery: a reduce is a gather
//! phase that combines values, a broadcast is the broadcast phase carrying
//! a value, an allreduce is both.

use gmsim_gm::CollectiveToken;

/// Combining operator for NIC-based reductions (u64 operands).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Wrapping sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl ReduceOp {
    /// Combine two operands.
    pub fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// The identity element.
    pub fn identity(self) -> u64 {
        match self {
            ReduceOp::Sum => 0,
            ReduceOp::Min => u64::MAX,
            ReduceOp::Max => 0,
        }
    }
}

/// Which collective a token initiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveOp {
    /// Pairwise-exchange barrier (§5, PE).
    BarrierPe,
    /// Gather-and-broadcast barrier (§5, GB).
    BarrierGb,
    /// NIC-based broadcast of a u64 from the tree root.
    Broadcast,
    /// NIC-based reduction to the tree root.
    Reduce(ReduceOp),
    /// NIC-based allreduce (reduce + broadcast of the result).
    AllReduce(ReduceOp),
}

impl CollectiveOp {
    /// Encode into the one-byte `op` field of a [`CollectiveToken`].
    pub fn encode(self) -> u8 {
        match self {
            CollectiveOp::BarrierPe => 1,
            CollectiveOp::BarrierGb => 2,
            CollectiveOp::Broadcast => 3,
            CollectiveOp::Reduce(ReduceOp::Sum) => 4,
            CollectiveOp::Reduce(ReduceOp::Min) => 5,
            CollectiveOp::Reduce(ReduceOp::Max) => 6,
            CollectiveOp::AllReduce(ReduceOp::Sum) => 7,
            CollectiveOp::AllReduce(ReduceOp::Min) => 8,
            CollectiveOp::AllReduce(ReduceOp::Max) => 9,
        }
    }

    /// Decode from a token's `op` byte.
    pub fn decode(op: u8) -> Option<CollectiveOp> {
        Some(match op {
            1 => CollectiveOp::BarrierPe,
            2 => CollectiveOp::BarrierGb,
            3 => CollectiveOp::Broadcast,
            4 => CollectiveOp::Reduce(ReduceOp::Sum),
            5 => CollectiveOp::Reduce(ReduceOp::Min),
            6 => CollectiveOp::Reduce(ReduceOp::Max),
            7 => CollectiveOp::AllReduce(ReduceOp::Sum),
            8 => CollectiveOp::AllReduce(ReduceOp::Min),
            9 => CollectiveOp::AllReduce(ReduceOp::Max),
            _ => return None,
        })
    }

    /// The operation a token carries.
    ///
    /// # Panics
    /// Panics on an unknown opcode — tokens are only built by this crate.
    pub fn of(token: &CollectiveToken) -> CollectiveOp {
        CollectiveOp::decode(token.op)
            .unwrap_or_else(|| panic!("unknown collective opcode {}", token.op))
    }

    /// True for tree-shaped collectives (everything but PE).
    pub fn is_tree(self) -> bool {
        !matches!(self, CollectiveOp::BarrierPe)
    }

    /// The reduce operator, if this collective combines values.
    pub fn reduce_op(self) -> Option<ReduceOp> {
        match self {
            CollectiveOp::Reduce(op) | CollectiveOp::AllReduce(op) => Some(op),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let ops = [
            CollectiveOp::BarrierPe,
            CollectiveOp::BarrierGb,
            CollectiveOp::Broadcast,
            CollectiveOp::Reduce(ReduceOp::Sum),
            CollectiveOp::Reduce(ReduceOp::Min),
            CollectiveOp::Reduce(ReduceOp::Max),
            CollectiveOp::AllReduce(ReduceOp::Sum),
            CollectiveOp::AllReduce(ReduceOp::Min),
            CollectiveOp::AllReduce(ReduceOp::Max),
        ];
        for op in ops {
            assert_eq!(CollectiveOp::decode(op.encode()), Some(op));
        }
        assert_eq!(CollectiveOp::decode(0), None);
        assert_eq!(CollectiveOp::decode(200), None);
    }

    #[test]
    fn reduce_semantics() {
        assert_eq!(ReduceOp::Sum.combine(3, 4), 7);
        assert_eq!(ReduceOp::Sum.combine(u64::MAX, 1), 0, "wrapping");
        assert_eq!(ReduceOp::Min.combine(3, 4), 3);
        assert_eq!(ReduceOp::Max.combine(3, 4), 4);
        for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
            for x in [0u64, 1, 17, u64::MAX] {
                assert_eq!(op.combine(op.identity(), x), x, "{op:?} identity");
            }
        }
    }

    #[test]
    fn classification() {
        assert!(!CollectiveOp::BarrierPe.is_tree());
        assert!(CollectiveOp::BarrierGb.is_tree());
        assert_eq!(CollectiveOp::BarrierGb.reduce_op(), None);
        assert_eq!(
            CollectiveOp::AllReduce(ReduceOp::Min).reduce_op(),
            Some(ReduceOp::Min)
        );
    }
}
