//! The paper's analytic timing model (§2.2, Equations 1–3).
//!
//! * Eq. 1: `T_host = log2 N × (Send + SDMA + Network + Recv + RDMA + HRecv)`
//! * Eq. 2: `T_nic  = Send + log2 N × (Network + Recv) + RDMA + HRecv`
//! * Eq. 3: factor of improvement = `T_host / T_nic`
//!
//! The component terms are *derived from the simulator's configuration* —
//! firmware cycle counts divided by the NIC clock, plus the host overheads —
//! so the analytic prediction and the simulation share one source of truth.
//! The paper folds all NIC-side per-step barrier processing into its *Recv*
//! term; we expose it separately as [`CostModel::nic_step_us`] and add it to
//! the per-step NIC cost, which is what the measured prototype actually
//! pays (§6 discusses exactly this overhead for the GB case).

use crate::nic::BarrierCosts;
use gmsim_gm::{ExtPacket, GmConfig, Payload};
use gmsim_myrinet::{wire_size, FabricSpec, LinkSpec, RoutePolicy, TopologyBuilder};

/// Relative tolerance of the PE/dissemination scaling forms against
/// simulation, across 32–1024 nodes and both NIC generations (worst
/// observed error ≈ 3.5%).
pub const PE_MODEL_TOLERANCE: f64 = 0.10;

/// Relative tolerance of the calibrated GB pipeline forms against
/// simulation across the same grid at `dim = 8` (worst observed error
/// ≈ 11%; the forms are fits, not first-principles derivations).
pub const GB_MODEL_TOLERANCE: f64 = 0.20;

/// Relative tolerance of the payload latency-vs-size forms
/// ([`CostModel::nic_bcast_us`] and friends) against simulation across
/// the BENCH_payload grid (1 B – 1 MiB, 16–1024 nodes, eager and
/// pipelined). The forms model the steady-state bottleneck stage with
/// calibrated wormhole-contention factors; they approximate CPU/wire
/// overlap inside a stage and the crossover neighborhood (where two
/// stages tie) is where the error peaks, so this is a calibrated
/// envelope rather than an exact derivation (worst observed cell ≈
/// +45%, most within ±20%).
pub const PAYLOAD_MODEL_TOLERANCE: f64 = 0.50;

/// Relative tolerance of the per-fabric forms ([`CostModel::nic_pe_fabric_us`]
/// and friends, evaluated through [`advisor::predict`] with an explicit
/// [`FabricSpec`]) against simulation across the BENCH_fabric grid:
/// algorithm × {non-blocking, 2:1, 4:1 Clos, fat tree} × routing policy.
/// The fabric surcharges are small against the calibrated bases (barrier
/// packets serialize in ~0.1 µs), so the bound is dominated by the weakest
/// base form the study sweeps (the GB pipeline fit, ±20%) plus headroom
/// for the queueing excess, which models only first-order uplink sharing.
pub const FABRIC_MODEL_TOLERANCE: f64 = 0.25;

/// Component costs in microseconds, as in Figure 2.
///
/// ```
/// use gmsim_gm::GmConfig;
/// use gmsim_lanai::NicModel;
/// use nic_barrier::CostModel;
///
/// let m = CostModel::from_config(&GmConfig::paper_host(NicModel::LANAI_4_3));
/// // Eq. 3 predicts a factor near the paper's published 1.78x at 16 nodes.
/// assert!((m.improvement(16) - 1.78).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Host posts a token until the NIC can detect it.
    pub send_us: f64,
    /// SDMA pickup + payload staging on the NIC.
    pub sdma_us: f64,
    /// Wire time: switch fall-through + propagation + serialization.
    pub network_us: f64,
    /// NIC reception handling of one data packet (host path).
    pub recv_us: f64,
    /// NIC reception handling of one NIC-terminated barrier packet —
    /// cheaper than the data path (no receive-token lookup, no RDMA prep).
    pub nic_recv_us: f64,
    /// NIC→host delivery of one event.
    pub rdma_us: f64,
    /// Host processing of one returned event.
    pub hrecv_us: f64,
    /// Firmware cost of one NIC-resident barrier step (PE), folded into
    /// *Recv* by the paper's Eq. 2 but paid by the real firmware.
    pub nic_step_us: f64,
    /// Extra wire cost of a cross-leaf hop in the two-level Clos fabric
    /// that clusters beyond 16 hosts use: two additional switch
    /// fall-throughs plus two additional link propagations (wormhole
    /// routing pays serialization only once).
    pub cross_extra_us: f64,
    /// Firmware cost of processing one GB tree collective token.
    pub gb_token_us: f64,
    /// Firmware cost of absorbing one gather arrival (GB up phase).
    pub gb_gather_us: f64,
    /// Firmware cost of one child broadcast send (GB down phase).
    pub gb_child_us: f64,
    /// Host-bus DMA time per payload byte (both SDMA and RDMA engines).
    pub dma_us_per_byte: f64,
    /// Link serialization time per payload byte (Myrinet 1.28 Gb/s).
    pub wire_us_per_byte: f64,
    /// Base retransmission timeout of the reliable connection layer — the
    /// latency a dropped packet costs before its timer fires (backoff
    /// level 0). Used by the [`advisor`] fault penalty.
    pub retransmit_us: f64,
    /// Wire serialization time of one zero-payload barrier packet — the
    /// unit a queued worm waits per competitor on a shared uplink. Used by
    /// the per-fabric contention terms.
    pub pkt_wire_us: f64,
}

impl CostModel {
    /// Derive the model from a cluster configuration (single-crossbar
    /// topology assumed, as in the paper's testbeds).
    pub fn from_config(cfg: &GmConfig) -> Self {
        let clock = cfg.nic.clock;
        let us = |cycles: u64| clock.cycles(cycles).as_us_f64();
        let costs = cfg.nic.costs;
        let bc = BarrierCosts::GM_1_2_3;
        // Wire: NIC→switch→NIC with GM framing on a small barrier packet.
        let link = LinkSpec::MYRINET_1280;
        let bytes = wire_size(ExtPacket::WIRE_BYTES, 1);
        let network = TopologyBuilder::DEFAULT_SWITCH_LATENCY.as_us_f64()
            + 2.0 * link.propagation.as_us_f64()
            + link.serialize(bytes).as_us_f64();
        // Small-message DMA byte time is sub-microsecond; fold it in.
        let dma_us = |b: usize| b as f64 / cfg.nic.dma_bytes_per_ns / 1_000.0;
        CostModel {
            send_us: cfg.host_send_overhead.as_us_f64(),
            sdma_us: us(costs.sdma_cycles + costs.send_cycles) + dma_us(8),
            network_us: network,
            recv_us: us(costs.recv_cycles + costs.ack_tx_cycles),
            nic_recv_us: us(costs.ext_recv_cycles + costs.ack_tx_cycles),
            rdma_us: us(costs.rdma_cycles) + dma_us(16),
            hrecv_us: cfg.host_recv_overhead.as_us_f64(),
            nic_step_us: us(bc.pe_send_cycles + bc.pe_match_cycles + bc.record_cycles),
            cross_extra_us: 2.0 * TopologyBuilder::DEFAULT_SWITCH_LATENCY.as_us_f64()
                + 2.0 * link.propagation.as_us_f64(),
            gb_token_us: us(bc.gb_token_cycles),
            gb_gather_us: us(bc.gb_gather_cycles),
            gb_child_us: us(bc.gb_child_cycles),
            dma_us_per_byte: 1.0 / cfg.nic.dma_bytes_per_ns / 1_000.0,
            wire_us_per_byte: 1.0 / link.bytes_per_ns / 1_000.0,
            retransmit_us: cfg.retransmit_timeout.as_us_f64(),
            pkt_wire_us: link.serialize(bytes).as_us_f64(),
        }
    }

    /// `ceil(log2 n)` rounds of the PE algorithm.
    pub fn rounds(n: usize) -> u32 {
        assert!(n >= 1);
        (n as f64).log2().ceil() as u32
    }

    /// Equation 1: predicted host-based PE barrier latency (µs).
    pub fn host_barrier_us(&self, n: usize) -> f64 {
        let step = self.send_us
            + self.sdma_us
            + self.network_us
            + self.recv_us
            + self.rdma_us
            + self.hrecv_us;
        Self::rounds(n) as f64 * step
    }

    /// Equation 2 (with the explicit firmware step term): predicted
    /// NIC-based PE barrier latency (µs).
    pub fn nic_barrier_us(&self, n: usize) -> f64 {
        self.send_us
            + Self::rounds(n) as f64 * (self.network_us + self.nic_recv_us + self.nic_step_us)
            + self.rdma_us
            + self.hrecv_us
    }

    /// Equation 2 exactly as printed in the paper (no firmware-step term;
    /// the paper folds step processing into its *Recv*).
    pub fn nic_barrier_us_paper_form(&self, n: usize) -> f64 {
        self.send_us
            + Self::rounds(n) as f64 * (self.network_us + self.recv_us)
            + self.rdma_us
            + self.hrecv_us
    }

    /// Equation 3: predicted factor of improvement.
    pub fn improvement(&self, n: usize) -> f64 {
        self.host_barrier_us(n) / self.nic_barrier_us(n)
    }

    // ---- Scale-aware forms (N beyond the paper's 16-node testbed) ----
    //
    // These extend Eqs. 1–2 to the two-level Clos fabric that
    // `TopologyBuilder::for_cluster` builds past 16 hosts: a round whose
    // partner lives in another 8-host leaf pays `cross_extra_us` on the
    // wire, everything else is unchanged. The BENCH_scale study
    // cross-checks every simulated point against these within stated
    // tolerances.

    /// Wire cost of one hop between endpoints `dist` ranks apart in an
    /// `n`-node cluster: the single-crossbar term, plus the cross-leaf
    /// surcharge once the cluster is a Clos and the partner cannot share a
    /// leaf, plus a second surcharge once the cluster is a three-level
    /// Clos (`n > 1024`) and the partner lives in another 64-host pod —
    /// the leaf→spine→core→spine→leaf route pays two more fall-throughs
    /// and two more propagations than the in-pod leaf→spine→leaf route.
    fn hop_us(&self, n: usize, dist: usize) -> f64 {
        let pod_hosts = TopologyBuilder::CLOS_LEAF_HOSTS * TopologyBuilder::CLOS_LEAF_HOSTS;
        let clos = n > TopologyBuilder::MAX_SINGLE_SWITCH_HOSTS;
        let clos3 = n > TopologyBuilder::MAX_TWO_LEVEL_HOSTS;
        if clos3 && dist >= pod_hosts {
            self.network_us + 2.0 * self.cross_extra_us
        } else if clos && dist >= TopologyBuilder::CLOS_LEAF_HOSTS {
            self.network_us + self.cross_extra_us
        } else {
            self.network_us
        }
    }

    /// Scale-aware Eq. 2: NIC-based PE latency on the standard fabric.
    /// Round `k`'s partner is `2^k` ranks away, so the first
    /// `log2(leaf size)` rounds stay intra-leaf. Equals
    /// [`CostModel::nic_barrier_us`] for `n <= 16`.
    pub fn nic_pe_us(&self, n: usize) -> f64 {
        let per_round: f64 = (0..Self::rounds(n))
            .map(|k| self.hop_us(n, 1usize << k) + self.nic_recv_us + self.nic_step_us)
            .sum();
        self.send_us + per_round + self.rdma_us + self.hrecv_us
    }

    /// Scale-aware Eq. 1: host-based PE latency on the standard fabric.
    pub fn host_pe_us(&self, n: usize) -> f64 {
        (0..Self::rounds(n))
            .map(|k| {
                self.send_us
                    + self.sdma_us
                    + self.hop_us(n, 1usize << k)
                    + self.recv_us
                    + self.rdma_us
                    + self.hrecv_us
            })
            .sum()
    }

    /// Scale-aware NIC dissemination latency at radix 2. Same round
    /// structure as PE with round-`k` distance `2^k`; at powers of two the
    /// two algorithms (and predictions) coincide.
    pub fn nic_dissemination_us(&self, n: usize) -> f64 {
        self.nic_dissemination_radix_us(n, 2)
    }

    /// Scale-aware host dissemination latency at radix 2.
    pub fn host_dissemination_us(&self, n: usize) -> f64 {
        self.host_dissemination_radix_us(n, 2)
    }

    /// Per-round structure of the radix-`radix` dissemination schedule
    /// over `n` ranks: for each round, the worst hop distance and the
    /// number of arrivals `(j·radix^k < n)` the rank must absorb.
    fn kary_rounds(n: usize, radix: usize) -> Vec<(usize, usize)> {
        assert!(radix >= 2, "dissemination radix must be at least 2");
        let mut rounds = Vec::new();
        let mut stride = 1usize;
        while stride < n {
            let mut worst = 0usize;
            let mut arrivals = 0usize;
            for j in 1..radix {
                match j.checked_mul(stride) {
                    Some(d) if d < n => {
                        worst = d;
                        arrivals += 1;
                    }
                    _ => break,
                }
            }
            rounds.push((worst, arrivals));
            stride = match stride.checked_mul(radix) {
                Some(s) => s,
                None => break,
            };
        }
        rounds
    }

    /// Scale-aware NIC dissemination latency at radix `radix`: per round
    /// the worst-distance hop overlaps the others' wire time, then the NIC
    /// absorbs each of the round's `radix − 1` arrivals serially. At
    /// `radix = 2` this is term-for-term Eq. 2 with the PE hop distances,
    /// so it reduces exactly to [`CostModel::nic_dissemination_us`].
    pub fn nic_dissemination_radix_us(&self, n: usize, radix: usize) -> f64 {
        let per_round: f64 = Self::kary_rounds(n, radix)
            .into_iter()
            .map(|(worst, arrivals)| {
                self.hop_us(n, worst)
                    + self.nic_recv_us
                    + self.nic_step_us
                    + (arrivals - 1) as f64 * (self.nic_recv_us + self.nic_step_us)
            })
            .sum();
        self.send_us + per_round + self.rdma_us + self.hrecv_us
    }

    /// Scale-aware host dissemination latency at radix `radix`: each round
    /// posts `radix − 1` sends and pays the full host round trip per
    /// arrival, with only the worst hop on the critical path. Reduces
    /// exactly to [`CostModel::host_dissemination_us`] at `radix = 2`.
    pub fn host_dissemination_radix_us(&self, n: usize, radix: usize) -> f64 {
        Self::kary_rounds(n, radix)
            .into_iter()
            .map(|(worst, arrivals)| {
                self.send_us
                    + self.sdma_us
                    + self.hop_us(n, worst)
                    + self.recv_us
                    + self.rdma_us
                    + self.hrecv_us
                    + (arrivals - 1) as f64
                        * (self.send_us
                            + self.sdma_us
                            + self.recv_us
                            + self.rdma_us
                            + self.hrecv_us)
            })
            .sum()
    }

    /// Depth of the `dim`-ary heap-shaped GB tree over `n` ranks: the
    /// level of the deepest rank, `n - 1`.
    pub fn gb_depth(n: usize, dim: usize) -> u32 {
        assert!(n >= 1 && dim >= 1);
        let mut rank = n - 1;
        let mut level = 0;
        while rank > 0 {
            rank = (rank - 1) / dim;
            level += 1;
        }
        level
    }

    /// NIC-based GB latency.
    ///
    /// Unlike PE, measured GB latency is *linear in `log2 n`* rather than
    /// stepping with tree depth: consecutive rounds pipeline through the
    /// tree, and each doubling of the cluster adds `dim - 1` gather
    /// absorptions plus child broadcast sends to the critical cycle
    /// (matching §6's observation that the tree dimension's impact is
    /// muted by pipelining). The fixed part is the tree token, which is
    /// far costlier than PE's. Calibrated for moderate arities (the
    /// scaling study's `dim = 8`); exact only to ~±10%.
    pub fn nic_gb_us(&self, n: usize, dim: usize) -> f64 {
        let per_child = (dim.saturating_sub(1)).max(1) as f64;
        self.send_us
            + self.gb_token_us
            + Self::rounds(n) as f64 * per_child * (self.gb_gather_us + self.gb_child_us)
            + self.rdma_us
            + self.hrecv_us
    }

    /// Host-based GB latency: the same pipelined-round shape as
    /// [`CostModel::nic_gb_us`], but each per-child absorption goes
    /// through the NIC's full data-path receive handling. Calibrated for
    /// moderate arities; exact only to ~±15%.
    pub fn host_gb_us(&self, n: usize, dim: usize) -> f64 {
        let per_child = (dim.saturating_sub(1)).max(1) as f64;
        self.send_us
            + self.sdma_us
            + Self::rounds(n) as f64 * per_child * self.recv_us
            + self.rdma_us
            + self.hrecv_us
    }

    // ---- Payload latency-vs-size forms (data-carrying collectives) ----
    //
    // A data-carrying collective moves `payload.bytes` through the
    // schedule in `payload.segments()` pipelined segments (eager = one
    // segment). The testbed measures *steady-state per-operation latency*:
    // operations stream back-to-back, so the measured mean converges to
    // the slowest pipeline stage's period, not the one-shot fill path.
    // These forms therefore model the bottleneck stage of each schedule:
    //
    //   bcast/reduce:  T ≈ max(sender SDMA loop, worst-link wire, combine)
    //   allreduce:     T ≈ small-payload period + serialized payload fill
    //                  (the per-node staging buffer single-buffers the
    //                  payload, so rounds cannot overlap once data rides
    //                  along — the fill path itself becomes the period)
    //   scan:          T ≈ base rounds + R × contended wire per round
    //
    // Contention factors are calibrated against the wormhole fabric:
    // a `dim`-ary tree ≤16 nodes fits one crossbar and only shares the
    // parent's egress link (factor `dim`); past that, inter-switch trunks
    // carry tree edges from multiple levels and the worst-link factor
    // grows logarithmically in the extra depth. Scan's shifted-ring
    // rounds saturate the bisection: the observed per-round wire cost is
    // `sqrt(n)/2 ×` the uncontended serialization across n = 4..256.
    // The BENCH_payload study gates every simulated point against these
    // within [`PAYLOAD_MODEL_TOLERANCE`].

    /// Host-bus DMA time for `bytes` (engine startup is charged in
    /// handler cycles, so engine time is pure per-byte).
    fn dma_bytes_us(&self, bytes: u64) -> f64 {
        bytes as f64 * self.dma_us_per_byte
    }

    /// Wire serialization of `bytes` of payload.
    fn wire_bytes_us(&self, bytes: u64) -> f64 {
        bytes as f64 * self.wire_us_per_byte
    }

    /// Child counts of each ancestor on the rank `n - 1` → root path of
    /// the `dim`-ary heap tree (deepest-first). The first entry is often
    /// below `dim` — the deepest parent may be only partially filled.
    fn tree_path_fanins(n: usize, dim: usize) -> Vec<usize> {
        let mut rank = n - 1;
        let mut fanins = Vec::new();
        while rank > 0 {
            let parent = (rank - 1) / dim;
            let children = (1..=dim).filter(|j| parent * dim + j < n).count();
            fanins.push(children);
            rank = parent;
        }
        fanins
    }

    /// Worst-link contention factor for a down-tree broadcast carrying
    /// `segs` segments. `dim` worms share the parent egress inside one
    /// crossbar; each extra tree level past the single-switch depth adds
    /// trunk sharing with logarithmic saturation, and segmentation lets
    /// worms from distinct subtree streams *interleave* on a trunk, which
    /// grows the factor as `sqrt(segs)`, saturating at 3× (measured: 2 at
    /// n = 16 for all sizes; 5.5 → 8 at n = 64 and 5 → 20 at n = 256 as
    /// eager worms split into 16 segments). Past 256 nodes the Clos
    /// fabric's bisection grows faster than the binary tree's trunk
    /// usage, so the interleaving ceiling *shrinks* as `sqrt(256 / n)`
    /// (measured 11.5 at n = 1024 vs 20 at n = 256); `n / 8` bounds the
    /// distinct streams a trunk can carry at all.
    fn bcast_link_factor(n: usize, dim: usize, segs: f64) -> f64 {
        let levels = Self::gb_depth(n, dim) as f64;
        let extra = (levels - 3.0).max(1.0);
        let base = (n - 1).min(dim) as f64 * (1.0 + extra.log2());
        // Interleaving is worst at moderate segment counts (~16-64):
        // a few long segments collide on the trunks, while very deep
        // pipelines smooth into steady streams and the factor decays
        // back toward the eager value (measured at n = 256: 20 at 16
        // segments, 21 at 64, then 11.7 at 256).
        let peak = (3.0 * (256.0 / n as f64).sqrt().min(1.0)).max(1.0);
        let interleave = (segs.sqrt().min(peak) * (64.0 / segs).sqrt().min(1.0)).max(1.0);
        let cap = (n as f64 / 8.0).max(dim as f64);
        (base * interleave).min(cap)
    }

    /// Steady-state sender-side stage: host send/completion loop, tree
    /// token, SDMA handler, and the payload's host-bus DMA.
    fn tree_sender_us(&self, bytes: u64) -> f64 {
        self.send_us + self.hrecv_us + self.gb_token_us + self.sdma_us + self.dma_bytes_us(bytes)
    }

    /// Predicted NIC-based broadcast per-operation latency (µs) for
    /// `payload` over a `dim`-ary tree: the slowest of the root's SDMA
    /// loop, the worst fabric link (carrying `bcast_link_factor` copies
    /// of every segment), and a forwarding node's receive + RDMA work.
    pub fn nic_bcast_us(&self, n: usize, dim: usize, payload: Payload) -> f64 {
        let bytes = payload.bytes.get();
        let seg = payload.seg_bytes.get().min(bytes.max(1));
        let segs = payload.segments().get() as f64;
        let sender = self.tree_sender_us(bytes);
        let link = Self::bcast_link_factor(n, dim, segs) * segs * self.wire_bytes_us(seg);
        let receiver =
            segs * self.nic_recv_us + self.dma_bytes_us(bytes) + self.rdma_us + self.hrecv_us;
        sender.max(link).max(receiver)
    }

    /// Predicted NIC-based reduce per-operation latency (µs): gather
    /// traffic thins toward the root, so no trunk contention — the
    /// bottleneck is a parent absorbing `dim` children (its ingress wire,
    /// or the combine RDMA of `dim` full payloads).
    pub fn nic_reduce_us(&self, n: usize, dim: usize, payload: Payload) -> f64 {
        let bytes = payload.bytes.get();
        let seg = payload.seg_bytes.get().min(bytes.max(1));
        let segs = payload.segments().get() as f64;
        let fan = (n - 1).min(dim) as f64;
        let sender = self.tree_sender_us(bytes);
        let ingress = fan * segs * self.wire_bytes_us(seg);
        let combine = fan
            * self
                .dma_bytes_us(bytes)
                .max(segs * (self.recv_us + self.gb_gather_us))
            + self.rdma_us;
        sender.max(ingress).max(combine)
    }

    /// Small-payload allreduce period: the gather-side critical cycle
    /// (per-level absorptions and down-broadcast child sends along the
    /// deepest path).
    fn allreduce_base_us(&self, n: usize, dim: usize) -> f64 {
        let mut rank = n - 1;
        let mut per_level = 0.0;
        for fan in Self::tree_path_fanins(n, dim) {
            let parent = (rank - 1) / dim;
            per_level += self.hop_us(n, rank - parent)
                + fan as f64 * (self.nic_recv_us + self.gb_gather_us + self.gb_child_us);
            rank = parent;
        }
        self.send_us + self.hrecv_us + self.gb_token_us + self.sdma_us + per_level + self.rdma_us
    }

    /// Predicted NIC-based allreduce per-operation latency (µs). The
    /// per-node SRAM staging buffer single-buffers the payload, so
    /// consecutive operations cannot overlap their data movement: the
    /// serialized fill path — leaf SDMA, per-level combine RDMA
    /// overlapped with the up-wire, the down-broadcast wire, final RDMA —
    /// adds directly onto the small-payload period. Trees deeper than one
    /// crossbar pay trunk contention on the way up, modeled as a linear
    /// depth-growth factor on the fill (1× at 4 levels, saturating at 2×
    /// from 8 levels on — deeper Clos fabrics add matching bisection).
    pub fn nic_allreduce_us(&self, n: usize, dim: usize, payload: Payload) -> f64 {
        let bytes = payload.bytes.get();
        let segs = payload.segments().get() as f64;
        let per_level: f64 = Self::tree_path_fanins(n, dim)
            .iter()
            .map(|&fan| {
                (fan as f64 * self.dma_bytes_us(bytes)).max(self.wire_bytes_us(bytes))
                    + (segs - 1.0) * self.nic_recv_us
            })
            .sum();
        let fill = self.dma_bytes_us(bytes)
            + per_level
            + self.wire_bytes_us(bytes)
            + self.dma_bytes_us(bytes);
        let depth_growth = (1.0 + (Self::gb_depth(n, dim) as f64 - 4.0) / 4.0).clamp(1.0, 2.0);
        self.allreduce_base_us(n, dim) + depth_growth * fill
    }

    /// Predicted NIC-based scan per-operation latency (µs). Scan runs
    /// `log2 n` dependent PE-shaped combining rounds per operation; in
    /// round `k` every rank ships its running value `2^k` ranks away, so
    /// the fabric carries `n - 2^k` simultaneous worms and the effective
    /// per-round wire cost is `sqrt(n)/2` serializations (bisection
    /// saturation, calibrated at n = 4..256), floored by the combine
    /// RDMA.
    pub fn nic_scan_us(&self, n: usize, payload: Payload) -> f64 {
        let bytes = payload.bytes.get();
        let segs = payload.segments().get() as f64;
        let base = self.nic_pe_us(n) + self.sdma_us;
        // Per-round NIC work already charged in the base; short worms
        // hide their wire/DMA time entirely under it, and a worm only
        // builds bisection queueing once its serialization exceeds that
        // injection pacing — hence the min(1, wire/cpu) damping.
        let cpu = self.nic_recv_us + self.nic_step_us;
        let wire = self.wire_bytes_us(bytes);
        // Bisection saturation: `sqrt(n)/2` serializations per round
        // (measured at n = 4..256); past 256 nodes the Clos bisection
        // outgrows the schedule's demand and the factor damps as
        // `(256/n)^(1/4)` (measured ≈ 12 at n = 1024, not 16).
        let bisect = (n as f64).sqrt() / 2.0 * (256.0 / n as f64).powf(0.25).min(1.0);
        let contention = bisect * (wire / cpu).min(1.0);
        let per_round = (contention * wire).max(self.dma_bytes_us(bytes)).max(cpu) - cpu
            + (segs - 1.0) * self.nic_recv_us;
        base + self.dma_bytes_us(bytes) + Self::rounds(n) as f64 * per_round
    }

    // ---- Per-fabric forms (explicit fabrics beyond the default Clos) ----
    //
    // The scale-aware forms above assume the default `for_cluster` fabric:
    // non-blocking leaves, dispersed routes. A [`FabricModel`] re-shapes
    // the distance tiers (leaf and pod sizes come from the [`FabricSpec`])
    // and adds a wire-queueing excess: when a whole leaf sends cross-leaf
    // at once, `uplink_load` worms share each used uplink and the last one
    // waits `(load − 1)` packet serializations. The base forms are
    // calibrated on the default fabric — whose own dispersed residual load
    // is baked into that calibration — so the forms charge only the
    // *excess* load over that baseline, and reduce exactly to the base
    // forms on the default fabric.

    /// Wire cost of one hop between endpoints `dist` ranks apart on the
    /// fabric `fm` describes: the shape-generalized [`CostModel::hop_us`].
    fn hop_fabric_us(&self, fm: &FabricModel, dist: usize) -> f64 {
        if fm.pod_hosts.is_some_and(|p| dist >= p) {
            self.network_us + 2.0 * self.cross_extra_us
        } else if dist >= fm.leaf_hosts {
            self.network_us + self.cross_extra_us
        } else {
            self.network_us
        }
    }

    /// Per-fabric Eq. 2: NIC PE latency on an explicit fabric. Cross-leaf
    /// rounds pay the queueing excess on top of the tiered hop. Equals
    /// [`CostModel::nic_pe_us`] on the default fabric (excess 0).
    pub fn nic_pe_fabric_us(&self, n: usize, fm: &FabricModel) -> f64 {
        let per_round: f64 = (0..Self::rounds(n))
            .map(|k| {
                self.hop_fabric_us(fm, 1usize << k)
                    + fm.queue_us(self, 1usize << k)
                    + self.nic_recv_us
                    + self.nic_step_us
            })
            .sum();
        self.send_us + per_round + self.rdma_us + self.hrecv_us
    }

    /// Per-fabric Eq. 1: host PE latency on an explicit fabric.
    pub fn host_pe_fabric_us(&self, n: usize, fm: &FabricModel) -> f64 {
        (0..Self::rounds(n))
            .map(|k| {
                self.send_us
                    + self.sdma_us
                    + self.hop_fabric_us(fm, 1usize << k)
                    + fm.queue_us(self, 1usize << k)
                    + self.recv_us
                    + self.rdma_us
                    + self.hrecv_us
            })
            .sum()
    }

    /// Per-fabric NIC dissemination latency at radix `radix`.
    pub fn nic_dissemination_fabric_us(&self, n: usize, radix: usize, fm: &FabricModel) -> f64 {
        let per_round: f64 = Self::kary_rounds(n, radix)
            .into_iter()
            .map(|(worst, arrivals)| {
                self.hop_fabric_us(fm, worst)
                    + fm.queue_us(self, worst)
                    + self.nic_recv_us
                    + self.nic_step_us
                    + (arrivals - 1) as f64 * (self.nic_recv_us + self.nic_step_us)
            })
            .sum();
        self.send_us + per_round + self.rdma_us + self.hrecv_us
    }

    /// Per-fabric host dissemination latency at radix `radix`.
    pub fn host_dissemination_fabric_us(&self, n: usize, radix: usize, fm: &FabricModel) -> f64 {
        Self::kary_rounds(n, radix)
            .into_iter()
            .map(|(worst, arrivals)| {
                self.send_us
                    + self.sdma_us
                    + self.hop_fabric_us(fm, worst)
                    + fm.queue_us(self, worst)
                    + self.recv_us
                    + self.rdma_us
                    + self.hrecv_us
                    + (arrivals - 1) as f64
                        * (self.send_us
                            + self.sdma_us
                            + self.recv_us
                            + self.rdma_us
                            + self.hrecv_us)
            })
            .sum()
    }

    /// Per-fabric NIC GB latency: the pipelined form plus, per pipelined
    /// round, the uplink queueing excess and a root-incast surcharge —
    /// the root absorbs `fan_in` gather worms that funnel through its
    /// leaf's shared downlinks, so each unit of oversubscription queues
    /// `(fan_in − 1)` extra packet serializations.
    pub fn nic_gb_fabric_us(&self, n: usize, dim: usize, fm: &FabricModel) -> f64 {
        self.nic_gb_us(n, dim) + fm.gb_round_excess_us(self, n, dim) * Self::rounds(n) as f64
    }

    /// Per-fabric host GB latency (same surcharges as the NIC form).
    pub fn host_gb_fabric_us(&self, n: usize, dim: usize, fm: &FabricModel) -> f64 {
        self.host_gb_us(n, dim) + fm.gb_round_excess_us(self, n, dim) * Self::rounds(n) as f64
    }
}

/// Contention-relevant shape of a fabric, derived from a [`FabricSpec`]
/// and a [`RoutePolicy`] for a given attached-host count. This is what the
/// per-fabric analytic forms consume: the distance tiers plus the uplink
/// queueing excess over the default non-blocking dispersed fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricModel {
    /// Hosts sharing a leaf (edge) switch — the first distance tier.
    pub leaf_hosts: usize,
    /// Hosts per pod when a third (core) level exists — the second tier.
    pub pod_hosts: Option<usize>,
    /// Oversubscription ratio (leaf hosts per uplink); 1.0 = non-blocking.
    pub oversub: f64,
    /// Worst-case worms per used uplink, beyond the default fabric's
    /// dispersed baseline, when every host of a leaf sends cross-leaf in
    /// the same round. Zero on the default fabric by construction.
    pub excess_load: f64,
}

impl FabricModel {
    /// Worst-case worms sharing one uplink when all `leaf_hosts` hosts of
    /// a leaf send cross-leaf simultaneously under `policy`.
    ///
    /// * Static BFS routes tie-break identically for every pair, funneling
    ///   the whole leaf through one spine.
    /// * Dispersed `(src + dst) % spines` spreads by sum — but exchange
    ///   partners sit at a fixed offset `d`, so `src + dst = 2·src + d`
    ///   has fixed parity and an even spine count only ever sees half its
    ///   spines in any one round.
    /// * Adaptive picks the least-loaded uplink, achieving the ideal
    ///   spread.
    fn policy_load(leaf_hosts: usize, spines: usize, policy: RoutePolicy) -> f64 {
        let spines = spines.max(1);
        let reached = match policy {
            RoutePolicy::StaticBfs => 1,
            RoutePolicy::Dispersed => {
                if spines.is_multiple_of(2) {
                    spines / 2
                } else {
                    spines
                }
            }
            RoutePolicy::Adaptive => spines,
        };
        (leaf_hosts as f64 / reached.min(leaf_hosts).max(1) as f64).max(1.0)
    }

    /// Derive the model shape for `spec` routed by `policy` with `n`
    /// attached hosts.
    pub fn from_spec(spec: FabricSpec, policy: RoutePolicy, n: usize) -> Self {
        let leaf_hosts = spec.leaf_hosts(n);
        let oversub = spec.oversub_ratio(n);
        let excess_load = if n <= leaf_hosts {
            // Single switch: no uplinks, no cross-leaf rounds.
            0.0
        } else {
            let load = Self::policy_load(leaf_hosts, spec.spine_count(n), policy);
            // The calibrated base forms already absorb the default
            // fabric's residual dispersed load; charge only the excess.
            let baseline = Self::policy_load(leaf_hosts, leaf_hosts, RoutePolicy::Dispersed);
            (load - baseline).max(0.0)
        };
        FabricModel {
            leaf_hosts,
            pod_hosts: spec.pod_hosts(n),
            oversub,
            excess_load,
        }
    }

    /// The default fabric under default routing — the shape every base
    /// form is calibrated on. The per-fabric forms evaluated here equal
    /// the base forms exactly.
    pub fn auto(n: usize) -> Self {
        Self::from_spec(FabricSpec::Auto, RoutePolicy::Dispersed, n)
    }

    /// Queueing wait (µs) a round at hop distance `dist` pays on the
    /// shared uplinks: `excess_load` packet serializations once the round
    /// leaves the leaf, nothing intra-leaf.
    fn queue_us(&self, model: &CostModel, dist: usize) -> f64 {
        if dist >= self.leaf_hosts {
            self.excess_load * model.pkt_wire_us
        } else {
            0.0
        }
    }

    /// Per-pipelined-round GB surcharge (µs): uplink queueing excess plus
    /// the fan-in-keyed root incast on oversubscribed downlinks. Damped to
    /// a quarter of the naive worm count: the pipelined GB schedule keeps
    /// so little instantaneous wire parallelism (one gather edge per tree
    /// level is in flight at a time, versus a whole leaf for exchange
    /// rounds) that the measured BENCH_fabric grid shows only a fraction
    /// of the queueing materializing even on the 4:1 static-routed Clos.
    fn gb_round_excess_us(&self, model: &CostModel, n: usize, dim: usize) -> f64 {
        if n <= self.leaf_hosts {
            return 0.0;
        }
        let fan_in = (n - 1).min(dim.max(1)) as f64;
        let incast = (fan_in - 1.0).max(0.0) * (self.oversub - 1.0).max(0.0);
        0.25 * (self.excess_load + incast) * model.pkt_wire_us
    }
}

/// Relative regret tolerance of the [`advisor`]: the advisor's pick must
/// measure within this fraction of the measured-best candidate across the
/// BENCH_advisor scenario sweep (N × payload × fault rate). The bound is
/// inherited from the weakest analytic form the advisor ranks with — the
/// calibrated GB pipeline fits ([`GB_MODEL_TOLERANCE`]) — plus headroom
/// for the fault penalty, a calibrated saturating fit rather than a
/// derivation. Recalibrating the penalty against the measured
/// BENCH_advisor grid (the linear form over-predicted at p = 0.01, where
/// concurrent recoveries overlap) brought the worst observed regret from
/// ~22% under the linear form to ~17%, allowing this bound to tighten
/// from its original 0.25.
pub const ADVISOR_REGRET_TOLERANCE: f64 = 0.20;

pub mod advisor {
    //! Algorithm advisor: given a scenario (group size, payload, fault
    //! rate, start skew, and optionally an explicit fabric + routing
    //! policy — [`Scenario::with_fabric`]; the default [`FabricSpec::Auto`]
    //! implies the topology tier from the group size), rank every
    //! (placement, algorithm, parameter) candidate by the analytic cost
    //! model and recommend the cheapest.
    //!
    //! The advisor is topology-aware: explicit fabrics re-shape the
    //! distance tiers and charge the oversubscription queueing excess
    //! through the per-fabric forms, and GB trees pay a tier bias —
    //! every fabric tier the tree spans adds cross-tier wire on each of
    //! its serialized levels, so tiered fabrics bias the ranking toward
    //! shallow trees.
    //!
    //! The prediction is the scale-aware latency form for the candidate
    //! (GB trees use the calibrated pipeline form at its calibration arity
    //! with a measured arity correction, and payload-carrying trees add a
    //! calibrated incast surcharge — see [`predict`]), plus two
    //! scenario penalties:
    //!
    //! * **faults** — a dropped packet costs the collective a fraction of
    //!   one base retransmission timeout. The expected drop count is
    //!   `d = rate × total wire messages`, but the measured penalty
    //!   saturates sublinearly in `d`: once several drops land in one
    //!   operation their recovery stalls overlap (every timer runs
    //!   concurrently against the same wall clock), so the penalty is
    //!   `stall fraction × RTO × K·ln(1 + d/K)` — linear in `d` while
    //!   `d ≪ K`, logarithmic past the knee. The knee `K` and the stall
    //!   fraction are simulation-calibrated per schedule family: tree
    //!   schedules serialize through the dropped edge (full timeout,
    //!   early knee — and deeper trees overlap *less*, adding a small
    //!   per-level growth), while exchange schedules (PE, dissemination)
    //!   keep every other rank progressing — later-round packets arrive
    //!   early and are absorbed as unexpected records — so recovery
    //!   overlaps the rest of the round, the effective stall is ~5×
    //!   smaller and the knee ~6× later.
    //!   The penalty separates message-frugal trees (`2(n−1)`
    //!   messages) from message-rich dissemination (`n·(r−1)·log_r n`)
    //!   only on very large lossy fabrics, where the message-count gap
    //!   overwhelms the stall-fraction gap.
    //! * **skew** — barriers cannot complete before the last arrival, so
    //!   start skew adds on; it is the same additive term for every
    //!   candidate and never flips a ranking (kept for honest absolute
    //!   predictions).
    //!
    //! The `repro advisor` study replays the advisor's scenario space in
    //! simulation and gates the pick's measured regret against
    //! [`super::ADVISOR_REGRET_TOLERANCE`].

    use super::{CostModel, FabricModel};
    use crate::schedule::{dissemination, pe, Descriptor};
    use gmsim_gm::Payload;
    use gmsim_myrinet::{FabricSpec, RoutePolicy};

    /// Where the schedule interpreter runs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Placement {
        /// NIC-resident firmware extension (the paper's contribution).
        Nic,
        /// Host-level baseline over plain GM sends/receives.
        Host,
    }

    /// The situation to recommend for. With the default
    /// [`FabricSpec::Auto`] fabric the topology tier is implied by `n`
    /// (single crossbar ≤ 16 hosts, two-level Clos ≤ 1024, then
    /// three-level), exactly as the [`CostModel`] hop form models it;
    /// [`Scenario::with_fabric`] pins an explicit fabric and routing
    /// policy instead.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Scenario {
        /// Number of participating processes.
        pub n: usize,
        /// Data each rank contributes ([`Payload::EMPTY`] for a pure
        /// barrier; non-empty scenarios are allreduce-style synchronizing
        /// data exchanges).
        pub payload: Payload,
        /// Per-packet drop probability of the fabric.
        pub fault_rate: f64,
        /// Worst-case start skew between participants (µs).
        pub skew_us: f64,
        /// The fabric the group runs on.
        pub fabric: FabricSpec,
        /// How worms are routed across that fabric's spines.
        pub routing: RoutePolicy,
    }

    impl Scenario {
        /// A fault-free, skew-free pure barrier over `n` processes.
        pub fn barrier(n: usize) -> Self {
            Scenario {
                n,
                payload: Payload::EMPTY,
                fault_rate: 0.0,
                skew_us: 0.0,
                fabric: FabricSpec::Auto,
                routing: RoutePolicy::Dispersed,
            }
        }

        /// Pin an explicit fabric and routing policy (the default is the
        /// auto-scaled non-blocking fabric with dispersed routes).
        #[must_use]
        pub fn with_fabric(mut self, fabric: FabricSpec, routing: RoutePolicy) -> Self {
            self.fabric = fabric;
            self.routing = routing;
            self
        }

        /// Attach per-rank data (turns the scenario into an allreduce).
        #[must_use]
        pub fn with_payload(mut self, payload: Payload) -> Self {
            self.payload = payload;
            self
        }

        /// Set the fabric drop probability.
        #[must_use]
        pub fn with_faults(mut self, rate: f64) -> Self {
            self.fault_rate = rate;
            self
        }

        /// Set the worst-case start skew.
        #[must_use]
        pub fn with_skew(mut self, skew_us: f64) -> Self {
            self.skew_us = skew_us;
            self
        }
    }

    /// One scored (placement, algorithm) candidate.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Candidate {
        /// NIC or host interpreter.
        pub placement: Placement,
        /// The algorithm and its parameter.
        pub descriptor: Descriptor,
        /// Predicted latency under the scenario (µs).
        pub predicted_us: f64,
    }

    impl Candidate {
        /// Stable display name, matching the BENCH_advisor row labels.
        pub fn name(&self) -> String {
            let side = match self.placement {
                Placement::Nic => "nic",
                Placement::Host => "host",
            };
            match self.descriptor {
                Descriptor::Pe => format!("{side}-pe"),
                Descriptor::Gb { dim } => format!("{side}-gb{dim}"),
                Descriptor::Dissemination { radix } => format!("{side}-dissem{radix}"),
                Descriptor::Allreduce { dim, .. } => format!("{side}-allreduce{dim}"),
                ref other => format!("{side}-{other:?}"),
            }
        }
    }

    /// The advisor's output: every candidate, cheapest first.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Recommendation {
        /// All scored candidates, sorted by ascending predicted latency.
        pub ranked: Vec<Candidate>,
    }

    impl Recommendation {
        /// The recommended candidate.
        pub fn best(&self) -> &Candidate {
            &self.ranked[0]
        }
    }

    /// Tree dimensions the advisor considers for GB (and allreduce).
    pub const GB_DIMS: [usize; 3] = [2, 4, 8];

    /// The arity the GB pipeline forms are calibrated at (the scaling
    /// study's `dim = 8`). The advisor predicts every GB candidate from
    /// this form: measured GB latency is nearly *flat* in the tree
    /// dimension — deep binary trees serialize more levels while wide
    /// trees absorb more children per level, and under pipelining the two
    /// effects cancel — whereas the raw form's `dim − 1` per-round factor
    /// would wrongly reward low arities by 2–4×.
    pub const GB_PIPELINE_DIM: usize = 8;

    /// Simulation-calibrated arity correction on the saturated GB
    /// pipeline cycle (stable across 8–256 nodes to within a few
    /// percent): binary trees pay ~10% over the `dim = 8` cycle for the
    /// extra serialized depth, `dim = 4` undercuts it by ~6%.
    fn gb_arity_correction(dim: usize) -> f64 {
        match dim {
            0..=2 => 1.10,
            3..=5 => 0.94,
            _ => 1.0,
        }
    }

    /// Simulation-calibrated fraction of the base RTO one dropped packet
    /// stalls the collective. Tree schedules (GB, and the data-carrying
    /// tree collectives) serialize through the dropped edge: nothing
    /// downstream can proceed until the retransmission lands, so a drop
    /// costs essentially the full timeout. Exchange schedules (PE,
    /// dissemination, scan) leave every other rank free to run ahead —
    /// their later-round packets are absorbed as unexpected records — so
    /// only the tail of the stalled rank's chain waits and the measured
    /// effective stall is ~0.2 RTO.
    fn drop_stall_fraction(descriptor: &Descriptor) -> f64 {
        match descriptor {
            Descriptor::Pe | Descriptor::Dissemination { .. } | Descriptor::Scan { .. } => 0.2,
            _ => 1.0,
        }
    }

    /// Knee (in expected drops per operation) where a schedule family's
    /// measured fault penalty departs from linear. Past the knee,
    /// concurrent recoveries overlap — every retransmission timer runs
    /// against the same wall clock — and each additional expected drop
    /// buys less stall. Exchange schedules overlap heavily (many ranks
    /// recover inside one round's stall window: measured penalty at
    /// p = 0.01 sits ~3–4× below linear by 1024 nodes); tree schedules
    /// serialize recoveries level by level and saturate almost
    /// immediately. Calibrated against the measured BENCH_advisor grid.
    fn drop_saturation_knee(descriptor: &Descriptor) -> f64 {
        match descriptor {
            Descriptor::Pe | Descriptor::Dissemination { .. } | Descriptor::Scan { .. } => 3.0,
            _ => 0.5,
        }
    }

    /// Expected fault penalty (µs) for one operation: the saturating
    /// recalibration of the old linear `rate × messages × RTO × fraction`
    /// form, to which it reduces exactly as the expected drop count
    /// `d → 0`. Pure GB trees additionally grow ~3% per tree level: a
    /// deeper tree has more serialized edges whose recoveries *cannot*
    /// overlap, which the flat knee under-charges (measured: an 8-ary
    /// tree rides out p = 0.01 better than the quad tree at 1024 nodes).
    fn fault_penalty_us(model: &CostModel, scenario: &Scenario, descriptor: &Descriptor) -> f64 {
        let expected_drops = scenario.fault_rate * total_messages(descriptor, scenario.n) as f64;
        let knee = drop_saturation_knee(descriptor);
        let depth_growth = match *descriptor {
            Descriptor::Gb { dim } => 1.0 + 0.03 * CostModel::gb_depth(scenario.n, dim) as f64,
            _ => 1.0,
        };
        drop_stall_fraction(descriptor)
            * model.retransmit_us
            * knee
            * (1.0 + expected_drops / knee).ln()
            * depth_growth
    }

    /// Topology-aware tier bias (µs) on GB trees: every fabric tier the
    /// tree spans adds cross-tier wire that the pipelined GB form (which
    /// carries no hop term at all) never charges, and it recurs on each
    /// of the tree's serialized levels — so on tiered fabrics the bias
    /// grows with depth and shallow trees win ties. Keyed to the *actual*
    /// candidate arity, unlike the pipeline base form, which is evaluated
    /// at its calibration arity.
    fn gb_tier_bias_us(model: &CostModel, fm: &FabricModel, n: usize, dim: usize) -> f64 {
        let mut tiers = 0.0;
        if n > fm.leaf_hosts {
            tiers += 1.0;
        }
        if fm.pod_hosts.is_some_and(|p| n > p) {
            tiers += 1.0;
        }
        tiers * CostModel::gb_depth(n, dim) as f64 * model.cross_extra_us
    }

    /// Simulation-calibrated incast surcharge (µs) for payload-carrying
    /// trees. A `dim`-ary gather parent absorbs `dim` payload worms that
    /// serialize on its ingress path, and on the shared Clos uplinks the
    /// contention compounds — none of which the latency-vs-size forms
    /// model, so they increasingly *under*-charge high arity as `n`
    /// grows: at 4096 nodes the uncorrected form ranks the 8-ary
    /// allreduce cheapest where measurement has it 6× slower than
    /// binary. The measured fault-free gap fits `(dim−1)² × levels`,
    /// linear in payload bytes, with a per-tier scale: lost in the noise
    /// through 64 nodes, ≈18 µs per unit (at 4 KiB) on the two-level
    /// Clos (calibrated to the measured arity crossover — 4-ary still
    /// ahead at 256 nodes, binary by 1024), ≈60 µs once worms cross the
    /// third tier.
    fn payload_incast_us(n: usize, dim: usize, bytes: u64) -> f64 {
        let scale = match n {
            0..=127 => return 0.0,
            128..=2047 => 18.0,
            _ => 60.0,
        };
        let levels = if dim >= 2 {
            CostModel::kary_rounds(n, dim).len()
        } else {
            // Degenerate chain "tree": one level per non-root rank.
            n.saturating_sub(1)
        };
        let fan_in = dim.saturating_sub(1) as f64;
        fan_in * fan_in * levels as f64 * scale * (bytes as f64 / 4096.0)
    }

    /// Dissemination radixes the advisor considers.
    pub const DISSEMINATION_RADIXES: [usize; 3] = [2, 3, 4];

    /// The candidate space for `scenario`. Pure barriers rank PE, GB and
    /// dissemination on both placements; payload-carrying scenarios rank
    /// NIC allreduce trees (the payload forms model the NIC data path —
    /// there is no host-side payload form to rank against).
    pub fn candidates(scenario: &Scenario) -> Vec<(Placement, Descriptor)> {
        let mut out = Vec::new();
        if scenario.payload.bytes.get() > 0 {
            for dim in GB_DIMS {
                out.push((
                    Placement::Nic,
                    Descriptor::allreduce(gmsim_gm::ReduceOp::Sum, dim)
                        .with_payload(scenario.payload),
                ));
            }
            return out;
        }
        for placement in [Placement::Nic, Placement::Host] {
            out.push((placement, Descriptor::pe()));
            for dim in GB_DIMS {
                out.push((placement, Descriptor::gb(dim)));
            }
            for radix in DISSEMINATION_RADIXES {
                out.push((placement, Descriptor::dissemination_radix(radix)));
            }
        }
        out
    }

    /// Total wire messages one collective moves across all ranks — the
    /// fault-exposure surface. Co-located ranks still count: the advisor
    /// assumes the one-process-per-node placement its study measures.
    pub fn total_messages(descriptor: &Descriptor, n: usize) -> usize {
        match *descriptor {
            Descriptor::Pe => (0..n)
                .map(|r| {
                    pe::schedule(r, n)
                        .iter()
                        .filter(|s| !matches!(s, pe::Step::RecvFrom(_)))
                        .count()
                })
                .sum(),
            Descriptor::Dissemination { radix } => {
                // Every rank sends the same (k, j) distance set.
                n * dissemination::schedule(0, n, radix)
                    .iter()
                    .filter(|s| matches!(s, pe::Step::SendTo(_)))
                    .count()
            }
            // One gather up and one broadcast down per non-root rank.
            Descriptor::Gb { .. } => 2 * n.saturating_sub(1),
            Descriptor::Allreduce { payload, .. } => {
                2 * n.saturating_sub(1) * payload.segments().get() as usize
            }
            Descriptor::Bcast { payload, .. } | Descriptor::Reduce { payload, .. } => {
                n.saturating_sub(1) * payload.segments().get() as usize
            }
            Descriptor::Scan { payload, .. } => {
                (0..n)
                    .map(|r| {
                        crate::schedule::scan::schedule(r, n)
                            .iter()
                            .filter(|s| matches!(s, pe::Step::SendTo(_)))
                            .count()
                    })
                    .sum::<usize>()
                    * payload.segments().get() as usize
            }
        }
    }

    /// Predicted latency of one candidate under `scenario` (µs): the
    /// per-fabric base form (which reduces to the scale-aware form on the
    /// default fabric) plus the fault and skew penalties. GB candidates
    /// are predicted from the pipeline form at its calibration arity
    /// ([`GB_PIPELINE_DIM`]) with the measured arity correction —
    /// evaluating the raw form at `dim = 2` or `4` leaves its calibrated
    /// domain and under-predicts the simulation by 2–4× — plus the
    /// arity-keyed topology tier bias.
    ///
    /// # Panics
    /// On host-placement payload collectives (no host-side payload form
    /// exists); [`candidates`] never produces those pairings.
    pub fn predict(
        model: &CostModel,
        scenario: &Scenario,
        placement: Placement,
        descriptor: &Descriptor,
    ) -> f64 {
        let n = scenario.n;
        let fm = FabricModel::from_spec(scenario.fabric, scenario.routing, n);
        let base = match (placement, *descriptor) {
            (Placement::Nic, Descriptor::Pe) => model.nic_pe_fabric_us(n, &fm),
            (Placement::Host, Descriptor::Pe) => model.host_pe_fabric_us(n, &fm),
            (Placement::Nic, Descriptor::Gb { dim }) => {
                gb_arity_correction(dim) * model.nic_gb_fabric_us(n, GB_PIPELINE_DIM, &fm)
                    + gb_tier_bias_us(model, &fm, n, dim)
            }
            (Placement::Host, Descriptor::Gb { dim }) => {
                gb_arity_correction(dim) * model.host_gb_fabric_us(n, GB_PIPELINE_DIM, &fm)
                    + gb_tier_bias_us(model, &fm, n, dim)
            }
            (Placement::Nic, Descriptor::Dissemination { radix }) => {
                model.nic_dissemination_fabric_us(n, radix, &fm)
            }
            (Placement::Host, Descriptor::Dissemination { radix }) => {
                model.host_dissemination_fabric_us(n, radix, &fm)
            }
            (Placement::Nic, Descriptor::Allreduce { dim, payload, .. }) => {
                model.nic_allreduce_us(n, dim, payload)
                    + payload_incast_us(n, dim, payload.bytes.get())
            }
            (Placement::Nic, Descriptor::Bcast { dim, payload }) => {
                model.nic_bcast_us(n, dim, payload)
            }
            (Placement::Nic, Descriptor::Reduce { dim, payload, .. }) => {
                model.nic_reduce_us(n, dim, payload)
                    + payload_incast_us(n, dim, payload.bytes.get())
            }
            (Placement::Nic, Descriptor::Scan { payload, .. }) => model.nic_scan_us(n, payload),
            (Placement::Host, other) => {
                unreachable!("no host-side analytic form for {other:?}")
            }
        };
        base + fault_penalty_us(model, scenario, descriptor) + scenario.skew_us
    }

    /// Rank the whole candidate space for `scenario`, cheapest first.
    pub fn recommend(model: &CostModel, scenario: &Scenario) -> Recommendation {
        let mut ranked: Vec<Candidate> = candidates(scenario)
            .into_iter()
            .map(|(placement, descriptor)| Candidate {
                placement,
                descriptor,
                predicted_us: predict(model, scenario, placement, &descriptor),
            })
            .collect();
        ranked.sort_by(|a, b| a.predicted_us.total_cmp(&b.predicted_us));
        Recommendation { ranked }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Descriptor;
    use gmsim_gm::Segments;
    use gmsim_lanai::NicModel;

    fn model_43() -> CostModel {
        CostModel::from_config(&GmConfig::paper_host(NicModel::LANAI_4_3))
    }

    #[test]
    fn rounds_is_ceil_log2() {
        assert_eq!(CostModel::rounds(1), 0);
        assert_eq!(CostModel::rounds(2), 1);
        assert_eq!(CostModel::rounds(3), 2);
        assert_eq!(CostModel::rounds(16), 4);
        assert_eq!(CostModel::rounds(17), 5);
    }

    #[test]
    fn derived_terms_near_design_calibration() {
        let m = model_43();
        assert!((7.5..8.5).contains(&m.send_us), "send={}", m.send_us);
        assert!((10.5..12.5).contains(&m.sdma_us), "sdma={}", m.sdma_us);
        assert!(
            (0.3..1.0).contains(&m.network_us),
            "network={}",
            m.network_us
        );
        assert!((10.0..11.5).contains(&m.recv_us), "recv={}", m.recv_us);
        assert!((7.0..8.5).contains(&m.rdma_us), "rdma={}", m.rdma_us);
        assert!((6.5..7.1).contains(&m.hrecv_us), "hrecv={}", m.hrecv_us);
    }

    #[test]
    fn sixteen_node_predictions_match_paper_band() {
        let m = model_43();
        let host = m.host_barrier_us(16);
        let nic = m.nic_barrier_us(16);
        // Paper: host-PE(16) ≈ 1.78 × 102.14 ≈ 182 µs; NIC-PE(16) = 102.14.
        assert!((170.0..195.0).contains(&host), "host={host}");
        assert!((94.0..112.0).contains(&nic), "nic={nic}");
        let f = m.improvement(16);
        assert!((1.6..2.0).contains(&f), "improvement={f}");
    }

    #[test]
    fn improvement_grows_with_n() {
        let m = model_43();
        let f4 = m.improvement(4);
        let f16 = m.improvement(16);
        let f256 = m.improvement(256);
        assert!(f4 < f16 && f16 < f256, "{f4} {f16} {f256}");
    }

    #[test]
    fn improvement_grows_with_host_overhead() {
        // §2.2: an MPI-like layer increases Send/HRecv and the factor.
        let base = model_43();
        let mpi = CostModel::from_config(
            &GmConfig::paper_host(NicModel::LANAI_4_3).with_layer_overhead(2.0),
        );
        assert!(mpi.improvement(16) > base.improvement(16));
    }

    #[test]
    fn faster_nic_lowers_both_latencies() {
        let m43 = model_43();
        let m72 = CostModel::from_config(&GmConfig::paper_host(NicModel::LANAI_7_2));
        assert!(m72.host_barrier_us(8) < m43.host_barrier_us(8));
        assert!(m72.nic_barrier_us(8) < m43.nic_barrier_us(8));
        // Paper: 8-node LANai 7.2 factor 1.83 > LANai 4.3 factor 1.66.
        assert!(m72.improvement(8) > m43.improvement(8));
    }

    #[test]
    fn paper_form_is_a_lower_bound() {
        let m = model_43();
        for n in [2usize, 4, 8, 16] {
            assert!(m.nic_barrier_us_paper_form(n) <= m.nic_barrier_us(n));
        }
    }

    #[test]
    fn scaled_forms_collapse_to_paper_forms_on_one_crossbar() {
        // Up to 16 nodes there is no Clos and no cross-leaf surcharge:
        // the scale-aware predictions must equal Eqs. 1–2 exactly.
        let m = model_43();
        for n in [2usize, 4, 8, 16] {
            assert_eq!(m.nic_pe_us(n), m.nic_barrier_us(n));
            assert_eq!(m.host_pe_us(n), m.host_barrier_us(n));
        }
    }

    #[test]
    fn cross_leaf_surcharge_kicks_in_past_sixteen() {
        let m = model_43();
        // n=32 has 5 PE rounds, distances 1,2,4 intra-leaf and 8,16
        // cross-leaf: exactly two surcharges over the flat Eq. 2.
        let flat = m.nic_barrier_us(32);
        let scaled = m.nic_pe_us(32);
        assert!(
            (scaled - flat - 2.0 * m.cross_extra_us).abs() < 1e-9,
            "scaled={scaled} flat={flat} extra={}",
            m.cross_extra_us
        );
    }

    #[test]
    fn cross_pod_surcharge_kicks_in_past_one_thousand_twenty_four() {
        let m = model_43();
        // n=2048 has 11 PE rounds: distances 1..=4 intra-leaf, 8..=32
        // cross-leaf (3 surcharges), 64..=1024 cross-pod (5 double
        // surcharges).
        let flat = m.nic_barrier_us(2048);
        let scaled = m.nic_pe_us(2048);
        let expect = 3.0 * m.cross_extra_us + 5.0 * 2.0 * m.cross_extra_us;
        assert!(
            (scaled - flat - expect).abs() < 1e-9,
            "scaled={scaled} flat={flat} expect={expect}"
        );
        // At the two-level boundary the pod surcharge must NOT apply.
        let b1024 = m.nic_pe_us(1024) - m.nic_barrier_us(1024);
        assert!(
            (b1024 - 7.0 * m.cross_extra_us).abs() < 1e-9,
            "1024 nodes stay two-level: {b1024}"
        );
    }

    #[test]
    fn dissemination_matches_pe_at_powers_of_two() {
        let m = model_43();
        for n in [32usize, 64, 256, 1024] {
            assert_eq!(m.nic_dissemination_us(n), m.nic_pe_us(n));
            assert_eq!(m.host_dissemination_us(n), m.host_pe_us(n));
        }
    }

    #[test]
    fn radix_two_forms_are_the_fixed_radix_forms() {
        // The radix-aware generalization must delegate bit-exactly: the
        // scale study's model gates and the golden comparisons both lean
        // on the historical radix-2 values.
        let m = model_43();
        for n in [2usize, 3, 5, 16, 33, 100, 1024, 4096] {
            assert_eq!(
                m.nic_dissemination_radix_us(n, 2),
                m.nic_dissemination_us(n)
            );
            assert_eq!(
                m.host_dissemination_radix_us(n, 2),
                m.host_dissemination_us(n)
            );
        }
    }

    #[test]
    fn higher_radix_trades_rounds_for_arrivals() {
        let m = model_43();
        for n in [64usize, 256, 1024] {
            // Radix 4 halves the dependent rounds of radix 2 at powers of
            // four, paying 3 arrivals per round instead of 1: strictly
            // fewer wire hops on the critical path, more NIC work.
            let r2 = m.nic_dissemination_radix_us(n, 2);
            let r4 = m.nic_dissemination_radix_us(n, 4);
            assert!(r2.is_finite() && r4.is_finite());
            assert!(r4 > 0.0 && r2 > 0.0);
            // On the host the per-arrival round trip dominates, so higher
            // radix must never win there.
            assert!(
                m.host_dissemination_radix_us(n, 4) > m.host_dissemination_radix_us(n, 2),
                "n={n}"
            );
        }
    }

    #[test]
    fn advisor_prefers_nic_over_host_everywhere() {
        let m = model_43();
        for n in [8usize, 64, 1024] {
            let rec = advisor::recommend(&m, &advisor::Scenario::barrier(n));
            assert_eq!(rec.best().placement, advisor::Placement::Nic, "n={n}");
            // The ranking is sorted ascending.
            for w in rec.ranked.windows(2) {
                assert!(w[0].predicted_us <= w[1].predicted_us);
            }
        }
    }

    #[test]
    fn advisor_fault_penalty_favors_message_frugal_trees_at_scale() {
        let m = model_43();
        // Exchange schedules ride out drops ~5× cheaper per message than
        // trees, so the tree's 2(n−1)-vs-0.2·n·log2 n exposure advantage
        // only materializes past n = 1024 (log2 n > 10). At 4096 nodes a
        // lossy fabric must flip the recommendation to a GB tree...
        let lossy = advisor::Scenario::barrier(4096).with_faults(0.01);
        let rec = advisor::recommend(&m, &lossy);
        assert!(
            matches!(rec.best().descriptor, Descriptor::Gb { .. }),
            "lossy best = {}",
            rec.best().name()
        );
        // ...while at 256 nodes the same drop rate keeps PE/dissemination
        // ahead (measured: nic-pe and nic-dissem2 stay the cheapest under
        // faults there).
        let mid = advisor::recommend(&m, &advisor::Scenario::barrier(256).with_faults(0.01));
        assert!(
            matches!(
                mid.best().descriptor,
                Descriptor::Pe | Descriptor::Dissemination { .. }
            ),
            "256-node lossy best = {}",
            mid.best().name()
        );
        // And the penalty is monotone: the lossy winner predicts no better
        // than the fault-free winner.
        let clean = advisor::recommend(&m, &advisor::Scenario::barrier(4096));
        assert!(rec.best().predicted_us >= clean.best().predicted_us);
    }

    #[test]
    fn advisor_payload_scenarios_rank_allreduce_trees() {
        let m = model_43();
        let sc = advisor::Scenario::barrier(64).with_payload(Payload::for_size(4096));
        let rec = advisor::recommend(&m, &sc);
        assert_eq!(rec.ranked.len(), advisor::GB_DIMS.len());
        for c in &rec.ranked {
            assert_eq!(c.placement, advisor::Placement::Nic);
            assert!(matches!(c.descriptor, Descriptor::Allreduce { .. }));
        }
    }

    #[test]
    fn advisor_payload_trees_pay_for_incast_at_scale() {
        let m = model_43();
        // At 64 nodes pipelining still favors the wider tree...
        let small = advisor::Scenario::barrier(64).with_payload(Payload::for_size(4096));
        let rec = advisor::recommend(&m, &small);
        assert!(
            matches!(rec.best().descriptor, Descriptor::Allreduce { dim: 4, .. }),
            "{rec:?}"
        );
        // ...but on the three-tier fabric the 8-ary gather's incast is
        // ruinous (measured 6× binary) and the binary tree must win.
        let big = advisor::Scenario::barrier(4096).with_payload(Payload::for_size(4096));
        let rec = advisor::recommend(&m, &big);
        assert!(
            matches!(rec.best().descriptor, Descriptor::Allreduce { dim: 2, .. }),
            "{rec:?}"
        );
    }

    #[test]
    fn advisor_total_messages_counts() {
        use advisor::total_messages;
        // GB: one gather up + one broadcast down per non-root rank.
        assert_eq!(total_messages(&Descriptor::gb(4), 16), 30);
        // Radix-2 dissemination: n sends per round, ceil(log2 n) rounds.
        assert_eq!(total_messages(&Descriptor::dissemination(), 16), 64);
        // Radix-4 over 16 ranks: 2 rounds × 3 offsets × 16 ranks.
        assert_eq!(total_messages(&Descriptor::dissemination_radix(4), 16), 96);
        // PE at a power of two: n·log2 n exchange sends.
        assert_eq!(total_messages(&Descriptor::pe(), 16), 64);
        // Skew is additive and identical across candidates.
        let model = model_43();
        let base = advisor::predict(
            &model,
            &advisor::Scenario::barrier(32),
            advisor::Placement::Nic,
            &Descriptor::pe(),
        );
        let skewed = advisor::predict(
            &model,
            &advisor::Scenario::barrier(32).with_skew(50.0),
            advisor::Placement::Nic,
            &Descriptor::pe(),
        );
        assert!((skewed - base - 50.0).abs() < 1e-12);
    }

    #[test]
    fn fabric_forms_reduce_to_base_forms_on_the_default_fabric() {
        // The default fabric's dispersed residual load is the calibration
        // baseline, so its FabricModel must carry zero excess and every
        // per-fabric form must equal the scale-aware form bit-exactly.
        let m = model_43();
        for n in [2usize, 16, 64, 100, 1000, 1024, 4096] {
            let fm = FabricModel::auto(n);
            assert_eq!(fm.excess_load, 0.0, "n={n}");
            assert_eq!(m.nic_pe_fabric_us(n, &fm), m.nic_pe_us(n), "n={n}");
            assert_eq!(m.host_pe_fabric_us(n, &fm), m.host_pe_us(n), "n={n}");
            for radix in [2usize, 3, 4] {
                assert_eq!(
                    m.nic_dissemination_fabric_us(n, radix, &fm),
                    m.nic_dissemination_radix_us(n, radix)
                );
                assert_eq!(
                    m.host_dissemination_fabric_us(n, radix, &fm),
                    m.host_dissemination_radix_us(n, radix)
                );
            }
            for dim in [2usize, 4, 8] {
                assert_eq!(m.nic_gb_fabric_us(n, dim, &fm), m.nic_gb_us(n, dim));
                assert_eq!(m.host_gb_fabric_us(n, dim, &fm), m.host_gb_us(n, dim));
            }
        }
    }

    #[test]
    fn oversubscription_and_static_routing_raise_predictions() {
        let m = model_43();
        let n = 64usize;
        let clos = |spines| FabricSpec::Clos {
            leaves: 8,
            hosts_per_leaf: 8,
            spines,
        };
        let pe = |spec, policy| m.nic_pe_fabric_us(n, &FabricModel::from_spec(spec, policy, n));
        // Dispersed routing: halving the spines raises the PE prediction.
        let full = pe(clos(8), RoutePolicy::Dispersed);
        let half = pe(clos(4), RoutePolicy::Dispersed);
        let quarter = pe(clos(2), RoutePolicy::Dispersed);
        assert!(full < half && half < quarter, "{full} {half} {quarter}");
        // Policy ordering on an oversubscribed fabric: adaptive spreads
        // best, static funnels worst.
        let adaptive = pe(clos(2), RoutePolicy::Adaptive);
        let dispersed = pe(clos(2), RoutePolicy::Dispersed);
        let static_bfs = pe(clos(2), RoutePolicy::StaticBfs);
        assert!(adaptive < dispersed, "{adaptive} {dispersed}");
        assert!(dispersed <= static_bfs, "{dispersed} {static_bfs}");
        // The non-blocking dispersed Clos is the calibration shape.
        assert_eq!(full, m.nic_pe_us(n));
        // GB pays a fan-in-keyed incast surcharge once oversubscribed.
        let fm_over = FabricModel::from_spec(clos(2), RoutePolicy::Dispersed, n);
        let fm_full = FabricModel::from_spec(clos(8), RoutePolicy::Dispersed, n);
        assert!(m.nic_gb_fabric_us(n, 8, &fm_over) > m.nic_gb_fabric_us(n, 8, &fm_full));
    }

    #[test]
    fn fat_tree_shape_reaches_the_analytic_tiers() {
        // A k=8 fat tree podizes 128 hosts into 16 pods of 4-host leaves:
        // the leaf tier starts at distance 4 and the core tier at 16,
        // unlike Auto's 8/None at the same n.
        let m = model_43();
        let fm = FabricModel::from_spec(FabricSpec::FatTree { k: 8 }, RoutePolicy::Dispersed, 128);
        assert_eq!(fm.leaf_hosts, 4);
        assert_eq!(fm.pod_hosts, Some(16));
        assert_eq!(fm.oversub, 1.0);
        assert_eq!(m.hop_fabric_us(&fm, 2), m.network_us);
        assert_eq!(m.hop_fabric_us(&fm, 4), m.network_us + m.cross_extra_us);
        assert_eq!(
            m.hop_fabric_us(&fm, 16),
            m.network_us + 2.0 * m.cross_extra_us
        );
    }

    #[test]
    fn analytic_tiers_agree_with_built_partial_leaf_clusters() {
        // Satellite audit: for N that do not fill whole leaves the builder
        // rounds up to full 8-host leaves, and the analytic tier form must
        // agree with the routes the builder actually lays out: rank
        // distance ≥ 8 always crosses a leaf (2 extra route links), below
        // 8 it never does (ranks are assigned leaf-contiguously).
        let m = model_43();
        for n in [100usize, 1000] {
            let topo = TopologyBuilder::for_cluster(n);
            assert_eq!(
                topo.nic_count(),
                n.div_ceil(8) * 8,
                "builder rounds partial leaves up"
            );
            let fm = FabricModel::auto(n);
            assert_eq!(fm.leaf_hosts, 8);
            assert_eq!(fm.pod_hosts, None, "two-level through 1024 hosts");
            let mut route = Vec::new();
            let route_len = |src: usize, dst: usize, out: &mut Vec<_>| {
                topo.route_links_into(gmsim_myrinet::NicId(src), gmsim_myrinet::NicId(dst), out);
                out.len()
            };
            // Intra-leaf pair: 2 links, flat network term.
            assert_eq!(route_len(0, 7, &mut route), 2);
            assert_eq!(m.hop_us(n, 7), m.network_us);
            // Cross-leaf pair: leaf→spine→leaf, 4 links, one surcharge.
            assert_eq!(route_len(0, 8, &mut route), 4);
            assert_eq!(m.hop_us(n, 8), m.network_us + m.cross_extra_us);
            // Largest in-cluster distance stays two-level.
            assert_eq!(route_len(0, n - 1, &mut route), 4);
            assert_eq!(m.hop_us(n, n - 1), m.network_us + m.cross_extra_us);
        }
    }

    #[test]
    fn saturating_fault_penalty_reduces_to_linear_at_low_rates() {
        // K·ln(1 + d/K) → d as d → 0: at one expected drop per thousand
        // operations the saturating form must sit within 0.1% of the old
        // linear penalty, while at p = 0.01 on a big exchange it must sit
        // well below it (that over-prediction was the bug).
        let m = model_43();
        let pe = Descriptor::pe();
        let linear = |n: usize, rate: f64| {
            rate * advisor::total_messages(&pe, n) as f64 * m.retransmit_us * 0.2
        };
        let predicted = |n: usize, rate: f64| {
            advisor::predict(
                &m,
                &advisor::Scenario::barrier(n).with_faults(rate),
                advisor::Placement::Nic,
                &pe,
            ) - m.nic_pe_us(n)
        };
        let low = predicted(64, 1e-6);
        assert!((low - linear(64, 1e-6)).abs() / linear(64, 1e-6) < 1e-3);
        let high = predicted(1024, 0.01);
        assert!(
            high < 0.5 * linear(1024, 0.01),
            "saturation must undercut linear: {high} vs {}",
            linear(1024, 0.01)
        );
        // Monotone in rate regardless.
        assert!(predicted(1024, 0.02) > high);
    }

    #[test]
    fn advisor_tier_bias_prefers_shallow_trees_on_tiered_fabrics() {
        let m = model_43();
        // Same pipeline base, different depths: the tier bias must spread
        // GB arities apart on a tiered fabric, deep binary paying most.
        let sc = advisor::Scenario::barrier(1024);
        let gb = |dim| advisor::predict(&m, &sc, advisor::Placement::Nic, &Descriptor::gb(dim));
        let bias_gap = gb(2) - 1.10 * m.nic_gb_us(1024, advisor::GB_PIPELINE_DIM);
        let depth2 = CostModel::gb_depth(1024, 2) as f64;
        assert!(
            (bias_gap - depth2 * m.cross_extra_us).abs() < 1e-9,
            "binary tree pays one tier over {depth2} levels: {bias_gap}"
        );
        // On one crossbar there is no bias at all.
        let sc16 = advisor::Scenario::barrier(16);
        let gb16 = advisor::predict(&m, &sc16, advisor::Placement::Nic, &Descriptor::gb(2));
        assert_eq!(gb16, 1.10 * m.nic_gb_us(16, advisor::GB_PIPELINE_DIM));
        // An explicitly oversubscribed static-routed fabric predicts
        // strictly worse than the default for the same scenario.
        let over = advisor::Scenario::barrier(64).with_fabric(
            FabricSpec::Clos {
                leaves: 8,
                hosts_per_leaf: 8,
                spines: 2,
            },
            RoutePolicy::StaticBfs,
        );
        let auto = advisor::Scenario::barrier(64);
        let d = Descriptor::pe();
        assert!(
            advisor::predict(&m, &over, advisor::Placement::Nic, &d)
                > advisor::predict(&m, &auto, advisor::Placement::Nic, &d)
        );
    }

    #[test]
    fn gb_depth_of_heap_trees() {
        assert_eq!(CostModel::gb_depth(1, 8), 0);
        assert_eq!(CostModel::gb_depth(2, 8), 1);
        assert_eq!(CostModel::gb_depth(9, 8), 1);
        assert_eq!(CostModel::gb_depth(10, 8), 2);
        assert_eq!(CostModel::gb_depth(32, 8), 2);
        assert_eq!(CostModel::gb_depth(128, 8), 3);
        assert_eq!(CostModel::gb_depth(1024, 8), 4);
        // Chain when dim = 1.
        assert_eq!(CostModel::gb_depth(5, 1), 4);
    }

    #[test]
    fn nic_beats_host_at_scale_for_all_models() {
        let m = model_43();
        for n in [32usize, 128, 1024] {
            assert!(m.nic_pe_us(n) < m.host_pe_us(n));
            assert!(m.nic_gb_us(n, 8) < m.host_gb_us(n, 8));
            assert!(m.nic_dissemination_us(n) < m.host_dissemination_us(n));
        }
    }

    fn payload_quad(m: &CostModel, n: usize, p: Payload) -> [f64; 4] {
        [
            m.nic_bcast_us(n, 2, p),
            m.nic_reduce_us(n, 2, p),
            m.nic_allreduce_us(n, 2, p),
            m.nic_scan_us(n, p),
        ]
    }

    #[test]
    fn payload_forms_monotone_in_bytes() {
        let m = model_43();
        for n in [4usize, 16, 64, 256, 1024] {
            let mut prev = [0.0f64; 4];
            for bytes in [0u64, 1, 1024, 4096, 16384, 65536, 1 << 20] {
                let cur = payload_quad(&m, n, Payload::for_size(bytes));
                for (which, (c, p)) in cur.iter().zip(prev.iter()).enumerate() {
                    assert!(
                        c >= p,
                        "form {which} shrank at n={n} bytes={bytes}: {c} < {p}"
                    );
                }
                prev = cur;
            }
        }
    }

    #[test]
    fn one_segment_payloads_ignore_segmentation_granularity() {
        // At or below one segment the pipelined constructor is the same
        // single worm as the eager one, and the model must agree.
        let m = model_43();
        for bytes in [1u64, 512, 4096] {
            let eager = Payload::eager(bytes);
            let piped = Payload::pipelined(bytes, 4096);
            assert_eq!(piped.segments(), Segments::ONE);
            assert_eq!(payload_quad(&m, 64, eager), payload_quad(&m, 64, piped));
        }
    }

    #[test]
    fn zero_payload_matches_for_size_of_zero() {
        // The plain barrier is the zero-byte payload, however spelled.
        let m = model_43();
        assert_eq!(
            payload_quad(&m, 256, Payload::EMPTY),
            payload_quad(&m, 256, Payload::for_size(0))
        );
    }

    #[test]
    fn bcast_link_contention_saturates() {
        // One crossbar (≤16 nodes at dim=2): only the parent egress is
        // shared, factor = dim regardless of segmentation (the n/8 cap).
        assert_eq!(CostModel::bcast_link_factor(2, 2, 1.0), 1.0);
        assert_eq!(CostModel::bcast_link_factor(16, 2, 1.0), 2.0);
        assert_eq!(CostModel::bcast_link_factor(16, 2, 16.0), 2.0);
        // Deeper trees add trunk sharing, and segmentation interleaves
        // streams on the trunks — but never past the stream-count cap.
        let eager = CostModel::bcast_link_factor(256, 2, 1.0);
        let piped = CostModel::bcast_link_factor(256, 2, 16.0);
        assert!(eager > 2.0 && piped > eager);
        assert!(CostModel::bcast_link_factor(256, 2, 4096.0) <= 32.0);
    }

    #[test]
    fn large_payloads_dwarf_the_zero_byte_period() {
        // At 64 KiB the data movement dominates every schedule.
        let m = model_43();
        let small = payload_quad(&m, 256, Payload::EMPTY);
        let large = payload_quad(&m, 256, Payload::for_size(65536));
        for (s, l) in small.iter().zip(large.iter()) {
            assert!(*l > 3.0 * s, "payload should dominate: {l} vs {s}");
        }
    }
}
